//! When do Sum and Maximum rankings disagree — and by how much?
//!
//! Section VI-B3/B4 measures the two rankings' agreement with a padded
//! Kendall tau. This example runs the full workload over a synthetic
//! corpus and prints the agreement per radius and semantics, plus one
//! concrete disagreeing query with both top-5 lists side by side.
//!
//! Run with: `cargo run --release --example ranking_divergence`

use tklus::core::{BoundsMode, EngineConfig, Ranking, TklusEngine};
use tklus::gen::{generate_corpus, generate_queries, GenConfig, QueryConfig};
use tklus::metrics::padded_kendall_tau;
use tklus::model::{Semantics, TklusQuery, UserId};

fn main() {
    let corpus =
        generate_corpus(&GenConfig { original_posts: 8_000, users: 2_500, ..GenConfig::default() });
    let (engine, _) =
        TklusEngine::build(&corpus, &EngineConfig { hot_keywords: 200, ..EngineConfig::default() });
    let specs = generate_queries(&corpus, &QueryConfig::default());

    let mut worst: Option<(f64, TklusQuery, Vec<UserId>, Vec<UserId>)> = None;
    println!("{:<10} {:<9} {:>8} {:>10}", "radius km", "semantic", "queries", "mean tau");
    for radius in [10.0, 20.0, 50.0] {
        for semantics in [Semantics::And, Semantics::Or] {
            let mut taus = Vec::new();
            for spec in specs.iter().step_by(3).take(20) {
                let q = TklusQuery::new(spec.location, radius, spec.keywords.clone(), 5, semantics)
                    .expect("valid query");
                let (sum, _) = engine.query(&q, Ranking::Sum);
                let (max, _) = engine.query(&q, Ranking::Max(BoundsMode::HotKeywords));
                if sum.is_empty() && max.is_empty() {
                    continue;
                }
                let a: Vec<UserId> = sum.iter().map(|r| r.user).collect();
                let b: Vec<UserId> = max.iter().map(|r| r.user).collect();
                let tau = padded_kendall_tau(&a, &b);
                if worst.as_ref().is_none_or(|(w, ..)| tau < *w) {
                    worst = Some((tau, q.clone(), a.clone(), b.clone()));
                }
                taus.push(tau);
            }
            if taus.is_empty() {
                continue;
            }
            let mean = taus.iter().sum::<f64>() / taus.len() as f64;
            println!(
                "{:<10} {:<9} {:>8} {:>10.3}",
                radius,
                semantics.to_string(),
                taus.len(),
                mean
            );
        }
    }

    if let Some((tau, q, sum, max)) = worst {
        println!("\nmost-disagreeing query (tau {tau:.3}):");
        println!(
            "  keywords {:?}, radius {} km, {} semantics",
            q.keywords, q.radius_km, q.semantics
        );
        println!("  {:<4} {:<12} {:<12}", "rank", "sum", "maximum");
        for i in 0..5 {
            let s = sum.get(i).map(|u| u.to_string()).unwrap_or_default();
            let m = max.get(i).map(|u| u.to_string()).unwrap_or_default();
            println!("  #{:<3} {:<12} {:<12}", i + 1, s, m);
        }
        println!("\nSum rewards users with many relevant tweets; Maximum rewards one outstanding thread.");
    }
}
