//! Anatomy of the hybrid index: what Section IV actually builds.
//!
//! Walks through the stack bottom-up on a small corpus: geohash encoding
//! and circle covers, the MapReduce build, the forward/inverted split, the
//! postings wire format, and the metadata database's B+-tree access paths —
//! printing what each layer sees.
//!
//! Run with: `cargo run --release --example index_anatomy`

use tklus::core::MetadataDb;
use tklus::gen::{generate_corpus, GenConfig};
use tklus::geo::{circle_cover, cover::circle_cover_with_stats, encode, DistanceMetric, Point};
use tklus::graph::build_thread;
use tklus::index::{build_index, IndexBuildConfig};
use tklus::text::TextPipeline;

fn main() {
    let toronto = Point::new_unchecked(43.6839128037, -79.37356590);

    // --- Layer 1: geohash ----------------------------------------------
    println!("## geohash (Section IV-B1)");
    for len in 1..=4 {
        println!("  len {len}: {}", encode(&toronto, len).unwrap());
    }
    let (cover, stats) =
        circle_cover_with_stats(&toronto, 10.0, 4, DistanceMetric::Euclidean).unwrap();
    println!(
        "  10 km circle cover at len 4: {} cells, {:.2}x the circle's area: {}",
        stats.cells,
        stats.overcover_ratio(),
        cover.iter().map(|g| g.to_string()).collect::<Vec<_>>().join(" ")
    );

    // --- Layer 2: the MapReduce index build -----------------------------
    println!("\n## hybrid index build (Algorithms 2-3)");
    let corpus =
        generate_corpus(&GenConfig { original_posts: 3_000, users: 800, ..GenConfig::default() });
    let (index, report) = build_index(corpus.posts(), &IndexBuildConfig::default());
    println!("  posts: {}", report.posts);
    println!("  <geohash, term> keys: {}", report.keys);
    println!("  postings: {}", report.postings);
    println!(
        "  inverted index on DFS: {} bytes across {} partition files",
        report.index_bytes,
        index.dfs().list().len()
    );
    println!(
        "  forward index in RAM: {} entries, {} bytes",
        index.forward().len(),
        index.forward().size_bytes()
    );
    for (node, file) in index.dfs().list().iter().enumerate().take(3) {
        println!("  partition {file} lives on node {}", index.dfs().node_of(file).unwrap());
        let _ = node;
    }

    // --- Layer 3: one postings list --------------------------------------
    println!("\n## a postings list (Figure 4)");
    let pipeline = TextPipeline::new();
    let stem = pipeline.normalize_keyword("restaurant").unwrap();
    let term = index.vocab().get(&stem).expect("hot keyword indexed");
    let cell = circle_cover(&toronto, 10.0, 4, DistanceMetric::Euclidean)
        .unwrap()
        .into_iter()
        .find(|c| index.postings(*c, term).is_some());
    if let Some(cell) = cell {
        let list = index.postings(cell, term).unwrap();
        println!("  <{cell}, {stem:?}> -> {} postings (first 5):", list.len());
        for p in list.postings().iter().take(5) {
            println!("    tweet {} tf {}", p.id, p.tf);
        }
        println!(
            "  encoded: {} bytes ({:.2} bytes/posting)",
            list.encode().len(),
            list.encode().len() as f64 / list.len() as f64
        );
    }

    // --- Layer 4: the metadata database ---------------------------------
    println!("\n## metadata database (Section IV-A)");
    let mut db = MetadataDb::from_posts(corpus.posts(), 0);
    // Find the most replied-to tweet and build its thread, counting I/O.
    let busiest = corpus
        .posts()
        .iter()
        .filter(|p| !p.is_reply())
        .max_by_key(|p| db.replies_to_ids(p.id).len())
        .expect("non-empty corpus");
    db.io().reset();
    let thread = build_thread(&mut db, busiest.id, 6);
    println!("  busiest root {}: thread levels {:?}", busiest.id, thread.level_sizes());
    println!("  popularity (Definition 4, eps=0.1): {:.3}", thread.popularity(0.1));
    println!(
        "  metadata page reads for this thread: {}  <- the cost Algorithm 5 prunes",
        db.io().page_reads()
    );
}
