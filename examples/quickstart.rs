//! Quickstart: build a TkLUS engine over a small synthetic corpus and ask
//! the paper's running-example question — "who are the top local users for
//! 'hotel' within 10 km of downtown Toronto?"
//!
//! Run with: `cargo run --release --example quickstart`

use tklus::core::{BoundsMode, EngineConfig, Ranking, TklusEngine};
use tklus::gen::{generate_corpus, GenConfig};
use tklus::geo::Point;
use tklus::model::{Semantics, TklusQuery};

fn main() {
    // 1. A deterministic synthetic corpus (stand-in for the paper's
    //    crawled geo-tagged tweets): city-clustered locations, Zipfian
    //    keywords, reply/forward cascades.
    let corpus =
        generate_corpus(&GenConfig { original_posts: 5_000, users: 1_500, ..GenConfig::default() });
    println!("corpus: {} posts by {} users", corpus.len(), corpus.user_count());

    // 2. Build the engine: MapReduce hybrid index (geohash + term keys over
    //    a simulated 3-node DFS), metadata database (B+-trees on sid, rsid,
    //    uid), and pre-computed popularity bounds.
    let (engine, report) = TklusEngine::build(&corpus, &EngineConfig::default());
    println!(
        "index: {} keys, {} postings, {} bytes on the simulated DFS (built in {:?})",
        report.keys, report.postings, report.index_bytes, report.total_time
    );

    // 3. The TkLUS query of Section II-B: location, radius, keywords, k.
    let query = TklusQuery::new(
        Point::new_unchecked(43.6839128037, -79.37356590), // downtown Toronto
        10.0,                                              // 10 km
        vec!["hotel".into()],
        5,
        Semantics::Or,
    )
    .expect("valid query");

    // 4. Answer it with both ranking methods.
    for (name, ranking) in [
        ("Sum score (Algorithm 4)", Ranking::Sum),
        ("Maximum score (Algorithm 5)", Ranking::Max(BoundsMode::HotKeywords)),
    ] {
        let (top, stats) = engine.query(&query, ranking);
        println!("\n{name}:");
        for (rank, r) in top.iter().enumerate() {
            println!("  #{:<2} {}  score {:.4}", rank + 1, r.user, r.score);
        }
        println!(
            "  [{} candidates, {} threads built, {} pruned, {:.2} ms]",
            stats.candidates,
            stats.threads_built,
            stats.threads_pruned,
            stats.elapsed.as_secs_f64() * 1e3
        );
    }
}
