//! The introduction's motivating scenario: a family moving to a new city
//! asks "are there any good babysitters around here?" — a
//! location-dependent, contextualized social search. Instead of dumping
//! raw tweets, TkLUS recommends *local users* to talk to.
//!
//! This example hand-crafts a small neighbourhood corpus so the ranking
//! behaviour is easy to follow: a genuinely local, frequently-engaged
//! babysitting sitter-recommender should beat both a one-off mention and a
//! popular-but-remote account.
//!
//! Run with: `cargo run --release --example local_experts`

use tklus::core::{BoundsMode, EngineConfig, Ranking, TklusEngine};
use tklus::geo::Point;
use tklus::model::{Corpus, Post, Semantics, TklusQuery, TweetId, UserId};

fn pt(lat: f64, lon: f64) -> Point {
    Point::new_unchecked(lat, lon)
}

fn main() {
    // Seoul city centre.
    let here = pt(37.5665, 126.9780);

    let mut posts = vec![
        // u1 — the neighbourhood expert: several babysitter tweets nearby,
        // each drawing replies (people asking follow-up questions).
        Post::original(
            TweetId(1),
            UserId(1),
            pt(37.57, 126.98),
            "our babysitter in Jongno is wonderful with toddlers",
        ),
        Post::original(
            TweetId(2),
            UserId(1),
            pt(37.565, 126.975),
            "babysitter recommendations for the Jongno area, ask me",
        ),
        Post::original(
            TweetId(3),
            UserId(1),
            pt(37.568, 126.982),
            "wrote up a list of vetted babysitters near the palace",
        ),
        // u2 — mentioned a babysitter once, nearby, no engagement.
        Post::original(
            TweetId(4),
            UserId(2),
            pt(37.56, 126.97),
            "finally found a babysitter for tonight",
        ),
        // u3 — very popular thread, but posted from Busan (325 km away).
        Post::original(
            TweetId(5),
            UserId(3),
            pt(35.1796, 129.0756),
            "the ultimate babysitter hiring guide",
        ),
    ];
    // Replies to u1's posts (locals engaging).
    let mut id = 100u64;
    for root in [1u64, 2, 3] {
        for _ in 0..4 {
            posts.push(Post::reply(
                TweetId(id),
                UserId(10 + id),
                pt(37.56 + (id % 7) as f64 * 0.002, 126.97 + (id % 5) as f64 * 0.002),
                "thanks, sending you a message",
                TweetId(root),
                UserId(1),
            ));
            id += 1;
        }
    }
    // u3's guide goes viral — but far away.
    for _ in 0..30 {
        posts.push(Post::forward(
            TweetId(id),
            UserId(10 + id),
            pt(35.18, 129.07),
            "RT great guide",
            TweetId(5),
            UserId(3),
        ));
        id += 1;
    }

    let corpus = Corpus::new(posts).expect("unique ids");
    let (engine, _) = TklusEngine::build(&corpus, &EngineConfig::default());

    let query = TklusQuery::new(here, 10.0, vec!["babysitter".into()], 3, Semantics::Or)
        .expect("valid query");
    println!("query: 'babysitter' within 10 km of Seoul city centre, top-3\n");

    for (name, ranking) in
        [("Sum", Ranking::Sum), ("Maximum", Ranking::Max(BoundsMode::HotKeywords))]
    {
        let (top, _) = engine.query(&query, ranking);
        println!("{name} ranking:");
        for (rank, r) in top.iter().enumerate() {
            let who = match r.user {
                UserId(1) => "u1 — the Jongno babysitter expert (local, engaged)",
                UserId(2) => "u2 — one-off mention (local, quiet)",
                UserId(3) => "u3 — viral guide (but posted from Busan)",
                _ => "a reply/forward account",
            };
            println!("  #{} {} score {:.4}  [{who}]", rank + 1, r.user, r.score);
        }
        // u3 must be excluded entirely: no qualifying post within 10 km
        // (Problem Definition condition 1).
        assert!(top.iter().all(|r| r.user != UserId(3)), "remote users cannot be local experts");
        assert_eq!(top.first().map(|r| r.user), Some(UserId(1)), "the engaged local expert wins");
        println!();
    }
    println!("note: u3's viral thread never qualifies — no post within the radius (condition 1 of the problem definition).");
}
