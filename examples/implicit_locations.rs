//! Recovering implicit locations (the paper's Section VIII extension):
//! tweets without geo-tags that *mention* a place still carry spatial
//! signal. This example strips the geo-tags from part of a synthetic
//! corpus, recovers city-level locations with the gazetteer, and shows
//! (a) recovery rate and error, and (b) that a TkLUS query over the
//! augmented corpus finds local users whose tweets would otherwise be
//! invisible.
//!
//! Run with: `cargo run --release --example implicit_locations`

use tklus::core::{BoundsMode, EngineConfig, Ranking, TklusEngine};
use tklus::gen::{generate_corpus, GenConfig};
use tklus::geo::{Gazetteer, Point};
use tklus::model::{Corpus, Post, Semantics, TklusQuery, TweetId, UserId};

fn main() {
    let corpus =
        generate_corpus(&GenConfig { original_posts: 4_000, users: 1_200, ..GenConfig::default() });
    let gazetteer = Gazetteer::builtin();

    // Simulate the real-world split: only a sliver of tweets carry GPS
    // coordinates. Every third original tweet "loses" its geo-tag but
    // gains a city mention in its text (people often name where they are).
    let mut tagged: Vec<Post> = Vec::new();
    let mut untagged: Vec<(Post, Point)> = Vec::new(); // (post sans tag, true location)
    for post in corpus.posts() {
        if !post.is_reply() && post.id.0 % 3 == 0 {
            // Find which generator city this post belongs to.
            let city = tklus::gen::CityModel::default_world()
                .cities()
                .iter()
                .min_by(|a, b| {
                    a.center
                        .euclidean_km(&post.location)
                        .partial_cmp(&b.center.euclidean_km(&post.location))
                        .unwrap()
                })
                .map(|c| c.name.to_string())
                .unwrap();
            let mut p = post.clone();
            p.text = format!("{} {}", p.text, city.to_lowercase());
            untagged.push((p, post.location));
        } else {
            tagged.push(post.clone());
        }
    }
    println!(
        "{} tweets keep their geo-tag; {} lost it (but mention a city)",
        tagged.len(),
        untagged.len()
    );

    // Recover locations from text.
    let mut recovered = 0usize;
    let mut total_error_km = 0.0;
    let mut augmented = tagged.clone();
    for (post, true_loc) in &untagged {
        if let Some(inf) = gazetteer.infer(&post.text) {
            recovered += 1;
            total_error_km += inf.location.euclidean_km(true_loc);
            let mut p = post.clone();
            p.location = inf.location;
            augmented.push(p);
        }
    }
    println!(
        "recovered {}/{} locations, mean error {:.1} km (city-level, as expected)",
        recovered,
        untagged.len(),
        total_error_km / recovered.max(1) as f64
    );

    // A user who ONLY posts untagged tweets exists solely in the
    // augmented corpus.
    let ghost = UserId(999_999);
    let toronto = Point::new_unchecked(43.6532, -79.3832);
    let mut ghost_posts = Vec::new();
    for i in 0..4u64 {
        let mut p = Post::original(
            TweetId(10_000_000 + i),
            ghost,
            toronto, // placeholder, replaced by inference below
            "the best hidden sushi sushi bar in toronto, ask me where",
        );
        let inf = gazetteer.infer(&p.text).expect("mentions toronto");
        p.location = inf.location;
        ghost_posts.push(p);
    }
    // The ghost's recommendations spark conversation (replies are
    // geo-tagged; only the expert's own tweets lost their tags).
    for j in 0..10u64 {
        ghost_posts.push(Post::reply(
            TweetId(10_000_100 + j),
            UserId(900_000 + j),
            Point::new_unchecked(43.66 + (j as f64) * 0.001, -79.39),
            "where exactly? sounds great",
            TweetId(10_000_000),
            ghost,
        ));
    }
    augmented.extend(ghost_posts);

    let tagged_corpus = Corpus::new(tagged).unwrap();
    let augmented_corpus = Corpus::new(augmented).unwrap();

    let query = TklusQuery::new(toronto, 20.0, vec!["sushi".into()], 10, Semantics::Or).unwrap();
    let (engine_tagged, _) = TklusEngine::build(&tagged_corpus, &EngineConfig::default());
    let (engine_aug, _) = TklusEngine::build(&augmented_corpus, &EngineConfig::default());

    let (top_tagged, _) = engine_tagged.query(&query, Ranking::Max(BoundsMode::HotKeywords));
    let (top_aug, _) = engine_aug.query(&query, Ranking::Max(BoundsMode::HotKeywords));

    let in_tagged = top_tagged.iter().any(|r| r.user == ghost);
    let in_aug = top_aug.iter().any(|r| r.user == ghost);
    println!("\nquery: 'sushi' within 20 km of Toronto, top-10");
    println!("  geo-tagged corpus only : ghost user found = {in_tagged}");
    println!("  + recovered locations  : ghost user found = {in_aug}");
    assert!(!in_tagged && in_aug, "recovery must surface the untagged local expert");
    println!("\nimplicit-location recovery surfaced a local expert invisible to the geo-tagged-only index.");
}
