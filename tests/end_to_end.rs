//! Cross-crate integration tests: the whole pipeline from synthetic corpus
//! through index build to query answers, checked against a brute-force
//! reference implementation of the paper's definitions.

use std::collections::HashMap;
use tklus::core::{BoundsMode, EngineConfig, Ranking, TklusEngine};
use tklus::gen::{generate_corpus, generate_queries, GenConfig, QueryConfig};
use tklus::geo::Point;
use tklus::graph::{build_thread, SocialNetwork};
use tklus::model::{Corpus, ScoringConfig, Semantics, TklusQuery, UserId};
use tklus::text::TextPipeline;

fn small_corpus(seed: u64) -> Corpus {
    generate_corpus(&GenConfig { original_posts: 1_500, users: 400, seed, ..GenConfig::default() })
}

/// Brute-force reference: score every user directly from the corpus by
/// Definitions 4–10, with no index, no pruning, no database.
fn reference_topk(
    corpus: &Corpus,
    q: &TklusQuery,
    use_max: bool,
    config: &ScoringConfig,
) -> Vec<(UserId, f64)> {
    let pipeline = TextPipeline::new();
    let network = SocialNetwork::from_corpus(corpus);
    let stems: Vec<String> =
        q.keywords.iter().filter_map(|k| pipeline.normalize_keyword(k)).collect();
    let mut per_user: HashMap<UserId, f64> = HashMap::new();
    for post in corpus.posts() {
        let d = q.location.distance_km(&post.location, config.metric);
        if d > q.radius_km {
            continue;
        }
        let terms = pipeline.terms(&post.text);
        let occurrences: u32 =
            stems.iter().map(|s| terms.iter().filter(|t| *t == s).count() as u32).sum();
        let qualifies = match q.semantics {
            Semantics::And => stems.iter().all(|s| terms.contains(s)) && !stems.is_empty(),
            Semantics::Or => occurrences > 0,
        };
        if !qualifies {
            continue;
        }
        let mut provider = &network;
        let phi =
            build_thread(&mut provider, post.id, config.thread_depth).popularity(config.epsilon);
        let rho = occurrences as f64 / config.keyword_norm * phi;
        let entry = per_user.entry(post.user).or_insert(0.0);
        if use_max {
            if rho > *entry {
                *entry = rho;
            }
        } else {
            *entry += rho;
        }
    }
    let mut scored: Vec<(UserId, f64)> = per_user
        .into_iter()
        .map(|(uid, rho)| {
            let locs: Vec<Point> = corpus.posts_of(uid).map(|p| p.location).collect();
            let delta: f64 = locs
                .iter()
                .map(|l| {
                    let d = q.location.distance_km(l, config.metric);
                    if d <= q.radius_km {
                        (q.radius_km - d) / q.radius_km
                    } else {
                        0.0
                    }
                })
                .sum::<f64>()
                / locs.len() as f64;
            (uid, config.alpha * rho + (1.0 - config.alpha) * delta)
        })
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    scored.truncate(q.k);
    scored
}

#[test]
fn engine_matches_brute_force_reference() {
    let corpus = small_corpus(0xAB);
    let config = EngineConfig::default();
    let (engine, _) = TklusEngine::build(&corpus, &config);
    let specs = generate_queries(&corpus, &QueryConfig::default());
    let mut compared = 0;
    for spec in specs.iter().step_by(7).take(8) {
        for semantics in [Semantics::And, Semantics::Or] {
            let q =
                TklusQuery::new(spec.location, 25.0, spec.keywords.clone(), 5, semantics).unwrap();
            for (ranking, use_max) in
                [(Ranking::Sum, false), (Ranking::Max(BoundsMode::HotKeywords), true)]
            {
                let (got, _) = engine.query(&q, ranking);
                let want = reference_topk(&corpus, &q, use_max, &config.scoring);
                assert_eq!(got.len(), want.len(), "{:?} {semantics:?} {ranking:?}", spec.keywords);
                for (g, w) in got.iter().zip(&want) {
                    assert_eq!(g.user, w.0, "{:?} {semantics:?} {ranking:?}", spec.keywords);
                    assert!((g.score - w.1).abs() < 1e-9, "{} vs {}", g.score, w.1);
                }
                compared += 1;
            }
        }
    }
    assert!(compared >= 16, "enough query/ranking pairs compared ({compared})");
}

#[test]
fn pruning_never_changes_results() {
    let corpus = small_corpus(0xCD);
    let (engine, _) =
        TklusEngine::build(&corpus, &EngineConfig { hot_keywords: 200, ..EngineConfig::default() });
    let specs = generate_queries(&corpus, &QueryConfig::default());
    for spec in specs.iter().step_by(11).take(6) {
        for radius in [10.0, 50.0] {
            let q = TklusQuery::new(spec.location, radius, spec.keywords.clone(), 5, Semantics::Or)
                .unwrap();
            let (global, _) = engine.query(&q, Ranking::Max(BoundsMode::Global));
            let (hot, _) = engine.query(&q, Ranking::Max(BoundsMode::HotKeywords));
            assert_eq!(
                global.iter().map(|r| r.user).collect::<Vec<_>>(),
                hot.iter().map(|r| r.user).collect::<Vec<_>>(),
                "bound mode must not change results for {:?}",
                spec.keywords
            );
        }
    }
}

#[test]
fn returned_users_always_qualify() {
    // Problem Definition condition 1 holds for every returned user.
    let corpus = small_corpus(0xEF);
    let (engine, _) = TklusEngine::build(&corpus, &EngineConfig::default());
    let pipeline = TextPipeline::new();
    let specs = generate_queries(&corpus, &QueryConfig::default());
    for spec in specs.iter().step_by(9).take(10) {
        let q =
            TklusQuery::new(spec.location, 20.0, spec.keywords.clone(), 10, Semantics::Or).unwrap();
        let stems: Vec<String> =
            q.keywords.iter().filter_map(|k| pipeline.normalize_keyword(k)).collect();
        let (top, _) = engine.query(&q, Ranking::Sum);
        for r in &top {
            let ok = corpus.posts_of(r.user).any(|p| {
                q.location.euclidean_km(&p.location) <= q.radius_km
                    && pipeline.terms(&p.text).iter().any(|t| stems.contains(t))
            });
            assert!(ok, "user {} in top-k without a qualifying post", r.user);
        }
    }
}

#[test]
fn and_results_subset_of_or_candidates() {
    let corpus = small_corpus(0x11);
    let (engine, _) = TklusEngine::build(&corpus, &EngineConfig::default());
    let specs = generate_queries(&corpus, &QueryConfig::default());
    // Multi-keyword specs only.
    for spec in specs.iter().filter(|s| s.keywords.len() >= 2).step_by(5).take(6) {
        let and_q = TklusQuery::new(spec.location, 30.0, spec.keywords.clone(), 50, Semantics::And)
            .unwrap();
        let or_q =
            TklusQuery::new(spec.location, 30.0, spec.keywords.clone(), 50, Semantics::Or).unwrap();
        let (_, and_stats) = engine.query(&and_q, Ranking::Sum);
        let (_, or_stats) = engine.query(&or_q, Ranking::Sum);
        assert!(
            and_stats.candidates <= or_stats.candidates,
            "AND candidates ({}) exceed OR ({})",
            and_stats.candidates,
            or_stats.candidates
        );
    }
}

#[test]
fn geohash_length_does_not_change_results() {
    // The index's geohash length is a performance knob, never a
    // correctness knob: results are identical across lengths.
    let corpus = small_corpus(0x22);
    let specs = generate_queries(&corpus, &QueryConfig::default());
    let mut engines: Vec<TklusEngine> = (2..=5)
        .map(|len| {
            let config = EngineConfig {
                index: tklus::index::IndexBuildConfig { geohash_len: len, ..Default::default() },
                ..EngineConfig::default()
            };
            TklusEngine::build(&corpus, &config).0
        })
        .collect();
    for spec in specs.iter().step_by(13).take(5) {
        let q =
            TklusQuery::new(spec.location, 15.0, spec.keywords.clone(), 5, Semantics::Or).unwrap();
        let reference: Vec<UserId> =
            engines[0].query(&q, Ranking::Sum).0.iter().map(|r| r.user).collect();
        for engine in engines.iter_mut().skip(1) {
            let got: Vec<UserId> =
                engine.query(&q, Ranking::Sum).0.iter().map(|r| r.user).collect();
            assert_eq!(got, reference, "length changed the answer for {:?}", spec.keywords);
        }
    }
}

#[test]
fn deterministic_end_to_end() {
    let run = || {
        let corpus = small_corpus(0x33);
        let (engine, report) = TklusEngine::build(&corpus, &EngineConfig::default());
        let specs = generate_queries(&corpus, &QueryConfig::default());
        let q =
            TklusQuery::new(specs[0].location, 20.0, specs[0].keywords.clone(), 5, Semantics::Or)
                .unwrap();
        let (top, _) = engine.query(&q, Ranking::Sum);
        (
            report.keys,
            report.index_bytes,
            top.iter().map(|r| (r.user, r.score.to_bits())).collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(), run(), "whole pipeline is deterministic");
}
