//! Keyword model: a Zipf-distributed vocabulary with the paper's Table II
//! hot keywords seeded at the top ranks.

use rand::Rng;
use rand_distr::{Distribution, Zipf};

/// Table II: the top-10 frequent keywords of the paper's data set, in rank
/// order.
pub const TABLE2_KEYWORDS: [&str; 10] =
    ["restaurant", "game", "cafe", "shop", "hotel", "club", "coffee", "film", "pizza", "mall"];

/// The next 20 "meaningful keywords" filling out the paper's 30-keyword
/// query pool (Section VI-B1 selects "30 meaningful keywords including the
/// top-10 frequent ones").
pub const EXTRA_QUERY_KEYWORDS: [&str; 20] = [
    "museum", "beach", "park", "bar", "concert", "sushi", "burger", "gym", "theater", "market",
    "library", "airport", "stadium", "gallery", "bakery", "brunch", "karaoke", "spa", "zoo",
    "festival",
];

/// Filler content words (never queried, they pad tweet text realistically).
const FILLER: [&str; 40] = [
    "amazing",
    "awesome",
    "beautiful",
    "best",
    "big",
    "busy",
    "cheap",
    "cold",
    "cool",
    "crazy",
    "delicious",
    "downtown",
    "evening",
    "famous",
    "fancy",
    "favourite",
    "friendly",
    "fresh",
    "fun",
    "good",
    "great",
    "happy",
    "huge",
    "lovely",
    "lunch",
    "morning",
    "new",
    "nice",
    "night",
    "old",
    "perfect",
    "pretty",
    "quiet",
    "small",
    "street",
    "sunny",
    "super",
    "tasty",
    "tonight",
    "weekend",
];

/// A ranked vocabulary sampled through a Zipf law.
#[derive(Debug, Clone)]
pub struct KeywordModel {
    ranked: Vec<String>,
    zipf: Zipf<f64>,
}

impl KeywordModel {
    /// Builds a vocabulary of `size` words: the 30 query keywords first (so
    /// they are the frequent ones), then filler words, then generated
    /// pseudo-words ("w0031", …). `exponent` is the Zipf exponent
    /// (≈ 1.0 matches word-frequency folklore).
    pub fn new(size: usize, exponent: f64) -> Self {
        assert!(size >= TABLE2_KEYWORDS.len() + EXTRA_QUERY_KEYWORDS.len(), "vocabulary too small");
        let mut ranked: Vec<String> = TABLE2_KEYWORDS.iter().map(|s| s.to_string()).collect();
        ranked.extend(EXTRA_QUERY_KEYWORDS.iter().map(|s| s.to_string()));
        ranked.extend(FILLER.iter().map(|s| s.to_string()));
        let mut i = 0;
        while ranked.len() < size {
            ranked.push(format!("word{i:04}"));
            i += 1;
        }
        ranked.truncate(size);
        Self { zipf: Zipf::new(ranked.len() as u64, exponent).expect("valid zipf"), ranked }
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.ranked.len()
    }

    /// True when the vocabulary is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.ranked.is_empty()
    }

    /// The word at `rank` (0 = most frequent).
    pub fn word(&self, rank: usize) -> &str {
        &self.ranked[rank]
    }

    /// The 30 query keywords (Table II top-10 + 20 more).
    pub fn query_keywords(&self) -> Vec<&str> {
        self.ranked[..TABLE2_KEYWORDS.len() + EXTRA_QUERY_KEYWORDS.len()]
            .iter()
            .map(String::as_str)
            .collect()
    }

    /// Whether `word` is one of the 30 query-pool keywords.
    pub fn is_query_keyword(&self, word: &str) -> bool {
        self.query_keywords().contains(&word)
    }

    /// Samples one word by the Zipf law.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> &str {
        let rank = (self.zipf.sample(rng) as usize).clamp(1, self.ranked.len());
        &self.ranked[rank - 1]
    }

    /// Samples a tweet's worth of words (length `n`).
    pub fn sample_words<R: Rng>(&self, rng: &mut R, n: usize) -> Vec<&str> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    #[test]
    fn table2_keywords_lead_the_ranking() {
        let m = KeywordModel::new(500, 1.0);
        for (i, kw) in TABLE2_KEYWORDS.iter().enumerate() {
            assert_eq!(m.word(i), *kw);
        }
        assert_eq!(m.query_keywords().len(), 30);
        assert_eq!(m.len(), 500);
    }

    #[test]
    fn zipf_sampling_is_skewed_toward_top_ranks() {
        let m = KeywordModel::new(500, 1.0);
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for _ in 0..50_000 {
            *counts.entry(m.sample(&mut rng)).or_default() += 1;
        }
        let restaurant = counts.get("restaurant").copied().unwrap_or(0);
        let deep = counts.get(m.word(400)).copied().unwrap_or(0);
        assert!(restaurant > 50 * deep.max(1), "restaurant {restaurant} vs rank-400 {deep}");
        // Top word clearly more frequent than rank-10.
        let mall = counts.get("mall").copied().unwrap_or(0);
        assert!(restaurant > mall, "restaurant {restaurant} vs mall {mall}");
    }

    #[test]
    fn sample_words_length() {
        let m = KeywordModel::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(m.sample_words(&mut rng, 7).len(), 7);
        assert!(m.sample_words(&mut rng, 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "vocabulary too small")]
    fn too_small_vocab_rejected() {
        let _ = KeywordModel::new(10, 1.0);
    }
}
