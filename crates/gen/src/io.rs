//! Corpus persistence: a plain TSV interchange format.
//!
//! One post per line, mirroring the paper's metadata relation plus the
//! text: `sid  uid  lat  lon  kind  rsid  ruid  text`. `kind` is `o`
//! (original), `r` (reply), or `f` (forward); `rsid`/`ruid` are `-` for
//! originals. Text is escaped (`\t`, `\n`, `\\`) so the format round-trips
//! losslessly. The CLI uses this to hand corpora between invocations.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;
use tklus_geo::Point;
use tklus_model::{Corpus, InteractionKind, Post, ReplyTo, TweetId, UserId};

/// Errors from loading a corpus file.
#[derive(Debug)]
pub enum CorpusIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based number and a description.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl std::fmt::Display for CorpusIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CorpusIoError::Io(e) => write!(f, "corpus io error: {e}"),
            CorpusIoError::Parse { line, message } => {
                write!(f, "corpus parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for CorpusIoError {}

impl From<std::io::Error> for CorpusIoError {
    fn from(e: std::io::Error) -> Self {
        CorpusIoError::Io(e)
    }
}

fn escape(text: &str) -> String {
    text.replace('\\', "\\\\").replace('\t', "\\t").replace('\n', "\\n")
}

fn unescape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut chars = text.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('\\') => out.push('\\'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

/// Writes a corpus to `path` in the TSV format.
pub fn save_tsv(corpus: &Corpus, path: &Path) -> Result<(), CorpusIoError> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    for post in corpus.posts() {
        let (kind, rsid, ruid) = match post.in_reply_to {
            None => ("o".to_string(), "-".to_string(), "-".to_string()),
            Some(ReplyTo { target, target_user, kind }) => (
                match kind {
                    InteractionKind::Reply => "r".to_string(),
                    InteractionKind::Forward => "f".to_string(),
                },
                target.0.to_string(),
                target_user.0.to_string(),
            ),
        };
        writeln!(
            w,
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            post.id.0,
            post.user.0,
            post.location.lat(),
            post.location.lon(),
            kind,
            rsid,
            ruid,
            escape(&post.text)
        )?;
    }
    w.flush()?;
    Ok(())
}

/// Loads a corpus from a TSV file written by [`save_tsv`].
pub fn load_tsv(path: &Path) -> Result<Corpus, CorpusIoError> {
    let reader = BufReader::new(std::fs::File::open(path)?);
    let mut posts = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let lineno = idx + 1;
        let parse = |message: String| CorpusIoError::Parse { line: lineno, message };
        let fields: Vec<&str> = line.splitn(8, '\t').collect();
        if fields.len() != 8 {
            return Err(parse(format!("expected 8 tab-separated fields, got {}", fields.len())));
        }
        let id: u64 = fields[0].parse().map_err(|e| parse(format!("sid: {e}")))?;
        let uid: u64 = fields[1].parse().map_err(|e| parse(format!("uid: {e}")))?;
        let lat: f64 = fields[2].parse().map_err(|e| parse(format!("lat: {e}")))?;
        let lon: f64 = fields[3].parse().map_err(|e| parse(format!("lon: {e}")))?;
        let location = Point::new(lat, lon).map_err(|e| parse(format!("location: {e}")))?;
        let text = unescape(fields[7]);
        let in_reply_to = match fields[4] {
            "o" => None,
            kind @ ("r" | "f") => {
                let target: u64 = fields[5].parse().map_err(|e| parse(format!("rsid: {e}")))?;
                let target_user: u64 =
                    fields[6].parse().map_err(|e| parse(format!("ruid: {e}")))?;
                Some(ReplyTo {
                    target: TweetId(target),
                    target_user: UserId(target_user),
                    kind: if kind == "r" {
                        InteractionKind::Reply
                    } else {
                        InteractionKind::Forward
                    },
                })
            }
            other => return Err(parse(format!("unknown kind {other:?}"))),
        };
        posts.push(Post { id: TweetId(id), user: UserId(uid), location, text, in_reply_to });
    }
    Corpus::new(posts).map_err(|e| CorpusIoError::Parse { line: 0, message: e.to_string() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{generate_corpus, GenConfig};

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("tklus-io-{}-{name}.tsv", std::process::id()))
    }

    #[test]
    fn roundtrip_generated_corpus() {
        let corpus =
            generate_corpus(&GenConfig { original_posts: 500, users: 100, ..GenConfig::default() });
        let path = tmp("roundtrip");
        save_tsv(&corpus, &path).unwrap();
        let back = load_tsv(&path).unwrap();
        assert_eq!(corpus.len(), back.len());
        assert_eq!(corpus.posts(), back.posts());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn escaping_roundtrips_awkward_text() {
        let posts = vec![
            Post::original(
                TweetId(1),
                UserId(1),
                Point::new_unchecked(1.0, 2.0),
                "tabs\tand\nnewlines and back\\slashes \\t literal",
            ),
            Post::reply(
                TweetId(2),
                UserId(2),
                Point::new_unchecked(1.0, 2.0),
                "",
                TweetId(1),
                UserId(1),
            ),
        ];
        let corpus = Corpus::new(posts).unwrap();
        let path = tmp("escape");
        save_tsv(&corpus, &path).unwrap();
        let back = load_tsv(&path).unwrap();
        assert_eq!(corpus.posts(), back.posts());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn malformed_lines_error_with_line_numbers() {
        let path = tmp("bad");
        std::fs::write(&path, "1\t2\tnotanumber\t4\to\t-\t-\thello\n").unwrap();
        let err = load_tsv(&path).unwrap_err();
        assert!(matches!(err, CorpusIoError::Parse { line: 1, .. }), "{err}");
        std::fs::write(&path, "1\t2\t3.0\t4.0\tx\t-\t-\thello\n").unwrap();
        let err = load_tsv(&path).unwrap_err();
        assert!(err.to_string().contains("unknown kind"), "{err}");
        std::fs::write(&path, "1\t2\t3.0\n").unwrap();
        let err = load_tsv(&path).unwrap_err();
        assert!(err.to_string().contains("8 tab-separated"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(load_tsv(Path::new("/nonexistent/tklus.tsv")), Err(CorpusIoError::Io(_))));
    }
}
