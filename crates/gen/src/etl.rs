//! ETL: ingesting Twitter-REST-API-shaped JSON into a [`Corpus`].
//!
//! Figure 3 of the paper: "Twitter Rest API is commonly used to crawl
//! sample data in JSON format from Twitter. After extraction, transform
//! and load (ETL), the metadata of all the tweets is stored in a
//! centralized database." This module is that ETL box: it reads
//! line-delimited JSON tweets (one object per line, the REST API's
//! essential fields), extracts the metadata relation's columns, filters
//! out tweets without coordinates (the paper "focuses on social media
//! posts that have non-empty location fields"), and loads a [`Corpus`].
//!
//! Accepted tweet shape (extra fields are ignored, as in any real crawl):
//!
//! ```json
//! {"id": 123, "user_id": 7, "text": "at the hotel",
//!  "coordinates": {"lat": 43.7, "lon": -79.4},
//!  "in_reply_to_status_id": 100, "in_reply_to_user_id": 3,
//!  "retweeted_status_id": null, "retweeted_user_id": null}
//! ```

use serde_json::Value;
use std::io::{BufRead, BufReader, Read};
use tklus_geo::Point;
use tklus_model::{Corpus, Post, TweetId, UserId};

/// The subset of the REST API tweet object the ETL extracts.
#[derive(Debug)]
struct RawTweet {
    id: u64,
    user_id: u64,
    text: String,
    coordinates: Option<RawCoordinates>,
    in_reply_to_status_id: Option<u64>,
    in_reply_to_user_id: Option<u64>,
    retweeted_status_id: Option<u64>,
    retweeted_user_id: Option<u64>,
}

#[derive(Debug)]
struct RawCoordinates {
    lat: f64,
    lon: f64,
}

/// A tweet id field: missing or `null` is `None`; present but not a
/// non-negative integer is a shape mismatch (the record is malformed).
fn opt_u64(obj: &Value, key: &str) -> Result<Option<u64>, ()> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) if v.is_null() => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or(()),
    }
}

impl RawTweet {
    /// Extracts the metadata columns from one parsed JSON object.
    /// `Err(())` means the record's shape doesn't match the REST API
    /// contract (wrong types, missing required ids) — counted as
    /// malformed by the caller, exactly like a derive-based decode error.
    fn from_value(v: &Value) -> Result<Self, ()> {
        let id = v.get("id").and_then(Value::as_u64).ok_or(())?;
        let user_id = v.get("user_id").and_then(Value::as_u64).ok_or(())?;
        let text = match v.get("text") {
            None => String::new(),
            Some(t) => t.as_str().ok_or(())?.to_string(),
        };
        let coordinates = match v.get("coordinates") {
            None => None,
            Some(c) if c.is_null() => None,
            Some(c) => Some(RawCoordinates {
                lat: c.get("lat").and_then(Value::as_f64).ok_or(())?,
                lon: c.get("lon").and_then(Value::as_f64).ok_or(())?,
            }),
        };
        Ok(Self {
            id,
            user_id,
            text,
            coordinates,
            in_reply_to_status_id: opt_u64(v, "in_reply_to_status_id")?,
            in_reply_to_user_id: opt_u64(v, "in_reply_to_user_id")?,
            retweeted_status_id: opt_u64(v, "retweeted_status_id")?,
            retweeted_user_id: opt_u64(v, "retweeted_user_id")?,
        })
    }
}

/// Outcome of an ETL run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EtlReport {
    /// JSON lines read (excluding blanks).
    pub lines: usize,
    /// Tweets loaded into the corpus.
    pub loaded: usize,
    /// Tweets dropped for missing coordinates (the paper's "<1% are
    /// geo-tagged" reality — the ETL's main filter).
    pub dropped_no_location: usize,
    /// Tweets dropped for invalid coordinates.
    pub dropped_bad_location: usize,
    /// Lines that failed to parse as JSON.
    pub dropped_malformed: usize,
    /// Tweets dropped as duplicates of an earlier id.
    pub dropped_duplicate: usize,
}

/// Errors that abort an ETL run (I/O only — malformed records are counted
/// and skipped, like any production crawler does).
#[derive(Debug)]
pub enum EtlError {
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl std::fmt::Display for EtlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EtlError::Io(e) => write!(f, "etl io error: {e}"),
        }
    }
}

impl std::error::Error for EtlError {}

impl From<std::io::Error> for EtlError {
    fn from(e: std::io::Error) -> Self {
        EtlError::Io(e)
    }
}

/// Runs the ETL over line-delimited JSON, returning the geo-tagged corpus
/// and a report of what was kept and dropped.
///
/// ```
/// use tklus_gen::etl_json;
///
/// let jsonl = r#"{"id": 1, "user_id": 7, "text": "at the hotel", "coordinates": {"lat": 43.7, "lon": -79.4}}
/// {"id": 2, "user_id": 8, "text": "no geo tag"}"#;
/// let (corpus, report) = etl_json(jsonl.as_bytes()).unwrap();
/// assert_eq!(report.loaded, 1);
/// assert_eq!(report.dropped_no_location, 1);
/// assert_eq!(corpus.len(), 1);
/// ```
pub fn etl_json<R: Read>(reader: R) -> Result<(Corpus, EtlReport), EtlError> {
    let mut report = EtlReport::default();
    let mut posts: Vec<Post> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for line in BufReader::new(reader).lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        report.lines += 1;
        let raw = match serde_json::from_str(&line)
            .map_err(|_| ())
            .and_then(|v| RawTweet::from_value(&v))
        {
            Ok(t) => t,
            Err(()) => {
                report.dropped_malformed += 1;
                continue;
            }
        };
        let Some(coords) = raw.coordinates else {
            report.dropped_no_location += 1;
            continue;
        };
        let Ok(location) = Point::new(coords.lat, coords.lon) else {
            report.dropped_bad_location += 1;
            continue;
        };
        if !seen.insert(raw.id) {
            report.dropped_duplicate += 1;
            continue;
        }
        // Replies take precedence over retweets when both are present
        // (the REST API never sets both on real tweets).
        let post = match (raw.in_reply_to_status_id, raw.in_reply_to_user_id) {
            (Some(rsid), Some(ruid)) => Post::reply(
                TweetId(raw.id),
                UserId(raw.user_id),
                location,
                raw.text,
                TweetId(rsid),
                UserId(ruid),
            ),
            _ => match (raw.retweeted_status_id, raw.retweeted_user_id) {
                (Some(rsid), Some(ruid)) => Post::forward(
                    TweetId(raw.id),
                    UserId(raw.user_id),
                    location,
                    raw.text,
                    TweetId(rsid),
                    UserId(ruid),
                ),
                _ => Post::original(TweetId(raw.id), UserId(raw.user_id), location, raw.text),
            },
        };
        posts.push(post);
        report.loaded += 1;
    }
    let corpus = Corpus::new(posts).expect("duplicates filtered above");
    Ok((corpus, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tklus_model::InteractionKind;

    fn run(input: &str) -> (Corpus, EtlReport) {
        etl_json(input.as_bytes()).expect("in-memory io cannot fail")
    }

    #[test]
    fn loads_geo_tagged_tweets() {
        let input = r#"
{"id": 1, "user_id": 7, "text": "at the hotel", "coordinates": {"lat": 43.7, "lon": -79.4}}
{"id": 2, "user_id": 8, "text": "no location here", "coordinates": null}
{"id": 3, "user_id": 9, "text": "reply!", "coordinates": {"lat": 43.71, "lon": -79.41}, "in_reply_to_status_id": 1, "in_reply_to_user_id": 7}
"#;
        let (corpus, report) = run(input);
        assert_eq!(report.lines, 3);
        assert_eq!(report.loaded, 2);
        assert_eq!(report.dropped_no_location, 1);
        assert_eq!(corpus.len(), 2);
        let reply = corpus.get(TweetId(3)).unwrap();
        let rt = reply.in_reply_to.unwrap();
        assert_eq!(rt.target, TweetId(1));
        assert_eq!(rt.kind, InteractionKind::Reply);
    }

    #[test]
    fn retweets_become_forwards() {
        let input = r#"{"id": 5, "user_id": 2, "text": "RT", "coordinates": {"lat": 1.0, "lon": 2.0}, "retweeted_status_id": 4, "retweeted_user_id": 1}"#;
        let (corpus, _) = run(input);
        assert_eq!(
            corpus.get(TweetId(5)).unwrap().in_reply_to.unwrap().kind,
            InteractionKind::Forward
        );
    }

    #[test]
    fn malformed_and_invalid_records_are_counted_not_fatal() {
        let input = r#"
this is not json
{"id": 1, "user_id": 7, "text": "bad lat", "coordinates": {"lat": 99.0, "lon": 0.0}}
{"id": 2, "user_id": 7, "text": "ok", "coordinates": {"lat": 10.0, "lon": 20.0}}
{"id": 2, "user_id": 7, "text": "dup", "coordinates": {"lat": 10.0, "lon": 20.0}}
{"not_even_a_tweet": true}
"#;
        let (corpus, report) = run(input);
        assert_eq!(report.dropped_malformed, 2, "non-JSON line and shape-mismatched object");
        assert_eq!(report.dropped_bad_location, 1);
        assert_eq!(report.dropped_duplicate, 1);
        assert_eq!(report.loaded, 1);
        assert_eq!(corpus.len(), 1);
    }

    #[test]
    fn extra_fields_are_ignored() {
        let input = r#"{"id": 1, "user_id": 7, "text": "hi", "coordinates": {"lat": 1.0, "lon": 2.0}, "lang": "en", "favorite_count": 12, "entities": {"hashtags": []}}"#;
        let (corpus, report) = run(input);
        assert_eq!(report.loaded, 1);
        assert_eq!(corpus.get(TweetId(1)).unwrap().text, "hi");
    }

    #[test]
    fn empty_input_yields_empty_corpus() {
        let (corpus, report) = run("");
        assert!(corpus.is_empty());
        assert_eq!(report, EtlReport::default());
    }

    #[test]
    fn etl_feeds_the_index_pipeline() {
        // End-to-end smoke: ETL output is a corpus the engine accepts.
        let input = r#"
{"id": 1, "user_id": 7, "text": "great hotel downtown", "coordinates": {"lat": 43.70, "lon": -79.40}}
{"id": 2, "user_id": 8, "text": "hotel again", "coordinates": {"lat": 43.71, "lon": -79.39}}
"#;
        let (corpus, _) = run(input);
        let (index, report) =
            tklus_index::build_index(corpus.posts(), &tklus_index::IndexBuildConfig::default());
        assert_eq!(report.posts, 2);
        assert!(index.vocab().get("hotel").is_some());
    }
}
