//! Spatial model: a Gaussian-mixture of city clusters.

use rand::Rng;
use rand_distr::{Distribution, Normal};
use tklus_geo::Point;

/// One city cluster.
#[derive(Debug, Clone)]
pub struct City {
    /// City name (for reports).
    pub name: &'static str,
    /// Cluster centre.
    pub center: Point,
    /// Standard deviation of the scatter, in kilometres.
    pub sigma_km: f64,
    /// Relative sampling weight (population proxy).
    pub weight: f64,
}

/// A mixture of city clusters to sample locations from.
#[derive(Debug, Clone)]
pub struct CityModel {
    cities: Vec<City>,
    cumulative: Vec<f64>,
}

impl CityModel {
    /// Builds a model; weights must be positive.
    pub fn new(cities: Vec<City>) -> Self {
        assert!(!cities.is_empty(), "at least one city");
        assert!(
            cities.iter().all(|c| c.weight > 0.0 && c.sigma_km > 0.0),
            "positive weights and sigmas"
        );
        let total: f64 = cities.iter().map(|c| c.weight).sum();
        let mut acc = 0.0;
        let cumulative = cities
            .iter()
            .map(|c| {
                acc += c.weight / total;
                acc
            })
            .collect();
        Self { cities, cumulative }
    }

    /// The default world: a spread of major cities, Toronto-heavy to echo
    /// the paper's running example.
    pub fn default_world() -> Self {
        const KM_SIGMA: f64 = 8.0;
        let city = |name, lat, lon, weight| City {
            name,
            center: Point::new_unchecked(lat, lon),
            sigma_km: KM_SIGMA,
            weight,
        };
        Self::new(vec![
            city("Toronto", 43.6839, -79.3736, 3.0),
            city("New York", 40.7128, -74.0060, 2.5),
            city("Los Angeles", 34.0522, -118.2437, 2.0),
            city("Chicago", 41.8781, -87.6298, 1.5),
            city("London", 51.5074, -0.1278, 2.0),
            city("Paris", 48.8566, 2.3522, 1.5),
            city("Sao Paulo", -23.5505, -46.6333, 1.5),
            city("Tokyo", 35.6762, 139.6503, 2.0),
            city("Seoul", 37.5665, 126.9780, 1.2),
            city("Sydney", -33.8688, 151.2093, 1.0),
            city("Copenhagen", 55.6761, 12.5683, 0.8),
            city("Houston", 29.7604, -95.3698, 1.0),
        ])
    }

    /// The cities.
    pub fn cities(&self) -> &[City] {
        &self.cities
    }

    /// Samples a city index by weight.
    pub fn sample_city<R: Rng>(&self, rng: &mut R) -> usize {
        let x: f64 = rng.gen();
        self.cumulative.partition_point(|&c| c < x).min(self.cities.len() - 1)
    }

    /// Samples a point near the given city (Gaussian scatter, clamped to
    /// valid coordinates).
    pub fn sample_near<R: Rng>(&self, rng: &mut R, city_idx: usize) -> Point {
        let city = &self.cities[city_idx];
        sample_around(rng, &city.center, city.sigma_km)
    }

    /// Samples a point from the whole mixture.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Point {
        let c = self.sample_city(rng);
        self.sample_near(rng, c)
    }
}

/// Gaussian scatter of `sigma_km` around `center`.
pub fn sample_around<R: Rng>(rng: &mut R, center: &Point, sigma_km: f64) -> Point {
    // 1 degree latitude ~ 111.32 km; longitude scaled by cos(lat).
    const KM_PER_DEG: f64 = 111.32;
    let normal = Normal::new(0.0, sigma_km).expect("positive sigma");
    let dy_km: f64 = normal.sample(rng);
    let dx_km: f64 = normal.sample(rng);
    let lat = (center.lat() + dy_km / KM_PER_DEG).clamp(-89.9, 89.9);
    let coslat = lat.to_radians().cos().max(0.01);
    let mut lon = center.lon() + dx_km / (KM_PER_DEG * coslat);
    if lon > 180.0 {
        lon -= 360.0;
    } else if lon < -180.0 {
        lon += 360.0;
    }
    Point::new_unchecked(lat, lon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_cluster_near_city_centers() {
        let model = CityModel::default_world();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..500 {
            let p = model.sample(&mut rng);
            let nearest = model
                .cities()
                .iter()
                .map(|c| c.center.euclidean_km(&p))
                .fold(f64::INFINITY, f64::min);
            // Within 6 sigma of some city.
            assert!(nearest < 6.0 * 8.0, "point {p} is {nearest} km from every city");
        }
    }

    #[test]
    fn city_weights_respected() {
        let model = CityModel::default_world();
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = vec![0usize; model.cities().len()];
        for _ in 0..20_000 {
            counts[model.sample_city(&mut rng)] += 1;
        }
        // Toronto (weight 3.0) should be sampled more than Sydney (1.0).
        let toronto = model.cities().iter().position(|c| c.name == "Toronto").unwrap();
        let sydney = model.cities().iter().position(|c| c.name == "Sydney").unwrap();
        assert!(counts[toronto] > counts[sydney] * 2, "{counts:?}");
        assert!(counts.iter().all(|&c| c > 0), "every city sampled: {counts:?}");
    }

    #[test]
    fn deterministic_with_seed() {
        let model = CityModel::default_world();
        let a: Vec<Point> = {
            let mut rng = StdRng::seed_from_u64(1);
            (0..10).map(|_| model.sample(&mut rng)).collect()
        };
        let b: Vec<Point> = {
            let mut rng = StdRng::seed_from_u64(1);
            (0..10).map(|_| model.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn sample_around_respects_sigma() {
        let mut rng = StdRng::seed_from_u64(3);
        let center = Point::new_unchecked(43.7, -79.4);
        let mean_dist: f64 = (0..1000)
            .map(|_| center.euclidean_km(&sample_around(&mut rng, &center, 5.0)))
            .sum::<f64>()
            / 1000.0;
        // Mean distance of a 2D Gaussian with sigma 5 is sigma * sqrt(pi/2)
        // ~ 6.27 km.
        assert!((5.0..8.0).contains(&mean_dist), "mean {mean_dist}");
    }

    #[test]
    #[should_panic(expected = "at least one city")]
    fn empty_model_rejected() {
        let _ = CityModel::new(vec![]);
    }
}
