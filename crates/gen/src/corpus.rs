//! Corpus generation: assembling posts, users, and cascades into a
//! deterministic synthetic data set.

use crate::cascade::{sample_cascade, CascadeConfig};
use crate::keywords::KeywordModel;
use crate::spatial::{sample_around, CityModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Zipf};
use tklus_geo::Point;
use tklus_model::{Corpus, Post, TweetId, UserId};

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Number of *original* posts to generate (cascade responses are
    /// additional).
    pub original_posts: usize,
    /// Number of users.
    pub users: usize,
    /// RNG seed; the full corpus is a pure function of this config.
    pub seed: u64,
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Zipf exponent for keyword sampling.
    pub zipf_exponent: f64,
    /// Words per tweet: uniform in `words_min..=words_max`.
    pub words_min: usize,
    /// Upper bound on words per tweet.
    pub words_max: usize,
    /// Cascade shape.
    pub cascade: CascadeConfig,
    /// Probability a tweet *emphasizes* its topical keyword by repeating
    /// it ("Pizza pizza pizza!") — the source of term frequencies above 1,
    /// which Definition 6 counts under the bag model and which the
    /// Maximum-score prune needs in the data (a queue of tf>=2 scores is
    /// what lets tf=1 candidates be skipped).
    pub p_emphasis: f64,
    /// User home scatter around their city, in km.
    pub user_sigma_km: f64,
}

impl Default for GenConfig {
    fn default() -> Self {
        Self {
            original_posts: 20_000,
            users: 4_000,
            seed: 0x7B1D5,
            vocab_size: 2_000,
            zipf_exponent: 1.0,
            words_min: 4,
            words_max: 10,
            cascade: CascadeConfig::default(),
            p_emphasis: 0.3,
            user_sigma_km: 3.0,
        }
    }
}

/// Generates a corpus from the configuration. Deterministic: equal configs
/// yield equal corpora.
///
/// ```
/// use tklus_gen::{generate_corpus, GenConfig};
///
/// let config = GenConfig { original_posts: 100, users: 30, ..GenConfig::default() };
/// let corpus = generate_corpus(&config);
/// assert!(corpus.len() >= 100); // originals plus cascade responses
/// assert_eq!(corpus.posts(), generate_corpus(&config).posts()); // deterministic
/// ```
pub fn generate_corpus(config: &GenConfig) -> Corpus {
    assert!(config.users > 0 && config.original_posts > 0, "non-empty corpus");
    assert!(config.words_min >= 1 && config.words_min <= config.words_max);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let cities = CityModel::default_world();
    let keywords = KeywordModel::new(config.vocab_size, config.zipf_exponent);

    // Each user gets a home city and a home point; posting activity is
    // Zipf-distributed (a few prolific users, a long quiet tail).
    let homes: Vec<(usize, Point)> = (0..config.users)
        .map(|_| {
            let c = cities.sample_city(&mut rng);
            let home = cities.sample_near(&mut rng, c);
            (c, home)
        })
        .collect();
    let user_zipf = Zipf::new(config.users as u64, 0.45).expect("valid zipf");

    let mut posts: Vec<Post> = Vec::with_capacity(config.original_posts * 2);
    let mut next_id = 1u64;
    let alloc_id = |next_id: &mut u64| {
        let id = TweetId(*next_id);
        *next_id += 1;
        id
    };

    for _ in 0..config.original_posts {
        let uid = UserId(user_zipf.sample(&mut rng) as u64 - 1);
        let (_, home) = homes[uid.0 as usize];
        let location = sample_around(&mut rng, &home, config.user_sigma_km);
        let nwords = rng.gen_range(config.words_min..=config.words_max);
        let mut words = keywords.sample_words(&mut rng, nwords);
        // Emphasis repetition: duplicate one topical (query-pool) word.
        if rng.gen_bool(config.p_emphasis) {
            let topical: Vec<&str> =
                words.iter().copied().filter(|w| keywords.is_query_keyword(w)).collect();
            if !topical.is_empty() {
                let w = topical[rng.gen_range(0..topical.len())];
                for _ in 0..rng.gen_range(1..=2usize) {
                    words.push(w);
                }
            }
        }
        let text = words.join(" ");
        let root_id = alloc_id(&mut next_id);
        let root_user = uid;
        posts.push(Post::original(root_id, root_user, location, text));

        // Sample the response cascade. Responders are random users posting
        // near their own homes; response text is drawn from the same
        // vocabulary (responses rarely repeat the root's keywords).
        let cascade = sample_cascade(&mut rng, &config.cascade);
        let base = posts.len();
        let mut node_ids: Vec<(TweetId, UserId)> = Vec::with_capacity(cascade.len());
        for node in &cascade {
            let (target_id, target_user) = match node.parent {
                None => (root_id, root_user),
                Some(p) => node_ids[p],
            };
            let responder = UserId(rng.gen_range(0..config.users as u64));
            let (_, responder_home) = homes[responder.0 as usize];
            let rloc = sample_around(&mut rng, &responder_home, config.user_sigma_km);
            let rwords = rng.gen_range(2..=5);
            let rtext = keywords.sample_words(&mut rng, rwords).join(" ");
            let rid = alloc_id(&mut next_id);
            let post = if node.is_forward {
                Post::forward(rid, responder, rloc, rtext, target_id, target_user)
            } else {
                Post::reply(rid, responder, rloc, rtext, target_id, target_user)
            };
            node_ids.push((rid, responder));
            posts.push(post);
        }
        debug_assert_eq!(posts.len() - base, cascade.len());
    }

    Corpus::new(posts).expect("generated ids are unique")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tklus_text::TextPipeline;

    fn small() -> GenConfig {
        GenConfig { original_posts: 2_000, users: 400, vocab_size: 300, ..GenConfig::default() }
    }

    #[test]
    fn deterministic() {
        let a = generate_corpus(&small());
        let b = generate_corpus(&small());
        assert_eq!(a.len(), b.len());
        assert_eq!(a.posts()[..50], b.posts()[..50]);
    }

    #[test]
    fn different_seed_different_corpus() {
        let a = generate_corpus(&small());
        let b = generate_corpus(&GenConfig { seed: 99, ..small() });
        assert_ne!(a.posts()[..50], b.posts()[..50]);
    }

    #[test]
    fn has_replies_and_forwards() {
        let c = generate_corpus(&small());
        let replies = c.posts().iter().filter(|p| p.is_reply()).count();
        assert!(replies > 100, "replies: {replies}");
        let forwards = c
            .posts()
            .iter()
            .filter(|p| {
                matches!(p.in_reply_to.map(|r| r.kind), Some(tklus_model::InteractionKind::Forward))
            })
            .count();
        assert!(forwards > 10, "forwards: {forwards}");
        // All reply targets exist in the corpus.
        for p in c.posts() {
            if let Some(rt) = p.in_reply_to {
                let target = c.get(rt.target).expect("reply target exists");
                assert_eq!(target.user, rt.target_user, "ruid matches target's author");
                assert!(rt.target < p.id, "replies come after their targets");
            }
        }
    }

    #[test]
    fn hot_keywords_dominate() {
        let c = generate_corpus(&small());
        let pipeline = TextPipeline::new();
        let mut restaurant = 0usize;
        let mut rare = 0usize;
        for p in c.posts() {
            for t in pipeline.terms(&p.text) {
                if t == "restaur" {
                    restaurant += 1;
                } else if t.starts_with("word0") {
                    rare += 1;
                }
            }
        }
        assert!(restaurant > 200, "restaurant stem count {restaurant}");
        // Each individual rare word is much rarer than the top keyword.
        assert!(restaurant * 4 > rare, "restaurant {restaurant} vs all-rare {rare}");
    }

    #[test]
    fn users_post_near_home() {
        let c = generate_corpus(&small());
        // For users with >= 3 original posts, their posts cluster: mean
        // pairwise distance well under inter-city distances.
        let mut checked = 0;
        for uid in c.users() {
            let locs: Vec<Point> =
                c.posts_of(uid).filter(|p| !p.is_reply()).map(|p| p.location).collect();
            if locs.len() < 3 {
                continue;
            }
            checked += 1;
            let mut sum = 0.0;
            let mut n = 0;
            for i in 0..locs.len() {
                for j in i + 1..locs.len() {
                    sum += locs[i].euclidean_km(&locs[j]);
                    n += 1;
                }
            }
            let mean = sum / n as f64;
            assert!(mean < 50.0, "user {uid} scatter too wide ({mean} km)");
            if checked > 30 {
                break;
            }
        }
        assert!(checked > 5, "not enough multi-post users to check");
    }

    #[test]
    fn ids_monotone_in_generation_order() {
        let c = generate_corpus(&small());
        assert!(c.posts().windows(2).all(|w| w[0].id < w[1].id));
    }
}
