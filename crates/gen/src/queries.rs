//! Query workload generation (Section VI-B1).
//!
//! "We select 30 meaningful keywords including the top-10 frequent ones …
//! a 1-keyword query randomly gets one out of the 30. Queries with 2 and 3
//! keywords are constructed from AOL query logs that contain the single
//! keyword from Table II … Each query is randomly associated with a
//! location that is sampled according to the spatial distribution in our
//! data set. Finally, random combinations of keywords and locations form a
//! 90-query set."
//!
//! Without the AOL logs, multi-keyword queries take a Table II hot keyword
//! as anchor and add qualifiers that *co-occur* with it in the corpus —
//! the same "hot keyword + qualifier" structure the AOL phrases have
//! ("restaurant seafood", "morroccan restaurants houston").

use crate::keywords::{EXTRA_QUERY_KEYWORDS, TABLE2_KEYWORDS};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use tklus_geo::Point;
use tklus_model::Corpus;
use tklus_text::{PorterStemmer, Tokenizer};

/// One generated query (radius and k are attached per experiment).
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// Query location, sampled from the corpus's spatial distribution.
    pub location: Point,
    /// Raw query keywords (1 to 3 words).
    pub keywords: Vec<String>,
}

/// Query-set configuration.
#[derive(Debug, Clone, Copy)]
pub struct QueryConfig {
    /// Queries per keyword-count bucket (30 in the paper → 90 total).
    pub per_bucket: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for QueryConfig {
    fn default() -> Self {
        Self { per_bucket: 30, seed: 0x9E37 }
    }
}

/// Generates the query set: `per_bucket` queries each with 1, 2, and 3
/// keywords. Locations are sampled from the corpus's own post locations
/// (i.e., exactly its spatial distribution).
pub fn generate_queries(corpus: &Corpus, config: &QueryConfig) -> Vec<QuerySpec> {
    assert!(!corpus.is_empty(), "need a corpus to sample locations from");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let cooc = co_occurrence(corpus);
    let pool: Vec<&str> =
        TABLE2_KEYWORDS.iter().chain(EXTRA_QUERY_KEYWORDS.iter()).copied().collect();

    let mut out = Vec::with_capacity(config.per_bucket * 3);
    for nkw in 1..=3usize {
        for _ in 0..config.per_bucket {
            let location = corpus.posts()[rng.gen_range(0..corpus.len())].location;
            let keywords = match nkw {
                1 => vec![pool.choose(&mut rng).expect("pool non-empty").to_string()],
                _ => {
                    // Anchor on a hot keyword that has co-occurring words.
                    let anchor = *TABLE2_KEYWORDS
                        .iter()
                        .filter(|a| cooc.get(**a).is_some_and(|v| v.len() >= nkw - 1))
                        .collect::<Vec<_>>()
                        .choose(&mut rng)
                        .unwrap_or(&&TABLE2_KEYWORDS[0]);
                    let mut kws = vec![anchor.to_string()];
                    if let Some(companions) = cooc.get(anchor) {
                        // Weighted toward the most frequent companions:
                        // sample from the top slice.
                        let top = &companions[..companions.len().min(25)];
                        let mut chosen: Vec<&String> =
                            top.choose_multiple(&mut rng, nkw - 1).collect();
                        chosen.sort();
                        kws.extend(chosen.into_iter().cloned());
                    }
                    kws
                }
            };
            out.push(QuerySpec { location, keywords });
        }
    }
    out
}

/// For each Table II hot keyword: the raw words co-occurring with it in
/// corpus posts, most frequent first. Raw (unstemmed) words are collected
/// so generated queries look like real query text.
fn co_occurrence(corpus: &Corpus) -> HashMap<&'static str, Vec<String>> {
    let tokenizer = Tokenizer::new();
    let stemmer = PorterStemmer::new();
    let anchor_stems: Vec<(usize, String)> =
        TABLE2_KEYWORDS.iter().enumerate().map(|(i, k)| (i, stemmer.stem(k))).collect();
    let mut counters: Vec<HashMap<String, usize>> = vec![HashMap::new(); TABLE2_KEYWORDS.len()];
    for post in corpus.posts() {
        let toks = tokenizer.tokenize(&post.text);
        if toks.is_empty() {
            continue;
        }
        let stems: Vec<String> = toks.iter().map(|t| stemmer.stem(t)).collect();
        for (ai, astem) in &anchor_stems {
            if stems.iter().any(|s| s == astem) {
                for (tok, stem) in toks.iter().zip(&stems) {
                    if stem != astem {
                        *counters[*ai].entry(tok.clone()).or_default() += 1;
                    }
                }
            }
        }
    }
    anchor_stems
        .into_iter()
        .map(|(ai, _)| {
            let mut words: Vec<(String, usize)> = counters[ai].drain().collect();
            words.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            (TABLE2_KEYWORDS[ai], words.into_iter().map(|(w, _)| w).collect())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{generate_corpus, GenConfig};

    fn corpus() -> Corpus {
        generate_corpus(&GenConfig {
            original_posts: 3_000,
            users: 500,
            vocab_size: 300,
            ..GenConfig::default()
        })
    }

    #[test]
    fn generates_90_queries_in_buckets() {
        let c = corpus();
        let qs = generate_queries(&c, &QueryConfig::default());
        assert_eq!(qs.len(), 90);
        for (i, q) in qs.iter().enumerate() {
            let expect = i / 30 + 1;
            assert_eq!(q.keywords.len(), expect, "query {i}: {:?}", q.keywords);
        }
    }

    #[test]
    fn single_keyword_queries_use_the_30_pool() {
        let c = corpus();
        let qs = generate_queries(&c, &QueryConfig::default());
        let pool: Vec<&str> =
            TABLE2_KEYWORDS.iter().chain(EXTRA_QUERY_KEYWORDS.iter()).copied().collect();
        for q in &qs[..30] {
            assert!(pool.contains(&q.keywords[0].as_str()), "{:?}", q.keywords);
        }
    }

    #[test]
    fn multi_keyword_queries_anchor_on_hot_keywords() {
        let c = corpus();
        let qs = generate_queries(&c, &QueryConfig::default());
        for q in &qs[30..] {
            assert!(TABLE2_KEYWORDS.contains(&q.keywords[0].as_str()), "{:?}", q.keywords);
            // Qualifiers are distinct from the anchor.
            for kw in &q.keywords[1..] {
                assert_ne!(kw, &q.keywords[0]);
            }
        }
    }

    #[test]
    fn queries_are_deterministic() {
        let c = corpus();
        let a = generate_queries(&c, &QueryConfig::default());
        let b = generate_queries(&c, &QueryConfig::default());
        assert_eq!(a, b);
        let other = generate_queries(&c, &QueryConfig { seed: 123, per_bucket: 30 });
        assert_ne!(a, other);
    }

    #[test]
    fn locations_come_from_corpus_distribution() {
        let c = corpus();
        let qs = generate_queries(&c, &QueryConfig::default());
        // Every query location is an actual post location.
        for q in &qs {
            assert!(c.posts().iter().any(|p| p.location == q.location));
        }
    }

    #[test]
    fn qualifiers_cooccur_with_anchor_in_corpus() {
        let c = corpus();
        let qs = generate_queries(&c, &QueryConfig::default());
        let tokenizer = Tokenizer::new();
        let stemmer = PorterStemmer::new();
        for q in &qs[30..40] {
            let anchor_stem = stemmer.stem(&q.keywords[0]);
            for qual in &q.keywords[1..] {
                let qual_stem = stemmer.stem(qual);
                let found = c.posts().iter().any(|p| {
                    let stems: Vec<String> =
                        tokenizer.tokenize(&p.text).iter().map(|t| stemmer.stem(t)).collect();
                    stems.contains(&anchor_stem) && stems.contains(&qual_stem)
                });
                assert!(found, "({}, {qual}) never co-occur", q.keywords[0]);
            }
        }
    }
}
