//! Synthetic workload generation.
//!
//! The paper evaluates on 514 million real geo-tagged tweets crawled from
//! Twitter (Sep 2012 – Feb 2013) plus AOL query logs — neither of which is
//! available here. This crate generates a deterministic synthetic
//! equivalent whose *statistical shape* matches what the algorithms
//! actually depend on:
//!
//! * **spatial clustering** ([`spatial`]) — tweets concentrate in city
//!   clusters (Gaussian mixture), like real geo-tagged data;
//! * **keyword skew** ([`keywords`]) — term frequencies follow a Zipf law
//!   with the paper's Table II hot keywords seeded at the top ranks;
//! * **cascades** ([`cascade`]) — reply/forward trees with heavy-tailed
//!   branching, so thread popularity varies over orders of magnitude;
//! * **user locality** — each user is anchored to a home city and posts
//!   near it, which is what makes "local user" a meaningful notion;
//! * **query workload** ([`queries`]) — the Section VI-B1 recipe: 30
//!   meaningful keywords including the Table II top-10; 1-keyword queries
//!   drawn uniformly from them; 2–3-keyword queries formed from a hot
//!   anchor plus corpus-co-occurring qualifiers (standing in for the AOL
//!   log phrases); query locations sampled from the corpus's spatial
//!   distribution.
//!
//! Everything is seeded: the same [`GenConfig`] always produces the same
//! corpus and query set, byte for byte.

pub mod cascade;
pub mod corpus;
pub mod etl;
pub mod io;
pub mod keywords;
pub mod queries;
pub mod spatial;

pub use corpus::{generate_corpus, GenConfig};
pub use etl::{etl_json, EtlError, EtlReport};
pub use io::{load_tsv, save_tsv, CorpusIoError};
pub use keywords::{KeywordModel, TABLE2_KEYWORDS};
pub use queries::{generate_queries, QueryConfig, QuerySpec};
pub use spatial::{City, CityModel};
