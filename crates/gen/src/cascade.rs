//! Reply/forward cascade generation.
//!
//! Real reply trees are heavy-tailed: most tweets get no response, a few
//! spawn deep conversations. We model per-node branching as: with
//! probability `p_respond` the node gets `1 + Geometric(p_more)` children,
//! and response probability decays with depth — yielding thread
//! popularities spanning orders of magnitude, which is what gives the
//! Maximum-score ranking and its pruning bound something to work with.

use rand::Rng;

/// Cascade shape parameters.
#[derive(Debug, Clone, Copy)]
pub struct CascadeConfig {
    /// Probability a root tweet receives any response.
    pub p_respond: f64,
    /// Geometric "one more sibling" parameter (closer to 1 = wider).
    pub p_more: f64,
    /// Per-level decay of the response probability.
    pub depth_decay: f64,
    /// Hard cap on depth (levels below the root).
    pub max_depth: usize,
    /// Fraction of responses that are forwards rather than replies.
    pub forward_fraction: f64,
    /// Probability a root goes *viral*: it always gets a direct-response
    /// burst of `viral_children` first-level responses (deeper levels
    /// follow the normal parameters). This is the heavy tail that makes
    /// thread popularity span orders of magnitude; the burst size range is
    /// kept tight so the per-keyword popularity bound (Section V-B) sits
    /// close to the scores the top-k actually achieves — which is what
    /// gives the upper-bound prune its bite, as in the paper's data.
    pub p_viral: f64,
    /// Inclusive range of first-level responses for a viral root.
    pub viral_children: (usize, usize),
}

impl Default for CascadeConfig {
    fn default() -> Self {
        Self {
            p_respond: 0.25,
            p_more: 0.55,
            depth_decay: 0.55,
            max_depth: 5,
            forward_fraction: 0.3,
            p_viral: 0.025,
            viral_children: (48, 64),
        }
    }
}

/// One response node in a sampled cascade.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CascadeNode {
    /// Index of the parent within the cascade; `None` = responds to the
    /// root tweet.
    pub parent: Option<usize>,
    /// Level below the root (1 = direct response).
    pub level: usize,
    /// True if this response is a forward (retweet), else a reply.
    pub is_forward: bool,
}

/// Samples a cascade's response nodes in breadth-first order.
pub fn sample_cascade<R: Rng>(rng: &mut R, config: &CascadeConfig) -> Vec<CascadeNode> {
    let viral = rng.gen_bool(config.p_viral.clamp(0.0, 1.0));
    let mut nodes: Vec<CascadeNode> = Vec::new();
    // Queue of (node index or None for root, level).
    let mut frontier: Vec<(Option<usize>, usize)> = vec![(None, 0)];
    while let Some((parent, level)) = frontier.pop() {
        if level >= config.max_depth {
            continue;
        }
        if viral && level == 0 {
            let (lo, hi) = config.viral_children;
            let children = rng.gen_range(lo..=hi);
            for _ in 0..children {
                let idx = nodes.len();
                nodes.push(CascadeNode {
                    parent,
                    level: 1,
                    is_forward: rng.gen_bool(config.forward_fraction),
                });
                frontier.push((Some(idx), 1));
            }
            continue;
        }
        let p = config.p_respond * config.depth_decay.powi(level as i32);
        if !rng.gen_bool(p.clamp(0.0, 1.0)) {
            continue;
        }
        // 1 + Geometric(p_more) children.
        let mut children = 1;
        while rng.gen_bool(config.p_more) && children < 64 {
            children += 1;
        }
        for _ in 0..children {
            let idx = nodes.len();
            nodes.push(CascadeNode {
                parent,
                level: level + 1,
                is_forward: rng.gen_bool(config.forward_fraction),
            });
            frontier.push((Some(idx), level + 1));
        }
    }
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn most_cascades_are_empty_some_are_large() {
        let mut rng = StdRng::seed_from_u64(5);
        let config = CascadeConfig::default();
        let sizes: Vec<usize> =
            (0..5000).map(|_| sample_cascade(&mut rng, &config).len()).collect();
        let empty = sizes.iter().filter(|&&s| s == 0).count();
        let large = sizes.iter().filter(|&&s| s >= 8).count();
        assert!(empty > 2500, "most tweets get no response ({empty})");
        assert!(large > 20, "but some cascades are large ({large})");
    }

    #[test]
    fn viral_cascades_form_a_heavy_tail() {
        let mut rng = StdRng::seed_from_u64(21);
        let config = CascadeConfig::default();
        let sizes: Vec<usize> =
            (0..10_000).map(|_| sample_cascade(&mut rng, &config).len()).collect();
        let max = *sizes.iter().max().unwrap();
        let median = {
            let mut s = sizes.clone();
            s.sort_unstable();
            s[s.len() / 2]
        };
        let viral = sizes.iter().filter(|&&s| s >= 48).count();
        assert!(max >= 48, "some cascades are viral (max {max})");
        assert_eq!(median, 0, "the typical cascade is empty");
        // Viral rate near the configured 2.5%, and viral bursts are tight:
        // the bound stays close to what top threads actually score.
        let rate = viral as f64 / sizes.len() as f64;
        assert!((0.015..0.04).contains(&rate), "viral rate {rate}");
        assert!(max <= 64 * 3, "viral size bounded (max {max})");
    }

    #[test]
    fn parents_precede_children_and_levels_consistent() {
        let mut rng = StdRng::seed_from_u64(9);
        let config = CascadeConfig {
            p_respond: 0.9,
            p_more: 0.7,
            depth_decay: 0.8,
            max_depth: 4,
            forward_fraction: 0.5,
            ..CascadeConfig::default()
        };
        for _ in 0..200 {
            let nodes = sample_cascade(&mut rng, &config);
            for (i, n) in nodes.iter().enumerate() {
                match n.parent {
                    None => assert_eq!(n.level, 1),
                    Some(p) => {
                        assert!(p < i, "parent allocated before child");
                        assert_eq!(n.level, nodes[p].level + 1);
                    }
                }
                assert!(n.level <= config.max_depth);
            }
        }
    }

    #[test]
    fn depth_cap_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        let config = CascadeConfig {
            p_respond: 1.0,
            p_more: 0.5,
            depth_decay: 1.0,
            max_depth: 2,
            forward_fraction: 0.0,
            ..CascadeConfig::default()
        };
        for _ in 0..100 {
            let nodes = sample_cascade(&mut rng, &config);
            assert!(nodes.iter().all(|n| n.level <= 2));
        }
    }

    #[test]
    fn forwards_appear_at_configured_fraction() {
        let mut rng = StdRng::seed_from_u64(13);
        let config = CascadeConfig {
            p_respond: 1.0,
            p_more: 0.8,
            depth_decay: 0.9,
            max_depth: 3,
            forward_fraction: 0.4,
            p_viral: 0.0,
            ..CascadeConfig::default()
        };
        let mut forwards = 0usize;
        let mut total = 0usize;
        for _ in 0..500 {
            for n in sample_cascade(&mut rng, &config) {
                total += 1;
                forwards += n.is_forward as usize;
            }
        }
        let frac = forwards as f64 / total as f64;
        assert!((0.3..0.5).contains(&frac), "forward fraction {frac}");
    }
}
