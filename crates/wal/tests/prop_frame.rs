//! Property suite for the WAL frame and record codecs (DESIGN.md §15,
//! same discipline as PR 6's block-postings suite).
//!
//! Properties, all load-bearing for recovery:
//!
//! 1. **Round-trip** — `encode ∘ decode` is the identity on any record
//!    (sequence, ids, location *bits*, reply edge, arbitrary Unicode
//!    text), through the frame layer and back.
//! 2. **Truncation at every byte offset** is classified `Torn` (or
//!    `CleanEnd` at exact frame boundaries), never `Bad`, never a panic —
//!    the torn-tail signature recovery's truncate-at-tail depends on.
//! 3. **Bit flips** anywhere in a frame are detected: the decode step
//!    never yields a frame whose payload differs from what was encoded
//!    (CRC collisions aside, which a single flipped bit cannot produce).
//! 4. **Garbage prefixes and arbitrary bytes never panic** — every
//!    outcome is a typed [`FrameStep`], and whatever *does* decode as a
//!    frame feeds the record decoder, which is equally panic-free.

#![allow(clippy::unwrap_used)] // test code: panics are the failure report

use proptest::prelude::*;
use tklus_geo::Point;
use tklus_model::{InteractionKind, Post, ReplyTo, TweetId, UserId};
use tklus_wal::{decode_record, decode_step, encode_frame, encode_record, FrameStep, WalRecord};

fn arb_point() -> impl Strategy<Value = Point> {
    (-85.0f64..85.0, -179.9f64..179.9).prop_map(|(lat, lon)| Point::new_unchecked(lat, lon))
}

fn arb_record() -> impl Strategy<Value = WalRecord> {
    (
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        arb_point(),
        ".{0,80}",
        proptest::option::of((any::<u64>(), any::<u64>(), any::<bool>())),
    )
        .prop_map(|(seq, id, user, location, text, reply)| WalRecord {
            seq,
            post: Post {
                id: TweetId(id),
                user: UserId(user),
                location,
                text,
                in_reply_to: reply.map(|(target, target_user, fwd)| ReplyTo {
                    target: TweetId(target),
                    target_user: UserId(target_user),
                    kind: if fwd { InteractionKind::Forward } else { InteractionKind::Reply },
                }),
            },
        })
}

/// Frames a batch of records into one buffer, as a segment body would.
fn frame_all(records: &[WalRecord]) -> Vec<u8> {
    let mut buf = Vec::new();
    for rec in records {
        encode_frame(&encode_record(rec), &mut buf);
    }
    buf
}

/// Walks every whole frame in `buf`, decoding payloads as records.
fn scan(buf: &[u8]) -> (Vec<WalRecord>, FrameStep) {
    let mut out = Vec::new();
    let mut offset = 0;
    loop {
        match decode_step(buf, offset) {
            FrameStep::Frame { payload_start, len, next } => {
                if let Ok(rec) = decode_record(&buf[payload_start..payload_start + len]) {
                    out.push(rec);
                }
                offset = next;
            }
            step => return (out, step),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Round-trip through record + frame layers is the identity,
    /// including location f64 bits and reply edges.
    #[test]
    fn roundtrip_is_identity(records in proptest::collection::vec(arb_record(), 1..8)) {
        let buf = frame_all(&records);
        let (back, end) = scan(&buf);
        prop_assert_eq!(end, FrameStep::CleanEnd);
        prop_assert_eq!(&back, &records);
        for (a, b) in back.iter().zip(records.iter()) {
            prop_assert_eq!(
                a.post.location.lat().to_bits(),
                b.post.location.lat().to_bits()
            );
            prop_assert_eq!(
                a.post.location.lon().to_bits(),
                b.post.location.lon().to_bits()
            );
        }
    }

    /// Truncation at EVERY byte offset is Torn or CleanEnd — never Bad,
    /// never a decoded half-record. Records before the cut all survive.
    #[test]
    fn truncation_at_every_offset_is_torn(records in proptest::collection::vec(arb_record(), 1..5)) {
        let buf = frame_all(&records);
        for cut in 0..buf.len() {
            let (survivors, step) = scan(&buf[..cut]);
            match step {
                FrameStep::Torn { .. } | FrameStep::CleanEnd => {}
                bad => prop_assert!(false, "cut {cut}: classified {bad:?}"),
            }
            prop_assert!(survivors.len() <= records.len());
            prop_assert_eq!(&records[..survivors.len()], &survivors[..], "cut {}", cut);
        }
    }

    /// A single flipped bit anywhere in a one-frame buffer can never
    /// surface a record different from the one encoded: the step is Bad
    /// (header/payload corruption detected), Torn (length field now
    /// promises more bytes), or — only when the flip is in the length
    /// field shrinking the frame — a record-decode failure. A clean
    /// decode of a *different* record is the one forbidden outcome.
    #[test]
    fn bit_flips_never_forge_a_record(rec in arb_record(), at_bit in 0usize..256) {
        let mut buf = Vec::new();
        encode_frame(&encode_record(&rec), &mut buf);
        let at_bit = at_bit % (buf.len() * 8);
        buf[at_bit / 8] ^= 1 << (at_bit % 8);
        match decode_step(&buf, 0) {
            FrameStep::Frame { payload_start, len, next: _ } => {
                // Frame validated ⇒ the flip was in the length prefix and
                // the CRC happens to cover the shorter payload — impossible
                // for CRC32 with a 1-bit flip unless the payload bytes are
                // themselves a valid shorter frame; the record layer must
                // then reject the truncated payload.
                if let Ok(forged) = decode_record(&buf[payload_start..payload_start + len]) {
                    prop_assert_eq!(forged, rec.clone());
                }
            }
            FrameStep::Torn { .. } | FrameStep::Bad { .. } => {}
            FrameStep::CleanEnd => prop_assert!(false, "non-empty buffer classified CleanEnd"),
        }
    }

    /// Garbage prefixes: a valid frame preceded by arbitrary junk decodes
    /// as *something* typed at every offset — no panic, no infinite loop —
    /// and scanning from the true frame start still yields the record.
    #[test]
    fn garbage_prefix_never_panics(
        junk in proptest::collection::vec(any::<u8>(), 1..64),
        rec in arb_record(),
    ) {
        let mut buf = junk.clone();
        encode_frame(&encode_record(&rec), &mut buf);
        for offset in 0..buf.len() {
            let _ = decode_step(&buf, offset); // must simply not panic
        }
        let (back, _) = scan(&buf[junk.len()..]);
        prop_assert_eq!(back, vec![rec]);
    }

    /// Fully arbitrary bytes: the frame scanner terminates with a typed
    /// step and the record decoder never panics on whatever payloads
    /// emerge.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let (_, step) = scan(&bytes);
        if let FrameStep::Frame { .. } = step {
            prop_assert!(false, "scan only returns terminal steps");
        }
        let _ = decode_record(&bytes);
    }
}
