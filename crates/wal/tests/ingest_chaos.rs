//! Concurrent ingest/query chaos storm (ISSUE satellite, DESIGN.md §15).
//!
//! Eight threads hammer one [`IngestStore`]: four writers stream whole
//! reply threads (grouped by root so every reply lands after its target,
//! as a timestamp-ordered stream guarantees), four readers issue top-k
//! queries the whole time. The engine's metadata page store is a seeded
//! [`FaultPager`], so both the query path and the live-apply path see
//! injected storage faults mid-storm.
//!
//! Invariants:
//!
//! * **No panics, typed errors only** — every operation returns `Ok` or a
//!   typed [`WalError`]; a panic in any thread fails the test.
//! * **No half-applied tweets** — ingest holds the store's write latch
//!   across "WAL append + live apply", so a reader never observes a post
//!   whose metadata landed but whose postings did not. After the storm
//!   (faults disarmed) every query is bitwise-equal to a from-scratch
//!   engine over the acked set, which could not hold if any admitted
//!   record were half-applied.
//! * **Poisoned fails fast** — when an unmasked fault storm defeats the
//!   rebuild fallback, every subsequent operation reports
//!   [`WalError::Poisoned`] instead of computing over a broken snapshot,
//!   and a fault-free reopen still recovers every acked ingest from the
//!   WAL (durability survives in-memory poisoning).
//!
//! `TKLUS_CHAOS_SEED` narrows the seed list to one (the CI matrix knob).

#![allow(clippy::unwrap_used)] // test code: panics are the failure report

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use tklus_core::{BoundsMode, EngineConfig, MetadataStoreFactory, Ranking, TklusEngine};
use tklus_gen::{generate_corpus, generate_queries, GenConfig, QueryConfig};
use tklus_model::{Corpus, Post, Semantics, TklusQuery, TweetId};
use tklus_storage::{
    FaultConfig, FaultHandle, FaultPager, MemPager, PageStore, RetryPager, RetryPolicy,
};
use tklus_wal::{IngestStore, SimFs, StoreConfig, WalError, WalFs};

const WRITERS: usize = 4;
const READERS: usize = 4;

fn chaos_seeds() -> Vec<u64> {
    match std::env::var("TKLUS_CHAOS_SEED") {
        Ok(s) => vec![s.parse().expect("TKLUS_CHAOS_SEED must be a u64")],
        Err(_) => vec![1, 2, 3],
    }
}

fn faulty_store(
    cfg: FaultConfig,
    handle: Arc<FaultHandle>,
    retry: Option<RetryPolicy>,
) -> MetadataStoreFactory {
    Arc::new(move |stats| {
        let faulty = FaultPager::with_handle(MemPager::with_stats(stats), cfg, Arc::clone(&handle));
        match retry {
            Some(policy) => Box::new(RetryPager::new(faulty, policy)) as Box<dyn PageStore>,
            None => Box::new(faulty),
        }
    })
}

fn engine_config(faults: Option<MetadataStoreFactory>) -> EngineConfig {
    EngineConfig {
        cache_pages: 0,
        parallelism: 1,
        metadata_store: faults,
        ..EngineConfig::default()
    }
}

fn storm_posts(seed: u64) -> Vec<Post> {
    generate_corpus(&GenConfig {
        original_posts: 120,
        users: 30,
        vocab_size: 150,
        seed,
        ..GenConfig::default()
    })
    .posts()
    .to_vec()
}

fn storm_queries(posts: &[Post]) -> Vec<(TklusQuery, Ranking)> {
    let corpus = Corpus::new(posts.to_vec()).unwrap();
    generate_queries(&corpus, &QueryConfig { per_bucket: 2, seed: 0x5708 })
        .into_iter()
        .enumerate()
        .take(6)
        .map(|(i, spec)| {
            let semantics = if i % 2 == 0 { Semantics::Or } else { Semantics::And };
            let ranking =
                if i % 2 == 0 { Ranking::Sum } else { Ranking::Max(BoundsMode::HotKeywords) };
            let q = TklusQuery::new(spec.location, 25.0, spec.keywords, 5, semantics).unwrap();
            (q, ranking)
        })
        .collect()
}

/// Splits `posts` into [`WRITERS`] streams, whole reply threads per
/// stream, each stream id-ordered — so every writer delivers targets
/// before replies, exactly like a timestamp-ordered shard of the firehose.
fn writer_streams(posts: &[Post]) -> Vec<Vec<Post>> {
    fn root_of<'a>(by_id: &HashMap<TweetId, &'a Post>, mut p: &'a Post) -> TweetId {
        while let Some(r) = p.in_reply_to {
            match by_id.get(&r.target) {
                Some(parent) => p = parent,
                None => break,
            }
        }
        p.id
    }
    let by_id: HashMap<TweetId, &Post> = posts.iter().map(|p| (p.id, p)).collect();
    let mut roots: Vec<TweetId> = Vec::new();
    let mut streams: Vec<Vec<Post>> = vec![Vec::new(); WRITERS];
    for post in posts {
        let root = root_of(&by_id, post);
        let slot = match roots.iter().position(|r| *r == root) {
            Some(i) => i,
            None => {
                roots.push(root);
                roots.len() - 1
            }
        };
        streams[slot % WRITERS].push(post.clone());
    }
    streams
}

struct StormOutcome {
    acked: Vec<TweetId>,
    reader_oks: usize,
    reader_typed_errors: usize,
    saw_poisoned: bool,
}

/// Runs the 8-thread storm. Writer errors other than `Poisoned` panic the
/// writer thread (readers additionally tolerate `Engine` faults), and any
/// panic propagates out of the join and fails the test.
fn run_storm(
    store: &Arc<IngestStore>,
    posts: &[Post],
    qs: &[(TklusQuery, Ranking)],
) -> StormOutcome {
    let streams = writer_streams(posts);
    let done = Arc::new(AtomicBool::new(false));
    let oks = Arc::new(AtomicUsize::new(0));
    let typed = Arc::new(AtomicUsize::new(0));
    let poisoned_seen = Arc::new(AtomicBool::new(false));

    let mut acked = Vec::new();
    std::thread::scope(|scope| {
        let mut writer_handles = Vec::new();
        for stream in streams {
            let store = Arc::clone(store);
            let poisoned_seen = Arc::clone(&poisoned_seen);
            writer_handles.push(scope.spawn(move || {
                let mut mine = Vec::new();
                for post in stream {
                    let id = post.id;
                    match store.ingest(post) {
                        Ok(_) => mine.push(id),
                        Err(WalError::Poisoned) => {
                            poisoned_seen.store(true, Ordering::SeqCst);
                            // Fail-fast contract: once poisoned, always
                            // poisoned (until a reopen).
                            assert!(matches!(
                                store.try_query(
                                    &TklusQuery::new(
                                        tklus_geo::Point::new(0.0, 0.0).unwrap(),
                                        10.0,
                                        vec!["storm".into()],
                                        3,
                                        Semantics::Or,
                                    )
                                    .unwrap(),
                                    Ranking::Sum,
                                ),
                                Err(WalError::Poisoned)
                            ));
                        }
                        Err(other) => panic!("writer: unexpected ingest error: {other}"),
                    }
                }
                mine
            }));
        }
        for _ in 0..READERS {
            let store = Arc::clone(store);
            let done = Arc::clone(&done);
            let oks = Arc::clone(&oks);
            let typed = Arc::clone(&typed);
            scope.spawn(move || {
                while !done.load(Ordering::Acquire) {
                    for (q, ranking) in qs {
                        match store.try_query(q, *ranking) {
                            Ok(users) => {
                                for u in &users {
                                    assert!(
                                        u.score.is_finite() && u.score > 0.0,
                                        "reader observed a nonsense score {}",
                                        u.score
                                    );
                                }
                                oks.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(WalError::Engine(_)) | Err(WalError::Poisoned) => {
                                typed.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(other) => panic!("reader: untyped failure: {other}"),
                        }
                    }
                }
            });
        }
        for handle in writer_handles {
            acked.extend(handle.join().expect("writer thread panicked"));
        }
        done.store(true, Ordering::Release);
    });

    StormOutcome {
        acked,
        reader_oks: oks.load(Ordering::Relaxed),
        reader_typed_errors: typed.load(Ordering::Relaxed),
        saw_poisoned: poisoned_seen.load(Ordering::SeqCst),
    }
}

/// Retry-masked faults: the storm must ack every post, never poison, and
/// once the dust settles every query is bitwise the from-scratch answer.
#[test]
fn eight_thread_storm_with_masked_faults_converges_to_oracle() {
    for seed in chaos_seeds() {
        let posts = storm_posts(seed);
        let qs = storm_queries(&posts);

        let handle = FaultHandle::new();
        let cfg = FaultConfig {
            seed,
            transient_read_ppm: 8_000,
            transient_write_ppm: 8_000,
            ..FaultConfig::default()
        };
        // max_attempts 8 puts an unmasked streak at ~1e-17 per op: the
        // storm is fault-soaked yet every operation must still succeed.
        let retry = RetryPolicy { max_attempts: 8, base_backoff: std::time::Duration::ZERO };
        let factory = faulty_store(cfg, Arc::clone(&handle), Some(retry));

        let (fs, _) = SimFs::new(seed ^ 0x5708);
        let fs: Arc<dyn WalFs> = fs as Arc<dyn WalFs>;
        let config = StoreConfig { engine: engine_config(Some(factory)), ..StoreConfig::default() };
        let (store, _) = IngestStore::open(fs, config).unwrap();
        let store = Arc::new(store);

        handle.arm(true);
        let outcome = run_storm(&store, &posts, &qs);
        handle.arm(false);

        assert!(
            !outcome.saw_poisoned && !store.is_poisoned(),
            "seed {seed}: masked storm poisoned"
        );
        assert_eq!(outcome.acked.len(), posts.len(), "seed {seed}: masked storm dropped acks");
        assert!(outcome.reader_oks > 0, "seed {seed}: readers never got a result — vacuous");
        assert!(
            handle.transient_injected() > 0,
            "seed {seed}: no fault ever fired — the storm was vacuous"
        );

        // Oracle: bitwise equality with a from-scratch build, plus the
        // bound-soundness audit over the whole acked set.
        let corpus = Corpus::new(posts.clone()).unwrap();
        let (reference, _) = TklusEngine::try_build(&corpus, &engine_config(None)).unwrap();
        for (q, ranking) in &qs {
            let got = store.try_query(q, *ranking).unwrap();
            let want = reference.try_query(q, *ranking).unwrap().users;
            assert_eq!(got, want, "seed {seed}: post-storm query diverged from oracle");
        }
        let audit = store.check_bounds_soundness().unwrap();
        assert!(audit.violations.is_empty(), "seed {seed}: bounds unsound after storm");
    }
}

/// Unmasked faults: operations fail typed (possibly poisoning the store),
/// never panic and never lose an acked ingest — a fault-free reopen
/// recovers every acked post from the WAL and answers match a
/// from-scratch engine over the recovered set.
#[test]
fn unmasked_fault_storm_fails_typed_and_loses_nothing_acked() {
    for seed in chaos_seeds() {
        let posts = storm_posts(seed);
        let qs = storm_queries(&posts);

        let handle = FaultHandle::new();
        let cfg = FaultConfig {
            seed,
            transient_read_ppm: 400,
            transient_write_ppm: 400,
            ..FaultConfig::default()
        };
        let factory = faulty_store(cfg, Arc::clone(&handle), None);

        let (fs, _) = SimFs::new(seed ^ 0xBAD);
        let walfs: Arc<dyn WalFs> = Arc::clone(&fs) as Arc<dyn WalFs>;
        let config = StoreConfig { engine: engine_config(Some(factory)), ..StoreConfig::default() };
        let (store, _) = IngestStore::open(Arc::clone(&walfs), config).unwrap();
        let store = Arc::new(store);

        handle.arm(true);
        let outcome = run_storm(&store, &posts, &qs);
        handle.arm(false);

        assert!(
            handle.transient_injected() > 0,
            "seed {seed}: no fault ever fired — the storm was vacuous"
        );
        assert!(
            outcome.reader_oks + outcome.reader_typed_errors > 0,
            "seed {seed}: readers never ran"
        );
        if store.is_poisoned() {
            // Fail-fast: a poisoned store refuses everything, including
            // compaction (which must not seal a broken snapshot).
            assert!(outcome.saw_poisoned, "seed {seed}: poisoned without any writer seeing it");
            assert!(matches!(store.compact(), Err(WalError::Poisoned)));
        }
        drop(store);

        // Durability does not depend on the in-memory state: reopen
        // fault-free and every acked ingest must be there, with oracle
        // answers over exactly the recovered set.
        let config = StoreConfig { engine: engine_config(None), ..StoreConfig::default() };
        let (store, _) = IngestStore::open(walfs, config).unwrap();
        for id in &outcome.acked {
            assert!(store.contains_post(*id), "seed {seed}: acked tweet {} lost", id.0);
        }
        let recovered = store.posts();
        let corpus = Corpus::new(recovered).unwrap();
        let (reference, _) = TklusEngine::try_build(&corpus, &engine_config(None)).unwrap();
        for (q, ranking) in &qs {
            let got = store.try_query(q, *ranking).unwrap();
            let want = reference.try_query(q, *ranking).unwrap().users;
            assert_eq!(got, want, "seed {seed}: post-reopen query diverged from oracle");
        }
    }
}
