//! Off-latch compaction race-regression suite (ISSUE satellite + tentpole
//! acceptance).
//!
//! The incremental compactor snapshots under a read lock, builds the
//! replacement partitions with **no latch held**, then swaps under the
//! write latch behind a seq fence. These tests attack exactly that
//! window:
//!
//! 1. **Answerability** — ingests landing while the build is parked
//!    mid-partition-write must be queryable immediately, survive the
//!    swap live in the memtable (fence: no loss, no double count), and
//!    be absorbed by the next round.
//! 2. **Crash sweep over the swap schedule** — with concurrent ingests
//!    recorded, kill the filesystem at every op from the first gen-2
//!    partition write through rename, rotate, and trim; after reboot the
//!    acked set must be fully recovered and answers bitwise-identical to
//!    a from-scratch engine over the recovered posts.
//! 3. **Proportional I/O** — a compaction whose live delta touches one
//!    geohash partition must not pay filesystem ops for the other
//!    partitions it carries forward by name (the incremental strategy's
//!    whole point, measured in SimFs op counts against full-latch).
//!
//! The gate is a [`WalFs`] wrapper that parks the *first* append to a
//! chosen generation's seal files until the test releases it — a
//! deterministic "slow build" without timing assumptions.

#![allow(clippy::unwrap_used)] // test code: panics are the failure report

use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;
use tklus_core::{BoundsMode, EngineConfig, Ranking, TklusEngine};
use tklus_geo::Point;
use tklus_model::{Corpus, Post, Semantics, TklusQuery, TweetId, UserId};
use tklus_wal::{
    parse_seal_name, CompactionStrategy, FsyncPolicy, IngestStore, SimFs, StoreConfig, WalConfig,
    WalError, WalFs,
};

fn chaos_seeds() -> Vec<u64> {
    match std::env::var("TKLUS_CHAOS_SEED") {
        Ok(s) => vec![s.parse().expect("TKLUS_CHAOS_SEED must be a u64")],
        Err(_) => vec![1, 2, 3],
    }
}

fn engine_config() -> EngineConfig {
    EngineConfig { cache_pages: 0, parallelism: 1, ..EngineConfig::default() }
}

fn store_config() -> StoreConfig {
    StoreConfig {
        engine: engine_config(),
        // Tiny segments force rotations mid-workload so the fenced trim
        // has real segment boundaries to reason about.
        wal: WalConfig { segment_bytes: 256, fsync: FsyncPolicy::Always },
        ..StoreConfig::default()
    }
}

fn post(id: u64, user: u64, lat: f64, lon: f64, text: &str) -> Post {
    Post::original(TweetId(id), UserId(user), Point::new_unchecked(lat, lon), text)
}

/// Geohash partition 'd' (eastern North America).
fn toronto(id: u64) -> Post {
    post(id, id % 4 + 1, 43.70 + id as f64 * 1e-3, -79.42, "great hotel downtown")
}

/// Geohash partition 'r' (eastern Australia).
fn sydney(id: u64) -> Post {
    post(id, id % 3 + 10, -33.87 + id as f64 * 1e-3, 151.21, "beach hotel sunrise")
}

fn queries() -> Vec<(TklusQuery, Ranking)> {
    vec![
        (
            TklusQuery::new(
                Point::new_unchecked(43.70, -79.42),
                25.0,
                vec!["hotel".into()],
                5,
                Semantics::Or,
            )
            .unwrap(),
            Ranking::Sum,
        ),
        (
            TklusQuery::new(
                Point::new_unchecked(-33.87, 151.21),
                25.0,
                vec!["hotel".into(), "beach".into()],
                5,
                Semantics::And,
            )
            .unwrap(),
            Ranking::Max(BoundsMode::HotKeywords),
        ),
    ]
}

/// Answers must be bitwise-identical to a from-scratch monolithic engine
/// built over exactly `posts` — the suite's fidelity oracle.
fn assert_answers_match(store: &IngestStore, posts: &[Post], ctx: &str) {
    let corpus = Corpus::new(posts.to_vec()).unwrap();
    let (reference, _) = TklusEngine::try_build(&corpus, &engine_config()).unwrap();
    for (q, ranking) in queries() {
        let got = store.try_query(&q, ranking).unwrap();
        let want = reference.try_query(&q, ranking).unwrap().users;
        assert_eq!(got, want, "{ctx}: answers diverged from reference engine");
    }
}

// ---------------------------------------------------------------------
// GateFs: park the build at a chosen partition write
// ---------------------------------------------------------------------

/// [`WalFs`] wrapper that blocks the first append whose file name starts
/// with `prefix` (e.g. `"seal-00000002"` — the generation-2 partition
/// files) until the test sends on the release channel. Everything else
/// passes straight through to the wrapped [`SimFs`], so crash schedules
/// and durability semantics are untouched.
struct GateFs {
    inner: Arc<SimFs>,
    prefix: &'static str,
    reached: Mutex<Option<mpsc::Sender<()>>>,
    release: Mutex<Option<mpsc::Receiver<()>>>,
}

impl GateFs {
    fn gated(
        inner: Arc<SimFs>,
        prefix: &'static str,
    ) -> (Arc<dyn WalFs>, mpsc::Receiver<()>, mpsc::Sender<()>) {
        let (reached_tx, reached_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel();
        let fs = Arc::new(Self {
            inner,
            prefix,
            reached: Mutex::new(Some(reached_tx)),
            release: Mutex::new(Some(release_rx)),
        });
        (fs, reached_rx, release_tx)
    }
}

impl WalFs for GateFs {
    fn list(&self) -> Result<Vec<String>, WalError> {
        self.inner.list()
    }
    fn read(&self, name: &str) -> Result<Vec<u8>, WalError> {
        self.inner.read(name)
    }
    fn create(&self, name: &str) -> Result<(), WalError> {
        self.inner.create(name)
    }
    fn append(&self, name: &str, bytes: &[u8]) -> Result<(), WalError> {
        if name.starts_with(self.prefix) {
            // First matching append only: signal the test, then park
            // until released. Channels are taken so later rounds (the
            // absorb compaction) pass through.
            if let Some(tx) = self.reached.lock().unwrap().take() {
                let rx = self.release.lock().unwrap().take().expect("release channel");
                tx.send(()).expect("test gone while build parked");
                rx.recv_timeout(Duration::from_secs(30)).expect("gate never released");
            }
        }
        self.inner.append(name, bytes)
    }
    fn sync(&self, name: &str) -> Result<(), WalError> {
        self.inner.sync(name)
    }
    fn truncate(&self, name: &str, len: u64) -> Result<(), WalError> {
        self.inner.truncate(name, len)
    }
    fn rename(&self, from: &str, to: &str) -> Result<(), WalError> {
        self.inner.rename(from, to)
    }
    fn remove(&self, name: &str) -> Result<(), WalError> {
        self.inner.remove(name)
    }
}

// ---------------------------------------------------------------------
// 1. Answerability across the off-latch window
// ---------------------------------------------------------------------

#[test]
fn concurrent_ingest_during_off_latch_build_is_answerable_and_absorbed_next_round() {
    let (sim, _) = SimFs::new(41);
    let (fs, reached, release) = GateFs::gated(Arc::clone(&sim), "seal-00000002");
    let (store, _) = IngestStore::open(fs, store_config()).unwrap();
    let store = Arc::new(store);

    // Generation 1 seals two partitions: Sydney ('r') and Toronto ('d').
    let mut all: Vec<Post> = (1..=3).map(sydney).chain((4..=8).map(toronto)).collect();
    for p in &all {
        store.ingest(p.clone()).unwrap();
    }
    assert!(store.compact().unwrap());
    assert_eq!(store.generation(), 1);

    // Only Toronto moves: generation 2 will rewrite 'd' and carry 'r'.
    let phase_b: Vec<Post> = (9..=12).map(toronto).collect();
    for p in &phase_b {
        store.ingest(p.clone()).unwrap();
    }
    all.extend(phase_b);

    let builder = {
        let store = Arc::clone(&store);
        std::thread::spawn(move || store.compact())
    };
    reached.recv_timeout(Duration::from_secs(30)).expect("build never reached the seal write");

    // The build is parked mid-partition-write and holds no latch: writes
    // and reads must land now, and the reads must already see them.
    let mid: Vec<Post> = (13..=15).map(toronto).chain(std::iter::once(sydney(16))).collect();
    for p in &mid {
        store.ingest(p.clone()).unwrap();
    }
    all.extend(mid.iter().cloned());
    assert_answers_match(&store, &all, "mid-build");

    release.send(()).unwrap();
    assert!(builder.join().unwrap().unwrap(), "gated compaction must seal");

    // Seq fence: the swap covers exactly the snapshot (seqs 1..=12);
    // mid-build acks stay live in the memtable — no loss, no double
    // count — and answers are unchanged.
    assert_eq!(store.generation(), 2);
    assert_eq!(store.sealed_seq(), 12);
    assert_eq!(store.live_posts(), mid.len());
    assert_eq!(store.acked_posts(), all.len());
    assert_answers_match(&store, &all, "post-swap");

    // Untouched Sydney partition carried forward by name; Toronto's old
    // file replaced and trimmed.
    let names = WalFs::list(sim.as_ref()).unwrap();
    assert!(names.iter().any(|n| n == "seal-00000002-d.log"), "{names:?}");
    assert!(names.iter().any(|n| n == "seal-00000001-r.log"), "{names:?}");
    assert!(!names.iter().any(|n| n == "seal-00000001-d.log"), "{names:?}");

    // The next round absorbs the mid-build tail.
    assert!(store.compact().unwrap());
    assert_eq!(store.live_posts(), 0);
    assert_eq!(store.acked_posts(), all.len());
    assert_answers_match(&store, &all, "after absorb");

    // And a reopen replays to the same state.
    drop(store);
    let walfs: Arc<dyn WalFs> = Arc::clone(&sim) as Arc<dyn WalFs>;
    let (reopened, report) = IngestStore::open(walfs, store_config()).unwrap();
    assert_eq!(report.sealed_posts, all.len());
    assert_answers_match(&reopened, &all, "after reopen");
}

// ---------------------------------------------------------------------
// 2. Crash sweep over the gated swap schedule
// ---------------------------------------------------------------------

struct GatedRun {
    sim: Arc<SimFs>,
    acked: Vec<Post>,
    crashed: bool,
    tail_ops: u64,
}

/// Runs the two-generation scenario with concurrent mid-build ingests,
/// arming a crash at the `tail_crash`-th filesystem op counted from the
/// gate release — so the schedule covers the partial partition rewrite,
/// the staged manifest, the rename commit point, the post-swap rotate,
/// and the fenced trim, all with carried-forward files on disk and
/// post-fence acks in the WAL.
fn run_gated(seed: u64, tail_crash: u64) -> GatedRun {
    let (sim, handle) = SimFs::new(seed);
    let (fs, reached, release) = GateFs::gated(Arc::clone(&sim), "seal-00000002");
    let (store, _) = IngestStore::open(fs, store_config()).unwrap();
    let store = Arc::new(store);

    let mut acked = Vec::new();
    for p in (1..=3).map(sydney).chain((4..=8).map(toronto)) {
        store.ingest(p.clone()).unwrap();
        acked.push(p);
    }
    store.compact().unwrap();
    for p in (9..=12).map(toronto) {
        store.ingest(p.clone()).unwrap();
        acked.push(p);
    }
    let builder = {
        let store = Arc::clone(&store);
        std::thread::spawn(move || store.compact())
    };
    reached.recv_timeout(Duration::from_secs(30)).expect("build never reached the seal write");
    for p in (13..=15).map(toronto).chain(std::iter::once(sydney(16))) {
        store.ingest(p.clone()).unwrap();
        acked.push(p);
    }

    handle.arm_crash_at(tail_crash);
    release.send(()).unwrap();
    let result = builder.join().unwrap();
    let tail_ops = handle.crash_ops_seen();
    GatedRun { sim, acked, crashed: matches!(result, Err(WalError::Crashed)), tail_ops }
}

#[test]
fn crash_at_every_op_of_the_gated_swap_schedule_recovers_all_acked() {
    for seed in chaos_seeds() {
        // Clean run measures the tail schedule (counter armed past it).
        let clean = run_gated(seed, u64::MAX);
        assert!(!clean.crashed, "seed {seed}: clean gated run must not crash");
        assert!(
            clean.tail_ops > 8,
            "gated tail too short to cover the swap schedule ({} ops)",
            clean.tail_ops
        );

        for k in 1..=clean.tail_ops {
            let run = run_gated(seed, k);
            assert!(run.crashed, "seed {seed} tail op {k}: crash never fired");

            // Reboot: unsynced bytes die (seeded torn tails survive).
            run.sim.crash_and_lose_unsynced();
            let walfs: Arc<dyn WalFs> = Arc::clone(&run.sim) as Arc<dyn WalFs>;
            let (store, report) = IngestStore::open(walfs, store_config())
                .unwrap_or_else(|e| panic!("seed {seed} tail op {k}: recovery refused: {e}"));

            // Acked ⊆ recovered — including the mid-build acks whose seqs
            // sit past the fence the dying compaction staged.
            for p in &run.acked {
                assert!(
                    store.contains_post(p.id),
                    "seed {seed} tail op {k}: acked tweet {} lost (report {report:?})",
                    p.id.0
                );
            }

            // Bitwise fidelity over whatever the reboot kept.
            let recovered = store.posts();
            assert_answers_match(&store, &recovered, &format!("seed {seed} tail op {k}"));
        }
    }
}

// ---------------------------------------------------------------------
// 3. Compaction I/O proportional to touched partitions
// ---------------------------------------------------------------------

/// One post per far-flung region — many distinct geohash partitions.
fn spread(id: u64) -> Post {
    const SPOTS: [(f64, f64); 7] = [
        (51.50, -0.12),   // London
        (-33.87, 151.21), // Sydney
        (35.68, 139.69),  // Tokyo
        (-23.55, -46.63), // São Paulo
        (55.75, 37.62),   // Moscow
        (28.61, 77.21),   // Delhi
        (64.13, -21.90),  // Reykjavík
    ];
    let (lat, lon) = SPOTS[id as usize % SPOTS.len()];
    post(id, id % 5 + 20, lat + id as f64 * 1e-3, lon, "hotel far away")
}

/// Two compaction rounds under `strategy`, counting only the compacts'
/// SimFs write-path ops: round 1 seals posts spread over many partitions
/// plus Toronto; round 2's live delta touches Toronto alone.
fn two_round_compact_ops(strategy: CompactionStrategy) -> (u64, u64, u64) {
    let (sim, handle) = SimFs::new(77);
    let walfs: Arc<dyn WalFs> = Arc::clone(&sim) as Arc<dyn WalFs>;
    let cfg = StoreConfig { strategy, engine: engine_config(), ..StoreConfig::default() };
    let (store, _) = IngestStore::open(walfs, cfg).unwrap();

    for id in 1..=21 {
        store.ingest(spread(id)).unwrap();
    }
    for id in 22..=24 {
        store.ingest(toronto(id)).unwrap();
    }
    handle.arm_crash_at(u64::MAX); // count (never fire): round-1 ops
    assert!(store.compact().unwrap());
    let round1 = handle.crash_ops_seen();
    handle.arm_crash_at(0); // disarm: ingests don't count

    let partitions =
        WalFs::list(sim.as_ref()).unwrap().iter().filter(|n| parse_seal_name(n).is_some()).count()
            as u64;

    for id in 25..=27 {
        store.ingest(toronto(id)).unwrap();
    }
    handle.arm_crash_at(u64::MAX); // count: round-2 ops
    assert!(store.compact().unwrap());
    let round2 = handle.crash_ops_seen();
    (round1, round2, partitions)
}

#[test]
fn compaction_io_is_proportional_to_touched_partitions() {
    let (incr1, incr2, parts) = two_round_compact_ops(CompactionStrategy::Incremental);
    let (full1, full2, full_parts) = two_round_compact_ops(CompactionStrategy::FullLatch);
    assert!(parts >= 5, "workload spread over too few partitions ({parts})");
    assert_eq!(parts, full_parts, "strategies must agree on the partition layout");

    // Round 1 seals every partition under both strategies (everything is
    // live), so both pay at least create+append+sync per partition file.
    assert!(incr1 >= 3 * parts, "incremental round 1 wrote too few ops ({incr1})");
    assert!(full1 >= 3 * parts, "full-latch round 1 wrote too few ops ({full1})");

    // Round 2's delta touches one partition. Full-latch rewrites all
    // `parts` files and removes the stale ones; incremental must skip
    // the `parts - 1` untouched partitions entirely — at least 3 write
    // ops (create/append/sync) and 1 remove saved per carried file.
    assert!(incr2 < full2, "incremental round-2 ops {incr2} not below full-latch {full2}");
    assert!(
        full2 - incr2 >= 4 * (parts - 1),
        "savings not proportional to carried partitions: full {full2} - incremental {incr2} \
         < 4 × {} untouched partitions",
        parts - 1
    );
}
