//! Snapshot-equality oracle (DESIGN.md §15 acceptance).
//!
//! The ingest store's contract is that a query over "sealed ∪ live" is
//! **bitwise** equal to the same query against a from-scratch
//! [`TklusEngine`] built over the identical post set — same users, same
//! float bits, same order. This suite builds both sides over a generated
//! corpus split into a sealed prefix (ingested then compacted) and a live
//! suffix (ingested after compaction, so its postings sit in the
//! memtable), and asserts equality across Sum/Max × OR/AND × both bound
//! modes, including replies that land in sealed threads and raise φ after
//! sealing.
//!
//! A second family asserts the loosen-only bound-refresh soundness
//! invariant directly: after any ingest sequence, every hot-keyword bound
//! dominates φ(p) of every acked post carrying that keyword, and the
//! global bound dominates every hot bound's subject too.

#![allow(clippy::unwrap_used)] // test code: panics are the failure report

use std::sync::Arc;
use tklus_core::{BoundsMode, EngineConfig, Ranking, TklusEngine};
use tklus_gen::{generate_corpus, generate_queries, GenConfig, QueryConfig};
use tklus_model::{Corpus, Post, Semantics, TklusQuery};
use tklus_wal::{IngestStore, SimFs, StoreConfig, WalFs};

fn engine_config() -> EngineConfig {
    EngineConfig { cache_pages: 0, parallelism: 1, ..EngineConfig::default() }
}

fn corpus(seed: u64) -> Corpus {
    generate_corpus(&GenConfig {
        original_posts: 220,
        users: 50,
        vocab_size: 250,
        seed,
        ..GenConfig::default()
    })
}

fn queries(corpus: &Corpus) -> Vec<(TklusQuery, Ranking)> {
    let specs = generate_queries(corpus, &QueryConfig { per_bucket: 3, seed: 0x5EED });
    specs
        .into_iter()
        .enumerate()
        .map(|(i, spec)| {
            let semantics = if i % 2 == 0 { Semantics::Or } else { Semantics::And };
            let ranking = match i % 3 {
                0 => Ranking::Sum,
                1 => Ranking::Max(BoundsMode::HotKeywords),
                _ => Ranking::Max(BoundsMode::Global),
            };
            let q = TklusQuery::new(spec.location, 20.0, spec.keywords, 5, semantics)
                .expect("generated query is valid");
            (q, ranking)
        })
        .collect()
}

/// Ingests `posts[..split]`, compacts (sealing them), ingests the rest
/// live, and returns the store.
fn store_with_split(posts: &[Post], split: usize) -> IngestStore {
    let (fs, _) = SimFs::new(0x0AC1E);
    let fs: Arc<dyn WalFs> = fs as Arc<dyn WalFs>;
    let config = StoreConfig { engine: engine_config(), ..StoreConfig::default() };
    let (store, _) = IngestStore::open(fs, config).unwrap();
    for p in &posts[..split] {
        store.ingest(p.clone()).unwrap();
    }
    assert_eq!(store.compact().unwrap(), split > 0, "compact seals iff something is live");
    for p in &posts[split..] {
        store.ingest(p.clone()).unwrap();
    }
    assert_eq!(store.live_posts(), posts.len() - split);
    store
}

#[test]
fn merged_snapshot_queries_match_from_scratch_engine_bitwise() {
    let corpus = corpus(42);
    let posts = corpus.posts().to_vec();
    let split = posts.len() * 3 / 5;
    let store = store_with_split(&posts, split);

    let (reference, _) = TklusEngine::try_build(&corpus, &engine_config()).unwrap();
    let qs = queries(&corpus);
    assert!(qs.len() >= 9, "query workload must exercise every ranking arm");
    let mut nonempty = 0;
    for (q, ranking) in &qs {
        let got = store.try_query(q, *ranking).unwrap();
        let want = reference.try_query(q, *ranking).unwrap().users;
        assert_eq!(got, want, "query {q:?} ranking {ranking:?} diverged from oracle");
        nonempty += usize::from(!want.is_empty());
    }
    assert!(nonempty > 0, "oracle run is vacuous: every query came back empty");
}

#[test]
fn live_replies_into_sealed_threads_stay_exact() {
    // Seal a corpus, then ingest replies whose targets are *sealed* posts:
    // the replies raise sealed threads' φ, so the sealed engine's cached
    // bounds must loosen (and its thread cache invalidate) for the merged
    // answer to stay exact.
    let corpus = corpus(77);
    let posts = corpus.posts().to_vec();
    let store = store_with_split(&posts, posts.len());
    assert_eq!(store.live_posts(), 0);

    let first_id = posts.iter().map(|p| p.id.0).max().unwrap() + 1;
    let mut all = posts.clone();
    let targets = posts.iter().filter(|p| p.in_reply_to.is_none()).take(12);
    for (next_id, target) in (first_id..).zip(targets) {
        let reply = Post::reply(
            tklus_model::TweetId(next_id),
            tklus_model::UserId(next_id % 40),
            target.location,
            target.text.clone(),
            target.id,
            target.user,
        );
        store.ingest(reply.clone()).unwrap();
        all.push(reply);
    }

    let full = Corpus::new(all).unwrap();
    let (reference, _) = TklusEngine::try_build(&full, &engine_config()).unwrap();
    for (q, ranking) in queries(&full) {
        let got = store.try_query(&q, ranking).unwrap();
        let want = reference.try_query(&q, ranking).unwrap().users;
        assert_eq!(got, want, "post-reply query {q:?} ranking {ranking:?} diverged");
    }
}

#[test]
fn compaction_preserves_answers_at_every_boundary() {
    // Answers must be invariant across the sealed/live boundary: any
    // split of the same post set, compacted or not, yields the oracle's
    // bytes.
    let corpus = corpus(9);
    let posts: Vec<Post> = corpus.posts().iter().take(120).cloned().collect();
    let full = Corpus::new(posts.clone()).unwrap();
    let (reference, _) = TklusEngine::try_build(&full, &engine_config()).unwrap();
    let qs: Vec<(TklusQuery, Ranking)> = queries(&full).into_iter().take(6).collect();
    for split in [0, posts.len() / 4, posts.len() / 2, posts.len()] {
        let store = store_with_split(&posts, split);
        for (q, ranking) in &qs {
            let got = store.try_query(q, *ranking).unwrap();
            let want = reference.try_query(q, *ranking).unwrap().users;
            assert_eq!(got, want, "split {split}: query diverged from oracle");
        }
    }
}

#[test]
fn hot_bounds_dominate_every_acked_thread_popularity() {
    // The loosen-only refresh soundness invariant, asserted directly: for
    // every acked post p and every hot term t in p's text,
    // hot_bound(t) ≥ φ(p) — under the full reply graph including live
    // replies into sealed threads. (Algorithm 5's prune consults exactly
    // these bounds for sealed candidates.)
    for seed in [5u64, 6, 7] {
        let corpus = corpus(seed);
        let posts = corpus.posts().to_vec();
        let split = posts.len() / 2;
        let store = store_with_split(&posts, split);
        let audit = store.check_bounds_soundness().unwrap();
        assert!(
            audit.violations.is_empty(),
            "seed {seed}: bounds underestimate φ for {:?}",
            audit.violations
        );
        assert!(audit.checked > 0, "soundness sweep is vacuous: no hot term matched any post");
    }
}
