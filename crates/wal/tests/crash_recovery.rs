//! Crash-recovery chaos suite (the ISSUE's tentpole acceptance).
//!
//! One deterministic workload — multi-partition ingests with WAL segment
//! rotation, two mid-stream incremental compactions (partial partition
//! rewrites, carried-forward seal files, manifest swaps), a final
//! compaction — runs against [`SimFs`] with a crash scheduled at the Nth
//! mutating filesystem operation, for **every** N the clean run performs
//! (so every append, segment-rotate, compaction write, and manifest-swap
//! op is a crash point), under each chaos seed. After the crash the
//! simulated machine reboots ([`SimFs::crash_and_lose_unsynced`]: durable
//! prefixes survive, a seeded slice of unsynced bytes survives as the
//! torn tail), the store reopens, and three things must hold:
//!
//! 1. **Acked durability** — every ingest that returned `Ok` before the
//!    crash is present after recovery (the WAL was fsynced before the
//!    ack).
//! 2. **No partial records** — recovery never surfaces corruption for a
//!    crash-shaped log: reopen succeeds, and replay's truncation report
//!    is the only place torn bytes appear.
//! 3. **Query fidelity** — post-recovery answers are bitwise-identical
//!    to a from-scratch monolithic engine built over exactly the
//!    recovered post set (which may exceed the acked set by unacked
//!    records whose frames happened to survive whole: at-least-once, not
//!    at-most-once).
//!
//! `TKLUS_CHAOS_SEED` narrows the seed list to one — the CI crash-matrix
//! variable.

#![allow(clippy::unwrap_used)] // test code: panics are the failure report

use std::collections::HashSet;
use std::sync::Arc;
use tklus_core::{BoundsMode, EngineConfig, Ranking, TklusEngine};
use tklus_gen::{generate_corpus, generate_queries, GenConfig, QueryConfig};
use tklus_model::{Corpus, Post, Semantics, TklusQuery, TweetId};
use tklus_wal::{FsyncPolicy, IngestStore, SimFs, StoreConfig, WalConfig, WalError, WalFs};

fn chaos_seeds() -> Vec<u64> {
    match std::env::var("TKLUS_CHAOS_SEED") {
        Ok(s) => vec![s.parse().expect("TKLUS_CHAOS_SEED must be a u64")],
        Err(_) => vec![1, 2, 3],
    }
}

fn engine_config() -> EngineConfig {
    EngineConfig { cache_pages: 0, parallelism: 1, ..EngineConfig::default() }
}

fn store_config() -> StoreConfig {
    StoreConfig {
        engine: engine_config(),
        // Tiny segments force rotations mid-workload, so the sweep hits
        // rotate-time crash points, not just appends.
        wal: WalConfig { segment_bytes: 256, fsync: FsyncPolicy::Always },
        // Pack memtable delta lists almost immediately, so post-recovery
        // queries exercise the block-postings path, not just the tails.
        delta_index_threshold: 2,
        ..StoreConfig::default()
    }
}

fn workload(seed: u64) -> Vec<Post> {
    // ~35 posts with reply cascades (targets precede replies in id
    // order). Small enough that a full every-op crash sweep stays fast.
    let mut posts = generate_corpus(&GenConfig {
        original_posts: 22,
        users: 10,
        vocab_size: 60,
        seed,
        ..GenConfig::default()
    })
    .posts()
    .to_vec();
    // Scatter a third of the posts across far-apart geohash partitions,
    // so every compaction in the sweep writes several partition files and
    // carries untouched ones forward — the incremental schedule's partial
    // rewrites and carried-forward names all become crash points.
    for (i, post) in posts.iter_mut().enumerate() {
        let jitter = i as f64 * 7e-3;
        match i % 3 {
            1 => post.location = tklus_geo::Point::new_unchecked(-33.85 + jitter, 151.20),
            2 => post.location = tklus_geo::Point::new_unchecked(35.65 + jitter, 139.70),
            _ => {}
        }
    }
    posts
}

fn queries(posts: &[Post]) -> Vec<(TklusQuery, Ranking)> {
    let corpus = Corpus::new(posts.to_vec()).unwrap();
    generate_queries(&corpus, &QueryConfig { per_bucket: 1, seed: 0xCAFE })
        .into_iter()
        .enumerate()
        .take(4)
        .map(|(i, spec)| {
            let semantics = if i % 2 == 0 { Semantics::Or } else { Semantics::And };
            let ranking =
                if i % 2 == 0 { Ranking::Sum } else { Ranking::Max(BoundsMode::HotKeywords) };
            let q = TklusQuery::new(spec.location, 25.0, spec.keywords, 5, semantics).unwrap();
            (q, ranking)
        })
        .collect()
}

/// Runs the scripted workload, collecting the ids of acked ingests.
/// Errors (the scheduled crash) are recorded, never unwrapped — after the
/// kill fires every further operation fails, like a dead process.
fn run_workload(store: &IngestStore, posts: &[Post]) -> (Vec<TweetId>, bool) {
    let mut acked = Vec::new();
    let mut crashed = false;
    let compact_at = [posts.len() / 3, 2 * posts.len() / 3];
    for (i, post) in posts.iter().enumerate() {
        if compact_at.contains(&i) {
            crashed |= matches!(store.compact(), Err(WalError::Crashed));
        }
        match store.ingest(post.clone()) {
            Ok(_) => acked.push(post.id),
            Err(WalError::Crashed) => crashed = true,
            Err(other) => panic!("unexpected ingest error: {other}"),
        }
    }
    crashed |= matches!(store.compact(), Err(WalError::Crashed));
    (acked, crashed)
}

/// One full crash-point run: fresh SimFs, crash armed at op `n`, workload,
/// reboot, reopen, invariants.
fn crash_at(seed: u64, n: u64, posts: &[Post], qs: &[(TklusQuery, Ranking)]) {
    let (fs, handle) = SimFs::new(seed);
    let walfs: Arc<dyn WalFs> = Arc::clone(&fs) as Arc<dyn WalFs>;
    let (store, _) = IngestStore::open(Arc::clone(&walfs), store_config()).unwrap();
    handle.arm_crash_at(n);
    let (acked, crashed) = run_workload(&store, posts);
    assert!(crashed, "crash point {n} never fired (schedule shorter than expected)");
    drop(store);

    // Reboot: unsynced bytes die (a seeded slice survives as torn tail).
    fs.crash_and_lose_unsynced();

    // Invariant 2: recovery must treat any crash-shaped store as healable.
    let (store, report) = IngestStore::open(walfs, store_config())
        .unwrap_or_else(|e| panic!("seed {seed} crash@{n}: recovery refused: {e}"));

    // Invariant 1: acked ⊆ recovered.
    for id in &acked {
        assert!(
            store.contains_post(*id),
            "seed {seed} crash@{n}: acked tweet {} lost (report {report:?})",
            id.0
        );
    }

    // Invariant 3: recovered answers == from-scratch engine over the
    // recovered set, bit for bit.
    let recovered = store.posts();
    let recovered_ids: HashSet<TweetId> = recovered.iter().map(|p| p.id).collect();
    assert!(acked.iter().all(|id| recovered_ids.contains(id)));
    let corpus = Corpus::new(recovered).unwrap();
    let (reference, _) = TklusEngine::try_build(&corpus, &engine_config()).unwrap();
    for (q, ranking) in qs {
        let got = store.try_query(q, *ranking).unwrap();
        let want = reference.try_query(q, *ranking).unwrap().users;
        assert_eq!(got, want, "seed {seed} crash@{n}: post-recovery query diverged");
    }
}

#[test]
fn every_write_path_op_is_a_survivable_crash_point() {
    for seed in chaos_seeds() {
        let posts = workload(seed);
        let qs = queries(&posts);

        // Clean run first: count the write path's mutating ops (the crash
        // schedule counts only while armed, so arm far past the end).
        let total = {
            let (fs, handle) = SimFs::new(seed);
            let walfs: Arc<dyn WalFs> = Arc::clone(&fs) as Arc<dyn WalFs>;
            let (store, _) = IngestStore::open(Arc::clone(&walfs), store_config()).unwrap();
            handle.arm_crash_at(u64::MAX);
            let (acked, crashed) = run_workload(&store, posts.as_slice());
            assert!(!crashed && acked.len() == posts.len(), "clean run must ack everything");
            // The workload must actually exercise rotation + compaction:
            // several WAL segments existed before the final compaction
            // trimmed them, and two generations of seal files were written.
            assert!(
                store.generation() >= 3,
                "workload performed {} compactions",
                store.generation()
            );
            handle.crash_ops_seen()
        };
        assert!(total > 60, "workload too small to cover all op classes ({total} ops)");

        for n in 1..=total {
            crash_at(seed, n, &posts, &qs);
        }
    }
}

#[test]
fn unscheduled_power_cut_mid_ingest_is_survivable_at_any_prefix() {
    // Complements the op-sweep: cut power (no scheduled kill, just losing
    // unsynced bytes) after every ingest prefix, including right after a
    // compaction, and require full acked durability — under
    // FsyncPolicy::Always everything acked has been synced.
    for seed in chaos_seeds() {
        let posts = workload(seed);
        let qs = queries(&posts);
        for cut in 1..=posts.len() {
            let (fs, _) = SimFs::new(seed ^ 0xDEAD);
            let walfs: Arc<dyn WalFs> = Arc::clone(&fs) as Arc<dyn WalFs>;
            let (store, _) = IngestStore::open(Arc::clone(&walfs), store_config()).unwrap();
            for post in &posts[..cut] {
                store.ingest(post.clone()).unwrap();
            }
            if cut % 7 == 0 {
                store.compact().unwrap();
            }
            drop(store);
            fs.crash_and_lose_unsynced();
            let (store, _) = IngestStore::open(walfs, store_config()).unwrap();
            assert_eq!(store.acked_posts(), cut, "seed {seed}: power cut at {cut} lost acks");
            let corpus = Corpus::new(posts[..cut].to_vec()).unwrap();
            let (reference, _) = TklusEngine::try_build(&corpus, &engine_config()).unwrap();
            for (q, ranking) in &qs {
                let got = store.try_query(q, *ranking).unwrap();
                let want = reference.try_query(q, *ranking).unwrap().users;
                assert_eq!(got, want, "seed {seed} cut@{cut}: query diverged");
            }
        }
    }
}
