//! The crash-safe ingest store: WAL-fronted LSM over the TkLUS engine.
//!
//! # Shape
//!
//! ```text
//!   ingest ──▶ WAL append (fsync) ──▶ apply to live state ──▶ ack
//!                                        │
//!              sealed engine             ▼
//!              (immutable index     MemtableIndex (live postings)
//!               over sealed posts,  + engine metadata/bounds
//!               metadata over ALL     (mutated in place)
//!               acked posts)
//!                      ▲
//!                      └── compaction: seal files + MANIFEST swap,
//!                          engine rebuilt over everything, WAL trimmed
//! ```
//!
//! The engine's inverted index covers only *sealed* posts; its metadata
//! database, thread cache, and popularity bounds cover *all* acked posts
//! (each ingest inserts metadata, invalidates the staled thread-cache
//! entries, and loosens the affected bounds — see
//! [`tklus_core::TklusEngine::try_insert_metadata`]). Queries merge the
//! sealed engine's candidates with the memtable's into one
//! tweet-id-ordered stream, which reproduces a from-scratch engine's
//! answers **bitwise** (the oracle suite asserts equality, not closeness):
//!
//! * Sum: sealed [`TklusEngine::try_partial_sum`] rows and memtable rows
//!   (scored by the identical per-candidate sequence) merge by tweet id —
//!   the monolithic fold order — then fold, blend, and rank exactly as
//!   Algorithm 4 does.
//! * Max: the sealed top-k and the exhaustively-scored memtable users
//!   merge by per-user maximum. Exact because `user_score` is monotone in
//!   its keyword part (so per-user max of scores equals score of max ρ)
//!   and a user outside the sealed top-k with no live tweet is dominated
//!   by k users in the merged set.
//!
//! # Crash safety
//!
//! An ingest is acked only after its WAL frame is appended (and, under
//! [`FsyncPolicy::Always`], fsynced). Recovery replays the log over the
//! sealed state named by `MANIFEST`, skipping records compaction already
//! absorbed (`seq ≤ sealed_seq`), truncating the final segment's torn
//! tail, and refusing mid-log corruption. Compaction writes seal files,
//! fsyncs them, then swaps `MANIFEST.tmp → MANIFEST` atomically; a crash
//! anywhere leaves either the old manifest (WAL still replays everything)
//! or the new one (replay skips the sealed prefix) — never a mix.
//!
//! # Failure containment
//!
//! If applying an acked record to the live state fails part-way (a
//! metadata page fault mid-insert), the store rebuilds the whole live
//! state from the acked set — the in-memory equivalent of a WAL redo. If
//! *that* also fails the store latches [`WalError::Poisoned`]: every call
//! fails fast, no query ever observes a half-applied tweet, and reopening
//! recovers from durable state.

use crate::error::WalError;
use crate::frame::{decode_step, encode_frame, FrameStep};
use crate::fs::WalFs;
use crate::log::{parse_segment_name, replay, segment_name, RecoveryReport, WalConfig, WalWriter};
use crate::memtable::MemtableIndex;
use crate::record::{decode_record, encode_record, WalRecord};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tklus_core::score::{tweet_keyword_score, user_score};
use tklus_core::{top_k, EngineConfig, RankedUser, Ranking, TklusEngine};
use tklus_geo::{circle_cover, encode, Geohash};
use tklus_model::{Corpus, Post, TklusQuery, TweetId, UserId};
use tklus_storage::crc32;

/// Manifest header line.
const MANIFEST_MAGIC: &str = "TKLUSMANIFEST 1";
/// The manifest's durable name.
pub const MANIFEST: &str = "MANIFEST";
const MANIFEST_TMP: &str = "MANIFEST.tmp";

/// Ingest store configuration.
#[derive(Clone)]
pub struct StoreConfig {
    /// Engine build parameters (scoring, index, caches, metadata store).
    pub engine: EngineConfig,
    /// WAL segment size and fsync policy.
    pub wal: WalConfig,
    /// Background compactor: seal once this many posts are live. The
    /// synchronous [`IngestStore::compact`] ignores it.
    pub compact_threshold: usize,
    /// Background compactor poll interval.
    pub compact_interval: Duration,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            engine: EngineConfig::default(),
            wal: WalConfig::default(),
            compact_threshold: 1024,
            compact_interval: Duration::from_millis(20),
        }
    }
}

/// What [`IngestStore::open`] found and rebuilt.
#[derive(Debug, Clone, Default)]
pub struct OpenReport {
    /// WAL scan outcome (segments, torn-tail truncation).
    pub recovery: RecoveryReport,
    /// Posts loaded from sealed partitions.
    pub sealed_posts: usize,
    /// Posts replayed from the WAL into the live memtable.
    pub live_posts: usize,
    /// Compaction generation of the manifest loaded (0 = none).
    pub generation: u64,
}

/// The sealed state a manifest names.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Manifest {
    generation: u64,
    sealed_seq: u64,
    /// `(file name, record count)` pairs, in manifest order.
    files: Vec<(String, usize)>,
}

impl Manifest {
    fn encode(&self) -> Vec<u8> {
        let mut text = String::new();
        text.push_str(MANIFEST_MAGIC);
        text.push('\n');
        text.push_str(&format!("generation {}\n", self.generation));
        text.push_str(&format!("sealed_seq {}\n", self.sealed_seq));
        for (name, count) in &self.files {
            text.push_str(&format!("file {name} {count}\n"));
        }
        let crc = crc32(text.as_bytes());
        text.push_str(&format!("crc {crc:08x}\n"));
        text.into_bytes()
    }

    fn decode(bytes: &[u8]) -> Result<Self, WalError> {
        let corrupt = |offset: usize, detail: &str| WalError::Corrupt {
            path: MANIFEST.to_string(),
            offset,
            detail: detail.to_string(),
        };
        let text = std::str::from_utf8(bytes).map_err(|_| corrupt(0, "manifest is not UTF-8"))?;
        let Some(crc_at) = text.rfind("crc ") else {
            return Err(corrupt(0, "manifest missing crc line"));
        };
        let declared = text[crc_at + 4..].trim();
        let declared = u32::from_str_radix(declared, 16)
            .map_err(|_| corrupt(crc_at, "manifest crc is not hex"))?;
        if crc32(&text.as_bytes()[..crc_at]) != declared {
            return Err(corrupt(crc_at, "manifest checksum mismatch"));
        }
        let mut lines = text[..crc_at].lines();
        if lines.next() != Some(MANIFEST_MAGIC) {
            return Err(corrupt(0, "bad manifest magic"));
        }
        let mut m = Manifest::default();
        let mut have_gen = false;
        let mut have_seq = false;
        for line in lines {
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("generation") => {
                    m.generation = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| corrupt(0, "bad generation line"))?;
                    have_gen = true;
                }
                Some("sealed_seq") => {
                    m.sealed_seq = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| corrupt(0, "bad sealed_seq line"))?;
                    have_seq = true;
                }
                Some("file") => {
                    let name = parts.next().ok_or_else(|| corrupt(0, "bad file line"))?;
                    let count: usize = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| corrupt(0, "bad file line"))?;
                    m.files.push((name.to_string(), count));
                }
                // Same forward-compat posture as the page layer: an
                // unknown field under a valid checksum is a future writer,
                // not corruption — but we cannot honour what we cannot
                // parse, so refuse loudly rather than drop state.
                Some(other) => {
                    return Err(corrupt(0, &format!("unknown manifest field {other:?}")))
                }
                None => {}
            }
        }
        if !(have_gen && have_seq) {
            return Err(corrupt(0, "manifest missing generation or sealed_seq"));
        }
        Ok(m)
    }
}

/// The name of generation `generation`'s seal file for geohash group `g`.
fn seal_name(generation: u64, group: char) -> String {
    format!("seal-{generation:08}-{group}.log")
}

/// Mutable state under the store's lock.
struct Inner {
    engine: TklusEngine,
    memtable: MemtableIndex,
    wal: WalWriter,
    /// Every acked record, sequence order. `acked[..sealed_len]` is the
    /// sealed prefix the engine's index covers.
    acked: Vec<WalRecord>,
    sealed_len: usize,
    /// Tweet id → index into `acked` (duplicate detection, ancestor text).
    by_id: HashMap<TweetId, usize>,
    /// Direct-reply fan-out per target, over all acked posts (feeds the
    /// loosen-only global bound).
    fanout: HashMap<TweetId, usize>,
    next_seq: u64,
    sealed_seq: u64,
    generation: u64,
    poisoned: bool,
}

/// The crash-safe streaming ingest store. Cheaply shareable across
/// threads behind an `Arc`; ingest/compaction take the write lock,
/// queries the read lock, so a query can never observe an ingest half
/// applied.
pub struct IngestStore {
    fs: Arc<dyn WalFs>,
    config: StoreConfig,
    inner: RwLock<Inner>,
}

impl IngestStore {
    /// Opens the store: loads the manifest's sealed state, replays the
    /// WAL (healing a torn tail), rebuilds the live memtable, and starts
    /// a fresh WAL segment. Idempotent — opening twice in a row changes
    /// nothing the second time.
    pub fn open(fs: Arc<dyn WalFs>, config: StoreConfig) -> Result<(Self, OpenReport), WalError> {
        let files = fs.list()?;
        let manifest = if files.iter().any(|f| f == MANIFEST) {
            Manifest::decode(&fs.read(MANIFEST)?)?
        } else {
            Manifest::default()
        };

        // Sealed posts, from the files the manifest names. These were
        // fsynced before the manifest swap, so any invalid frame here is
        // real corruption, never a torn tail.
        let mut sealed: Vec<WalRecord> = Vec::new();
        for (name, count) in &manifest.files {
            let buf = fs.read(name)?;
            let mut offset = 0;
            let mut in_file = 0usize;
            loop {
                match decode_step(&buf, offset) {
                    FrameStep::CleanEnd => break,
                    FrameStep::Frame { payload_start, len, next } => {
                        let rec = decode_record(&buf[payload_start..payload_start + len]).map_err(
                            |detail| WalError::Corrupt {
                                path: name.clone(),
                                offset: payload_start,
                                detail,
                            },
                        )?;
                        sealed.push(rec);
                        in_file += 1;
                        offset = next;
                    }
                    FrameStep::Torn { reason } | FrameStep::Bad { reason } => {
                        return Err(WalError::Corrupt {
                            path: name.clone(),
                            offset,
                            detail: reason.to_string(),
                        });
                    }
                }
            }
            if in_file != *count {
                return Err(WalError::Corrupt {
                    path: name.clone(),
                    offset: buf.len(),
                    detail: format!("manifest promises {count} records, file holds {in_file}"),
                });
            }
        }
        sealed.sort_by_key(|r| r.seq);

        // Live posts, from the WAL. Records compaction already absorbed
        // (seq ≤ sealed_seq) are skipped — the crash-between-swap-and-trim
        // window leaves them in the log, and replay must be idempotent.
        // An *exact* duplicate (same post, a later seq) is the benign
        // signature of a failed-but-durable append followed by a client
        // retry: keep the first copy. The same tweet id over a different
        // payload is not something the write path can produce — refuse it
        // rather than let `Corpus::new`'s duplicate check wedge reopen.
        let (walked, recovery) = replay(fs.as_ref())?;
        let mut live: Vec<WalRecord> = Vec::new();
        let mut live_at: HashMap<TweetId, usize> = HashMap::new();
        for rec in walked {
            if rec.seq <= manifest.sealed_seq {
                continue;
            }
            if let Some(&at) = live_at.get(&rec.post.id) {
                if live[at].post == rec.post {
                    continue;
                }
                return Err(WalError::DuplicateTweet(rec.post.id));
            }
            live_at.insert(rec.post.id, live.len());
            live.push(rec);
        }

        let report = OpenReport {
            recovery: recovery.clone(),
            sealed_posts: sealed.len(),
            live_posts: live.len(),
            generation: manifest.generation,
        };

        let next_seq =
            sealed.iter().chain(live.iter()).map(|r| r.seq).max().unwrap_or(manifest.sealed_seq)
                + 1;
        let wal = WalWriter::open(
            Arc::clone(&fs),
            config.wal,
            recovery.max_ordinal.map_or(0, |o| o + 1),
        )?;

        let mut inner = Inner {
            engine: Self::build_engine(&sealed, &config.engine)?,
            memtable: MemtableIndex::new(),
            wal,
            acked: sealed,
            sealed_len: 0,
            by_id: HashMap::new(),
            fanout: HashMap::new(),
            next_seq,
            sealed_seq: manifest.sealed_seq,
            generation: manifest.generation,
            poisoned: false,
        };
        inner.sealed_len = inner.acked.len();
        for (i, rec) in inner.acked.iter().enumerate() {
            inner.by_id.insert(rec.post.id, i);
            if let Some(r) = rec.post.in_reply_to {
                *inner.fanout.entry(r.target).or_insert(0) += 1;
            }
        }
        let store = Self { fs, config, inner: RwLock::new(inner) };
        {
            let mut inner = store.inner.write();
            for rec in live {
                store.admit(&mut inner, rec)?;
            }
        }
        Ok((store, report))
    }

    fn build_engine(sealed: &[WalRecord], config: &EngineConfig) -> Result<TklusEngine, WalError> {
        let corpus = Corpus::new(sealed.iter().map(|r| r.post.clone()).collect())
            .map_err(|d| WalError::DuplicateTweet(d.0))?;
        let (engine, _report) = TklusEngine::try_build(&corpus, config)?;
        Ok(engine)
    }

    /// Appends `rec` to the acked set and applies it to the live state;
    /// on apply failure falls back to a full rebuild (see the module docs).
    fn admit(&self, inner: &mut Inner, rec: WalRecord) -> Result<u64, WalError> {
        let seq = rec.seq;
        inner.by_id.insert(rec.post.id, inner.acked.len());
        inner.acked.push(rec);
        let at = inner.acked.len() - 1;
        match self.apply_live(inner, at) {
            Ok(()) => Ok(seq),
            Err(_) => match self.rebuild_live(inner) {
                Ok(()) => Ok(seq),
                Err(_) => {
                    inner.poisoned = true;
                    Err(WalError::Poisoned)
                }
            },
        }
    }

    /// Applies `inner.acked[at]` to the engine metadata, bounds, and
    /// memtable. Must only be called with the record already in `acked`:
    /// on error the caller rebuilds from that set.
    fn apply_live(&self, inner: &mut Inner, at: usize) -> Result<(), WalError> {
        let rec = inner.acked[at].clone();
        let post = &rec.post;
        inner.engine.try_insert_metadata(post)?;

        // Loosen-only bound refresh: the new post grows every ancestor's
        // thread, so each ancestor's φ may rise; raise the hot bound of
        // every term those posts carry, and the global bound for the
        // target's new fan-out. Bounds only ever prune *sealed*
        // candidates (memtable candidates are scored exhaustively), so
        // over-loosening costs pruning power, never correctness.
        if let Some(reply) = post.in_reply_to {
            let count = {
                let entry = inner.fanout.entry(reply.target).or_insert(0);
                *entry += 1;
                *entry
            };
            inner.engine.loosen_global_for_fanout(count);
            let mut affected = vec![post.id];
            affected.extend(inner.engine.try_ancestor_chain(post)?);
            for tid in affected {
                let phi = inner.engine.try_thread_phi(tid)?;
                let Some(&idx) = inner.by_id.get(&tid) else { continue };
                let text = inner.acked[idx].post.text.clone();
                for term in inner.engine.text_terms(&text) {
                    inner.engine.loosen_hot_bound(term, phi);
                }
            }
        }

        let cell = self.post_cell(&inner.engine, post)?;
        let terms = inner.engine.term_counts(&post.text);
        inner.memtable.insert(post.id, post.user, cell, &terms);
        Ok(())
    }

    /// The in-memory WAL redo: throw the live state away and rebuild it
    /// from the acked set. Restores the invariant "live state ≡ fold of
    /// acked records" after a half-applied record.
    fn rebuild_live(&self, inner: &mut Inner) -> Result<(), WalError> {
        let sealed = &inner.acked[..inner.sealed_len];
        let mut engine = Self::build_engine(sealed, &self.config.engine)?;
        let mut memtable = MemtableIndex::new();
        let mut fanout: HashMap<TweetId, usize> = HashMap::new();
        for rec in &inner.acked {
            if let Some(r) = rec.post.in_reply_to {
                *fanout.entry(r.target).or_insert(0) += 1;
            }
        }
        for at in inner.sealed_len..inner.acked.len() {
            let post = inner.acked[at].post.clone();
            engine.try_insert_metadata(&post)?;
            if let Some(reply) = post.in_reply_to {
                engine.loosen_global_for_fanout(fanout[&reply.target]);
                let mut affected = vec![post.id];
                affected.extend(engine.try_ancestor_chain(&post)?);
                for tid in affected {
                    let phi = engine.try_thread_phi(tid)?;
                    let Some(&idx) = inner.by_id.get(&tid) else { continue };
                    let text = inner.acked[idx].post.text.clone();
                    for term in engine.text_terms(&text) {
                        engine.loosen_hot_bound(term, phi);
                    }
                }
            }
            let cell = self.post_cell(&engine, &post)?;
            let terms = engine.term_counts(&post.text);
            memtable.insert(post.id, post.user, cell, &terms);
        }
        inner.engine = engine;
        inner.memtable = memtable;
        inner.fanout = fanout;
        inner.poisoned = false;
        Ok(())
    }

    fn post_cell(&self, engine: &TklusEngine, post: &Post) -> Result<Geohash, WalError> {
        encode(&post.location, engine.index().geohash_len()).map_err(|e| WalError::Corrupt {
            path: String::new(),
            offset: 0,
            detail: format!("post location failed to encode: {e:?}"),
        })
    }

    /// Ingests one post: duplicate check, durable WAL append, live apply.
    /// Returns the record's sequence number. When this returns `Ok` under
    /// [`FsyncPolicy::Always`], the post survives any crash.
    ///
    /// [`FsyncPolicy::Always`]: crate::log::FsyncPolicy::Always
    pub fn ingest(&self, post: Post) -> Result<u64, WalError> {
        let mut inner = self.inner.write();
        if inner.poisoned {
            return Err(WalError::Poisoned);
        }
        if inner.by_id.contains_key(&post.id) {
            return Err(WalError::DuplicateTweet(post.id));
        }
        // The seq is burned even when the append fails: a failed append's
        // frame may still be durable (a sync error after a complete
        // write), and reusing the seq for the client's retry would put
        // two records for the same tweet in the log. Gaps are harmless —
        // replay only needs seqs monotone.
        let rec = WalRecord { seq: inner.next_seq, post };
        inner.next_seq += 1;
        inner.wal.append(&rec)?;
        self.admit(&mut inner, rec)
    }

    /// Answers a query over the consistent snapshot "sealed ∪ live",
    /// bitwise-equal to a from-scratch engine over the same posts (module
    /// docs give the argument; the oracle suite asserts it).
    pub fn try_query(&self, q: &TklusQuery, ranking: Ranking) -> Result<Vec<RankedUser>, WalError> {
        let inner = self.inner.read();
        if inner.poisoned {
            return Err(WalError::Poisoned);
        }
        let engine = &inner.engine;
        let live = self.live_candidates(&inner, q)?;
        match ranking {
            Ranking::Sum => {
                let sealed = engine.try_partial_sum(q)?;
                // Fold the sealed and live streams in one linear merge by
                // tweet id: the sets are disjoint (a tweet is sealed or
                // live, never both), both streams are id-sorted, and the
                // merged order is the monolithic fold order — so the
                // float association matches a from-scratch engine without
                // the O(sealed × live) of mid-vector inserts.
                let mut users: HashMap<UserId, f64> = HashMap::new();
                let mut live_it = live.into_iter().peekable();
                for row in sealed.rows {
                    while live_it.peek().is_some_and(|&(tid, _, _)| tid < row.tweet) {
                        let (_, uid, rho) = live_it.next().expect("peeked");
                        *users.entry(uid).or_insert(0.0) += rho;
                    }
                    *users.entry(row.user).or_insert(0.0) += row.rho;
                }
                for (_, uid, rho) in live_it {
                    *users.entry(uid).or_insert(0.0) += rho;
                }
                let mut entries: Vec<(UserId, f64)> = users.into_iter().collect();
                entries.sort_by_key(|e| e.0);
                let mut ranked = Vec::with_capacity(entries.len());
                for (uid, rho) in entries {
                    let delta = engine.try_user_distance_score(&q.location, q.radius_km, uid)?;
                    ranked.push(RankedUser {
                        user: uid,
                        score: user_score(rho, delta, engine.scoring()),
                    });
                }
                Ok(top_k(ranked, q.k))
            }
            Ranking::Max(_) => {
                let sealed = engine.try_query(q, ranking)?;
                // Per-user best keyword relevance over the live tweets.
                let mut live_best: HashMap<UserId, f64> = HashMap::new();
                for (_tid, uid, rho) in live {
                    let entry = live_best.entry(uid).or_insert(f64::NEG_INFINITY);
                    if rho > *entry {
                        *entry = rho;
                    }
                }
                let mut best: HashMap<UserId, f64> = HashMap::new();
                for ru in sealed.users {
                    best.insert(ru.user, ru.score);
                }
                let mut live_users: Vec<(UserId, f64)> = live_best.into_iter().collect();
                live_users.sort_by_key(|e| e.0);
                for (uid, rho) in live_users {
                    let delta = engine.try_user_distance_score(&q.location, q.radius_km, uid)?;
                    let score = user_score(rho, delta, engine.scoring());
                    let entry = best.entry(uid).or_insert(f64::NEG_INFINITY);
                    if score > *entry {
                        *entry = score;
                    }
                }
                let ranked =
                    best.into_iter().map(|(user, score)| RankedUser { user, score }).collect();
                Ok(top_k(ranked, q.k))
            }
        }
    }

    /// Scores the memtable's candidates for `q` with the exact
    /// per-candidate sequence of Algorithm 4/5's relevance stage: time
    /// window, metadata row, radius, thread popularity, keyword score ×
    /// recency. Returns id-sorted `(tweet, author, ρ)` rows.
    fn live_candidates(
        &self,
        inner: &Inner,
        q: &TklusQuery,
    ) -> Result<Vec<(TweetId, UserId, f64)>, WalError> {
        let engine = &inner.engine;
        if inner.memtable.is_empty() {
            return Ok(Vec::new());
        }
        let scoring = engine.scoring();
        let cover =
            circle_cover(&q.location, q.radius_km, engine.index().geohash_len(), scoring.metric)
                .expect("index geohash length is valid");
        let keywords: Vec<Option<String>> =
            q.keywords.iter().map(|kw| engine.normalize_keyword(kw)).collect();
        let cands = inner.memtable.candidates(&cover, &keywords, q.semantics);
        let mut rows = Vec::new();
        for (tid, tf) in cands {
            if !q.in_time_range(tid.0) {
                continue;
            }
            let Some(row) = engine.db().try_row(tid).map_err(tklus_core::EngineError::from)? else {
                continue;
            };
            if q.location.distance_km(&row.location, scoring.metric) > q.radius_km {
                continue;
            }
            let phi = engine.try_thread_phi(tid)?;
            let rho = tweet_keyword_score(tf, phi, scoring) * q.recency_factor(tid.0);
            rows.push((tid, row.uid, rho));
        }
        Ok(rows)
    }

    /// Seals every live post into persisted geohash partitions and swaps
    /// the manifest atomically, then rebuilds the engine over the full
    /// corpus, clears the memtable, and trims absorbed WAL segments.
    /// Returns `true` when something was sealed.
    pub fn compact(&self) -> Result<bool, WalError> {
        let mut inner = self.inner.write();
        if inner.poisoned {
            return Err(WalError::Poisoned);
        }
        if inner.memtable.is_empty() {
            return Ok(false);
        }
        let generation = inner.generation + 1;
        let sealed_seq = inner.acked.iter().map(|r| r.seq).max().unwrap_or(inner.sealed_seq);

        // Build the post-compaction engine up front: it is pure in-memory
        // work, so a failure here aborts before any durable mutation, and
        // once the manifest swap (the commit point) succeeds the install
        // below is infallible — the in-memory bookkeeping can never
        // disagree with the manifest that committed.
        let engine = Self::build_engine(&inner.acked, &self.config.engine)?;

        // Group every acked post by its geohash's leading character —
        // the paper's coarse spatial partitioning — and write one seal
        // file per group: frames, fsync, *then* the manifest swap. The
        // sync before the rename is load-bearing: without it the manifest
        // could durably name files whose bytes died in the page cache
        // (the chaos suite's SimFs models exactly that).
        let mut groups: std::collections::BTreeMap<char, Vec<&WalRecord>> =
            std::collections::BTreeMap::new();
        for rec in &inner.acked {
            let cell = self.post_cell(&inner.engine, &rec.post)?;
            let group = cell.to_string().chars().next().unwrap_or('0');
            groups.entry(group).or_default().push(rec);
        }
        let mut files = Vec::with_capacity(groups.len());
        for (group, recs) in &groups {
            let name = seal_name(generation, *group);
            let mut bytes = Vec::new();
            for rec in recs {
                encode_frame(&encode_record(rec), &mut bytes);
            }
            self.fs.create(&name)?;
            self.fs.append(&name, &bytes)?;
            self.fs.sync(&name)?;
            files.push((name, recs.len()));
        }
        let manifest = Manifest { generation, sealed_seq, files };
        self.fs.create(MANIFEST_TMP)?;
        self.fs.append(MANIFEST_TMP, &manifest.encode())?;
        self.fs.sync(MANIFEST_TMP)?;
        self.fs.rename(MANIFEST_TMP, MANIFEST)?;

        // ---- The swap is the commit point. Everything below is cleanup
        // and in-memory refresh; a crash from here on recovers to the
        // same state (replay skips seq ≤ sealed_seq; stray files of older
        // generations are invisible to the manifest and removed below or
        // by the next compaction). The engine swap-in and memtable clear
        // happen together under the held write lock, so no query observes
        // the sealed index and the live postings double-counting a post.
        inner.sealed_len = inner.acked.len();
        inner.sealed_seq = sealed_seq;
        inner.generation = generation;
        inner.engine = engine;
        inner.memtable.clear();

        // Trim the WAL: rotate to a fresh segment, drop every older one
        // (all their records have seq ≤ sealed_seq now), and drop seal
        // files the new manifest no longer names.
        inner.wal.rotate()?;
        let keep_ordinal = inner.wal.current_ordinal();
        let keep_names: std::collections::HashSet<&str> =
            manifest.files.iter().map(|(n, _)| n.as_str()).collect();
        for name in self.fs.list()? {
            if let Some(ord) = parse_segment_name(&name) {
                if ord < keep_ordinal {
                    self.fs.remove(&name)?;
                }
            } else if name.starts_with("seal-") && !keep_names.contains(name.as_str()) {
                self.fs.remove(&name)?;
            }
        }
        let _ = segment_name(keep_ordinal); // (name formatting shared with the writer)
        Ok(true)
    }

    /// Total acked posts (sealed + live).
    pub fn acked_posts(&self) -> usize {
        self.inner.read().acked.len()
    }

    /// True when `tid` has been acked (sealed or live).
    pub fn contains_post(&self, tid: TweetId) -> bool {
        self.inner.read().by_id.contains_key(&tid)
    }

    /// A snapshot of every acked post, sequence order. The chaos suite
    /// builds its reference engine from exactly this set.
    pub fn posts(&self) -> Vec<Post> {
        self.inner.read().acked.iter().map(|r| r.post.clone()).collect()
    }

    /// Posts in the live memtable.
    pub fn live_posts(&self) -> usize {
        self.inner.read().memtable.len()
    }

    /// Current compaction generation.
    pub fn generation(&self) -> u64 {
        self.inner.read().generation
    }

    /// Highest sequence number compaction has absorbed.
    pub fn sealed_seq(&self) -> u64 {
        self.inner.read().sealed_seq
    }

    /// True when the live state was lost and the store is failing fast.
    pub fn is_poisoned(&self) -> bool {
        self.inner.read().poisoned
    }

    /// Audits the loosen-only bound-refresh invariant: for every acked
    /// post `p` and every hot term `t` in its text, `hot_bound(t)` must
    /// dominate φ(p) under the *current* reply graph (live replies
    /// included), and the global bound must dominate φ(p) outright —
    /// Algorithm 5's prune consults exactly these bounds for sealed
    /// candidates. Returns the audit; the oracle suite asserts it clean.
    pub fn check_bounds_soundness(&self) -> Result<BoundsAudit, WalError> {
        let inner = self.inner.read();
        if inner.poisoned {
            return Err(WalError::Poisoned);
        }
        let engine = &inner.engine;
        let mut audit = BoundsAudit::default();
        for rec in &inner.acked {
            let phi = engine.try_thread_phi(rec.post.id)?;
            if engine.bounds().global() < phi {
                audit.violations.push((rec.post.id, None));
            }
            for term in engine.text_terms(&rec.post.text) {
                let Some(bound) = engine.bounds().hot_bound(term) else { continue };
                audit.checked += 1;
                if bound < phi {
                    audit.violations.push((rec.post.id, Some(term)));
                }
            }
        }
        Ok(audit)
    }

    /// Starts the background compactor: polls every
    /// `config.compact_interval` and seals once `compact_threshold` posts
    /// are live. Errors (including injected faults) are swallowed — the
    /// next poll retries, and the synchronous path stays available.
    pub fn spawn_compactor(self: &Arc<Self>) -> CompactorHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let store = Arc::clone(self);
        let flag = Arc::clone(&stop);
        let join = std::thread::spawn(move || {
            while !flag.load(Ordering::Relaxed) {
                std::thread::sleep(store.config.compact_interval);
                if store.live_posts() >= store.config.compact_threshold {
                    let _ = store.compact();
                }
            }
        });
        CompactorHandle { stop, join: Some(join) }
    }
}

/// Result of [`IngestStore::check_bounds_soundness`].
#[derive(Debug, Clone, Default)]
pub struct BoundsAudit {
    /// `(post, hot term)` pairs inspected.
    pub checked: usize,
    /// Posts whose φ exceeds a bound that should dominate it: `Some(t)` =
    /// the hot bound for `t`, `None` = the global bound. Always empty
    /// unless the loosen-only refresh is broken.
    pub violations: Vec<(TweetId, Option<tklus_text::TermId>)>,
}

/// Stops the background compactor on drop (or explicitly via
/// [`CompactorHandle::stop`]).
pub struct CompactorHandle {
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl CompactorHandle {
    /// Signals the compactor to exit and joins it.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for CompactorHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // test code: panics are the failure report

    use super::*;
    use crate::fs::SimFs;
    use tklus_core::{BoundsMode, Ranking};
    use tklus_geo::Point;
    use tklus_model::Semantics;

    fn post(id: u64, user: u64, lat: f64, lon: f64, text: &str) -> Post {
        Post::original(TweetId(id), UserId(user), Point::new_unchecked(lat, lon), text)
    }

    fn query() -> TklusQuery {
        TklusQuery::new(
            Point::new_unchecked(43.70, -79.42),
            25.0,
            vec!["hotel".into()],
            5,
            Semantics::Or,
        )
        .unwrap()
    }

    fn open(fs: &Arc<SimFs>) -> (IngestStore, OpenReport) {
        let fs: Arc<dyn WalFs> = Arc::clone(fs) as Arc<dyn WalFs>;
        IngestStore::open(fs, StoreConfig::default()).unwrap()
    }

    #[test]
    fn ingest_query_reopen_cycle() {
        let (fs, _) = SimFs::new(11);
        let (store, report) = open(&fs);
        assert_eq!(report.sealed_posts + report.live_posts, 0);
        store.ingest(post(1, 10, 43.70, -79.42, "great hotel downtown")).unwrap();
        store.ingest(post(2, 11, 43.71, -79.40, "coffee first, hotel later")).unwrap();
        let users = store.try_query(&query(), Ranking::Sum).unwrap();
        assert_eq!(users.len(), 2);
        assert!(matches!(
            store.ingest(post(1, 9, 43.0, -79.0, "dup")),
            Err(WalError::DuplicateTweet(TweetId(1)))
        ));
        drop(store);
        let (store2, report2) = open(&fs);
        assert_eq!(report2.live_posts, 2);
        assert_eq!(store2.try_query(&query(), Ranking::Sum).unwrap(), users);
    }

    #[test]
    fn compaction_seals_and_reopen_reads_manifest() {
        let (fs, _) = SimFs::new(12);
        let (store, _) = open(&fs);
        for i in 1..=6 {
            store.ingest(post(i, i, 43.70 + i as f64 * 1e-3, -79.42, "hotel by the lake")).unwrap();
        }
        let before = store.try_query(&query(), Ranking::Max(BoundsMode::HotKeywords)).unwrap();
        assert!(store.compact().unwrap());
        assert_eq!(store.live_posts(), 0);
        assert_eq!(store.acked_posts(), 6);
        let after = store.try_query(&query(), Ranking::Max(BoundsMode::HotKeywords)).unwrap();
        assert_eq!(before, after, "compaction must not change answers");
        assert!(!store.compact().unwrap(), "empty memtable has nothing to seal");
        // Old WAL segments are gone; the log holds only the fresh one.
        let segments: Vec<String> =
            fs.list().unwrap().into_iter().filter(|n| parse_segment_name(n).is_some()).collect();
        assert_eq!(segments.len(), 1);
        drop(store);
        let (store2, report) = open(&fs);
        assert_eq!(report.sealed_posts, 6);
        assert_eq!(report.live_posts, 0);
        assert_eq!(report.generation, 1);
        assert_eq!(
            store2.try_query(&query(), Ranking::Max(BoundsMode::HotKeywords)).unwrap(),
            after
        );
    }

    #[test]
    fn transient_append_failure_then_retry_survives_reopen() {
        let (sim, _) = SimFs::new(14);
        let flaky = crate::fs::FlakyFs::new(sim);
        let fs: Arc<dyn WalFs> = Arc::clone(&flaky) as Arc<dyn WalFs>;
        let (store, _) = IngestStore::open(Arc::clone(&fs), StoreConfig::default()).unwrap();
        store.ingest(post(1, 10, 43.70, -79.42, "grand hotel")).unwrap();
        // The frame lands whole but its fsync fails: no ack, but the
        // bytes are in the log. The client retries the identical post.
        flaky.fail_sync_at(1);
        assert!(store.ingest(post(2, 11, 43.71, -79.41, "hotel bar")).is_err());
        store.ingest(post(2, 11, 43.71, -79.41, "hotel bar")).unwrap();
        store.ingest(post(3, 12, 43.69, -79.43, "another hotel")).unwrap();
        assert_eq!(store.acked_posts(), 3);
        let answered = store.try_query(&query(), Ranking::Sum).unwrap();
        drop(store);
        let (store2, report) = IngestStore::open(fs, StoreConfig::default()).unwrap();
        assert_eq!(report.live_posts, 3, "retry must not duplicate tweet 2 in the log");
        assert_eq!(store2.try_query(&query(), Ranking::Sum).unwrap(), answered);
    }

    #[test]
    fn replayed_exact_duplicate_is_skipped_and_mismatch_refused() {
        // Hand-craft the crash shape the writer can leave when an append
        // fails after its frame became durable and the process dies
        // before healing: the same post twice, under distinct seqs.
        let (fs, _) = SimFs::new(15);
        {
            let mut w =
                crate::log::WalWriter::open(fs.clone(), crate::log::WalConfig::default(), 0)
                    .unwrap();
            let p = post(1, 10, 43.70, -79.42, "grand hotel");
            w.append(&WalRecord { seq: 1, post: p.clone() }).unwrap();
            w.append(&WalRecord { seq: 2, post: p }).unwrap();
            w.append(&WalRecord { seq: 3, post: post(2, 11, 43.71, -79.41, "hotel bar") }).unwrap();
        }
        let walfs: Arc<dyn WalFs> = Arc::clone(&fs) as Arc<dyn WalFs>;
        let (store, report) =
            IngestStore::open(Arc::clone(&walfs), StoreConfig::default()).unwrap();
        assert_eq!(report.live_posts, 2, "the exact duplicate collapses to one record");
        assert_eq!(store.acked_posts(), 2);
        drop(store);

        // Same id over a different payload is *not* a crash signature.
        let (fs2, _) = SimFs::new(16);
        {
            let mut w =
                crate::log::WalWriter::open(fs2.clone(), crate::log::WalConfig::default(), 0)
                    .unwrap();
            w.append(&WalRecord { seq: 1, post: post(1, 10, 43.70, -79.42, "grand hotel") })
                .unwrap();
            w.append(&WalRecord { seq: 2, post: post(1, 10, 43.70, -79.42, "different text") })
                .unwrap();
        }
        let walfs2: Arc<dyn WalFs> = Arc::clone(&fs2) as Arc<dyn WalFs>;
        assert!(matches!(
            IngestStore::open(walfs2, StoreConfig::default()),
            Err(WalError::DuplicateTweet(TweetId(1)))
        ));
    }

    #[test]
    fn manifest_roundtrip_and_corruption() {
        let m = Manifest {
            generation: 3,
            sealed_seq: 120,
            files: vec![(seal_name(3, 'd'), 57), (seal_name(3, '9'), 4)],
        };
        let bytes = m.encode();
        assert_eq!(Manifest::decode(&bytes).unwrap(), m);
        let mut bad = bytes.clone();
        let at = bad.len() / 2;
        bad[at] ^= 0x01;
        assert!(matches!(Manifest::decode(&bad), Err(WalError::Corrupt { .. })));
    }

    #[test]
    fn replies_loosen_bounds_and_queries_stay_exact() {
        let (fs, _) = SimFs::new(13);
        let (store, _) = open(&fs);
        store.ingest(post(1, 10, 43.70, -79.42, "grand hotel opening")).unwrap();
        for i in 0..5 {
            store
                .ingest(Post::reply(
                    TweetId(100 + i),
                    UserId(20 + i),
                    Point::new_unchecked(43.70, -79.42),
                    "what a hotel",
                    TweetId(1),
                    UserId(10),
                ))
                .unwrap();
        }
        let sum = store.try_query(&query(), Ranking::Sum).unwrap();
        let max = store.try_query(&query(), Ranking::Max(BoundsMode::HotKeywords)).unwrap();
        assert!(!sum.is_empty() && !max.is_empty());
        // The thread root's author benefits from the replies under Sum.
        assert_eq!(sum[0].user, UserId(10));
        drop(store);
        let (store2, _) = open(&fs);
        assert_eq!(store2.try_query(&query(), Ranking::Sum).unwrap(), sum);
        assert_eq!(store2.try_query(&query(), Ranking::Max(BoundsMode::HotKeywords)).unwrap(), max);
    }
}
