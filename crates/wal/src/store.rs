//! The crash-safe ingest store: WAL-fronted LSM over the TkLUS engine.
//!
//! # Shape
//!
//! ```text
//!   ingest ──▶ WAL append (fsync) ──▶ apply to live state ──▶ ack
//!                                        │
//!              sealed engine             ▼
//!              (immutable index     MemtableIndex (live postings)
//!               over sealed posts,  + engine metadata/bounds
//!               metadata over ALL     (mutated in place)
//!               acked posts)
//!                      ▲
//!                      └── compaction: touched geohash partitions
//!                          rewritten, untouched ones carried forward
//!                          by name; built OFF the latch, installed by
//!                          a seq-fenced swap under the write latch
//! ```
//!
//! The engine's inverted index covers only *sealed* posts; its metadata
//! database, thread cache, and popularity bounds cover *all* acked posts
//! (each ingest inserts metadata, invalidates the staled thread-cache
//! entries, and loosens the affected bounds — see
//! [`tklus_core::TklusEngine::try_insert_metadata`]). Queries merge the
//! sealed engine's candidates with the memtable's into one
//! tweet-id-ordered stream, which reproduces a from-scratch engine's
//! answers **bitwise** (the oracle suite asserts equality, not closeness):
//!
//! * Sum: sealed [`TklusEngine::try_partial_sum`] rows and memtable rows
//!   (scored by the identical per-candidate sequence) merge by tweet id —
//!   the monolithic fold order — then fold, blend, and rank exactly as
//!   Algorithm 4 does.
//! * Max: the sealed top-k and the exhaustively-scored memtable users
//!   merge by per-user maximum. Exact because `user_score` is monotone in
//!   its keyword part (so per-user max of scores equals score of max ρ)
//!   and a user outside the sealed top-k with no live tweet is dominated
//!   by k users in the merged set.
//!
//! # Incremental, off-latch compaction
//!
//! Seal files are partitioned by the leading geohash character — the
//! paper's coarse spatial grouping — and the manifest names one file per
//! partition, LSM-style: a compaction rewrites only the partitions the
//! live memtable actually touched and **carries forward** every other
//! partition's file by name, so seal I/O is proportional to the delta's
//! spatial footprint, not the corpus.
//!
//! The protocol has three phases:
//!
//! 1. **Snapshot** (read lock): record the seq fence (the highest acked
//!    seq), clone the acked set, and note which partitions the live
//!    records touch. Ingest resumes the moment the lock drops.
//! 2. **Build** (no lock): rebuild the engine over the snapshot, write
//!    the touched partitions' replacement seal files (fsynced), and stage
//!    `MANIFEST.tmp` — fsynced but **not** renamed. Queries and ingest
//!    run concurrently throughout.
//! 3. **Swap** (write lock): `MANIFEST.tmp → MANIFEST` is the atomic
//!    commit point; then install the built engine, advance the sealed
//!    prefix to the fence, and re-apply the records acked *during* the
//!    build (their seqs are above the fence) onto a fresh memtable —
//!    they stay live and are absorbed by the next round. The latch is
//!    held only for the rename plus the suffix replay, never for the
//!    O(corpus) build.
//!
//! # Crash safety
//!
//! An ingest is acked only after its WAL frame is appended (and, under
//! [`FsyncPolicy::Always`], fsynced). Recovery replays the log over the
//! sealed state named by `MANIFEST`, skipping records compaction already
//! absorbed (`seq ≤ sealed_seq`), truncating the final segment's torn
//! tail, and refusing mid-log corruption. A crash anywhere in the
//! compaction schedule leaves either the old manifest (the WAL still
//! replays everything above the old fence) or the new one (replay skips
//! the newly sealed prefix) — never a mix; partition files staged by a
//! build that never committed are unreferenced and swept at reopen.
//!
//! The WAL trim after a swap is **seq-fenced**: a segment is removed only
//! when every record it holds is at or below the fence. Records acked
//! during an off-latch build land in pre-rotation segments but carry
//! post-fence seqs, so the trim keeps their segments alive until a later
//! round absorbs them.
//!
//! # Failure containment
//!
//! If applying an acked record to the live state fails part-way (a
//! metadata page fault mid-insert), the store rebuilds the whole live
//! state from the acked set — the in-memory equivalent of a WAL redo. If
//! *that* also fails the store latches [`WalError::Poisoned`]: every call
//! fails fast, no query ever observes a half-applied tweet, and reopening
//! recovers from durable state. Compaction failures are counted in
//! [`IngestStore::compaction_stats`]; the background compactor backs off
//! exponentially on repeated failure and the serving layer surfaces the
//! persistent-failure flag through `/health`.
//!
//! [`FsyncPolicy::Always`]: crate::log::FsyncPolicy::Always

use crate::error::WalError;
use crate::frame::{decode_step, encode_frame, FrameStep};
use crate::fs::WalFs;
use crate::log::{parse_segment_name, replay, RecoveryReport, WalConfig, WalWriter};
use crate::memtable::{MemtableIndex, DEFAULT_PACK_THRESHOLD};
use crate::record::{decode_record, encode_record, WalRecord};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tklus_core::score::{tweet_keyword_score, user_score};
use tklus_core::{top_k, EngineConfig, RankedUser, Ranking, TklusEngine};
use tklus_geo::{circle_cover, encode, Geohash};
use tklus_model::{Corpus, Post, TklusQuery, TweetId, UserId};
use tklus_storage::crc32;

/// Manifest header line.
const MANIFEST_MAGIC: &str = "TKLUSMANIFEST 1";
/// The manifest's durable name.
pub const MANIFEST: &str = "MANIFEST";
const MANIFEST_TMP: &str = "MANIFEST.tmp";

/// Consecutive compaction failures after which the store reports
/// persistent failure (and `/health` goes unhealthy).
const PERSISTENT_FAILURE_THRESHOLD: u64 = 3;
/// Ceiling for the background compactor's exponential backoff.
const MAX_COMPACTOR_BACKOFF: Duration = Duration::from_secs(5);

/// How [`IngestStore::compact`] schedules its work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CompactionStrategy {
    /// Seal under the write latch held for the whole build, rewriting
    /// every partition each generation — the pre-incremental behaviour,
    /// kept as the `compaction_stall` bench baseline.
    FullLatch,
    /// Snapshot under a read lock, build the replacement partitions and
    /// engine off the latch, then take the write latch only for the
    /// seq-fenced manifest swap. Rewrites only touched partitions.
    Incremental,
}

/// Ingest store configuration.
#[derive(Clone)]
pub struct StoreConfig {
    /// Engine build parameters (scoring, index, caches, metadata store).
    pub engine: EngineConfig,
    /// WAL segment size and fsync policy.
    pub wal: WalConfig,
    /// Background compactor: seal once this many posts are live. The
    /// synchronous [`IngestStore::compact`] ignores it.
    pub compact_threshold: usize,
    /// Background compactor poll interval (also the base of its failure
    /// backoff).
    pub compact_interval: Duration,
    /// Compaction scheduling (off-latch incremental by default).
    pub strategy: CompactionStrategy,
    /// Memtable delta index: pack a term/cell list into §13 block
    /// postings once this many posts are live (`usize::MAX` disables).
    pub delta_index_threshold: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            engine: EngineConfig::default(),
            wal: WalConfig::default(),
            compact_threshold: 1024,
            compact_interval: Duration::from_millis(20),
            strategy: CompactionStrategy::Incremental,
            delta_index_threshold: DEFAULT_PACK_THRESHOLD,
        }
    }
}

/// What [`IngestStore::open`] found and rebuilt.
#[derive(Debug, Clone, Default)]
pub struct OpenReport {
    /// WAL scan outcome (segments, torn-tail truncation).
    pub recovery: RecoveryReport,
    /// Posts loaded from sealed partitions.
    pub sealed_posts: usize,
    /// Posts replayed from the WAL into the live memtable.
    pub live_posts: usize,
    /// Compaction generation of the manifest loaded (0 = none).
    pub generation: u64,
}

/// The sealed state a manifest names.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Manifest {
    generation: u64,
    sealed_seq: u64,
    /// `(file name, record count)` pairs, in manifest order. Files from
    /// older generations carried forward keep their original names.
    files: Vec<(String, usize)>,
}

impl Manifest {
    fn encode(&self) -> Vec<u8> {
        let mut text = String::new();
        text.push_str(MANIFEST_MAGIC);
        text.push('\n');
        text.push_str(&format!("generation {}\n", self.generation));
        text.push_str(&format!("sealed_seq {}\n", self.sealed_seq));
        for (name, count) in &self.files {
            text.push_str(&format!("file {name} {count}\n"));
        }
        let crc = crc32(text.as_bytes());
        text.push_str(&format!("crc {crc:08x}\n"));
        text.into_bytes()
    }

    fn decode(bytes: &[u8]) -> Result<Self, WalError> {
        let corrupt = |offset: usize, detail: &str| WalError::Corrupt {
            path: MANIFEST.to_string(),
            offset,
            detail: detail.to_string(),
        };
        let text = std::str::from_utf8(bytes).map_err(|_| corrupt(0, "manifest is not UTF-8"))?;
        let Some(crc_at) = text.rfind("crc ") else {
            return Err(corrupt(0, "manifest missing crc line"));
        };
        let declared = text[crc_at + 4..].trim();
        let declared = u32::from_str_radix(declared, 16)
            .map_err(|_| corrupt(crc_at, "manifest crc is not hex"))?;
        if crc32(&text.as_bytes()[..crc_at]) != declared {
            return Err(corrupt(crc_at, "manifest checksum mismatch"));
        }
        let mut lines = text[..crc_at].lines();
        if lines.next() != Some(MANIFEST_MAGIC) {
            return Err(corrupt(0, "bad manifest magic"));
        }
        let mut m = Manifest::default();
        let mut have_gen = false;
        let mut have_seq = false;
        for line in lines {
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("generation") => {
                    m.generation = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| corrupt(0, "bad generation line"))?;
                    have_gen = true;
                }
                Some("sealed_seq") => {
                    m.sealed_seq = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| corrupt(0, "bad sealed_seq line"))?;
                    have_seq = true;
                }
                Some("file") => {
                    let name = parts.next().ok_or_else(|| corrupt(0, "bad file line"))?;
                    let count: usize = parts
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| corrupt(0, "bad file line"))?;
                    m.files.push((name.to_string(), count));
                }
                // Same forward-compat posture as the page layer: an
                // unknown field under a valid checksum is a future writer,
                // not corruption — but we cannot honour what we cannot
                // parse, so refuse loudly rather than drop state.
                Some(other) => {
                    return Err(corrupt(0, &format!("unknown manifest field {other:?}")))
                }
                None => {}
            }
        }
        if !(have_gen && have_seq) {
            return Err(corrupt(0, "manifest missing generation or sealed_seq"));
        }
        Ok(m)
    }
}

/// The name of generation `generation`'s seal file for geohash group `g`.
pub fn seal_name(generation: u64, group: char) -> String {
    format!("seal-{generation:08}-{group}.log")
}

/// Parses a seal-file name back to `(generation, group)`; `None` when
/// the name is not of [`seal_name`]'s form.
pub fn parse_seal_name(name: &str) -> Option<(u64, char)> {
    let rest = name.strip_prefix("seal-")?.strip_suffix(".log")?;
    let (digits, tail) = rest.split_once('-')?;
    if digits.len() != 8 {
        return None;
    }
    let mut chars = tail.chars();
    let group = chars.next()?;
    if chars.next().is_some() {
        return None;
    }
    Some((digits.parse().ok()?, group))
}

/// Mutable state under the store's lock.
struct Inner {
    engine: TklusEngine,
    memtable: MemtableIndex,
    wal: WalWriter,
    /// Every acked record, sequence order. `acked[..sealed_len]` is the
    /// sealed prefix the engine's index covers.
    acked: Vec<WalRecord>,
    /// Geohash partition (leading geohash character) per acked record,
    /// parallel to `acked`. Stable across reopen: the geohash length is
    /// configuration, not state.
    groups: Vec<char>,
    sealed_len: usize,
    /// Tweet id → index into `acked` (duplicate detection, ancestor text).
    by_id: HashMap<TweetId, usize>,
    /// Direct-reply fan-out per target, over all acked posts (feeds the
    /// loosen-only global bound).
    fanout: HashMap<TweetId, usize>,
    /// Highest acked seq per WAL segment ordinal. The seq-fenced trim
    /// consults this: a segment may be removed only once every record it
    /// holds is at or below the sealed fence.
    segment_max_seq: HashMap<u64, u64>,
    next_seq: u64,
    /// Highest seq ever acked — the compaction fence source, tracked
    /// incrementally instead of re-scanning `acked`.
    max_seq: u64,
    sealed_seq: u64,
    generation: u64,
    /// The manifest's current partition files: group → (name, records).
    seal_files: BTreeMap<char, (String, usize)>,
    poisoned: bool,
}

/// Counters behind [`IngestStore::compaction_stats`].
#[derive(Default)]
struct CompactionStats {
    successes: AtomicU64,
    failures: AtomicU64,
    consecutive_failures: AtomicU64,
    last_error: Mutex<Option<String>>,
}

/// A snapshot of compaction outcomes, for metrics and health reporting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompactionReport {
    /// Rounds that completed (including empty-memtable no-ops).
    pub successes_total: u64,
    /// Rounds that returned an error.
    pub failures_total: u64,
    /// Failures since the last success.
    pub consecutive_failures: u64,
    /// True once `consecutive_failures` reaches the persistence
    /// threshold — the store is not sealing and needs attention.
    pub persistent_failure: bool,
    /// The most recent failure's rendering, if any failure ever happened.
    pub last_error: Option<String>,
}

/// The crash-safe streaming ingest store. Cheaply shareable across
/// threads behind an `Arc`; ingest takes the write lock, queries the
/// read lock, so a query can never observe an ingest half applied.
/// Incremental compaction holds the write lock only for its final swap.
pub struct IngestStore {
    fs: Arc<dyn WalFs>,
    config: StoreConfig,
    inner: RwLock<Inner>,
    /// Serializes compaction rounds (background + synchronous callers).
    compact_gate: Mutex<()>,
    stats: CompactionStats,
}

impl IngestStore {
    /// Opens the store: loads the manifest's sealed partitions, sweeps
    /// stray files an uncommitted build left behind, replays the WAL
    /// (healing a torn tail), rebuilds the live memtable, and starts a
    /// fresh WAL segment. Idempotent — opening twice in a row changes
    /// nothing the second time.
    pub fn open(fs: Arc<dyn WalFs>, config: StoreConfig) -> Result<(Self, OpenReport), WalError> {
        let listing = fs.list()?;
        let manifest = if listing.iter().any(|f| f == MANIFEST) {
            Manifest::decode(&fs.read(MANIFEST)?)?
        } else {
            Manifest::default()
        };

        // Sealed posts, from the files the manifest names. These were
        // fsynced before the manifest swap, so any invalid frame here is
        // real corruption, never a torn tail.
        let mut sealed: Vec<WalRecord> = Vec::new();
        let mut seal_files: BTreeMap<char, (String, usize)> = BTreeMap::new();
        for (name, count) in &manifest.files {
            let Some((_, group)) = parse_seal_name(name) else {
                return Err(WalError::Corrupt {
                    path: MANIFEST.to_string(),
                    offset: 0,
                    detail: format!("manifest names unparseable seal file {name:?}"),
                });
            };
            seal_files.insert(group, (name.clone(), *count));
            let buf = fs.read(name)?;
            let mut offset = 0;
            let mut in_file = 0usize;
            loop {
                match decode_step(&buf, offset) {
                    FrameStep::CleanEnd => break,
                    FrameStep::Frame { payload_start, len, next } => {
                        let rec = decode_record(&buf[payload_start..payload_start + len]).map_err(
                            |detail| WalError::Corrupt {
                                path: name.clone(),
                                offset: payload_start,
                                detail,
                            },
                        )?;
                        sealed.push(rec);
                        in_file += 1;
                        offset = next;
                    }
                    FrameStep::Torn { reason } | FrameStep::Bad { reason } => {
                        return Err(WalError::Corrupt {
                            path: name.clone(),
                            offset,
                            detail: reason.to_string(),
                        });
                    }
                }
            }
            if in_file != *count {
                return Err(WalError::Corrupt {
                    path: name.clone(),
                    offset: buf.len(),
                    detail: format!("manifest promises {count} records, file holds {in_file}"),
                });
            }
        }
        sealed.sort_by_key(|r| r.seq);

        // Sweep what an uncommitted build left behind: partition files no
        // manifest names and a staged-but-unrenamed manifest. Both are
        // invisible to recovery (the rename never happened), so removing
        // them is a no-op on state — it just stops generations of strays
        // accumulating across crash/reopen cycles.
        let named: HashSet<&str> = manifest.files.iter().map(|(n, _)| n.as_str()).collect();
        for name in &listing {
            if name == MANIFEST_TMP || (name.starts_with("seal-") && !named.contains(name.as_str()))
            {
                fs.remove(name)?;
            }
        }

        // Live posts, from the WAL. Records compaction already absorbed
        // (seq ≤ sealed_seq) are skipped — the crash-between-swap-and-trim
        // window leaves them in the log, and replay must be idempotent.
        // An *exact* duplicate (same post, a later seq) is the benign
        // signature of a failed-but-durable append followed by a client
        // retry: keep the first copy. The same tweet id over a different
        // payload is not something the write path can produce — refuse it
        // rather than let `Corpus::new`'s duplicate check wedge reopen.
        let (walked, recovery) = replay(fs.as_ref())?;
        let mut live: Vec<WalRecord> = Vec::new();
        let mut live_at: HashMap<TweetId, usize> = HashMap::new();
        for rec in walked {
            if rec.seq <= manifest.sealed_seq {
                continue;
            }
            if let Some(&at) = live_at.get(&rec.post.id) {
                if live[at].post == rec.post {
                    continue;
                }
                return Err(WalError::DuplicateTweet(rec.post.id));
            }
            live_at.insert(rec.post.id, live.len());
            live.push(rec);
        }

        let report = OpenReport {
            recovery: recovery.clone(),
            sealed_posts: sealed.len(),
            live_posts: live.len(),
            generation: manifest.generation,
        };

        let next_seq =
            sealed.iter().chain(live.iter()).map(|r| r.seq).max().unwrap_or(manifest.sealed_seq)
                + 1;
        let wal = WalWriter::open(
            Arc::clone(&fs),
            config.wal,
            recovery.max_ordinal.map_or(0, |o| o + 1),
        )?;

        let engine = Self::build_engine(&sealed, &config.engine)?;
        let groups: Vec<char> = sealed.iter().map(|r| Self::post_group(&engine, &r.post)).collect();
        let mut inner = Inner {
            engine,
            memtable: MemtableIndex::with_pack_threshold(config.delta_index_threshold),
            wal,
            acked: sealed,
            groups,
            sealed_len: 0,
            by_id: HashMap::new(),
            fanout: HashMap::new(),
            segment_max_seq: recovery.segment_max_seqs.iter().copied().collect(),
            next_seq,
            max_seq: manifest.sealed_seq,
            sealed_seq: manifest.sealed_seq,
            generation: manifest.generation,
            seal_files,
            poisoned: false,
        };
        inner.sealed_len = inner.acked.len();
        for (i, rec) in inner.acked.iter().enumerate() {
            inner.by_id.insert(rec.post.id, i);
            if let Some(r) = rec.post.in_reply_to {
                *inner.fanout.entry(r.target).or_insert(0) += 1;
            }
        }
        let store = Self {
            fs,
            config,
            inner: RwLock::new(inner),
            compact_gate: Mutex::new(()),
            stats: CompactionStats::default(),
        };
        {
            let mut inner = store.inner.write();
            for rec in live {
                store.admit(&mut inner, rec)?;
            }
        }
        Ok((store, report))
    }

    fn build_engine(sealed: &[WalRecord], config: &EngineConfig) -> Result<TklusEngine, WalError> {
        let corpus = Corpus::new(sealed.iter().map(|r| r.post.clone()).collect())
            .map_err(|d| WalError::DuplicateTweet(d.0))?;
        let (engine, _report) = TklusEngine::try_build(&corpus, config)?;
        Ok(engine)
    }

    /// Appends `rec` to the acked set and applies it to the live state;
    /// on apply failure falls back to a full rebuild (see the module docs).
    fn admit(&self, inner: &mut Inner, rec: WalRecord) -> Result<u64, WalError> {
        let seq = rec.seq;
        inner.by_id.insert(rec.post.id, inner.acked.len());
        inner.groups.push(Self::post_group(&inner.engine, &rec.post));
        inner.acked.push(rec);
        inner.max_seq = inner.max_seq.max(seq);
        let at = inner.acked.len() - 1;
        match self.apply_live(inner, at) {
            Ok(()) => Ok(seq),
            Err(_) => match self.rebuild_live(inner) {
                Ok(()) => Ok(seq),
                Err(_) => {
                    inner.poisoned = true;
                    Err(WalError::Poisoned)
                }
            },
        }
    }

    /// Applies `inner.acked[at]` to the engine metadata, bounds, and
    /// memtable. Must only be called with the record already in `acked`:
    /// on error the caller rebuilds from that set.
    fn apply_live(&self, inner: &mut Inner, at: usize) -> Result<(), WalError> {
        let rec = inner.acked[at].clone();
        let post = &rec.post;
        inner.engine.try_insert_metadata(post)?;

        // Loosen-only bound refresh: the new post grows every ancestor's
        // thread, so each ancestor's φ may rise; raise the hot bound of
        // every term those posts carry, and the global bound for the
        // target's new fan-out. Bounds only ever prune *sealed*
        // candidates (memtable candidates are scored exhaustively), so
        // over-loosening costs pruning power, never correctness.
        if let Some(reply) = post.in_reply_to {
            let count = {
                let entry = inner.fanout.entry(reply.target).or_insert(0);
                *entry += 1;
                *entry
            };
            inner.engine.loosen_global_for_fanout(count);
            let mut affected = vec![post.id];
            affected.extend(inner.engine.try_ancestor_chain(post)?);
            for tid in affected {
                let phi = inner.engine.try_thread_phi(tid)?;
                let Some(&idx) = inner.by_id.get(&tid) else { continue };
                let text = inner.acked[idx].post.text.clone();
                for term in inner.engine.text_terms(&text) {
                    inner.engine.loosen_hot_bound(term, phi);
                }
            }
        }

        let cell = Self::post_cell(&inner.engine, post)?;
        let terms = inner.engine.term_counts(&post.text);
        inner.memtable.insert(post.id, post.user, cell, &terms);
        Ok(())
    }

    /// Re-applies `acked[from..]` — metadata, loosen-only bounds (with
    /// *final* fan-out counts, which can only over-loosen), and memtable
    /// postings — onto an engine that seals exactly `acked[..from]`.
    /// Shared by the post-swap suffix replay and the poison-recovery
    /// rebuild, so the two paths cannot drift.
    fn replay_suffix(
        engine: &mut TklusEngine,
        memtable: &mut MemtableIndex,
        acked: &[WalRecord],
        by_id: &HashMap<TweetId, usize>,
        fanout: &HashMap<TweetId, usize>,
        from: usize,
    ) -> Result<(), WalError> {
        for at in from..acked.len() {
            let post = acked[at].post.clone();
            engine.try_insert_metadata(&post)?;
            if let Some(reply) = post.in_reply_to {
                engine.loosen_global_for_fanout(fanout[&reply.target]);
                let mut affected = vec![post.id];
                affected.extend(engine.try_ancestor_chain(&post)?);
                for tid in affected {
                    let phi = engine.try_thread_phi(tid)?;
                    let Some(&idx) = by_id.get(&tid) else { continue };
                    let text = acked[idx].post.text.clone();
                    for term in engine.text_terms(&text) {
                        engine.loosen_hot_bound(term, phi);
                    }
                }
            }
            let cell = Self::post_cell(engine, &post)?;
            let terms = engine.term_counts(&post.text);
            memtable.insert(post.id, post.user, cell, &terms);
        }
        Ok(())
    }

    /// The in-memory WAL redo: throw the live state away and rebuild it
    /// from the acked set. Restores the invariant "live state ≡ fold of
    /// acked records" after a half-applied record.
    fn rebuild_live(&self, inner: &mut Inner) -> Result<(), WalError> {
        let sealed = &inner.acked[..inner.sealed_len];
        let mut engine = Self::build_engine(sealed, &self.config.engine)?;
        let mut memtable = self.fresh_memtable();
        let mut fanout: HashMap<TweetId, usize> = HashMap::new();
        for rec in &inner.acked {
            if let Some(r) = rec.post.in_reply_to {
                *fanout.entry(r.target).or_insert(0) += 1;
            }
        }
        Self::replay_suffix(
            &mut engine,
            &mut memtable,
            &inner.acked,
            &inner.by_id,
            &fanout,
            inner.sealed_len,
        )?;
        inner.engine = engine;
        inner.memtable = memtable;
        inner.fanout = fanout;
        inner.poisoned = false;
        Ok(())
    }

    fn post_cell(engine: &TklusEngine, post: &Post) -> Result<Geohash, WalError> {
        encode(&post.location, engine.index().geohash_len()).map_err(|e| WalError::Corrupt {
            path: String::new(),
            offset: 0,
            detail: format!("post location failed to encode: {e:?}"),
        })
    }

    /// The post's seal partition: its geohash's leading character.
    /// Infallible so `groups` stays parallel to `acked` on every path;
    /// the `'0'` fallback is unreachable in practice because
    /// [`Self::apply_live`] refuses posts whose location will not encode.
    fn post_group(engine: &TklusEngine, post: &Post) -> char {
        encode(&post.location, engine.index().geohash_len())
            .ok()
            .and_then(|cell| cell.to_string().chars().next())
            .unwrap_or('0')
    }

    /// A memtable tuned to this store's delta-index threshold.
    fn fresh_memtable(&self) -> MemtableIndex {
        MemtableIndex::with_pack_threshold(self.config.delta_index_threshold)
    }

    /// Ingests one post: duplicate check, durable WAL append, live apply.
    /// Returns the record's sequence number. When this returns `Ok` under
    /// [`FsyncPolicy::Always`], the post survives any crash.
    ///
    /// [`FsyncPolicy::Always`]: crate::log::FsyncPolicy::Always
    pub fn ingest(&self, post: Post) -> Result<u64, WalError> {
        let mut inner = self.inner.write();
        if inner.poisoned {
            return Err(WalError::Poisoned);
        }
        if inner.by_id.contains_key(&post.id) {
            return Err(WalError::DuplicateTweet(post.id));
        }
        // The seq is burned even when the append fails: a failed append's
        // frame may still be durable (a sync error after a complete
        // write), and reusing the seq for the client's retry would put
        // two records for the same tweet in the log. Gaps are harmless —
        // replay only needs seqs monotone.
        let rec = WalRecord { seq: inner.next_seq, post };
        inner.next_seq += 1;
        inner.wal.append(&rec)?;
        // `append` rotates *before* writing, so the current ordinal is
        // the segment this record landed in — record it for the fenced
        // trim before anything can fail.
        let ordinal = inner.wal.current_ordinal();
        let entry = inner.segment_max_seq.entry(ordinal).or_insert(rec.seq);
        *entry = (*entry).max(rec.seq);
        self.admit(&mut inner, rec)
    }

    /// Answers a query over the consistent snapshot "sealed ∪ live",
    /// bitwise-equal to a from-scratch engine over the same posts (module
    /// docs give the argument; the oracle suite asserts it).
    pub fn try_query(&self, q: &TklusQuery, ranking: Ranking) -> Result<Vec<RankedUser>, WalError> {
        let inner = self.inner.read();
        if inner.poisoned {
            return Err(WalError::Poisoned);
        }
        let engine = &inner.engine;
        let live = self.live_candidates(&inner, q)?;
        match ranking {
            Ranking::Sum => {
                let sealed = engine.try_partial_sum(q)?;
                // Fold the sealed and live streams in one linear merge by
                // tweet id: the sets are disjoint (a tweet is sealed or
                // live, never both), both streams are id-sorted, and the
                // merged order is the monolithic fold order — so the
                // float association matches a from-scratch engine without
                // the O(sealed × live) of mid-vector inserts.
                let mut users: HashMap<UserId, f64> = HashMap::new();
                let mut live_it = live.into_iter().peekable();
                for row in sealed.rows {
                    while live_it.peek().is_some_and(|&(tid, _, _)| tid < row.tweet) {
                        let (_, uid, rho) = live_it.next().expect("peeked");
                        *users.entry(uid).or_insert(0.0) += rho;
                    }
                    *users.entry(row.user).or_insert(0.0) += row.rho;
                }
                for (_, uid, rho) in live_it {
                    *users.entry(uid).or_insert(0.0) += rho;
                }
                let mut entries: Vec<(UserId, f64)> = users.into_iter().collect();
                entries.sort_by_key(|e| e.0);
                let mut ranked = Vec::with_capacity(entries.len());
                for (uid, rho) in entries {
                    let delta = engine.try_user_distance_score(&q.location, q.radius_km, uid)?;
                    ranked.push(RankedUser {
                        user: uid,
                        score: user_score(rho, delta, engine.scoring()),
                    });
                }
                Ok(top_k(ranked, q.k))
            }
            Ranking::Max(_) => {
                let sealed = engine.try_query(q, ranking)?;
                // Per-user best keyword relevance over the live tweets.
                let mut live_best: HashMap<UserId, f64> = HashMap::new();
                for (_tid, uid, rho) in live {
                    let entry = live_best.entry(uid).or_insert(f64::NEG_INFINITY);
                    if rho > *entry {
                        *entry = rho;
                    }
                }
                let mut best: HashMap<UserId, f64> = HashMap::new();
                for ru in sealed.users {
                    best.insert(ru.user, ru.score);
                }
                let mut live_users: Vec<(UserId, f64)> = live_best.into_iter().collect();
                live_users.sort_by_key(|e| e.0);
                for (uid, rho) in live_users {
                    let delta = engine.try_user_distance_score(&q.location, q.radius_km, uid)?;
                    let score = user_score(rho, delta, engine.scoring());
                    let entry = best.entry(uid).or_insert(f64::NEG_INFINITY);
                    if score > *entry {
                        *entry = score;
                    }
                }
                let ranked =
                    best.into_iter().map(|(user, score)| RankedUser { user, score }).collect();
                Ok(top_k(ranked, q.k))
            }
        }
    }

    /// Scores the memtable's candidates for `q` with the exact
    /// per-candidate sequence of Algorithm 4/5's relevance stage: time
    /// window, metadata row, radius, thread popularity, keyword score ×
    /// recency. Returns id-sorted `(tweet, author, ρ)` rows.
    fn live_candidates(
        &self,
        inner: &Inner,
        q: &TklusQuery,
    ) -> Result<Vec<(TweetId, UserId, f64)>, WalError> {
        let engine = &inner.engine;
        if inner.memtable.is_empty() {
            return Ok(Vec::new());
        }
        let scoring = engine.scoring();
        let cover =
            circle_cover(&q.location, q.radius_km, engine.index().geohash_len(), scoring.metric)
                .expect("index geohash length is valid");
        let keywords: Vec<Option<String>> =
            q.keywords.iter().map(|kw| engine.normalize_keyword(kw)).collect();
        let cands = inner.memtable.candidates(&cover, &keywords, q.semantics).map_err(|e| {
            WalError::Corrupt {
                path: "<memtable delta index>".to_string(),
                offset: 0,
                detail: format!("packed postings decode failed: {e}"),
            }
        })?;
        let mut rows = Vec::new();
        for (tid, tf) in cands {
            if !q.in_time_range(tid.0) {
                continue;
            }
            let Some(row) = engine.db().try_row(tid).map_err(tklus_core::EngineError::from)? else {
                continue;
            };
            if q.location.distance_km(&row.location, scoring.metric) > q.radius_km {
                continue;
            }
            let phi = engine.try_thread_phi(tid)?;
            let rho = tweet_keyword_score(tf, phi, scoring) * q.recency_factor(tid.0);
            rows.push((tid, row.uid, rho));
        }
        Ok(rows)
    }

    /// Runs one compaction round under the configured
    /// [`CompactionStrategy`], recording the outcome for
    /// [`Self::compaction_stats`]. Rounds are serialized by an internal
    /// gate, so background and synchronous callers never interleave.
    /// Returns `true` when something was sealed.
    pub fn compact(&self) -> Result<bool, WalError> {
        let _gate = self.compact_gate.lock();
        let result = match self.config.strategy {
            CompactionStrategy::Incremental => self.compact_incremental(),
            CompactionStrategy::FullLatch => self.compact_full_latch(),
        };
        match &result {
            Ok(_) => {
                self.stats.successes.fetch_add(1, Ordering::Relaxed);
                self.stats.consecutive_failures.store(0, Ordering::Relaxed);
            }
            Err(e) => {
                self.stats.failures.fetch_add(1, Ordering::Relaxed);
                self.stats.consecutive_failures.fetch_add(1, Ordering::Relaxed);
                *self.stats.last_error.lock() = Some(e.to_string());
            }
        }
        result
    }

    /// Compaction outcome counters (metrics, `/health`).
    pub fn compaction_stats(&self) -> CompactionReport {
        let consecutive = self.stats.consecutive_failures.load(Ordering::Relaxed);
        CompactionReport {
            successes_total: self.stats.successes.load(Ordering::Relaxed),
            failures_total: self.stats.failures.load(Ordering::Relaxed),
            consecutive_failures: consecutive,
            persistent_failure: consecutive >= PERSISTENT_FAILURE_THRESHOLD,
            last_error: self.stats.last_error.lock().clone(),
        }
    }

    /// The off-latch incremental round (module docs, "Incremental,
    /// off-latch compaction"). The write latch is held only for the
    /// manifest rename and the replay of records acked during the build.
    fn compact_incremental(&self) -> Result<bool, WalError> {
        // Phase 1 — snapshot under the read lock: the fence, the acked
        // set, and which partitions the live records touch. Untouched
        // partitions' files are carried forward by name: their record
        // sets are exactly the old sealed prefix's (every live record's
        // partition is in `touched` by construction).
        let (snapshot, snapshot_groups, touched, carried, generation, fence) = {
            let inner = self.inner.read();
            if inner.poisoned {
                return Err(WalError::Poisoned);
            }
            if inner.memtable.is_empty() {
                return Ok(false);
            }
            let touched: BTreeSet<char> =
                inner.groups[inner.sealed_len..].iter().copied().collect();
            let carried: BTreeMap<char, (String, usize)> = inner
                .seal_files
                .iter()
                .filter(|(g, _)| !touched.contains(g))
                .map(|(g, f)| (*g, f.clone()))
                .collect();
            (
                inner.acked.clone(),
                inner.groups.clone(),
                touched,
                carried,
                inner.generation + 1,
                inner.max_seq,
            )
        };

        // Phase 2 — build outside any lock: the replacement engine, the
        // touched partitions' seal files, and the staged manifest.
        // Nothing here is visible to recovery until the rename below; on
        // error the staged files are swept (and reopen sweeps whatever a
        // crash leaves).
        let engine = Self::build_engine(&snapshot, &self.config.engine)?;
        let mut files = carried;
        let mut created = Vec::new();
        if let Err(e) = self.stage_partitions(
            generation,
            fence,
            &snapshot,
            &snapshot_groups,
            &touched,
            &mut files,
            &mut created,
        ) {
            self.remove_aborted(&created);
            return Err(e);
        }

        // Phase 3 — seq-fenced validate-and-swap under the write latch.
        let mut inner = self.inner.write();
        if inner.poisoned {
            drop(inner);
            self.remove_aborted(&created);
            return Err(WalError::Poisoned);
        }
        debug_assert_eq!(inner.generation + 1, generation, "compaction rounds are serialized");
        if let Err(e) = self.fs.rename(MANIFEST_TMP, MANIFEST) {
            drop(inner);
            self.remove_aborted(&created);
            return Err(e);
        }
        // ---- The rename is the commit point. The in-memory install
        // below mirrors exactly what the manifest now promises: sealed =
        // the snapshot, live = the records acked during the build (their
        // seqs are above the fence, so recovery replays them from the
        // WAL, which the fenced trim keeps).
        let sealed_len = snapshot.len();
        inner.sealed_len = sealed_len;
        inner.sealed_seq = fence;
        inner.generation = generation;
        inner.seal_files = files;
        inner.engine = engine;
        let mut memtable = self.fresh_memtable();
        let replayed = {
            let inner = &mut *inner;
            Self::replay_suffix(
                &mut inner.engine,
                &mut memtable,
                &inner.acked,
                &inner.by_id,
                &inner.fanout,
                sealed_len,
            )
        };
        match replayed {
            Ok(()) => inner.memtable = memtable,
            Err(_) => {
                // Same containment as `admit`: redo from the acked set,
                // poison on a second failure.
                if self.rebuild_live(&mut inner).is_err() {
                    inner.poisoned = true;
                    return Err(WalError::Poisoned);
                }
            }
        }
        inner.wal.rotate()?;
        self.trim_absorbed(&mut inner)?;
        Ok(true)
    }

    /// The pre-incremental behaviour: the write latch held for the whole
    /// build, every partition rewritten. Kept as the `compaction_stall`
    /// bench baseline (and a maximally-simple fallback).
    fn compact_full_latch(&self) -> Result<bool, WalError> {
        let mut inner = self.inner.write();
        if inner.poisoned {
            return Err(WalError::Poisoned);
        }
        if inner.memtable.is_empty() {
            return Ok(false);
        }
        let generation = inner.generation + 1;
        let fence = inner.max_seq;
        let engine = Self::build_engine(&inner.acked, &self.config.engine)?;
        let touched: BTreeSet<char> = inner.groups.iter().copied().collect();
        let mut files = BTreeMap::new();
        let mut created = Vec::new();
        if let Err(e) = self.stage_partitions(
            generation,
            fence,
            &inner.acked,
            &inner.groups,
            &touched,
            &mut files,
            &mut created,
        ) {
            self.remove_aborted(&created);
            return Err(e);
        }
        if let Err(e) = self.fs.rename(MANIFEST_TMP, MANIFEST) {
            self.remove_aborted(&created);
            return Err(e);
        }
        // ---- The rename is the commit point (same argument as the
        // incremental path, degenerate case: nothing was acked during
        // the build because the latch was held throughout).
        inner.sealed_len = inner.acked.len();
        inner.sealed_seq = fence;
        inner.generation = generation;
        inner.seal_files = files;
        inner.engine = engine;
        inner.memtable.clear();
        inner.wal.rotate()?;
        self.trim_absorbed(&mut inner)?;
        Ok(true)
    }

    /// Writes the replacement seal file for every touched partition —
    /// all snapshot records of that partition, framed and fsynced — and
    /// stages `MANIFEST.tmp` naming `files` (carried ∪ rewritten), also
    /// fsynced but **not** renamed: the caller owns the commit point.
    /// Every created name is pushed to `created` before any write to it,
    /// so the caller can sweep a partial stage.
    #[allow(clippy::too_many_arguments)]
    fn stage_partitions(
        &self,
        generation: u64,
        fence: u64,
        snapshot: &[WalRecord],
        snapshot_groups: &[char],
        touched: &BTreeSet<char>,
        files: &mut BTreeMap<char, (String, usize)>,
        created: &mut Vec<String>,
    ) -> Result<(), WalError> {
        for &group in touched {
            let name = seal_name(generation, group);
            let mut bytes = Vec::new();
            let mut count = 0usize;
            for (rec, &g) in snapshot.iter().zip(snapshot_groups) {
                if g == group {
                    encode_frame(&encode_record(rec), &mut bytes);
                    count += 1;
                }
            }
            created.push(name.clone());
            self.fs.create(&name)?;
            self.fs.append(&name, &bytes)?;
            self.fs.sync(&name)?;
            files.insert(group, (name, count));
        }
        let manifest =
            Manifest { generation, sealed_seq: fence, files: files.values().cloned().collect() };
        created.push(MANIFEST_TMP.to_string());
        self.fs.create(MANIFEST_TMP)?;
        self.fs.append(MANIFEST_TMP, &manifest.encode())?;
        self.fs.sync(MANIFEST_TMP)?;
        Ok(())
    }

    /// Best-effort sweep of a build that will not commit. The names are
    /// from a generation no manifest names, so failure here costs disk,
    /// never correctness — reopen sweeps strays again.
    fn remove_aborted(&self, created: &[String]) {
        for name in created {
            let _ = self.fs.remove(name);
        }
    }

    /// Trims durable state a committed swap absorbed. WAL segments are
    /// removed under the **seq fence**: only when every acked record the
    /// segment holds is at or below `sealed_seq` — records acked during
    /// an off-latch build sit in pre-rotation segments with post-fence
    /// seqs and must survive until a later round absorbs them. Seal
    /// files the manifest no longer names are removed outright.
    fn trim_absorbed(&self, inner: &mut Inner) -> Result<(), WalError> {
        let keep_ordinal = inner.wal.current_ordinal();
        let fence = inner.sealed_seq;
        let keep_names: HashSet<String> =
            inner.seal_files.values().map(|(n, _)| n.clone()).collect();
        for name in self.fs.list()? {
            if let Some(ordinal) = parse_segment_name(&name) {
                let absorbed = inner.segment_max_seq.get(&ordinal).is_none_or(|&max| max <= fence);
                if ordinal < keep_ordinal && absorbed {
                    self.fs.remove(&name)?;
                    inner.segment_max_seq.remove(&ordinal);
                }
            } else if name.starts_with("seal-") && !keep_names.contains(&name) {
                self.fs.remove(&name)?;
            }
        }
        Ok(())
    }

    /// The configuration the store was opened with.
    pub fn store_config(&self) -> &StoreConfig {
        &self.config
    }

    /// Total acked posts (sealed + live).
    pub fn acked_posts(&self) -> usize {
        self.inner.read().acked.len()
    }

    /// True when `tid` has been acked (sealed or live).
    pub fn contains_post(&self, tid: TweetId) -> bool {
        self.inner.read().by_id.contains_key(&tid)
    }

    /// A snapshot of every acked post, sequence order. The chaos suite
    /// builds its reference engine from exactly this set.
    pub fn posts(&self) -> Vec<Post> {
        self.inner.read().acked.iter().map(|r| r.post.clone()).collect()
    }

    /// Posts in the live memtable.
    pub fn live_posts(&self) -> usize {
        self.inner.read().memtable.len()
    }

    /// Term/cell lists the live memtable has packed into block postings.
    pub fn packed_delta_lists(&self) -> usize {
        self.inner.read().memtable.packed_lists()
    }

    /// Current compaction generation.
    pub fn generation(&self) -> u64 {
        self.inner.read().generation
    }

    /// Highest sequence number compaction has absorbed.
    pub fn sealed_seq(&self) -> u64 {
        self.inner.read().sealed_seq
    }

    /// True when the live state was lost and the store is failing fast.
    pub fn is_poisoned(&self) -> bool {
        self.inner.read().poisoned
    }

    /// Audits the loosen-only bound-refresh invariant: for every acked
    /// post `p` and every hot term `t` in its text, `hot_bound(t)` must
    /// dominate φ(p) under the *current* reply graph (live replies
    /// included), and the global bound must dominate φ(p) outright —
    /// Algorithm 5's prune consults exactly these bounds for sealed
    /// candidates. Returns the audit; the oracle suite asserts it clean.
    pub fn check_bounds_soundness(&self) -> Result<BoundsAudit, WalError> {
        let inner = self.inner.read();
        if inner.poisoned {
            return Err(WalError::Poisoned);
        }
        let engine = &inner.engine;
        let mut audit = BoundsAudit::default();
        for rec in &inner.acked {
            let phi = engine.try_thread_phi(rec.post.id)?;
            if engine.bounds().global() < phi {
                audit.violations.push((rec.post.id, None));
            }
            for term in engine.text_terms(&rec.post.text) {
                let Some(bound) = engine.bounds().hot_bound(term) else { continue };
                audit.checked += 1;
                if bound < phi {
                    audit.violations.push((rec.post.id, Some(term)));
                }
            }
        }
        Ok(audit)
    }

    /// Starts the background compactor: polls every
    /// `config.compact_interval` and seals once `compact_threshold` posts
    /// are live. Failures are *counted*, not swallowed: the outcome feeds
    /// [`Self::compaction_stats`] (so `/health` can surface a store that
    /// never seals) and repeated failure backs the poll off exponentially
    /// up to a few seconds instead of spin-failing every interval. The
    /// synchronous [`Self::compact`] stays available throughout.
    pub fn spawn_compactor(self: &Arc<Self>) -> CompactorHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let store = Arc::clone(self);
        let flag = Arc::clone(&stop);
        let join = std::thread::spawn(move || {
            let base = store.config.compact_interval.max(Duration::from_millis(1));
            let mut delay = base;
            loop {
                // Sleep in short slices so `stop()` never waits out a
                // multi-second backoff.
                let mut slept = Duration::ZERO;
                while slept < delay {
                    if flag.load(Ordering::Relaxed) {
                        return;
                    }
                    let slice = (delay - slept).min(Duration::from_millis(20));
                    std::thread::sleep(slice);
                    slept += slice;
                }
                if flag.load(Ordering::Relaxed) {
                    return;
                }
                if store.live_posts() < store.config.compact_threshold {
                    delay = base;
                    continue;
                }
                match store.compact() {
                    Ok(_) => delay = base,
                    Err(_) => {
                        let strikes =
                            store.stats.consecutive_failures.load(Ordering::Relaxed).min(8);
                        delay = base
                            .saturating_mul(1u32 << (strikes as u32))
                            .min(MAX_COMPACTOR_BACKOFF);
                    }
                }
            }
        });
        CompactorHandle { stop, join: Some(join) }
    }
}

/// Result of [`IngestStore::check_bounds_soundness`].
#[derive(Debug, Clone, Default)]
pub struct BoundsAudit {
    /// `(post, hot term)` pairs inspected.
    pub checked: usize,
    /// Posts whose φ exceeds a bound that should dominate it: `Some(t)` =
    /// the hot bound for `t`, `None` = the global bound. Always empty
    /// unless the loosen-only refresh is broken.
    pub violations: Vec<(TweetId, Option<tklus_text::TermId>)>,
}

/// Stops the background compactor on drop (or explicitly via
/// [`CompactorHandle::stop`]).
pub struct CompactorHandle {
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl CompactorHandle {
    /// Signals the compactor to exit and joins it.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for CompactorHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // test code: panics are the failure report

    use super::*;
    use crate::fs::SimFs;
    use tklus_core::{BoundsMode, Ranking};
    use tklus_geo::Point;
    use tklus_model::Semantics;

    fn post(id: u64, user: u64, lat: f64, lon: f64, text: &str) -> Post {
        Post::original(TweetId(id), UserId(user), Point::new_unchecked(lat, lon), text)
    }

    fn query() -> TklusQuery {
        TklusQuery::new(
            Point::new_unchecked(43.70, -79.42),
            25.0,
            vec!["hotel".into()],
            5,
            Semantics::Or,
        )
        .unwrap()
    }

    fn open(fs: &Arc<SimFs>) -> (IngestStore, OpenReport) {
        let fs: Arc<dyn WalFs> = Arc::clone(fs) as Arc<dyn WalFs>;
        IngestStore::open(fs, StoreConfig::default()).unwrap()
    }

    #[test]
    fn seal_name_roundtrips_through_parse() {
        assert_eq!(parse_seal_name(&seal_name(7, 'd')), Some((7, 'd')));
        assert_eq!(parse_seal_name(&seal_name(0, '9')), Some((0, '9')));
        assert_eq!(parse_seal_name("seal-0000000a-d.log"), None);
        assert_eq!(parse_seal_name("seal-00000001-dd.log"), None);
        assert_eq!(parse_seal_name("seal-001-d.log"), None);
        assert_eq!(parse_seal_name("wal-00000001.log"), None);
        assert_eq!(parse_seal_name("seal-00000001-d"), None);
    }

    #[test]
    fn ingest_query_reopen_cycle() {
        let (fs, _) = SimFs::new(11);
        let (store, report) = open(&fs);
        assert_eq!(report.sealed_posts + report.live_posts, 0);
        store.ingest(post(1, 10, 43.70, -79.42, "great hotel downtown")).unwrap();
        store.ingest(post(2, 11, 43.71, -79.40, "coffee first, hotel later")).unwrap();
        let users = store.try_query(&query(), Ranking::Sum).unwrap();
        assert_eq!(users.len(), 2);
        assert!(matches!(
            store.ingest(post(1, 9, 43.0, -79.0, "dup")),
            Err(WalError::DuplicateTweet(TweetId(1)))
        ));
        drop(store);
        let (store2, report2) = open(&fs);
        assert_eq!(report2.live_posts, 2);
        assert_eq!(store2.try_query(&query(), Ranking::Sum).unwrap(), users);
    }

    #[test]
    fn compaction_seals_and_reopen_reads_manifest() {
        let (fs, _) = SimFs::new(12);
        let (store, _) = open(&fs);
        for i in 1..=6 {
            store.ingest(post(i, i, 43.70 + i as f64 * 1e-3, -79.42, "hotel by the lake")).unwrap();
        }
        let before = store.try_query(&query(), Ranking::Max(BoundsMode::HotKeywords)).unwrap();
        assert!(store.compact().unwrap());
        assert_eq!(store.live_posts(), 0);
        assert_eq!(store.acked_posts(), 6);
        let after = store.try_query(&query(), Ranking::Max(BoundsMode::HotKeywords)).unwrap();
        assert_eq!(before, after, "compaction must not change answers");
        assert!(!store.compact().unwrap(), "empty memtable has nothing to seal");
        // Old WAL segments are gone; the log holds only the fresh one.
        let segments: Vec<String> =
            fs.list().unwrap().into_iter().filter(|n| parse_segment_name(n).is_some()).collect();
        assert_eq!(segments.len(), 1);
        drop(store);
        let (store2, report) = open(&fs);
        assert_eq!(report.sealed_posts, 6);
        assert_eq!(report.live_posts, 0);
        assert_eq!(report.generation, 1);
        assert_eq!(
            store2.try_query(&query(), Ranking::Max(BoundsMode::HotKeywords)).unwrap(),
            after
        );
    }

    #[test]
    fn full_latch_strategy_still_seals_and_answers_identically() {
        let (fs, _) = SimFs::new(18);
        let walfs: Arc<dyn WalFs> = Arc::clone(&fs) as Arc<dyn WalFs>;
        let config =
            StoreConfig { strategy: CompactionStrategy::FullLatch, ..StoreConfig::default() };
        let (store, _) = IngestStore::open(walfs, config.clone()).unwrap();
        for i in 1..=6 {
            store.ingest(post(i, i, 43.70 + i as f64 * 1e-3, -79.42, "hotel by the lake")).unwrap();
        }
        let before = store.try_query(&query(), Ranking::Sum).unwrap();
        assert!(store.compact().unwrap());
        assert_eq!(store.live_posts(), 0);
        assert_eq!(store.generation(), 1);
        assert_eq!(store.try_query(&query(), Ranking::Sum).unwrap(), before);
        drop(store);
        let walfs: Arc<dyn WalFs> = Arc::clone(&fs) as Arc<dyn WalFs>;
        let (store2, report) = IngestStore::open(walfs, config).unwrap();
        assert_eq!(report.sealed_posts, 6);
        assert_eq!(store2.try_query(&query(), Ranking::Sum).unwrap(), before);
    }

    #[test]
    fn incremental_compaction_rewrites_only_touched_partitions() {
        let (fs, _) = SimFs::new(19);
        let (store, _) = open(&fs);
        // Two far-apart geohash partitions: Toronto ('d') and Sydney ('r').
        store.ingest(post(1, 10, 43.70, -79.42, "toronto hotel")).unwrap();
        store.ingest(post(2, 11, -33.87, 151.21, "sydney hotel")).unwrap();
        assert!(store.compact().unwrap());
        let listing = fs.list().unwrap();
        assert!(listing.iter().any(|n| n == &seal_name(1, 'd')), "{listing:?}");
        assert!(listing.iter().any(|n| n == &seal_name(1, 'r')), "{listing:?}");
        // A delta confined to Toronto rewrites only Toronto's partition;
        // Sydney's generation-1 file is carried forward by name.
        store.ingest(post(3, 12, 43.71, -79.41, "toronto coffee")).unwrap();
        assert!(store.compact().unwrap());
        let listing = fs.list().unwrap();
        assert!(listing.iter().any(|n| n == &seal_name(2, 'd')), "{listing:?}");
        assert!(listing.iter().any(|n| n == &seal_name(1, 'r')), "{listing:?}");
        assert!(
            !listing.iter().any(|n| n == &seal_name(2, 'r')),
            "untouched partition must not be rewritten: {listing:?}"
        );
        assert!(!listing.iter().any(|n| n == &seal_name(1, 'd')), "{listing:?}");
        // Reopen reads the mixed-generation manifest bit-exactly.
        drop(store);
        let (store2, report) = open(&fs);
        assert_eq!(report.sealed_posts, 3);
        assert_eq!(report.generation, 2);
        assert!(store2.contains_post(TweetId(2)));
    }

    #[test]
    fn compaction_failures_count_and_clear_on_success() {
        let (sim, _) = SimFs::new(17);
        let flaky = crate::fs::FlakyFs::new(sim);
        let fs: Arc<dyn WalFs> = Arc::clone(&flaky) as Arc<dyn WalFs>;
        let (store, _) = IngestStore::open(Arc::clone(&fs), StoreConfig::default()).unwrap();
        for i in 1..=4 {
            store.ingest(post(i, i, 43.70, -79.42, "grand hotel")).unwrap();
        }
        for round in 1..=3u64 {
            flaky.fail_sync_at(1);
            assert!(store.compact().is_err());
            let stats = store.compaction_stats();
            assert_eq!(stats.failures_total, round);
            assert_eq!(stats.consecutive_failures, round);
            assert_eq!(stats.persistent_failure, round >= 3);
            assert!(stats.last_error.is_some());
        }
        assert!(store.compact().unwrap(), "store recovers once the fault clears");
        let stats = store.compaction_stats();
        assert_eq!(stats.successes_total, 1);
        assert_eq!(stats.failures_total, 3);
        assert_eq!(stats.consecutive_failures, 0);
        assert!(!stats.persistent_failure);
        assert_eq!(store.generation(), 1);
    }

    #[test]
    fn transient_append_failure_then_retry_survives_reopen() {
        let (sim, _) = SimFs::new(14);
        let flaky = crate::fs::FlakyFs::new(sim);
        let fs: Arc<dyn WalFs> = Arc::clone(&flaky) as Arc<dyn WalFs>;
        let (store, _) = IngestStore::open(Arc::clone(&fs), StoreConfig::default()).unwrap();
        store.ingest(post(1, 10, 43.70, -79.42, "grand hotel")).unwrap();
        // The frame lands whole but its fsync fails: no ack, but the
        // bytes are in the log. The client retries the identical post.
        flaky.fail_sync_at(1);
        assert!(store.ingest(post(2, 11, 43.71, -79.41, "hotel bar")).is_err());
        store.ingest(post(2, 11, 43.71, -79.41, "hotel bar")).unwrap();
        store.ingest(post(3, 12, 43.69, -79.43, "another hotel")).unwrap();
        assert_eq!(store.acked_posts(), 3);
        let answered = store.try_query(&query(), Ranking::Sum).unwrap();
        drop(store);
        let (store2, report) = IngestStore::open(fs, StoreConfig::default()).unwrap();
        assert_eq!(report.live_posts, 3, "retry must not duplicate tweet 2 in the log");
        assert_eq!(store2.try_query(&query(), Ranking::Sum).unwrap(), answered);
    }

    #[test]
    fn replayed_exact_duplicate_is_skipped_and_mismatch_refused() {
        // Hand-craft the crash shape the writer can leave when an append
        // fails after its frame became durable and the process dies
        // before healing: the same post twice, under distinct seqs.
        let (fs, _) = SimFs::new(15);
        {
            let mut w =
                crate::log::WalWriter::open(fs.clone(), crate::log::WalConfig::default(), 0)
                    .unwrap();
            let p = post(1, 10, 43.70, -79.42, "grand hotel");
            w.append(&WalRecord { seq: 1, post: p.clone() }).unwrap();
            w.append(&WalRecord { seq: 2, post: p }).unwrap();
            w.append(&WalRecord { seq: 3, post: post(2, 11, 43.71, -79.41, "hotel bar") }).unwrap();
        }
        let walfs: Arc<dyn WalFs> = Arc::clone(&fs) as Arc<dyn WalFs>;
        let (store, report) =
            IngestStore::open(Arc::clone(&walfs), StoreConfig::default()).unwrap();
        assert_eq!(report.live_posts, 2, "the exact duplicate collapses to one record");
        assert_eq!(store.acked_posts(), 2);
        drop(store);

        // Same id over a different payload is *not* a crash signature.
        let (fs2, _) = SimFs::new(16);
        {
            let mut w =
                crate::log::WalWriter::open(fs2.clone(), crate::log::WalConfig::default(), 0)
                    .unwrap();
            w.append(&WalRecord { seq: 1, post: post(1, 10, 43.70, -79.42, "grand hotel") })
                .unwrap();
            w.append(&WalRecord { seq: 2, post: post(1, 10, 43.70, -79.42, "different text") })
                .unwrap();
        }
        let walfs2: Arc<dyn WalFs> = Arc::clone(&fs2) as Arc<dyn WalFs>;
        assert!(matches!(
            IngestStore::open(walfs2, StoreConfig::default()),
            Err(WalError::DuplicateTweet(TweetId(1)))
        ));
    }

    #[test]
    fn manifest_roundtrip_and_corruption() {
        let m = Manifest {
            generation: 3,
            sealed_seq: 120,
            files: vec![(seal_name(3, 'd'), 57), (seal_name(3, '9'), 4)],
        };
        let bytes = m.encode();
        assert_eq!(Manifest::decode(&bytes).unwrap(), m);
        let mut bad = bytes.clone();
        let at = bad.len() / 2;
        bad[at] ^= 0x01;
        assert!(matches!(Manifest::decode(&bad), Err(WalError::Corrupt { .. })));
    }

    #[test]
    fn replies_loosen_bounds_and_queries_stay_exact() {
        let (fs, _) = SimFs::new(13);
        let (store, _) = open(&fs);
        store.ingest(post(1, 10, 43.70, -79.42, "grand hotel opening")).unwrap();
        for i in 0..5 {
            store
                .ingest(Post::reply(
                    TweetId(100 + i),
                    UserId(20 + i),
                    Point::new_unchecked(43.70, -79.42),
                    "what a hotel",
                    TweetId(1),
                    UserId(10),
                ))
                .unwrap();
        }
        let sum = store.try_query(&query(), Ranking::Sum).unwrap();
        let max = store.try_query(&query(), Ranking::Max(BoundsMode::HotKeywords)).unwrap();
        assert!(!sum.is_empty() && !max.is_empty());
        // The thread root's author benefits from the replies under Sum.
        assert_eq!(sum[0].user, UserId(10));
        drop(store);
        let (store2, _) = open(&fs);
        assert_eq!(store2.try_query(&query(), Ranking::Sum).unwrap(), sum);
        assert_eq!(store2.try_query(&query(), Ranking::Max(BoundsMode::HotKeywords)).unwrap(), max);
    }
}
