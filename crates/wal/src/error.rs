//! The write-path error taxonomy (DESIGN.md §15).
//!
//! The central distinction recovery depends on is **clean tail vs mid-log
//! corruption**. A torn tail — the final segment ending in an incomplete
//! or checksum-failing frame — is the *expected* signature of a crash
//! mid-append and is not an error at all: replay truncates at the first
//! bad frame and reports how many bytes it discarded. A bad frame with
//! valid segments *after* it, or inside any non-final segment, can never
//! be produced by a crash of our append-only writer; that is real
//! corruption and surfaces as the typed [`WalError::Corrupt`].

use tklus_core::EngineError;
use tklus_model::TweetId;

/// An error surfaced by the WAL, recovery, or the ingest store above them.
#[derive(Debug)]
pub enum WalError {
    /// Filesystem operation failed.
    Io {
        /// The operation (`"append"`, `"sync"`, `"rename"`, …).
        op: &'static str,
        /// Store-relative path of the file involved.
        path: String,
        /// Underlying I/O error.
        source: std::io::Error,
    },
    /// Mid-log corruption: a bad frame that truncate-at-tail cannot
    /// explain (non-final segment, or a manifest/seal file failing its
    /// checksum). Recovery refuses to guess past this.
    Corrupt {
        /// Store-relative path of the corrupt file.
        path: String,
        /// Byte offset of the first bad frame or field.
        offset: usize,
        /// What failed to validate.
        detail: String,
    },
    /// A segment or manifest carries a format version this build does not
    /// speak.
    VersionMismatch {
        /// Version found in the header.
        found: u32,
        /// Version this build writes.
        expected: u32,
    },
    /// The simulated filesystem's scheduled crash fired: the "process" is
    /// dead and every operation fails until the harness reopens the store.
    /// Only [`crate::fs::SimFs`] produces this.
    Crashed,
    /// The ingested tweet id already exists in the store (sealed or live).
    DuplicateTweet(TweetId),
    /// The live engine was lost: an apply failed *and* the rebuild from
    /// the acked set failed too. Durable state is intact — closing and
    /// reopening the store recovers; until then every operation fails.
    Poisoned,
    /// The engine under the snapshot query path failed.
    Engine(EngineError),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io { op, path, source } => write!(f, "wal {op} on {path:?} failed: {source}"),
            WalError::Corrupt { path, offset, detail } => {
                write!(f, "mid-log corruption in {path:?} at byte {offset}: {detail}")
            }
            WalError::VersionMismatch { found, expected } => {
                write!(f, "wal format version {found} (this build speaks {expected})")
            }
            WalError::Crashed => f.write_str("injected crash: the simulated process is dead"),
            WalError::DuplicateTweet(id) => write!(f, "tweet {} already ingested", id.0),
            WalError::Poisoned => f.write_str(
                "live ingest state lost (apply and rebuild both failed); reopen the store",
            ),
            WalError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io { source, .. } => Some(source),
            WalError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for WalError {
    fn from(e: EngineError) -> Self {
        WalError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // test code: panics are the failure report

    use super::*;

    #[test]
    fn display_distinguishes_corruption_from_io() {
        let c =
            WalError::Corrupt { path: "wal-00000001.log".into(), offset: 24, detail: "crc".into() };
        assert!(c.to_string().contains("mid-log corruption"));
        let io = WalError::Io {
            op: "sync",
            path: "MANIFEST".into(),
            source: std::io::Error::other("disk gone"),
        };
        assert!(io.to_string().contains("sync"));
        assert!(WalError::DuplicateTweet(TweetId(7)).to_string().contains('7'));
    }
}
