//! Segmented write-ahead log: append, rotate, replay.
//!
//! The log is a sequence of segments `wal-00000000.log`, `wal-00000001.log`,
//! … Each segment opens with a 24-byte header (magic `TKWALSEG`, format
//! version, segment ordinal, header CRC) and then carries CRC32 frames
//! ([`crate::frame`]) whose payloads are [`WalRecord`]s. The writer is
//! strictly append-only within a segment and rotates when a segment
//! exceeds its size target.
//!
//! Recovery ([`replay`]) scans segments in ordinal order. Inside any
//! non-final segment, every byte must validate — a bad frame there means
//! real corruption ([`WalError::Corrupt`]), because the writer never left
//! a segment in a partial state (it rotates only after a clean append).
//! In the *final* segment, the first torn or bad frame is the expected
//! crash signature: replay truncates the segment at that offset, reports
//! the bytes discarded, and the records before the cut are exactly the
//! acked ingests. A fresh [`WalWriter`] then always starts a new segment —
//! it never appends after a recovery truncation — and a writer whose own
//! append or sync failed truncates the unknown tail back to its last
//! acked frame boundary (and syncs the cut) before accepting another
//! append, so a frame that once failed its checksum can never be
//! followed by valid frames (which is what keeps the torn-vs-corrupt
//! distinction decidable).

use crate::error::WalError;
use crate::frame::{decode_step, encode_frame, FrameStep};
use crate::fs::WalFs;
use crate::record::{decode_record, encode_record, WalRecord};
use std::sync::Arc;
use tklus_storage::crc32;

/// Segment file magic.
pub const SEG_MAGIC: &[u8; 8] = b"TKWALSEG";
/// WAL format version this build reads and writes.
pub const WAL_VERSION: u32 = 1;
/// Segment header size: magic + version + ordinal + crc.
pub const SEG_HEADER: usize = 24;

/// When to fsync the active segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Sync after every append: an `Ok` from ingest means durable. The
    /// chaos suite runs under this policy — it is the one whose ack
    /// contract the crash tests can assert.
    Always,
    /// Sync every `n` appends (and on rotation). Acks between syncs are
    /// volatile: a crash may roll back up to `n - 1` acked ingests.
    EveryN(u32),
    /// Sync only on rotation. Maximum throughput, weakest ack.
    Never,
}

/// Write-ahead log configuration.
#[derive(Debug, Clone, Copy)]
pub struct WalConfig {
    /// Rotate the active segment once it exceeds this many bytes.
    pub segment_bytes: usize,
    /// Durability policy for appends.
    pub fsync: FsyncPolicy,
}

impl Default for WalConfig {
    fn default() -> Self {
        Self { segment_bytes: 4 << 20, fsync: FsyncPolicy::Always }
    }
}

/// Name of the segment with ordinal `ordinal`.
pub fn segment_name(ordinal: u64) -> String {
    format!("wal-{ordinal:08}.log")
}

/// Parses a segment file name back to its ordinal.
pub fn parse_segment_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    if digits.len() < 8 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

fn encode_segment_header(ordinal: u64) -> [u8; SEG_HEADER] {
    let mut out = [0u8; SEG_HEADER];
    out[..8].copy_from_slice(SEG_MAGIC);
    out[8..12].copy_from_slice(&WAL_VERSION.to_le_bytes());
    out[12..20].copy_from_slice(&ordinal.to_le_bytes());
    let crc = crc32(&out[8..20]);
    out[20..24].copy_from_slice(&crc.to_le_bytes());
    out
}

/// Validates a segment header, returning the ordinal it declares.
fn decode_segment_header(buf: &[u8], path: &str) -> Result<u64, WalError> {
    let corrupt = |offset: usize, detail: &str| WalError::Corrupt {
        path: path.to_string(),
        offset,
        detail: detail.to_string(),
    };
    if buf.len() < SEG_HEADER {
        return Err(corrupt(buf.len(), "segment header cut short"));
    }
    if &buf[..8] != SEG_MAGIC {
        return Err(corrupt(0, "bad segment magic"));
    }
    let version = u32::from_le_bytes(buf[8..12].try_into().expect("4 bytes"));
    let want = u32::from_le_bytes(buf[20..24].try_into().expect("4 bytes"));
    if crc32(&buf[8..20]) != want {
        return Err(corrupt(20, "segment header checksum mismatch"));
    }
    if version != WAL_VERSION {
        return Err(WalError::VersionMismatch { found: version, expected: WAL_VERSION });
    }
    Ok(u64::from_le_bytes(buf[12..20].try_into().expect("8 bytes")))
}

/// What [`replay`] found and did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Segments scanned, in ordinal order.
    pub segments_scanned: usize,
    /// Valid records decoded across all segments.
    pub records_replayed: usize,
    /// Bytes discarded from the final segment's torn tail (0 = clean).
    pub truncated_bytes: usize,
    /// The segment that was truncated, if any.
    pub truncated_segment: Option<String>,
    /// Why the tail was cut (the frame classifier's reason).
    pub truncate_reason: Option<String>,
    /// Highest ordinal seen; the writer's next segment is this + 1.
    pub max_ordinal: Option<u64>,
    /// `(ordinal, highest record seq)` per non-empty segment, ordinal
    /// order. Compaction's fenced trim consults this: a segment may be
    /// removed only once every seq it holds is at or below the sealed
    /// fence — with off-latch builds, records acked *during* a build land
    /// in pre-rotation segments and must survive the trim.
    pub segment_max_seqs: Vec<(u64, u64)>,
}

/// Scans every WAL segment in the store, truncating the final segment at
/// its first torn or bad frame and refusing (typed) anything a crash of
/// the append-only writer cannot explain. Returns the acked records in
/// append order plus the report.
pub fn replay(fs: &dyn WalFs) -> Result<(Vec<WalRecord>, RecoveryReport), WalError> {
    let mut segments: Vec<(u64, String)> = fs
        .list()?
        .into_iter()
        .filter_map(|name| parse_segment_name(&name).map(|ord| (ord, name)))
        .collect();
    segments.sort();

    let mut records = Vec::new();
    let mut report = RecoveryReport::default();
    let last = segments.len().checked_sub(1);
    for (i, (ordinal, name)) in segments.iter().enumerate() {
        let is_final = Some(i) == last;
        let buf = fs.read(name)?;
        report.segments_scanned += 1;
        report.max_ordinal = Some(*ordinal);

        // Header. In the final segment a header *shorter* than
        // SEG_HEADER is the signature of a crash between `create` and the
        // header append: no frame can follow it (the writer writes the
        // header first), so the whole segment is a torn tail and is
        // truncated to nothing. A full-length header that fails
        // validation is different — the header is appended in one call,
        // so a torn write can only leave a prefix of the true bytes;
        // 24 bytes that fail magic/checksum (or declare another version)
        // are real corruption and fall through to the typed error below.
        if is_final && buf.len() < SEG_HEADER {
            report.truncated_bytes = buf.len();
            report.truncated_segment = Some(name.clone());
            report.truncate_reason = Some("segment header cut short".to_string());
            fs.truncate(name, 0)?;
            break;
        }
        let declared = decode_segment_header(&buf, name)?;
        if declared != *ordinal {
            return Err(WalError::Corrupt {
                path: name.clone(),
                offset: 12,
                detail: format!("header declares ordinal {declared}, file name says {ordinal}"),
            });
        }

        // Frames.
        let mut offset = SEG_HEADER;
        let mut seg_max_seq: Option<u64> = None;
        loop {
            match decode_step(&buf, offset) {
                FrameStep::CleanEnd => break,
                FrameStep::Frame { payload_start, len, next } => {
                    let payload = &buf[payload_start..payload_start + len];
                    match decode_record(payload) {
                        Ok(rec) => {
                            seg_max_seq = Some(seg_max_seq.map_or(rec.seq, |m| m.max(rec.seq)));
                            records.push(rec);
                        }
                        Err(detail) => {
                            // The frame CRC validated, so the payload is
                            // exactly what was written: a torn write
                            // cannot produce this. Refuse loudly.
                            return Err(WalError::Corrupt {
                                path: name.clone(),
                                offset: payload_start,
                                detail,
                            });
                        }
                    }
                    offset = next;
                }
                FrameStep::Torn { reason } | FrameStep::Bad { reason } => {
                    if !is_final {
                        return Err(WalError::Corrupt {
                            path: name.clone(),
                            offset,
                            detail: reason.to_string(),
                        });
                    }
                    report.truncated_bytes = buf.len() - offset;
                    report.truncated_segment = Some(name.clone());
                    report.truncate_reason = Some(reason.to_string());
                    fs.truncate(name, offset as u64)?;
                    break;
                }
            }
        }
        if let Some(max_seq) = seg_max_seq {
            report.segment_max_seqs.push((*ordinal, max_seq));
        }
    }
    report.records_replayed = records.len();
    Ok((records, report))
}

/// The append side of the log. One writer per store; callers serialize
/// access (the ingest store holds it under its write lock).
pub struct WalWriter {
    fs: Arc<dyn WalFs>,
    config: WalConfig,
    current: String,
    ordinal: u64,
    /// Bytes of the current segment through the last *fully successful*
    /// append (header included). Everything past this offset is garbage
    /// whenever `damaged` is set.
    written: usize,
    appends_since_sync: u32,
    /// A frame append (or its policy fsync) failed: bytes past `written`
    /// are in an unknown state — possibly a partial frame, possibly a
    /// whole-but-unsynced one. The writer refuses to put anything after
    /// them until [`Self::heal`] cuts the segment back to `written` and
    /// syncs the cut; otherwise a later successful append could strand
    /// garbage mid-segment, which recovery would either truncate away
    /// (losing acked records) or refuse as corruption.
    damaged: bool,
}

impl WalWriter {
    /// Opens a writer on a *fresh* segment with ordinal `next_ordinal`
    /// (one past the highest replayed ordinal). Starting fresh — never
    /// appending to a replayed segment — is what makes the recovery
    /// invariant hold: a truncated tail is never written past.
    pub fn open(
        fs: Arc<dyn WalFs>,
        config: WalConfig,
        next_ordinal: u64,
    ) -> Result<Self, WalError> {
        let mut w = Self {
            fs,
            config,
            current: String::new(),
            ordinal: next_ordinal,
            written: 0,
            appends_since_sync: 0,
            damaged: false,
        };
        w.start_segment(next_ordinal)?;
        Ok(w)
    }

    fn start_segment(&mut self, ordinal: u64) -> Result<(), WalError> {
        let name = segment_name(ordinal);
        self.fs.create(&name)?;
        self.fs.append(&name, &encode_segment_header(ordinal))?;
        self.fs.sync(&name)?;
        self.current = name;
        self.ordinal = ordinal;
        self.written = SEG_HEADER;
        self.appends_since_sync = 0;
        self.damaged = false;
        Ok(())
    }

    /// Restores the damaged segment to its last acked frame boundary:
    /// truncate the unknown tail, make the cut durable. Until this
    /// succeeds every append/sync/rotate fails without touching the file.
    fn heal(&mut self) -> Result<(), WalError> {
        self.fs.truncate(&self.current, self.written as u64)?;
        self.fs.sync(&self.current)?;
        self.appends_since_sync = 0;
        self.damaged = false;
        Ok(())
    }

    /// The active segment's ordinal.
    pub fn current_ordinal(&self) -> u64 {
        self.ordinal
    }

    /// Appends one record, rotating first if the active segment is full,
    /// and syncing per the configured policy. When this returns `Ok`
    /// under [`FsyncPolicy::Always`], the record is durable. On `Err` the
    /// record was **not** acked; a previous failure's tail is healed
    /// (truncated at the last acked frame) before any new bytes land, so
    /// a failed append never strands garbage under later records.
    pub fn append(&mut self, record: &WalRecord) -> Result<(), WalError> {
        if self.damaged {
            self.heal()?;
        }
        if self.written >= self.config.segment_bytes {
            self.rotate()?;
        }
        let mut frame = Vec::new();
        encode_frame(&encode_record(record), &mut frame);
        if let Err(e) = self.append_frame(&frame) {
            self.damaged = true;
            return Err(e);
        }
        self.written += frame.len();
        Ok(())
    }

    /// The fallible part of [`Self::append`]: the raw write plus the
    /// policy fsync. `written` advances only when the whole of this
    /// succeeds, so on error the last acked frame boundary is exactly
    /// where [`Self::heal`] must cut.
    fn append_frame(&mut self, frame: &[u8]) -> Result<(), WalError> {
        self.fs.append(&self.current, frame)?;
        match self.config.fsync {
            FsyncPolicy::Always => self.fs.sync(&self.current)?,
            FsyncPolicy::EveryN(n) => {
                self.appends_since_sync += 1;
                if self.appends_since_sync >= n.max(1) {
                    self.fs.sync(&self.current)?;
                    self.appends_since_sync = 0;
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(())
    }

    /// Forces the active segment durable (healing a damaged tail first).
    pub fn sync(&mut self) -> Result<(), WalError> {
        if self.damaged {
            return self.heal();
        }
        self.fs.sync(&self.current)?;
        self.appends_since_sync = 0;
        Ok(())
    }

    /// Seals the active segment (final sync) and starts the next one. A
    /// damaged tail is healed first so the sealed segment — which replay
    /// holds to every-byte-valid, being non-final — carries only acked
    /// frames.
    pub fn rotate(&mut self) -> Result<(), WalError> {
        self.sync()?;
        self.start_segment(self.ordinal + 1)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // test code: panics are the failure report

    use super::*;
    use crate::fs::SimFs;
    use tklus_geo::Point;
    use tklus_model::{Post, TweetId, UserId};

    fn rec(seq: u64) -> WalRecord {
        WalRecord {
            seq,
            post: Post::original(
                TweetId(seq),
                UserId(seq % 7),
                Point::new_unchecked(43.0 + seq as f64 * 1e-4, -79.0),
                "coffee downtown",
            ),
        }
    }

    #[test]
    fn append_replay_roundtrip() {
        let (fs, _) = SimFs::new(3);
        let mut w = WalWriter::open(fs.clone(), WalConfig::default(), 0).unwrap();
        for seq in 1..=20 {
            w.append(&rec(seq)).unwrap();
        }
        let (records, report) = replay(fs.as_ref()).unwrap();
        assert_eq!(records.len(), 20);
        assert_eq!(records, (1..=20).map(rec).collect::<Vec<_>>());
        assert_eq!(report.truncated_bytes, 0);
        assert_eq!(report.max_ordinal, Some(0));
        assert_eq!(report.segment_max_seqs, vec![(0, 20)]);
    }

    #[test]
    fn rotation_spreads_records_over_segments_and_replays_in_order() {
        let (fs, _) = SimFs::new(4);
        let config = WalConfig { segment_bytes: 128, fsync: FsyncPolicy::Always };
        let mut w = WalWriter::open(fs.clone(), config, 0).unwrap();
        for seq in 1..=50 {
            w.append(&rec(seq)).unwrap();
        }
        assert!(w.current_ordinal() > 0, "tiny segments must have rotated");
        let (records, report) = replay(fs.as_ref()).unwrap();
        assert_eq!(records, (1..=50).map(rec).collect::<Vec<_>>());
        assert!(report.segments_scanned > 1);
        // Per-segment max seqs partition the record range in ordinal order.
        assert_eq!(report.segment_max_seqs.len(), report.segments_scanned);
        assert!(report.segment_max_seqs.windows(2).all(|w| w[0].1 < w[1].1));
        assert_eq!(report.segment_max_seqs.last().unwrap().1, 50);
    }

    #[test]
    fn torn_tail_in_final_segment_truncates_and_keeps_prefix() {
        let (fs, _) = SimFs::new(5);
        let mut w = WalWriter::open(fs.clone(), WalConfig::default(), 0).unwrap();
        for seq in 1..=5 {
            w.append(&rec(seq)).unwrap();
        }
        // Simulate a torn append: half a frame of garbage at the tail.
        fs.append(&segment_name(0), &[7u8; 5]).unwrap();
        let (records, report) = replay(fs.as_ref()).unwrap();
        assert_eq!(records.len(), 5);
        assert_eq!(report.truncated_bytes, 5);
        assert_eq!(report.truncated_segment, Some(segment_name(0)));
        // Replay healed the file: a second replay is clean.
        let (records2, report2) = replay(fs.as_ref()).unwrap();
        assert_eq!(records2.len(), 5);
        assert_eq!(report2.truncated_bytes, 0);
    }

    #[test]
    fn bad_frame_in_non_final_segment_is_corruption() {
        let (fs, _) = SimFs::new(6);
        let config = WalConfig { segment_bytes: 64, fsync: FsyncPolicy::Always };
        let mut w = WalWriter::open(fs.clone(), config, 0).unwrap();
        for seq in 1..=10 {
            w.append(&rec(seq)).unwrap();
        }
        assert!(w.current_ordinal() > 0);
        // Flip a payload bit in the FIRST segment (not the final one).
        let name = segment_name(0);
        let mut bytes = fs.read(&name).unwrap();
        let flip = SEG_HEADER + crate::frame::FRAME_HEADER + 3;
        bytes[flip] ^= 0x01;
        fs.remove(&name).unwrap();
        fs.create(&name).unwrap();
        fs.append(&name, &bytes).unwrap();
        match replay(fs.as_ref()) {
            Err(WalError::Corrupt { path, .. }) => assert_eq!(path, name),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn version_mismatch_is_typed_even_in_final_segment() {
        let (fs, _) = SimFs::new(7);
        let name = segment_name(0);
        fs.create(&name).unwrap();
        let mut header = [0u8; SEG_HEADER];
        header[..8].copy_from_slice(SEG_MAGIC);
        header[8..12].copy_from_slice(&99u32.to_le_bytes());
        header[12..20].copy_from_slice(&0u64.to_le_bytes());
        let crc = crc32(&header[8..20]);
        header[20..24].copy_from_slice(&crc.to_le_bytes());
        fs.append(&name, &header).unwrap();
        assert!(matches!(
            replay(fs.as_ref()),
            Err(WalError::VersionMismatch { found: 99, expected: WAL_VERSION })
        ));
    }

    #[test]
    fn torn_header_in_final_segment_truncates_to_empty() {
        let (fs, _) = SimFs::new(8);
        let mut w = WalWriter::open(fs.clone(), WalConfig::default(), 0).unwrap();
        w.append(&rec(1)).unwrap();
        w.rotate().unwrap();
        // Crash mid-header on the new segment: only 3 bytes landed.
        let name = segment_name(1);
        fs.truncate(&name, 3).unwrap();
        let (records, report) = replay(fs.as_ref()).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(report.truncated_segment, Some(name));
        assert_eq!(report.truncated_bytes, 3);
    }

    #[test]
    fn full_length_bad_header_in_final_segment_is_corruption() {
        let (fs, _) = SimFs::new(9);
        let mut w = WalWriter::open(fs.clone(), WalConfig::default(), 0).unwrap();
        w.append(&rec(1)).unwrap();
        // Corrupt one header byte in place: the header is full-length, so
        // this cannot be a torn append — replay must refuse, not truncate
        // the segment (and its acked record) away.
        let name = segment_name(0);
        let mut bytes = fs.read(&name).unwrap();
        bytes[2] ^= 0x40;
        fs.remove(&name).unwrap();
        fs.create(&name).unwrap();
        fs.append(&name, &bytes).unwrap();
        match replay(fs.as_ref()) {
            Err(WalError::Corrupt { path, .. }) => assert_eq!(path, name),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn writer_heals_partial_append_before_accepting_more() {
        let (sim, _) = SimFs::new(10);
        let fs = crate::fs::FlakyFs::new(sim);
        let mut w = WalWriter::open(fs.clone(), WalConfig::default(), 0).unwrap();
        w.append(&rec(1)).unwrap();
        // ENOSPC mid-frame: 5 garbage bytes land, the call errors, the
        // process lives on and keeps appending.
        fs.fail_append_at(1, 5);
        assert!(w.append(&rec(2)).is_err());
        w.append(&rec(3)).unwrap();
        w.append(&rec(4)).unwrap();
        // The heal cut the partial frame, so the log is clean — nothing
        // torn, and the acked records (1, 3, 4) all replay.
        let (records, report) = replay(fs.as_ref()).unwrap();
        assert_eq!(records, vec![rec(1), rec(3), rec(4)]);
        assert_eq!(report.truncated_bytes, 0);
    }

    #[test]
    fn writer_heals_failed_sync_before_accepting_more() {
        let (sim, _) = SimFs::new(20);
        let fs = crate::fs::FlakyFs::new(sim.clone());
        let mut w = WalWriter::open(fs.clone(), WalConfig::default(), 0).unwrap();
        w.append(&rec(1)).unwrap();
        // The frame lands whole but its fsync fails: the record was never
        // acked and its durability is unknown, so the writer must cut it
        // rather than build on top of it.
        fs.fail_sync_at(1);
        assert!(w.append(&rec(2)).is_err());
        w.append(&rec(3)).unwrap();
        let (records, report) = replay(fs.as_ref()).unwrap();
        assert_eq!(records, vec![rec(1), rec(3)]);
        assert_eq!(report.truncated_bytes, 0);
        // Even after a power cut, every acked record survives — the heal
        // re-synced the retained prefix before record 3 was acked on top.
        sim.crash_and_lose_unsynced();
        let (records, _) = replay(sim.as_ref()).unwrap();
        assert_eq!(records, vec![rec(1), rec(3)]);
    }

    #[test]
    fn rotate_after_failed_append_seals_only_acked_frames() {
        let (sim, _) = SimFs::new(21);
        let fs = crate::fs::FlakyFs::new(sim);
        let mut w = WalWriter::open(fs.clone(), WalConfig::default(), 0).unwrap();
        w.append(&rec(1)).unwrap();
        fs.fail_append_at(1, 7);
        assert!(w.append(&rec(2)).is_err());
        // Rotation must heal first: segment 0 becomes non-final, where
        // replay holds every byte to be valid.
        w.rotate().unwrap();
        w.append(&rec(3)).unwrap();
        let (records, report) = replay(fs.as_ref()).unwrap();
        assert_eq!(records, vec![rec(1), rec(3)]);
        assert_eq!(report.truncated_bytes, 0);
        assert_eq!(report.segments_scanned, 2);
    }

    #[test]
    fn segment_name_roundtrip() {
        assert_eq!(parse_segment_name(&segment_name(42)), Some(42));
        assert_eq!(parse_segment_name("wal-0000001.log"), None); // too short
        assert_eq!(parse_segment_name("seal-00000001.log"), None);
        assert_eq!(parse_segment_name("wal-xxxxxxxx.log"), None);
    }
}
