//! The record payload inside each WAL frame: one acked ingest.
//!
//! A record is a sequence number plus the full [`Post`] — everything
//! replay needs to rebuild the live state, nothing more. The codec is a
//! fixed little-endian layout (coordinates via `f64::to_bits`, so replay
//! reproduces locations *bitwise* — the snapshot-equality oracle depends
//! on it). Decoding is panic-free: every malformed payload is a typed
//! `Err(String)` the recovery layer maps to its torn-tail / corruption
//! classification.

use tklus_geo::Point;
use tklus_model::{InteractionKind, Post, ReplyTo, TweetId, UserId};

/// Record tag byte: an ingested post. (Future record kinds — checkpoint
/// markers, deletions — get their own tags; unknown tags are decode
/// errors, not panics.)
const TAG_POST: u8 = 1;

/// One acked ingest: the WAL's unit of replay.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// Monotone sequence number; the compaction manifest records the
    /// highest sequence its sealed generation absorbed, and replay skips
    /// records at or below it.
    pub seq: u64,
    /// The ingested post.
    pub post: Post,
}

/// Encodes `record` as a frame payload.
pub fn encode_record(record: &WalRecord) -> Vec<u8> {
    let post = &record.post;
    let mut out = Vec::with_capacity(64 + post.text.len());
    out.push(TAG_POST);
    out.extend_from_slice(&record.seq.to_le_bytes());
    out.extend_from_slice(&post.id.0.to_le_bytes());
    out.extend_from_slice(&post.user.0.to_le_bytes());
    out.extend_from_slice(&post.location.lat().to_bits().to_le_bytes());
    out.extend_from_slice(&post.location.lon().to_bits().to_le_bytes());
    match post.in_reply_to {
        None => out.push(0),
        Some(r) => {
            out.push(match r.kind {
                InteractionKind::Reply => 1,
                InteractionKind::Forward => 2,
            });
            out.extend_from_slice(&r.target.0.to_le_bytes());
            out.extend_from_slice(&r.target_user.0.to_le_bytes());
        }
    }
    let text = post.text.as_bytes();
    out.extend_from_slice(&(text.len() as u32).to_le_bytes());
    out.extend_from_slice(text);
    out
}

/// A little-endian field reader that fails typed instead of panicking.
struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self.at.checked_add(n).filter(|&e| e <= self.buf.len());
        let Some(end) = end else {
            return Err(format!("record truncated at byte {} (wanted {n} more)", self.at));
        };
        let slice = &self.buf[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
}

/// Decodes a frame payload back into a [`WalRecord`].
pub fn decode_record(payload: &[u8]) -> Result<WalRecord, String> {
    let mut r = Reader { buf: payload, at: 0 };
    let tag = r.u8()?;
    if tag != TAG_POST {
        return Err(format!("unknown record tag {tag}"));
    }
    let seq = r.u64()?;
    let id = TweetId(r.u64()?);
    let user = UserId(r.u64()?);
    let lat = f64::from_bits(r.u64()?);
    let lon = f64::from_bits(r.u64()?);
    let location =
        Point::new(lat, lon).map_err(|e| format!("record carries invalid location: {e:?}"))?;
    let in_reply_to = match r.u8()? {
        0 => None,
        kind @ (1 | 2) => Some(ReplyTo {
            target: TweetId(r.u64()?),
            target_user: UserId(r.u64()?),
            kind: if kind == 1 { InteractionKind::Reply } else { InteractionKind::Forward },
        }),
        other => return Err(format!("unknown interaction kind {other}")),
    };
    let text_len = r.u32()? as usize;
    let text = std::str::from_utf8(r.take(text_len)?)
        .map_err(|e| format!("record text is not UTF-8: {e}"))?
        .to_string();
    if r.at != payload.len() {
        return Err(format!("{} trailing bytes after record", payload.len() - r.at));
    }
    Ok(WalRecord { seq, post: Post { id, user, location, text, in_reply_to } })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // test code: panics are the failure report

    use super::*;

    fn sample() -> WalRecord {
        WalRecord {
            seq: 42,
            post: Post::reply(
                TweetId(9),
                UserId(3),
                Point::new_unchecked(43.70011, -79.4163),
                "great hotel downtown",
                TweetId(5),
                UserId(2),
            ),
        }
    }

    #[test]
    fn roundtrip_reply_and_original() {
        let r = sample();
        assert_eq!(decode_record(&encode_record(&r)).unwrap(), r);
        let orig = WalRecord {
            seq: 1,
            post: Post::original(TweetId(1), UserId(1), Point::new_unchecked(0.0, 0.0), ""),
        };
        assert_eq!(decode_record(&encode_record(&orig)).unwrap(), orig);
    }

    #[test]
    fn location_bits_survive_exactly() {
        let r = sample();
        let back = decode_record(&encode_record(&r)).unwrap();
        assert_eq!(back.post.location.lat().to_bits(), r.post.location.lat().to_bits());
        assert_eq!(back.post.location.lon().to_bits(), r.post.location.lon().to_bits());
    }

    #[test]
    fn truncated_and_trailing_bytes_fail_typed() {
        let bytes = encode_record(&sample());
        for cut in 0..bytes.len() {
            assert!(decode_record(&bytes[..cut]).is_err(), "cut at {cut} decoded");
        }
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(decode_record(&extra).unwrap_err().contains("trailing"));
    }

    #[test]
    fn unknown_tag_and_kind_fail_typed() {
        let mut bytes = encode_record(&sample());
        bytes[0] = 99;
        assert!(decode_record(&bytes).unwrap_err().contains("tag"));
    }
}
