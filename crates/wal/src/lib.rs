//! Crash-safe streaming ingest for the TkLUS engine (DESIGN.md §15).
//!
//! The paper's system is batch-built: the MapReduce pipeline produces an
//! immutable hybrid index, and queries run against it. Real geo-tagged
//! streams do not pause for index builds, so this crate adds the write
//! path: a checksummed write-ahead log in front of a live delta index,
//! with background compaction sealing deltas back into the immutable
//! form the rest of the system already knows.
//!
//! Layers, bottom up:
//!
//! * [`fs`] — the filesystem seam ([`WalFs`]): the real disk ([`StdFs`])
//!   or the deterministic crash-injecting model ([`SimFs`]) the chaos
//!   suite drives.
//! * [`frame`] — CRC32 length-prefixed frames; every durable byte of the
//!   log and the seal files goes through this codec.
//! * [`record`] — the frame payload: one acked ingest, bit-exact.
//! * [`log`] — segmented WAL: append/rotate ([`WalWriter`]), and
//!   [`replay`], which truncates the final segment's torn tail and
//!   refuses mid-log corruption with a typed error.
//! * [`memtable`] — the live delta index ([`MemtableIndex`]): postings
//!   for acked-but-unsealed posts, keyed by term string.
//! * [`store`] — [`IngestStore`], tying it together: WAL-acked ingest,
//!   snapshot queries merging sealed and live candidates bitwise-equal
//!   to a from-scratch engine, and atomic-manifest compaction.
//!
//! The correctness contracts — ack durability, replay idempotence,
//! snapshot equality, loosen-only bound soundness — are exercised by the
//! crash-recovery suite in `tests/` across seeded crash points in every
//! write-path operation.

#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

pub mod error;
pub mod frame;
pub mod fs;
pub mod log;
pub mod memtable;
pub mod record;
pub mod store;

pub use error::WalError;
pub use frame::{decode_step, encode_frame, FrameStep, FRAME_HEADER, MAX_FRAME_PAYLOAD};
pub use fs::{SimFs, StdFs, WalFs};
pub use log::{
    parse_segment_name, replay, segment_name, FsyncPolicy, RecoveryReport, WalConfig, WalWriter,
};
pub use memtable::{MemtableIndex, DEFAULT_PACK_THRESHOLD};
pub use record::{decode_record, encode_record, WalRecord};
pub use store::{
    parse_seal_name, seal_name, BoundsAudit, CompactionReport, CompactionStrategy, CompactorHandle,
    IngestStore, OpenReport, StoreConfig, MANIFEST,
};
