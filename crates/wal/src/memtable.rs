//! The live delta index: postings for acked-but-unsealed posts.
//!
//! The sealed engine's inverted index is immutable; posts ingested since
//! the last compaction live here instead, as an in-memory postings map
//! keyed term-first (⟨term *string*, geohash cell⟩). Term strings, not
//! term ids: a live post can carry words the sealed vocabulary has never
//! seen, and the whole point of the delta is to answer for them before
//! any index rebuild.
//!
//! Small memtables keep each list as a flat id-sorted `Vec` — cheapest
//! to build, trivially correct. Once the memtable grows past
//! [`MemtableIndex::pack_threshold`] posts (a sustained firehose between
//! compactions), each hot list graduates to the §13 block-postings codec
//! ([`tklus_index::BlockPostings`]): fresh inserts land in a short flat
//! tail, and once the tail reaches a block's worth it is merged into the
//! packed run. Candidate assembly then unions still-packed blocks
//! ([`tklus_index::union_sum_blocks`]) instead of re-sorting flat rows,
//! so live-candidate formation stops degrading linearly with memtable
//! size.
//!
//! [`MemtableIndex::candidates`] mirrors the sealed engine's candidate
//! formation exactly — per-cell exact lookups over the query's circle
//! cover, OR = union summing term frequencies, AND = per-keyword unions
//! intersected (any keyword that normalizes away empties an AND query) —
//! so the ingest store can merge sealed and live candidates into one
//! tweet-id-ordered stream and reproduce a from-scratch engine's answers
//! bit for bit (the snapshot-equality oracle in `tests/` asserts this,
//! on both sides of the packing threshold).

use std::collections::BTreeMap;
use tklus_geo::Geohash;
use tklus_index::{union_sum_blocks, BlockPostings, BlockScratch, DecodeError, Posting, BLOCK_LEN};
use tklus_model::{Semantics, TweetId, UserId};

/// Default memtable size (posts) past which lists pack into block
/// postings. Below it every list stays a flat `Vec` — the codec's framing
/// is pure overhead for a memtable that compaction drains every few
/// hundred posts.
pub const DEFAULT_PACK_THRESHOLD: usize = 4096;

/// One term-in-cell postings delta: an immutable packed run plus a flat
/// id-sorted tail of fresh inserts.
#[derive(Debug, Default, Clone)]
struct DeltaList {
    /// Block-compressed older postings (§13 codec), id-disjoint from the
    /// tail. `None` until the list first graduates.
    packed: Option<BlockPostings>,
    /// Fresh inserts, id-sorted. Merged into `packed` once it reaches a
    /// block's worth (and the memtable is past the pack threshold).
    tail: Vec<(TweetId, u32)>,
}

impl DeltaList {
    /// Merges the packed run and the tail into one packed run. On a
    /// decode error (never produced by lists this module built — but the
    /// codec is honest about its fallibility) the list is left exactly as
    /// it was: flat-plus-packed still answers correctly, just unpacked.
    fn pack(&mut self) -> Result<(), DecodeError> {
        let mut merged: Vec<Posting> = match &self.packed {
            Some(blocks) => blocks.to_postings_list()?.postings().to_vec(),
            None => Vec::new(),
        };
        // Tail ids interleave arbitrarily with the packed run (replay is
        // sequence-ordered, not id-ordered), so merge the two sorted
        // streams rather than appending.
        let tail = std::mem::take(&mut self.tail);
        let mut out: Vec<Posting> = Vec::with_capacity(merged.len() + tail.len());
        let mut old = merged.drain(..).peekable();
        for (id, tf) in tail {
            while old.peek().is_some_and(|p| p.id < id) {
                out.push(old.next().expect("peeked"));
            }
            // An equal id cannot arise (the store rejects duplicate tweet
            // ids before they reach the memtable); if it ever did, the
            // tail — the newer write — wins.
            if old.peek().is_some_and(|p| p.id == id) {
                old.next();
            }
            out.push(Posting { id, tf });
        }
        out.extend(old);
        self.packed = Some(BlockPostings::from_postings(&out));
        Ok(())
    }
}

/// In-memory postings over the live (unsealed) posts.
#[derive(Debug, Clone)]
pub struct MemtableIndex {
    /// term → cell → postings delta. Term-first keying: one `&str` lookup
    /// per term, then cheap per-cell probes over the cover — no per-cell
    /// key allocation.
    postings: BTreeMap<String, BTreeMap<Geohash, DeltaList>>,
    /// Live posts: tweet → author.
    posts: BTreeMap<TweetId, UserId>,
    /// Memtable size (posts) past which lists graduate to block postings.
    pack_threshold: usize,
}

impl Default for MemtableIndex {
    fn default() -> Self {
        Self {
            postings: BTreeMap::new(),
            posts: BTreeMap::new(),
            pack_threshold: DEFAULT_PACK_THRESHOLD,
        }
    }
}

impl MemtableIndex {
    /// An empty memtable with the default pack threshold.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty memtable that packs lists once `threshold` posts are live
    /// (`usize::MAX` disables packing — every list stays flat).
    pub fn with_pack_threshold(threshold: usize) -> Self {
        Self { pack_threshold: threshold, ..Self::default() }
    }

    /// Number of live posts.
    pub fn len(&self) -> usize {
        self.posts.len()
    }

    /// True when no posts are live.
    pub fn is_empty(&self) -> bool {
        self.posts.is_empty()
    }

    /// The live tweet ids, ascending.
    pub fn tweet_ids(&self) -> impl Iterator<Item = TweetId> + '_ {
        self.posts.keys().copied()
    }

    /// True when `tid` is a live (unsealed) post.
    pub fn contains(&self, tid: TweetId) -> bool {
        self.posts.contains_key(&tid)
    }

    /// The distinct authors of live posts, ascending.
    pub fn users(&self) -> Vec<UserId> {
        let mut users: Vec<UserId> = self.posts.values().copied().collect();
        users.sort();
        users.dedup();
        users
    }

    /// How many term-in-cell lists currently hold a packed run — the
    /// delta index actually engaged (tests assert the threshold works).
    pub fn packed_lists(&self) -> usize {
        self.postings
            .values()
            .flat_map(|cells| cells.values())
            .filter(|list| list.packed.is_some())
            .count()
    }

    /// Absorbs one post: `cell` is its geohash at the sealed index's
    /// encoding length, `terms` the pipeline's `(term, tf)` counts
    /// ([`tklus_core::TklusEngine::term_counts`]). Posts may arrive in any
    /// tweet-id order (replay is sequence-ordered, not id-ordered);
    /// postings stay id-sorted by insertion position.
    pub fn insert(&mut self, tid: TweetId, uid: UserId, cell: Geohash, terms: &[(String, u32)]) {
        self.posts.insert(tid, uid);
        let graduate = self.posts.len() >= self.pack_threshold;
        for (term, tf) in terms {
            let list = self.postings.entry(term.clone()).or_default().entry(cell).or_default();
            match list.tail.binary_search_by_key(&tid, |e| e.0) {
                Ok(at) => list.tail[at].1 = *tf,
                Err(at) => list.tail.insert(at, (tid, *tf)),
            }
            if graduate && list.tail.len() >= BLOCK_LEN {
                // A failed pack (unreachable for self-built lists) leaves
                // the list flat and correct; the next insert retries.
                let _ = list.pack();
            }
        }
    }

    /// Drops every post (compaction sealed them).
    pub fn clear(&mut self) {
        self.postings.clear();
        self.posts.clear();
    }

    /// Candidate formation over the live posts, mirroring the sealed
    /// engine: `cover` is the query's circle cover at the index geohash
    /// length, `keywords` the *normalized* query keywords (`None` =
    /// normalized away). OR unions all lists summing tf; AND unions per
    /// keyword then intersects, and any `None` keyword empties the whole
    /// AND query (the sealed engine's contract). Returns id-sorted
    /// `(tweet, tf)` rows. Errs only on a packed-block decode failure —
    /// which a list this module built cannot produce.
    pub fn candidates(
        &self,
        cover: &[Geohash],
        keywords: &[Option<String>],
        semantics: Semantics,
    ) -> Result<Vec<(TweetId, u32)>, DecodeError> {
        // Dedup normalized keywords (the sealed path's resolve contract:
        // "Hotels" and "hotel" contribute one term).
        let mut terms: Vec<&str> = Vec::new();
        for kw in keywords {
            match kw {
                Some(t) if !terms.contains(&t.as_str()) => terms.push(t),
                Some(_) => {}
                None if semantics == Semantics::And => return Ok(Vec::new()),
                None => {}
            }
        }
        if terms.is_empty() {
            return Ok(Vec::new());
        }
        let mut scratch = BlockScratch::new();
        match semantics {
            Semantics::Or => {
                let mut acc: BTreeMap<TweetId, u32> = BTreeMap::new();
                for term in &terms {
                    for (tid, tf) in self.term_postings(cover, term, &mut scratch)? {
                        *acc.entry(tid).or_insert(0) += tf;
                    }
                }
                Ok(acc.into_iter().collect())
            }
            Semantics::And => {
                let mut groups: Vec<Vec<(TweetId, u32)>> = Vec::with_capacity(terms.len());
                for term in &terms {
                    let group = self.term_postings(cover, term, &mut scratch)?;
                    if group.is_empty() {
                        return Ok(Vec::new());
                    }
                    groups.push(group);
                }
                Ok(tklus_index::intersect_sum(&groups))
            }
        }
    }

    /// One keyword's postings across the cover, id-sorted. A live post
    /// appears in exactly one cell, so the per-cell lists are disjoint:
    /// the packed runs union block-wise (§13), the flat tails chain and
    /// sort, and the two sorted streams merge.
    fn term_postings(
        &self,
        cover: &[Geohash],
        term: &str,
        scratch: &mut BlockScratch,
    ) -> Result<Vec<(TweetId, u32)>, DecodeError> {
        let Some(cells) = self.postings.get(term) else {
            return Ok(Vec::new());
        };
        let mut packed: Vec<&BlockPostings> = Vec::new();
        let mut flat: Vec<(TweetId, u32)> = Vec::new();
        for cell in cover {
            let Some(list) = cells.get(cell) else { continue };
            if let Some(blocks) = &list.packed {
                packed.push(blocks);
            }
            flat.extend_from_slice(&list.tail);
        }
        flat.sort_by_key(|e| e.0);
        if packed.is_empty() {
            return Ok(flat);
        }
        let mut from_blocks = Vec::new();
        union_sum_blocks(&packed, scratch, &mut from_blocks)?;
        if flat.is_empty() {
            return Ok(from_blocks);
        }
        // Merge the packed and tail streams. Ids are disjoint (a post's
        // ⟨term, cell⟩ entry lives in exactly one of the two), but merge
        // defensively: on an equal id the tail — the newer write — wins.
        let mut out = Vec::with_capacity(from_blocks.len() + flat.len());
        let mut blocks_it = from_blocks.into_iter().peekable();
        for (id, tf) in flat {
            while blocks_it.peek().is_some_and(|&(bid, _)| bid < id) {
                out.push(blocks_it.next().expect("peeked"));
            }
            if blocks_it.peek().is_some_and(|&(bid, _)| bid == id) {
                blocks_it.next();
            }
            out.push((id, tf));
        }
        out.extend(blocks_it);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // test code: panics are the failure report

    use super::*;
    use tklus_geo::{encode, Point};

    fn cell(lat: f64, lon: f64) -> Geohash {
        encode(&Point::new_unchecked(lat, lon), 4).unwrap()
    }

    fn table() -> (MemtableIndex, Geohash) {
        let c = cell(43.70, -79.42);
        let mut m = MemtableIndex::new();
        m.insert(TweetId(5), UserId(1), c, &[("hotel".into(), 2), ("coffe".into(), 1)]);
        m.insert(TweetId(2), UserId(2), c, &[("hotel".into(), 1)]);
        m.insert(TweetId(9), UserId(1), c, &[("coffe".into(), 3)]);
        (m, c)
    }

    #[test]
    fn or_unions_and_sorts_by_id() {
        let (m, c) = table();
        let cands = m
            .candidates(&[c], &[Some("hotel".into()), Some("coffe".into())], Semantics::Or)
            .unwrap();
        assert_eq!(cands, vec![(TweetId(2), 1), (TweetId(5), 3), (TweetId(9), 3)]);
    }

    #[test]
    fn and_intersects_and_none_keyword_empties() {
        let (m, c) = table();
        let both = m
            .candidates(&[c], &[Some("hotel".into()), Some("coffe".into())], Semantics::And)
            .unwrap();
        assert_eq!(both, vec![(TweetId(5), 3)]);
        let with_stopword = m
            .candidates(&[c], &[Some("hotel".into()), None, Some("coffe".into())], Semantics::And)
            .unwrap();
        assert!(with_stopword.is_empty());
        // OR just drops the normalized-away keyword.
        let or = m.candidates(&[c], &[Some("hotel".into()), None], Semantics::Or).unwrap();
        assert_eq!(or.len(), 2);
    }

    #[test]
    fn cover_filters_by_cell_and_duplicate_keywords_count_once() {
        let (mut m, c) = table();
        let far = cell(-33.87, 151.21);
        m.insert(TweetId(11), UserId(3), far, &[("hotel".into(), 1)]);
        let near = m.candidates(&[c], &[Some("hotel".into())], Semantics::Or).unwrap();
        assert!(near.iter().all(|&(tid, _)| tid != TweetId(11)));
        let both_cells = m.candidates(&[c, far], &[Some("hotel".into())], Semantics::Or).unwrap();
        assert!(both_cells.iter().any(|&(tid, _)| tid == TweetId(11)));
        let dup = m
            .candidates(&[c], &[Some("hotel".into()), Some("hotel".into())], Semantics::Or)
            .unwrap();
        assert_eq!(dup, m.candidates(&[c], &[Some("hotel".into())], Semantics::Or).unwrap());
    }

    #[test]
    fn clear_and_accessors() {
        let (mut m, _) = table();
        assert_eq!(m.len(), 3);
        assert_eq!(m.users(), vec![UserId(1), UserId(2)]);
        assert!(m.contains(TweetId(5)));
        m.clear();
        assert!(m.is_empty());
        assert!(m.candidates(&[], &[Some("hotel".into())], Semantics::Or).unwrap().is_empty());
    }

    /// Past the threshold the hot lists pack into block postings, and
    /// candidate formation stays bitwise-identical to a flat memtable fed
    /// the same inserts — in both OR and AND, across interleaved id
    /// orders and multiple cells.
    #[test]
    fn packed_lists_answer_identically_to_flat() {
        let near = cell(43.70, -79.42);
        let far = cell(-33.87, 151.21);
        let mut packed = MemtableIndex::with_pack_threshold(64);
        let mut flat = MemtableIndex::with_pack_threshold(usize::MAX);
        // Interleave ids so tails merge into packed runs mid-range, and
        // spread posts over two cells and three terms.
        for i in 0..600u64 {
            let id = TweetId((i * 7919) % 6000);
            if packed.contains(id) {
                continue;
            }
            let c = if i % 3 == 0 { far } else { near };
            let mut terms: Vec<(String, u32)> = vec![("hotel".into(), (i % 4 + 1) as u32)];
            if i % 2 == 0 {
                terms.push(("coffe".into(), (i % 3 + 1) as u32));
            }
            if i % 5 == 0 {
                terms.push(("beach".into(), 1));
            }
            packed.insert(id, UserId(i % 17), c, &terms);
            flat.insert(id, UserId(i % 17), c, &terms);
        }
        assert!(packed.packed_lists() > 0, "threshold never engaged the block codec");
        assert_eq!(flat.packed_lists(), 0);
        let kws = |names: &[&str]| -> Vec<Option<String>> {
            names.iter().map(|n| Some((*n).to_string())).collect()
        };
        for cover in [vec![near], vec![far], vec![near, far]] {
            for semantics in [Semantics::Or, Semantics::And] {
                for keywords in
                    [kws(&["hotel"]), kws(&["hotel", "coffe"]), kws(&["coffe", "beach"])]
                {
                    let got = packed.candidates(&cover, &keywords, semantics).unwrap();
                    let want = flat.candidates(&cover, &keywords, semantics).unwrap();
                    assert_eq!(got, want, "cover {cover:?} {semantics:?} {keywords:?}");
                }
            }
        }
    }

    /// Inserts after a list packs land in the tail and still answer.
    #[test]
    fn tail_after_packing_still_merges() {
        let c = cell(43.70, -79.42);
        let mut m = MemtableIndex::with_pack_threshold(1);
        for i in 0..(BLOCK_LEN as u64 + 10) {
            m.insert(TweetId(i * 2), UserId(1), c, &[("hotel".into(), 1)]);
        }
        assert!(m.packed_lists() > 0);
        // A fresh id below, between, and above the packed range.
        m.insert(TweetId(1), UserId(2), c, &[("hotel".into(), 5)]);
        m.insert(TweetId(9), UserId(2), c, &[("hotel".into(), 4)]);
        m.insert(TweetId(100_000), UserId(2), c, &[("hotel".into(), 3)]);
        let rows = m.candidates(&[c], &[Some("hotel".into())], Semantics::Or).unwrap();
        assert_eq!(rows.len(), BLOCK_LEN + 13);
        assert!(rows.windows(2).all(|w| w[0].0 < w[1].0), "rows must stay id-sorted");
        assert!(rows.contains(&(TweetId(1), 5)));
        assert!(rows.contains(&(TweetId(9), 4)));
        assert!(rows.contains(&(TweetId(100_000), 3)));
    }
}
