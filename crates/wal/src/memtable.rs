//! The live delta index: postings for acked-but-unsealed posts.
//!
//! The sealed engine's inverted index is immutable; posts ingested since
//! the last compaction live here instead, as a tiny in-memory postings
//! map keyed by ⟨geohash cell, term *string*⟩. Term strings, not term
//! ids: a live post can carry words the sealed vocabulary has never seen,
//! and the whole point of the delta is to answer for them before any
//! index rebuild.
//!
//! [`MemtableIndex::candidates`] mirrors the sealed engine's candidate
//! formation exactly — per-cell exact lookups over the query's circle
//! cover, OR = union summing term frequencies, AND = per-keyword unions
//! intersected (any keyword that normalizes away empties an AND query) —
//! so the ingest store can merge sealed and live candidates into one
//! tweet-id-ordered stream and reproduce a from-scratch engine's answers
//! bit for bit (the snapshot-equality oracle in `tests/` asserts this).

use std::collections::BTreeMap;
use tklus_geo::Geohash;
use tklus_model::{Semantics, TweetId, UserId};

/// In-memory postings over the live (unsealed) posts.
#[derive(Debug, Default, Clone)]
pub struct MemtableIndex {
    /// ⟨cell, term⟩ → tweet-id-sorted postings with term frequencies.
    postings: BTreeMap<(Geohash, String), Vec<(TweetId, u32)>>,
    /// Live posts: tweet → author.
    posts: BTreeMap<TweetId, UserId>,
}

impl MemtableIndex {
    /// An empty memtable.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live posts.
    pub fn len(&self) -> usize {
        self.posts.len()
    }

    /// True when no posts are live.
    pub fn is_empty(&self) -> bool {
        self.posts.is_empty()
    }

    /// The live tweet ids, ascending.
    pub fn tweet_ids(&self) -> impl Iterator<Item = TweetId> + '_ {
        self.posts.keys().copied()
    }

    /// True when `tid` is a live (unsealed) post.
    pub fn contains(&self, tid: TweetId) -> bool {
        self.posts.contains_key(&tid)
    }

    /// The distinct authors of live posts, ascending.
    pub fn users(&self) -> Vec<UserId> {
        let mut users: Vec<UserId> = self.posts.values().copied().collect();
        users.sort();
        users.dedup();
        users
    }

    /// Absorbs one post: `cell` is its geohash at the sealed index's
    /// encoding length, `terms` the pipeline's `(term, tf)` counts
    /// ([`tklus_core::TklusEngine::term_counts`]). Posts may arrive in any
    /// tweet-id order (replay is sequence-ordered, not id-ordered);
    /// postings stay id-sorted by insertion position.
    pub fn insert(&mut self, tid: TweetId, uid: UserId, cell: Geohash, terms: &[(String, u32)]) {
        self.posts.insert(tid, uid);
        for (term, tf) in terms {
            let list = self.postings.entry((cell, term.clone())).or_default();
            match list.binary_search_by_key(&tid, |e| e.0) {
                Ok(at) => list[at].1 = *tf,
                Err(at) => list.insert(at, (tid, *tf)),
            }
        }
    }

    /// Drops every post (compaction sealed them).
    pub fn clear(&mut self) {
        self.postings.clear();
        self.posts.clear();
    }

    /// Candidate formation over the live posts, mirroring the sealed
    /// engine: `cover` is the query's circle cover at the index geohash
    /// length, `keywords` the *normalized* query keywords (`None` =
    /// normalized away). OR unions all lists summing tf; AND unions per
    /// keyword then intersects, and any `None` keyword empties the whole
    /// AND query (the sealed engine's contract). Returns id-sorted
    /// `(tweet, tf)` rows.
    pub fn candidates(
        &self,
        cover: &[Geohash],
        keywords: &[Option<String>],
        semantics: Semantics,
    ) -> Vec<(TweetId, u32)> {
        // Dedup normalized keywords (the sealed path's resolve contract:
        // "Hotels" and "hotel" contribute one term).
        let mut terms: Vec<&str> = Vec::new();
        for kw in keywords {
            match kw {
                Some(t) if !terms.contains(&t.as_str()) => terms.push(t),
                Some(_) => {}
                None if semantics == Semantics::And => return Vec::new(),
                None => {}
            }
        }
        if terms.is_empty() {
            return Vec::new();
        }
        match semantics {
            Semantics::Or => {
                let mut acc: BTreeMap<TweetId, u32> = BTreeMap::new();
                for term in &terms {
                    for (tid, tf) in self.term_postings(cover, term) {
                        *acc.entry(tid).or_insert(0) += tf;
                    }
                }
                acc.into_iter().collect()
            }
            Semantics::And => {
                let mut groups: Vec<Vec<(TweetId, u32)>> = Vec::with_capacity(terms.len());
                for term in &terms {
                    let group: Vec<(TweetId, u32)> = self.term_postings(cover, term).collect();
                    if group.is_empty() {
                        return Vec::new();
                    }
                    groups.push(group);
                }
                tklus_index::intersect_sum(&groups)
            }
        }
    }

    /// One keyword's postings across the cover, id-sorted. A live post
    /// appears in exactly one cell, so the per-cell lists are disjoint and
    /// chaining them cell-by-cell then sorting by id is a true union.
    fn term_postings<'a>(
        &'a self,
        cover: &'a [Geohash],
        term: &'a str,
    ) -> impl Iterator<Item = (TweetId, u32)> + 'a {
        let mut rows: Vec<(TweetId, u32)> = cover
            .iter()
            .filter_map(|cell| self.postings.get(&(*cell, term.to_string())))
            .flatten()
            .copied()
            .collect();
        rows.sort_by_key(|e| e.0);
        rows.into_iter()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // test code: panics are the failure report

    use super::*;
    use tklus_geo::{encode, Point};

    fn cell(lat: f64, lon: f64) -> Geohash {
        encode(&Point::new_unchecked(lat, lon), 4).unwrap()
    }

    fn table() -> (MemtableIndex, Geohash) {
        let c = cell(43.70, -79.42);
        let mut m = MemtableIndex::new();
        m.insert(TweetId(5), UserId(1), c, &[("hotel".into(), 2), ("coffe".into(), 1)]);
        m.insert(TweetId(2), UserId(2), c, &[("hotel".into(), 1)]);
        m.insert(TweetId(9), UserId(1), c, &[("coffe".into(), 3)]);
        (m, c)
    }

    #[test]
    fn or_unions_and_sorts_by_id() {
        let (m, c) = table();
        let cands =
            m.candidates(&[c], &[Some("hotel".into()), Some("coffe".into())], Semantics::Or);
        assert_eq!(cands, vec![(TweetId(2), 1), (TweetId(5), 3), (TweetId(9), 3)]);
    }

    #[test]
    fn and_intersects_and_none_keyword_empties() {
        let (m, c) = table();
        let both =
            m.candidates(&[c], &[Some("hotel".into()), Some("coffe".into())], Semantics::And);
        assert_eq!(both, vec![(TweetId(5), 3)]);
        let with_stopword =
            m.candidates(&[c], &[Some("hotel".into()), None, Some("coffe".into())], Semantics::And);
        assert!(with_stopword.is_empty());
        // OR just drops the normalized-away keyword.
        let or = m.candidates(&[c], &[Some("hotel".into()), None], Semantics::Or);
        assert_eq!(or.len(), 2);
    }

    #[test]
    fn cover_filters_by_cell_and_duplicate_keywords_count_once() {
        let (mut m, c) = table();
        let far = cell(-33.87, 151.21);
        m.insert(TweetId(11), UserId(3), far, &[("hotel".into(), 1)]);
        let near = m.candidates(&[c], &[Some("hotel".into())], Semantics::Or);
        assert!(near.iter().all(|&(tid, _)| tid != TweetId(11)));
        let both_cells = m.candidates(&[c, far], &[Some("hotel".into())], Semantics::Or);
        assert!(both_cells.iter().any(|&(tid, _)| tid == TweetId(11)));
        let dup = m.candidates(&[c], &[Some("hotel".into()), Some("hotel".into())], Semantics::Or);
        assert_eq!(dup, m.candidates(&[c], &[Some("hotel".into())], Semantics::Or));
    }

    #[test]
    fn clear_and_accessors() {
        let (mut m, _) = table();
        assert_eq!(m.len(), 3);
        assert_eq!(m.users(), vec![UserId(1), UserId(2)]);
        assert!(m.contains(TweetId(5)));
        m.clear();
        assert!(m.is_empty());
        assert!(m.candidates(&[], &[Some("hotel".into())], Semantics::Or).is_empty());
    }
}
