//! The filesystem seam the write path runs through.
//!
//! Everything durable — WAL segments, sealed partitions, the manifest —
//! goes through [`WalFs`], a flat namespace of store-relative file names
//! (`'/'` allowed, treated as directories only by [`StdFs`]). Two
//! implementations:
//!
//! * [`StdFs`] — the real filesystem under a root directory, with real
//!   `fsync` on [`WalFs::sync`] and atomic `rename`.
//! * [`SimFs`] — an in-memory model for the crash-recovery chaos suite.
//!   Each file tracks its full content *and* its durable prefix (advanced
//!   only by `sync`). A [`FaultHandle`] crash schedule (the same
//!   SplitMix64 machinery as [`tklus_storage::FaultPager`]'s crash
//!   channel) kills the write path at the Nth mutating operation: the
//!   dying append persists a seeded prefix of its bytes, every later
//!   operation fails [`WalError::Crashed`], and
//!   [`SimFs::crash_and_lose_unsynced`] then models the kernel dropping
//!   un-synced page-cache bytes — each file keeps its durable prefix plus
//!   a seeded slice of whatever was volatile, which is exactly the torn
//!   tail recovery must tolerate.
//!
//! Durability model of the directory operations: `create`, `rename`, and
//! `remove` are atomic and immediately durable (the journal-protected
//! metadata path), while *content* is durable only up to the last `sync`.
//! The write-temp/fsync/rename discipline the compactor uses is honest
//! under this model **only if it syncs before renaming** — a missing sync
//! shows up in the chaos suite as a manifest pointing at truncated files.

use crate::error::WalError;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;
use tklus_storage::{splitmix64, CrashVerdict, FaultHandle};

/// The flat file-store interface of the write path.
pub trait WalFs: Send + Sync {
    /// All file names in the store, sorted.
    fn list(&self) -> Result<Vec<String>, WalError>;
    /// Whole-file read.
    fn read(&self, name: &str) -> Result<Vec<u8>, WalError>;
    /// Creates (or truncates) `name` as an empty file.
    fn create(&self, name: &str) -> Result<(), WalError>;
    /// Appends `bytes` to `name` (which must exist).
    fn append(&self, name: &str, bytes: &[u8]) -> Result<(), WalError>;
    /// Makes `name`'s current content durable.
    fn sync(&self, name: &str) -> Result<(), WalError>;
    /// Truncates `name` to `len` bytes (recovery's torn-tail cut).
    fn truncate(&self, name: &str, len: u64) -> Result<(), WalError>;
    /// Atomically replaces `to` with `from` (the manifest swap).
    fn rename(&self, from: &str, to: &str) -> Result<(), WalError>;
    /// Removes `name` (absent is fine — deletion is idempotent so a crash
    /// between compaction's removals just retries at the next open).
    fn remove(&self, name: &str) -> Result<(), WalError>;
}

fn io_err(op: &'static str, path: &str, source: std::io::Error) -> WalError {
    WalError::Io { op, path: path.to_string(), source }
}

// ---------------------------------------------------------------------
// Real filesystem
// ---------------------------------------------------------------------

/// [`WalFs`] over a root directory on the real filesystem.
pub struct StdFs {
    root: PathBuf,
}

impl StdFs {
    /// Opens (creating if needed) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, WalError> {
        let root = root.into();
        std::fs::create_dir_all(&root)
            .map_err(|e| io_err("create_dir", &root.to_string_lossy(), e))?;
        Ok(Self { root })
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }

    /// Best-effort directory fsync so renames/creates survive power loss.
    fn sync_dir(&self, name: &str) {
        let dir = self.path(name).parent().map(PathBuf::from).unwrap_or_else(|| self.root.clone());
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
}

impl WalFs for StdFs {
    fn list(&self) -> Result<Vec<String>, WalError> {
        let mut out = Vec::new();
        let mut stack = vec![(self.root.clone(), String::new())];
        while let Some((dir, prefix)) = stack.pop() {
            let entries = std::fs::read_dir(&dir).map_err(|e| io_err("list", &prefix, e))?;
            for entry in entries {
                let entry = entry.map_err(|e| io_err("list", &prefix, e))?;
                let name = entry.file_name().to_string_lossy().into_owned();
                let rel = if prefix.is_empty() { name } else { format!("{prefix}/{name}") };
                let ty = entry.file_type().map_err(|e| io_err("list", &rel, e))?;
                if ty.is_dir() {
                    stack.push((entry.path(), rel));
                } else {
                    out.push(rel);
                }
            }
        }
        out.sort();
        Ok(out)
    }

    fn read(&self, name: &str) -> Result<Vec<u8>, WalError> {
        std::fs::read(self.path(name)).map_err(|e| io_err("read", name, e))
    }

    fn create(&self, name: &str) -> Result<(), WalError> {
        if let Some(parent) = self.path(name).parent() {
            std::fs::create_dir_all(parent).map_err(|e| io_err("create", name, e))?;
        }
        std::fs::File::create(self.path(name)).map_err(|e| io_err("create", name, e))?;
        self.sync_dir(name);
        Ok(())
    }

    fn append(&self, name: &str, bytes: &[u8]) -> Result<(), WalError> {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(self.path(name))
            .map_err(|e| io_err("append", name, e))?;
        f.write_all(bytes).map_err(|e| io_err("append", name, e))
    }

    fn sync(&self, name: &str) -> Result<(), WalError> {
        std::fs::OpenOptions::new()
            .write(true)
            .open(self.path(name))
            .and_then(|f| f.sync_all())
            .map_err(|e| io_err("sync", name, e))
    }

    fn truncate(&self, name: &str, len: u64) -> Result<(), WalError> {
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(self.path(name))
            .map_err(|e| io_err("truncate", name, e))?;
        f.set_len(len).and_then(|()| f.sync_all()).map_err(|e| io_err("truncate", name, e))
    }

    fn rename(&self, from: &str, to: &str) -> Result<(), WalError> {
        std::fs::rename(self.path(from), self.path(to)).map_err(|e| io_err("rename", from, e))?;
        self.sync_dir(to);
        Ok(())
    }

    fn remove(&self, name: &str) -> Result<(), WalError> {
        match std::fs::remove_file(self.path(name)) {
            Ok(()) => {
                self.sync_dir(name);
                Ok(())
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err("remove", name, e)),
        }
    }
}

// ---------------------------------------------------------------------
// Simulated crash filesystem
// ---------------------------------------------------------------------

/// One simulated file: full (volatile) content plus the durable prefix.
#[derive(Debug, Clone, Default)]
struct SimFile {
    data: Vec<u8>,
    durable: usize,
}

/// In-memory [`WalFs`] with deterministic crash injection. See the module
/// docs for the durability model.
pub struct SimFs {
    files: Mutex<BTreeMap<String, SimFile>>,
    handle: Arc<FaultHandle>,
    seed: u64,
}

impl SimFs {
    /// An empty simulated store with a crash schedule seeded by `seed`.
    /// The returned [`FaultHandle`] arms crash points via
    /// [`FaultHandle::arm_crash_at`]; while disarmed the store behaves
    /// like a perfectly reliable disk.
    pub fn new(seed: u64) -> (Arc<Self>, Arc<FaultHandle>) {
        let handle = FaultHandle::new();
        (
            Arc::new(Self {
                files: Mutex::new(BTreeMap::new()),
                handle: Arc::clone(&handle),
                seed,
            }),
            handle,
        )
    }

    /// The crash-schedule handle.
    pub fn handle(&self) -> Arc<FaultHandle> {
        Arc::clone(&self.handle)
    }

    /// Models the machine dying and rebooting: every file loses its
    /// volatile suffix except a seeded prefix of it (the torn tail a real
    /// disk's partially flushed cache leaves behind), and the crash latch
    /// is cleared so the store accepts operations again. Call after the
    /// scheduled crash fired — or at any quiescent point to model an
    /// un-scheduled power cut.
    pub fn crash_and_lose_unsynced(&self) {
        let mut files = self.files.lock();
        for (name, file) in files.iter_mut() {
            let volatile = file.data.len() - file.durable;
            if volatile > 0 {
                let mut h = self.seed ^ 0xC0FF_EE00;
                for b in name.bytes() {
                    h = splitmix64(h ^ u64::from(b));
                }
                let keep = (splitmix64(h) % (volatile as u64 + 1)) as usize;
                file.data.truncate(file.durable + keep);
            }
            // What survived the reboot is what is on the platter now.
            file.durable = file.data.len();
        }
        self.handle.arm_crash_at(0);
    }

    /// A snapshot of `(name, durable_len, total_len)` for assertions.
    pub fn file_sizes(&self) -> Vec<(String, usize, usize)> {
        self.files.lock().iter().map(|(n, f)| (n.clone(), f.durable, f.data.len())).collect()
    }

    /// Consults the crash schedule for one mutating operation.
    fn gate(&self) -> Result<Option<u64>, WalError> {
        match self.handle.crash_verdict() {
            CrashVerdict::Proceed => Ok(None),
            CrashVerdict::Kill(op) => Ok(Some(op)),
            CrashVerdict::Dead => Err(WalError::Crashed),
        }
    }
}

impl WalFs for SimFs {
    fn list(&self) -> Result<Vec<String>, WalError> {
        if self.handle.is_crashed() {
            return Err(WalError::Crashed);
        }
        Ok(self.files.lock().keys().cloned().collect())
    }

    fn read(&self, name: &str) -> Result<Vec<u8>, WalError> {
        if self.handle.is_crashed() {
            return Err(WalError::Crashed);
        }
        self.files.lock().get(name).map(|f| f.data.clone()).ok_or_else(|| {
            io_err("read", name, std::io::Error::new(std::io::ErrorKind::NotFound, "no such file"))
        })
    }

    fn create(&self, name: &str) -> Result<(), WalError> {
        if self.gate()?.is_some() {
            return Err(WalError::Crashed);
        }
        self.files.lock().insert(name.to_string(), SimFile::default());
        Ok(())
    }

    fn append(&self, name: &str, bytes: &[u8]) -> Result<(), WalError> {
        let kill = self.gate()?;
        let mut files = self.files.lock();
        let Some(file) = files.get_mut(name) else {
            return Err(io_err(
                "append",
                name,
                std::io::Error::new(std::io::ErrorKind::NotFound, "no such file"),
            ));
        };
        match kill {
            None => {
                file.data.extend_from_slice(bytes);
                Ok(())
            }
            Some(op) => {
                // The dying append lands a SplitMix64-sized prefix — from
                // nothing to everything — and the "process" never learns.
                let keep = (splitmix64(self.seed ^ op.wrapping_mul(0x9E37_79B9))
                    % (bytes.len() as u64 + 1)) as usize;
                file.data.extend_from_slice(&bytes[..keep]);
                Err(WalError::Crashed)
            }
        }
    }

    fn sync(&self, name: &str) -> Result<(), WalError> {
        if self.gate()?.is_some() {
            return Err(WalError::Crashed);
        }
        let mut files = self.files.lock();
        let Some(file) = files.get_mut(name) else {
            return Err(io_err(
                "sync",
                name,
                std::io::Error::new(std::io::ErrorKind::NotFound, "no such file"),
            ));
        };
        file.durable = file.data.len();
        Ok(())
    }

    fn truncate(&self, name: &str, len: u64) -> Result<(), WalError> {
        if self.gate()?.is_some() {
            return Err(WalError::Crashed);
        }
        let mut files = self.files.lock();
        let Some(file) = files.get_mut(name) else {
            return Err(io_err(
                "truncate",
                name,
                std::io::Error::new(std::io::ErrorKind::NotFound, "no such file"),
            ));
        };
        file.data.truncate(len as usize);
        file.durable = file.durable.min(file.data.len());
        Ok(())
    }

    fn rename(&self, from: &str, to: &str) -> Result<(), WalError> {
        if self.gate()?.is_some() {
            return Err(WalError::Crashed);
        }
        let mut files = self.files.lock();
        let Some(file) = files.remove(from) else {
            return Err(io_err(
                "rename",
                from,
                std::io::Error::new(std::io::ErrorKind::NotFound, "no such file"),
            ));
        };
        files.insert(to.to_string(), file);
        Ok(())
    }

    fn remove(&self, name: &str) -> Result<(), WalError> {
        if self.gate()?.is_some() {
            return Err(WalError::Crashed);
        }
        self.files.lock().remove(name);
        Ok(())
    }
}

/// Test-only [`WalFs`] wrapper with scripted *transient* failures —
/// unlike [`SimFs`]'s crash latch (which kills every later operation),
/// a `FlakyFs` fault fails one call and then recovers, modelling an
/// `ENOSPC`-style error the process survives. A scripted append failure
/// still lands a prefix of its bytes first, like a partial `write_all`.
#[cfg(test)]
pub(crate) struct FlakyFs {
    inner: Arc<SimFs>,
    /// `(appends until failure, bytes of the failing append that land)`.
    fail_append: Mutex<Option<(u32, usize)>>,
    /// Syncs until failure (the frame before it lands whole).
    fail_sync: Mutex<Option<u32>>,
}

#[cfg(test)]
impl FlakyFs {
    pub(crate) fn new(inner: Arc<SimFs>) -> Arc<Self> {
        Arc::new(Self { inner, fail_append: Mutex::new(None), fail_sync: Mutex::new(None) })
    }

    /// Fails the `nth` append from now (1-based), persisting `partial`
    /// bytes of it before erroring.
    pub(crate) fn fail_append_at(&self, nth: u32, partial: usize) {
        *self.fail_append.lock() = Some((nth, partial));
    }

    /// Fails the `nth` sync from now (1-based).
    pub(crate) fn fail_sync_at(&self, nth: u32) {
        *self.fail_sync.lock() = Some(nth);
    }

    fn flake(op: &'static str, name: &str) -> WalError {
        io_err(op, name, std::io::Error::other("flaky disk: out of space"))
    }
}

#[cfg(test)]
impl WalFs for FlakyFs {
    fn list(&self) -> Result<Vec<String>, WalError> {
        self.inner.list()
    }
    fn read(&self, name: &str) -> Result<Vec<u8>, WalError> {
        self.inner.read(name)
    }
    fn create(&self, name: &str) -> Result<(), WalError> {
        self.inner.create(name)
    }
    fn append(&self, name: &str, bytes: &[u8]) -> Result<(), WalError> {
        let mut script = self.fail_append.lock();
        if let Some((left, partial)) = script.as_mut() {
            *left -= 1;
            if *left == 0 {
                let keep = (*partial).min(bytes.len());
                *script = None;
                self.inner.append(name, &bytes[..keep])?;
                return Err(Self::flake("append", name));
            }
        }
        self.inner.append(name, bytes)
    }
    fn sync(&self, name: &str) -> Result<(), WalError> {
        let mut script = self.fail_sync.lock();
        if let Some(left) = script.as_mut() {
            *left -= 1;
            if *left == 0 {
                *script = None;
                return Err(Self::flake("sync", name));
            }
        }
        self.inner.sync(name)
    }
    fn truncate(&self, name: &str, len: u64) -> Result<(), WalError> {
        self.inner.truncate(name, len)
    }
    fn rename(&self, from: &str, to: &str) -> Result<(), WalError> {
        self.inner.rename(from, to)
    }
    fn remove(&self, name: &str) -> Result<(), WalError> {
        self.inner.remove(name)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // test code: panics are the failure report

    use super::*;

    #[test]
    fn sim_fs_sync_advances_durability() {
        let (fs, _) = SimFs::new(1);
        fs.create("a").unwrap();
        fs.append("a", b"hello ").unwrap();
        fs.sync("a").unwrap();
        fs.append("a", b"world").unwrap();
        fs.crash_and_lose_unsynced();
        let data = fs.read("a").unwrap();
        assert!(data.starts_with(b"hello "), "synced prefix must survive: {data:?}");
        assert!(data.len() <= b"hello world".len());
    }

    #[test]
    fn sim_fs_scheduled_crash_kills_everything_after() {
        let (fs, handle) = SimFs::new(7);
        fs.create("a").unwrap(); // op 1 pre-arm? No: arming resets the counter.
        handle.arm_crash_at(2);
        fs.append("a", b"one").unwrap(); // op 1
        assert!(matches!(fs.append("a", b"two"), Err(WalError::Crashed))); // op 2: dies
        assert!(matches!(fs.sync("a"), Err(WalError::Crashed)));
        assert!(matches!(fs.read("a"), Err(WalError::Crashed)));
        fs.crash_and_lose_unsynced();
        // Nothing was synced: whatever survived is a prefix of "onetwo"'s
        // written part; the store works again.
        let data = fs.read("a").unwrap();
        assert!(b"onetwo".starts_with(&data[..]), "{data:?}");
    }

    #[test]
    fn std_fs_roundtrip() {
        let dir = std::env::temp_dir().join(format!("tklus-wal-fs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let fs = StdFs::open(&dir).unwrap();
        fs.create("seg/a.log").unwrap();
        fs.append("seg/a.log", b"abc").unwrap();
        fs.sync("seg/a.log").unwrap();
        fs.create("m.tmp").unwrap();
        fs.append("m.tmp", b"manifest").unwrap();
        fs.sync("m.tmp").unwrap();
        fs.rename("m.tmp", "MANIFEST").unwrap();
        assert_eq!(fs.read("MANIFEST").unwrap(), b"manifest");
        assert_eq!(fs.list().unwrap(), vec!["MANIFEST".to_string(), "seg/a.log".to_string()]);
        fs.truncate("seg/a.log", 1).unwrap();
        assert_eq!(fs.read("seg/a.log").unwrap(), b"a");
        fs.remove("seg/a.log").unwrap();
        fs.remove("seg/a.log").unwrap(); // idempotent
        let _ = std::fs::remove_dir_all(&dir);
    }
}
