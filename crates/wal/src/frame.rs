//! The CRC32 frame codec every WAL byte goes through.
//!
//! A frame is `[len: u32 LE][crc32(payload): u32 LE][payload]` — length
//! prefix first so a reader knows how much to expect, checksum over the
//! payload so a torn or bit-flipped tail can never decode as data. The
//! CRC is the same polynomial as the page layer's
//! ([`tklus_storage::crc32`]), extending the PR 3 checksum discipline to
//! the write path.
//!
//! Decoding never panics and never guesses: every outcome is one of the
//! four [`FrameStep`] variants, and the recovery layer — not this module —
//! decides whether a bad step means "truncate here" (final segment) or
//! "typed corruption error" (any earlier segment).

use tklus_storage::crc32;

/// Frame header bytes: length prefix + payload checksum.
pub const FRAME_HEADER: usize = 8;

/// Largest payload a frame may carry (16 MiB). A length prefix above this
/// is garbage by definition — no record we write comes near it — which
/// lets the decoder classify an insane length as a bad frame instead of
/// attempting a huge allocation.
pub const MAX_FRAME_PAYLOAD: usize = 1 << 24;

/// One step of the frame scanner at `offset` into a segment's bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameStep {
    /// A valid frame: payload at `buf[payload_start..payload_start + len]`,
    /// next frame (or end) at `next`.
    Frame {
        /// Start of the payload inside the buffer.
        payload_start: usize,
        /// Payload length.
        len: usize,
        /// Offset of the byte after this frame.
        next: usize,
    },
    /// `offset` is exactly the end of the buffer: a clean tail.
    CleanEnd,
    /// Bytes remain but fewer than a whole frame: the torn-tail signature
    /// of a crash mid-append.
    Torn {
        /// What was cut short.
        reason: &'static str,
    },
    /// A whole frame's worth of bytes is present but invalid (checksum
    /// mismatch, zero or insane length).
    Bad {
        /// What failed to validate.
        reason: &'static str,
    },
}

/// Appends one frame around `payload` to `out`.
pub fn encode_frame(payload: &[u8], out: &mut Vec<u8>) {
    assert!(
        !payload.is_empty() && payload.len() <= MAX_FRAME_PAYLOAD,
        "frame payload must be 1..={MAX_FRAME_PAYLOAD} bytes"
    );
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Classifies the bytes at `buf[offset..]` as the next frame, a clean
/// end, a torn tail, or a bad frame. Pure and panic-free for every input.
pub fn decode_step(buf: &[u8], offset: usize) -> FrameStep {
    let remaining = buf.len().saturating_sub(offset);
    if remaining == 0 {
        return FrameStep::CleanEnd;
    }
    if remaining < FRAME_HEADER {
        return FrameStep::Torn { reason: "frame header cut short" };
    }
    let len = u32::from_le_bytes(buf[offset..offset + 4].try_into().expect("4 bytes")) as usize;
    if len == 0 {
        return FrameStep::Bad { reason: "zero-length frame" };
    }
    if len > MAX_FRAME_PAYLOAD {
        return FrameStep::Bad { reason: "frame length exceeds maximum" };
    }
    if remaining < FRAME_HEADER + len {
        return FrameStep::Torn { reason: "frame payload cut short" };
    }
    let want = u32::from_le_bytes(buf[offset + 4..offset + 8].try_into().expect("4 bytes"));
    let payload_start = offset + FRAME_HEADER;
    if crc32(&buf[payload_start..payload_start + len]) != want {
        return FrameStep::Bad { reason: "frame checksum mismatch" };
    }
    FrameStep::Frame { payload_start, len, next: payload_start + len }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // test code: panics are the failure report

    use super::*;

    #[test]
    fn roundtrip_two_frames() {
        let mut buf = Vec::new();
        encode_frame(b"hello", &mut buf);
        encode_frame(b"world!", &mut buf);
        let FrameStep::Frame { payload_start, len, next } = decode_step(&buf, 0) else {
            panic!("first frame")
        };
        assert_eq!(&buf[payload_start..payload_start + len], b"hello");
        let FrameStep::Frame { payload_start, len, next } = decode_step(&buf, next) else {
            panic!("second frame")
        };
        assert_eq!(&buf[payload_start..payload_start + len], b"world!");
        assert_eq!(decode_step(&buf, next), FrameStep::CleanEnd);
    }

    #[test]
    fn truncation_is_torn_not_bad() {
        let mut buf = Vec::new();
        encode_frame(b"payload", &mut buf);
        for cut in 1..buf.len() {
            match decode_step(&buf[..cut], 0) {
                FrameStep::Torn { .. } => {}
                other => panic!("cut at {cut}: expected Torn, got {other:?}"),
            }
        }
    }

    #[test]
    fn flipped_payload_bit_is_bad() {
        let mut buf = Vec::new();
        encode_frame(b"payload", &mut buf);
        buf[FRAME_HEADER] ^= 0x10;
        assert!(matches!(decode_step(&buf, 0), FrameStep::Bad { .. }));
    }

    #[test]
    fn zero_and_insane_lengths_are_bad() {
        let mut zero = vec![0u8; FRAME_HEADER];
        assert!(matches!(decode_step(&zero, 0), FrameStep::Bad { .. }));
        zero[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode_step(&zero, 0), FrameStep::Bad { .. }));
    }
}
