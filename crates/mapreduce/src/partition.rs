//! Shuffle partitioners.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Decides which reduce partition a key belongs to.
pub trait Partitioner<K>: Sync {
    /// Partition index in `0..n` for `key`. Must be deterministic.
    fn partition(&self, key: &K, n: usize) -> usize;
}

/// Hadoop's default: hash the key, modulo the partition count.
#[derive(Debug, Default, Clone, Copy)]
pub struct HashPartitioner;

impl<K: Hash> Partitioner<K> for HashPartitioner {
    fn partition(&self, key: &K, n: usize) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() % n as u64) as usize
    }
}

/// Range partitioner over sorted split points: keys `< splits[0]` go to
/// partition 0, keys in `[splits[i-1], splits[i])` to partition `i`, and
/// keys `>= splits.last()` to the final partition. With geohash-prefix
/// split points this keeps each spatial key range on one node — the
/// locality property Section IV-B1 claims for the geohash layout.
#[derive(Debug, Clone)]
pub struct RangePartitioner<K> {
    splits: Vec<K>,
}

impl<K: Ord> RangePartitioner<K> {
    /// Creates a partitioner with `splits.len() + 1` partitions. Splits
    /// must be strictly increasing.
    pub fn new(splits: Vec<K>) -> Self {
        assert!(splits.windows(2).all(|w| w[0] < w[1]), "split points must be strictly increasing");
        Self { splits }
    }

    /// Number of partitions this partitioner defines.
    pub fn partitions(&self) -> usize {
        self.splits.len() + 1
    }
}

impl<K: Ord + Sync + Send> Partitioner<K> for RangePartitioner<K> {
    fn partition(&self, key: &K, n: usize) -> usize {
        debug_assert!(
            n >= self.partitions(),
            "job configured with fewer partitions than the range partitioner defines"
        );
        self.splits.partition_point(|s| s <= key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_partitioner_is_deterministic_and_in_range() {
        let p = HashPartitioner;
        for key in ["a", "b", "zzz", ""] {
            let x = p.partition(&key, 7);
            assert_eq!(x, p.partition(&key, 7));
            assert!(x < 7);
        }
    }

    #[test]
    fn range_partitioner_buckets() {
        let p = RangePartitioner::new(vec![10u64, 20, 30]);
        assert_eq!(p.partitions(), 4);
        assert_eq!(p.partition(&5, 4), 0);
        assert_eq!(p.partition(&10, 4), 1);
        assert_eq!(p.partition(&19, 4), 1);
        assert_eq!(p.partition(&20, 4), 2);
        assert_eq!(p.partition(&30, 4), 3);
        assert_eq!(p.partition(&999, 4), 3);
    }

    #[test]
    fn range_partitioner_preserves_order() {
        // Keys in increasing order never move to a lower partition.
        let p = RangePartitioner::new(vec!["g".to_string(), "p".to_string()]);
        let parts: Vec<usize> =
            ["a", "g", "h", "p", "z"].iter().map(|k| p.partition(&k.to_string(), 3)).collect();
        assert!(parts.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(parts, vec![0, 1, 1, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn range_partitioner_rejects_unsorted_splits() {
        let _ = RangePartitioner::new(vec![3u64, 2]);
    }
}
