//! Job counters, in the spirit of Hadoop's built-in counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters accumulated across all tasks of one job.
#[derive(Debug, Default)]
pub struct JobCounters {
    map_input_records: AtomicU64,
    map_output_records: AtomicU64,
    reduce_groups: AtomicU64,
    reduce_output_records: AtomicU64,
    shuffled_records: AtomicU64,
    task_retries: AtomicU64,
}

/// A read-only snapshot of [`JobCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterSnapshot {
    /// Records consumed by mappers.
    pub map_input_records: u64,
    /// Pairs emitted by mappers.
    pub map_output_records: u64,
    /// Distinct key groups reduced.
    pub reduce_groups: u64,
    /// Records emitted by reducers.
    pub reduce_output_records: u64,
    /// Pairs crossing the shuffle (equals map output in this engine).
    pub shuffled_records: u64,
    /// Task attempts that panicked and were retried.
    pub task_retries: u64,
}

impl JobCounters {
    pub(crate) fn add_map_input(&self, n: u64) {
        self.map_input_records.fetch_add(n, Ordering::Relaxed);
    }
    pub(crate) fn add_map_output(&self, n: u64) {
        self.map_output_records.fetch_add(n, Ordering::Relaxed);
        self.shuffled_records.fetch_add(n, Ordering::Relaxed);
    }
    pub(crate) fn add_reduce_group(&self, n: u64) {
        self.reduce_groups.fetch_add(n, Ordering::Relaxed);
    }
    pub(crate) fn add_reduce_output(&self, n: u64) {
        self.reduce_output_records.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn add_task_retry(&self, n: u64) {
        self.task_retries.fetch_add(n, Ordering::Relaxed);
    }

    /// Snapshot of all counters.
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            map_input_records: self.map_input_records.load(Ordering::Relaxed),
            map_output_records: self.map_output_records.load(Ordering::Relaxed),
            reduce_groups: self.reduce_groups.load(Ordering::Relaxed),
            reduce_output_records: self.reduce_output_records.load(Ordering::Relaxed),
            shuffled_records: self.shuffled_records.load(Ordering::Relaxed),
            task_retries: self.task_retries.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_adds() {
        let c = JobCounters::default();
        c.add_map_input(3);
        c.add_map_output(5);
        c.add_reduce_group(2);
        c.add_reduce_output(4);
        let s = c.snapshot();
        assert_eq!(s.map_input_records, 3);
        assert_eq!(s.map_output_records, 5);
        assert_eq!(s.shuffled_records, 5);
        assert_eq!(s.reduce_groups, 2);
        assert_eq!(s.reduce_output_records, 4);
    }
}
