//! An in-process MapReduce engine.
//!
//! The paper builds its hybrid index "under Hadoop MapReduce" (Section
//! IV-B2, Algorithms 2 and 3) for scalability and fault tolerance. This
//! crate reproduces the *programming model and execution structure* of that
//! pipeline in-process:
//!
//! * a [`Mapper`] maps each input record to `(key, value)` pairs;
//! * the engine shuffles pairs to reduce partitions through a pluggable
//!   [`Partitioner`] (hash by default; the index build uses a range
//!   partitioner so one spatial key range lands on one simulated node,
//!   matching "all points for a given rectangular area in one computer");
//! * within each partition, pairs are sorted by key and grouped — the
//!   Hadoop guarantee the paper leans on ("the Hadoop MapReduce framework
//!   can guarantee that the key of the inverted index is sorted");
//! * a [`Reducer`] folds each group, and the driver receives per-partition
//!   key-sorted output plus [`JobCounters`].
//!
//! Map tasks run on real threads (scoped, via [`std::thread::scope`]); the
//! worker count models the simulated cluster's nodes.

pub mod counters;
pub mod engine;
pub mod job;
pub mod partition;

pub use counters::JobCounters;
pub use engine::{run_job, JobConfig, JobOutput};
pub use job::{Mapper, Reducer};
pub use partition::{HashPartitioner, Partitioner, RangePartitioner};
