//! Mapper and Reducer traits — the user-visible programming model of
//! Algorithms 2 and 3.

use std::hash::Hash;

/// A map function: one input record to zero or more `(key, value)` pairs.
///
/// Algorithm 2's map function takes a post, tokenizes/stems it, and emits
/// `⟨(geohash, term), (timestamp, tf)⟩` pairs; any other job shapes its own
/// types the same way.
pub trait Mapper: Sync {
    /// Input record type.
    type Input: Send + Sync;
    /// Intermediate key; must be totally ordered for the sort-merge shuffle.
    type Key: Clone + Ord + Hash + Send;
    /// Intermediate value.
    type Value: Send;

    /// Maps one record, emitting pairs through `emit`.
    fn map(&self, input: &Self::Input, emit: &mut dyn FnMut(Self::Key, Self::Value));
}

/// A reduce function: one key group to zero or more outputs.
///
/// Algorithm 3's reduce function receives all postings for one
/// `⟨geohash, term⟩` key, sorts them by timestamp, and emits the postings
/// list.
pub trait Reducer: Sync {
    /// Key type (must match the mapper's).
    type Key;
    /// Incoming value type (must match the mapper's).
    type Value;
    /// Output record type.
    type Output: Send;

    /// Reduces one key group. `values` arrive in arbitrary order (like
    /// Hadoop, value order within a key is not guaranteed).
    fn reduce(&self, key: &Self::Key, values: Vec<Self::Value>, emit: &mut dyn FnMut(Self::Output));
}
