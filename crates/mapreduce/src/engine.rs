//! The job driver: threaded map phase, sort-merge shuffle, reduce phase.

use crate::counters::{CounterSnapshot, JobCounters};
use crate::job::{Mapper, Reducer};
use crate::partition::Partitioner;
use std::panic::AssertUnwindSafe;
use std::time::{Duration, Instant};

/// Job configuration.
#[derive(Debug, Clone, Copy)]
pub struct JobConfig {
    /// Number of concurrent map tasks (one thread each). Models the worker
    /// slots of the simulated cluster.
    pub map_tasks: usize,
    /// Number of reduce partitions (= output partition files).
    pub reduce_tasks: usize,
    /// Attempts per task before the job fails — Hadoop-style task retry,
    /// the fault-tolerance half of why the paper picks MapReduce. A task
    /// that panics is re-executed from its input split (map) or its
    /// shuffled bucket (reduce); user code must therefore be deterministic
    /// or at least idempotent, as in Hadoop.
    pub max_attempts: usize,
}

impl Default for JobConfig {
    fn default() -> Self {
        Self { map_tasks: 3, reduce_tasks: 3, max_attempts: 3 }
    }
}

/// Runs `task` up to `max_attempts` times, capturing panics; counts
/// retries. Panics (ending the job) only when every attempt failed.
fn run_attempts<T>(
    max_attempts: usize,
    counters: &JobCounters,
    what: &str,
    task: impl Fn() -> T,
) -> T {
    for attempt in 1..=max_attempts {
        match std::panic::catch_unwind(AssertUnwindSafe(&task)) {
            Ok(out) => return out,
            Err(payload) => {
                if attempt == max_attempts {
                    std::panic::resume_unwind(payload);
                }
                counters.add_task_retry(1);
                let _ = what;
            }
        }
    }
    unreachable!("loop either returns or resumes unwinding")
}

/// Output of a job: one key-sorted `(key, output)` vector per reduce
/// partition, plus counters and phase timings.
#[derive(Debug)]
pub struct JobOutput<K, O> {
    /// `partitions[i]` holds reducer `i`'s output, sorted by key.
    pub partitions: Vec<Vec<(K, O)>>,
    /// Counter snapshot.
    pub counters: CounterSnapshot,
    /// Wall time of the map + shuffle phase.
    pub map_time: Duration,
    /// Wall time of the reduce phase.
    pub reduce_time: Duration,
}

/// Runs a MapReduce job over `inputs`.
///
/// Within each partition the reducer sees key groups in ascending key
/// order, and the partition output preserves that order — the sortedness
/// guarantee Section IV-B2 relies on for the contiguous on-disk layout of
/// `⟨geohash, term⟩` keys.
pub fn run_job<M, R, P>(
    config: JobConfig,
    inputs: &[M::Input],
    mapper: &M,
    reducer: &R,
    partitioner: &P,
) -> JobOutput<M::Key, R::Output>
where
    M: Mapper,
    M::Value: Clone,
    R: Reducer<Key = M::Key, Value = M::Value>,
    P: Partitioner<M::Key>,
{
    assert!(config.map_tasks > 0 && config.reduce_tasks > 0, "tasks must be positive");
    assert!(config.max_attempts > 0, "at least one attempt per task");
    let counters = JobCounters::default();
    let nred = config.reduce_tasks;

    // ---- Map phase: each task maps a contiguous input split and
    // pre-partitions its emissions.
    let map_start = Instant::now();
    let chunk = inputs.len().div_ceil(config.map_tasks).max(1);
    let splits: Vec<&[M::Input]> = inputs.chunks(chunk).collect();
    let mut buckets: Vec<Vec<(M::Key, M::Value)>> = (0..nred).map(|_| Vec::new()).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = splits
            .iter()
            .map(|split| {
                let counters = &counters;
                scope.spawn(move || {
                    run_attempts(config.max_attempts, counters, "map", || {
                        let mut local: Vec<Vec<(M::Key, M::Value)>> =
                            (0..nred).map(|_| Vec::new()).collect();
                        let mut inputs = 0u64;
                        let mut outputs = 0u64;
                        for record in *split {
                            inputs += 1;
                            mapper.map(record, &mut |k, v| {
                                let p = partitioner.partition(&k, nred);
                                debug_assert!(
                                    p < nred,
                                    "partitioner returned {p} for {nred} partitions"
                                );
                                local[p].push((k, v));
                                outputs += 1;
                            });
                        }
                        // Counters commit only on task success, so a
                        // retried task is not double-counted.
                        counters.add_map_input(inputs);
                        counters.add_map_output(outputs);
                        local
                    })
                })
            })
            .collect();
        for handle in handles {
            // Propagate the original panic payload so callers see the
            // task's own failure message.
            let local = handle.join().unwrap_or_else(|payload| std::panic::resume_unwind(payload));
            for (bucket, mut part) in buckets.iter_mut().zip(local) {
                bucket.append(&mut part);
            }
        }
    });
    let map_time = map_start.elapsed();

    // ---- Reduce phase: sort each partition by key, group, reduce.
    let reduce_start = Instant::now();
    let mut partitions: Vec<Vec<(M::Key, R::Output)>> = Vec::with_capacity(nred);
    std::thread::scope(|scope| {
        let handles: Vec<_> = buckets
            .into_iter()
            .map(|mut bucket| {
                let counters = &counters;
                scope.spawn(move || {
                    bucket.sort_by(|a, b| a.0.cmp(&b.0));
                    // Retry re-reads the sorted bucket, mirroring Hadoop
                    // re-reading spilled shuffle files; values are cloned
                    // per group for that reason.
                    run_attempts(config.max_attempts, counters, "reduce", || {
                        let mut out: Vec<(M::Key, R::Output)> = Vec::new();
                        let mut groups = 0u64;
                        let mut emitted = 0u64;
                        let mut i = 0;
                        while i < bucket.len() {
                            let key = &bucket[i].0;
                            let mut j = i + 1;
                            while j < bucket.len() && bucket[j].0 == *key {
                                j += 1;
                            }
                            let values: Vec<M::Value> =
                                bucket[i..j].iter().map(|(_, v)| v.clone()).collect();
                            groups += 1;
                            reducer.reduce(key, values, &mut |o| {
                                out.push((key.clone(), o));
                                emitted += 1;
                            });
                            i = j;
                        }
                        counters.add_reduce_group(groups);
                        counters.add_reduce_output(emitted);
                        out
                    })
                })
            })
            .collect();
        for handle in handles {
            partitions
                .push(handle.join().unwrap_or_else(|payload| std::panic::resume_unwind(payload)));
        }
    });
    let reduce_time = reduce_start.elapsed();

    JobOutput { partitions, counters: counters.snapshot(), map_time, reduce_time }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{HashPartitioner, RangePartitioner};

    /// Classic word count: mapper splits lines, reducer sums counts.
    struct WcMap;
    impl Mapper for WcMap {
        type Input = String;
        type Key = String;
        type Value = u64;
        fn map(&self, input: &String, emit: &mut dyn FnMut(String, u64)) {
            for w in input.split_whitespace() {
                emit(w.to_string(), 1);
            }
        }
    }

    struct WcReduce;
    impl Reducer for WcReduce {
        type Key = String;
        type Value = u64;
        type Output = u64;
        fn reduce(&self, _key: &String, values: Vec<u64>, emit: &mut dyn FnMut(u64)) {
            emit(values.iter().sum());
        }
    }

    fn lines(texts: &[&str]) -> Vec<String> {
        texts.iter().map(|s| s.to_string()).collect()
    }

    fn collect_all(out: JobOutput<String, u64>) -> std::collections::BTreeMap<String, u64> {
        out.partitions.into_iter().flatten().collect()
    }

    #[test]
    fn word_count_end_to_end() {
        let inputs = lines(&["hotel toronto hotel", "toronto cafe", "hotel"]);
        let out = run_job(JobConfig::default(), &inputs, &WcMap, &WcReduce, &HashPartitioner);
        let counts = collect_all(out);
        assert_eq!(counts.get("hotel"), Some(&3));
        assert_eq!(counts.get("toronto"), Some(&2));
        assert_eq!(counts.get("cafe"), Some(&1));
    }

    #[test]
    fn counters_add_up() {
        let inputs = lines(&["a b c", "a a"]);
        let out = run_job(JobConfig::default(), &inputs, &WcMap, &WcReduce, &HashPartitioner);
        assert_eq!(out.counters.map_input_records, 2);
        assert_eq!(out.counters.map_output_records, 5);
        assert_eq!(out.counters.shuffled_records, 5);
        assert_eq!(out.counters.reduce_groups, 3); // a, b, c
        assert_eq!(out.counters.reduce_output_records, 3);
    }

    #[test]
    fn partitions_are_key_sorted() {
        let inputs: Vec<String> =
            (0..200).map(|i| format!("w{:03} w{:03}", i % 50, (i * 7) % 50)).collect();
        let out = run_job(
            JobConfig { map_tasks: 4, reduce_tasks: 5, ..JobConfig::default() },
            &inputs,
            &WcMap,
            &WcReduce,
            &HashPartitioner,
        );
        assert_eq!(out.partitions.len(), 5);
        for part in &out.partitions {
            assert!(part.windows(2).all(|w| w[0].0 < w[1].0), "partition not sorted");
        }
    }

    #[test]
    fn result_is_independent_of_task_counts() {
        let inputs: Vec<String> =
            (0..100).map(|i| format!("k{} k{} k{}", i % 11, i % 7, i % 5)).collect();
        let base = collect_all(run_job(
            JobConfig { map_tasks: 1, reduce_tasks: 1, ..JobConfig::default() },
            &inputs,
            &WcMap,
            &WcReduce,
            &HashPartitioner,
        ));
        for (m, r) in [(2, 3), (4, 1), (3, 8), (7, 2)] {
            let got = collect_all(run_job(
                JobConfig { map_tasks: m, reduce_tasks: r, ..JobConfig::default() },
                &inputs,
                &WcMap,
                &WcReduce,
                &HashPartitioner,
            ));
            assert_eq!(got, base, "map_tasks={m} reduce_tasks={r}");
        }
    }

    #[test]
    fn range_partitioner_keeps_ranges_together() {
        let inputs = lines(&["apple grape mango zebra", "banana pear zulu"]);
        let p = RangePartitioner::new(vec!["h".to_string(), "q".to_string()]);
        let out = run_job(
            JobConfig { map_tasks: 2, reduce_tasks: 3, ..JobConfig::default() },
            &inputs,
            &WcMap,
            &WcReduce,
            &p,
        );
        // Partition 0: keys < "h"; partition 1: "h".."q"; partition 2: >= "q".
        let part_keys: Vec<Vec<&String>> =
            out.partitions.iter().map(|p| p.iter().map(|(k, _)| k).collect()).collect();
        assert!(part_keys[0].iter().all(|k| k.as_str() < "h"), "{part_keys:?}");
        assert!(part_keys[1].iter().all(|k| ("h".."q").contains(&k.as_str())));
        assert!(part_keys[2].iter().all(|k| k.as_str() >= "q"));
        // Global order = concatenation of partitions (total order property).
        let flat: Vec<&String> = part_keys.into_iter().flatten().collect();
        assert!(flat.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn empty_input_yields_empty_partitions() {
        let out = run_job(
            JobConfig::default(),
            &Vec::<String>::new(),
            &WcMap,
            &WcReduce,
            &HashPartitioner,
        );
        assert_eq!(out.partitions.len(), 3);
        assert!(out.partitions.iter().all(Vec::is_empty));
        assert_eq!(out.counters.map_input_records, 0);
    }

    #[test]
    #[should_panic(expected = "tasks must be positive")]
    fn zero_tasks_rejected() {
        let _ = run_job(
            JobConfig { map_tasks: 0, reduce_tasks: 1, ..JobConfig::default() },
            &Vec::<String>::new(),
            &WcMap,
            &WcReduce,
            &HashPartitioner,
        );
    }

    /// A reducer that emits multiple outputs per key, to cover that path.
    struct ExplodeReduce;
    impl Reducer for ExplodeReduce {
        type Key = String;
        type Value = u64;
        type Output = u64;
        fn reduce(&self, _key: &String, values: Vec<u64>, emit: &mut dyn FnMut(u64)) {
            for v in values {
                emit(v * 10);
            }
        }
    }

    #[test]
    fn reducer_can_emit_many() {
        let inputs = lines(&["x x x"]);
        let out = run_job(JobConfig::default(), &inputs, &WcMap, &ExplodeReduce, &HashPartitioner);
        let all: Vec<(String, u64)> = out.partitions.into_iter().flatten().collect();
        assert_eq!(all.len(), 3);
        assert!(all.iter().all(|(k, v)| k == "x" && *v == 10));
    }
}
