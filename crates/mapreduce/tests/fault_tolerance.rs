//! Fault injection: tasks that panic are retried and the job still
//! produces exactly the same output as a healthy run.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use tklus_mapreduce::{run_job, HashPartitioner, JobConfig, Mapper, Reducer};

struct WcMap;
impl Mapper for WcMap {
    type Input = String;
    type Key = String;
    type Value = u64;
    fn map(&self, input: &String, emit: &mut dyn FnMut(String, u64)) {
        for w in input.split_whitespace() {
            emit(w.to_string(), 1);
        }
    }
}

struct WcReduce;
impl Reducer for WcReduce {
    type Key = String;
    type Value = u64;
    type Output = u64;
    fn reduce(&self, _key: &String, values: Vec<u64>, emit: &mut dyn FnMut(u64)) {
        emit(values.iter().sum());
    }
}

/// A mapper whose first `failures` invocations panic (simulating a worker
/// crash), then behaves like word count.
struct FlakyMap {
    failures: usize,
    calls: AtomicUsize,
}

impl Mapper for FlakyMap {
    type Input = String;
    type Key = String;
    type Value = u64;
    fn map(&self, input: &String, emit: &mut dyn FnMut(String, u64)) {
        if self.calls.fetch_add(1, Ordering::SeqCst) < self.failures {
            panic!("injected map-task failure");
        }
        WcMap.map(input, emit);
    }
}

/// A reducer that panics on its first `failures` key groups.
struct FlakyReduce {
    failures: usize,
    calls: AtomicUsize,
}

impl Reducer for FlakyReduce {
    type Key = String;
    type Value = u64;
    type Output = u64;
    fn reduce(&self, key: &String, values: Vec<u64>, emit: &mut dyn FnMut(u64)) {
        if self.calls.fetch_add(1, Ordering::SeqCst) < self.failures {
            panic!("injected reduce-task failure");
        }
        WcReduce.reduce(key, values, emit);
    }
}

fn inputs() -> Vec<String> {
    (0..60).map(|i| format!("w{} w{} shared", i % 7, i % 13)).collect()
}

fn healthy_result() -> BTreeMap<String, u64> {
    run_job(JobConfig::default(), &inputs(), &WcMap, &WcReduce, &HashPartitioner)
        .partitions
        .into_iter()
        .flatten()
        .collect()
}

#[test]
fn map_failures_are_retried_transparently() {
    let flaky = FlakyMap { failures: 2, calls: AtomicUsize::new(0) };
    let out = run_job(
        JobConfig { max_attempts: 3, ..JobConfig::default() },
        &inputs(),
        &flaky,
        &WcReduce,
        &HashPartitioner,
    );
    assert!(out.counters.task_retries >= 1, "retries recorded: {:?}", out.counters);
    let got: BTreeMap<String, u64> = out.partitions.into_iter().flatten().collect();
    assert_eq!(got, healthy_result(), "retried job matches healthy output");
    // Counters are not double-counted by the failed attempts.
    assert_eq!(out.counters.map_input_records, 60);
}

#[test]
fn reduce_failures_are_retried_transparently() {
    let flaky = FlakyReduce { failures: 2, calls: AtomicUsize::new(0) };
    let out = run_job(
        JobConfig { max_attempts: 4, ..JobConfig::default() },
        &inputs(),
        &WcMap,
        &flaky,
        &HashPartitioner,
    );
    assert!(out.counters.task_retries >= 1);
    let got: BTreeMap<String, u64> = out.partitions.into_iter().flatten().collect();
    assert_eq!(got, healthy_result());
    // Each key group reduced exactly once in the successful attempts'
    // accounting.
    assert_eq!(out.counters.reduce_groups as usize, healthy_result().len());
}

#[test]
#[should_panic(expected = "injected map-task failure")]
fn exhausted_attempts_fail_the_job() {
    // More injected failures than total attempts allow.
    let flaky = FlakyMap { failures: 1_000_000, calls: AtomicUsize::new(0) };
    let _ = run_job(
        JobConfig { map_tasks: 2, reduce_tasks: 2, max_attempts: 2 },
        &inputs(),
        &flaky,
        &WcReduce,
        &HashPartitioner,
    );
}

#[test]
fn single_attempt_config_disables_retry() {
    let healthy = run_job(
        JobConfig { max_attempts: 1, ..JobConfig::default() },
        &inputs(),
        &WcMap,
        &WcReduce,
        &HashPartitioner,
    );
    assert_eq!(healthy.counters.task_retries, 0);
    let got: BTreeMap<String, u64> = healthy.partitions.into_iter().flatten().collect();
    assert_eq!(got, healthy_result());
}
