//! The paper's padded Kendall tau variant (Section VI-B3).
//!
//! Two top-k results from different ranking functions need not contain the
//! same users, so the paper pads each ranking with the other's missing
//! elements, all tied at rank k+1: for k = 3, `ρ_b = ⟨A,B,C⟩` and
//! `ρ_d = ⟨B,D,E⟩` become `⟨A,B,C,{D,E}⟩` and `⟨B,D,E,{A,C}⟩`. A pair is
//! concordant when both rankings order it the same way (including "both
//! tied"), discordant otherwise, and
//! `τ = (cp − dp) / (0.5 · n · (n − 1))` over the `n` padded elements —
//! so identical rankings score 1 and reversed rankings −1.

use std::collections::HashMap;
use std::hash::Hash;

/// Computes the padded Kendall tau between two rankings (best first).
/// Elements must be unique within each ranking. Returns 1.0 for two empty
/// rankings (vacuously identical).
///
/// ```
/// use tklus_metrics::padded_kendall_tau;
///
/// assert_eq!(padded_kendall_tau(&["a", "b"], &["a", "b"]), 1.0);
/// assert_eq!(padded_kendall_tau(&["a", "b"], &["b", "a"]), -1.0);
/// ```
pub fn padded_kendall_tau<T: Eq + Hash + Clone>(a: &[T], b: &[T]) -> f64 {
    // Union of elements, with ranks; missing elements share rank len+1.
    let rank_map = |list: &[T]| -> HashMap<T, usize> {
        list.iter().enumerate().map(|(i, x)| (x.clone(), i + 1)).collect()
    };
    let ra = rank_map(a);
    let rb = rank_map(b);
    let mut universe: Vec<T> = a.to_vec();
    for x in b {
        if !ra.contains_key(x) {
            universe.push(x.clone());
        }
    }
    let n = universe.len();
    if n < 2 {
        return 1.0;
    }
    let tie_a = a.len() + 1;
    let tie_b = b.len() + 1;
    let rank_a = |x: &T| ra.get(x).copied().unwrap_or(tie_a);
    let rank_b = |x: &T| rb.get(x).copied().unwrap_or(tie_b);

    let mut cp = 0i64;
    let mut dp = 0i64;
    for i in 0..n {
        for j in i + 1..n {
            let sa = (rank_a(&universe[i]) as i64 - rank_a(&universe[j]) as i64).signum();
            let sb = (rank_b(&universe[i]) as i64 - rank_b(&universe[j]) as i64).signum();
            if sa == sb {
                cp += 1;
            } else {
                dp += 1;
            }
        }
    }
    (cp - dp) as f64 / (0.5 * n as f64 * (n as f64 - 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_rankings_score_one() {
        assert_eq!(padded_kendall_tau(&["a", "b", "c"], &["a", "b", "c"]), 1.0);
        assert_eq!(padded_kendall_tau::<&str>(&[], &[]), 1.0);
        assert_eq!(padded_kendall_tau(&["x"], &["x"]), 1.0);
    }

    #[test]
    fn reversed_rankings_score_minus_one() {
        assert_eq!(padded_kendall_tau(&["a", "b", "c"], &["c", "b", "a"]), -1.0);
    }

    #[test]
    fn single_swap_partial_agreement() {
        // (a,b,c) vs (a,c,b): pairs (a,b), (a,c) concordant; (b,c)
        // discordant -> (2 - 1) / 3.
        let tau = padded_kendall_tau(&["a", "b", "c"], &["a", "c", "b"]);
        assert!((tau - 1.0 / 3.0).abs() < 1e-12, "tau {tau}");
    }

    #[test]
    fn paper_padding_example() {
        // ρ_b = ⟨A,B,C⟩, ρ_d = ⟨B,D,E⟩: universe {A,B,C,D,E}, n = 5,
        // 10 pairs. Ranks in b: A1 B2 C3 D4 E4; in d: B1 D2 E3 A4 C4.
        // Concordant pairs: (B,C) (B1<C4, B2<C3... wait computed below),
        // just assert the value is reproducible and in range.
        let tau = padded_kendall_tau(&["A", "B", "C"], &["B", "D", "E"]);
        // Manual count: pairs and (sign_b, sign_d):
        // (A,B): b:1-2=-1, d:4-1=+1 -> discordant
        // (A,C): b:-1, d:4-4=0 -> discordant
        // (A,D): b:1-4=-1, d:4-2=+1 -> discordant
        // (A,E): b:-1, d:+1 -> discordant
        // (B,C): b:-1, d:1-4=-1 -> concordant
        // (B,D): b:2-4=-1, d:1-2=-1 -> concordant
        // (B,E): b:-1, d:-1 -> concordant
        // (C,D): b:3-4=-1, d:4-2=+1 -> discordant
        // (C,E): b:-1, d:+1 -> discordant
        // (D,E): b:4-4=0, d:2-3=-1 -> discordant
        // cp=3, dp=7 -> (3-7)/10 = -0.4.
        assert!((tau - (-0.4)).abs() < 1e-12, "tau {tau}");
    }

    #[test]
    fn disjoint_rankings_are_negative() {
        let tau = padded_kendall_tau(&["a", "b"], &["c", "d"]);
        assert!(tau < 0.0, "tau {tau}");
    }

    #[test]
    fn symmetric() {
        let a = ["u1", "u2", "u3", "u4", "u5"];
        let b = ["u2", "u1", "u6", "u3", "u9"];
        assert!((padded_kendall_tau(&a, &b) - padded_kendall_tau(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn high_overlap_scores_high() {
        // Same members, one adjacent swap deep in the list.
        let a = ["u1", "u2", "u3", "u4", "u5", "u6", "u7", "u8", "u9", "u10"];
        let mut b = a;
        b.swap(8, 9);
        let tau = padded_kendall_tau(&a, &b);
        assert!(tau > 0.9, "tau {tau}");
    }

    #[test]
    fn range_bounds() {
        // A scrambled comparison stays within [-1, 1].
        let a = ["a", "b", "c", "d"];
        let b = ["d", "x", "a", "y"];
        let tau = padded_kendall_tau(&a, &b);
        assert!((-1.0..=1.0).contains(&tau), "tau {tau}");
    }
}
