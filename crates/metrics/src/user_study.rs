//! Simulated user study (Section VI-B6).
//!
//! The paper invites six Twitter-literate participants; each result line
//! `(userId, tweet content)` is judged by four of them, and a user is
//! regarded relevant "if a particular Twitter user's tweets are considered
//! relevant twice or even more". We replace the humans with a panel of
//! stochastic judges driven by a *latent relevance* per line — computed by
//! the harness from ground truth the paper's judges would perceive: does
//! the tweet really carry the query keywords, and how close to the query
//! location was it posted? Each judge reads the latent relevance through
//! personal noise; the vote-aggregation protocol is the paper's.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tklus_geo::Point;
use tklus_model::UserId;

/// One top-10 result line presented to the panel.
#[derive(Debug, Clone)]
pub struct StudyLine {
    /// The returned user.
    pub user: UserId,
    /// Where the exemplar tweet was posted.
    pub tweet_location: Point,
    /// Fraction of query keywords the exemplar tweet actually contains
    /// (1.0 = all of them).
    pub keyword_match: f64,
}

/// A panel of simulated judges.
#[derive(Debug, Clone)]
pub struct JudgePanel {
    /// Number of judges voting on each line (4 in the paper's assignment).
    pub votes_per_line: usize,
    /// Votes required to deem a user relevant (2 in the paper).
    pub relevance_threshold: usize,
    /// Judge noise: each vote flips the latent judgement with this
    /// probability.
    pub noise: f64,
    rng: StdRng,
}

impl JudgePanel {
    /// A paper-shaped panel: 4 votes per line, relevant at ≥ 2, with the
    /// given judge noise and seed.
    pub fn new(noise: f64, seed: u64) -> Self {
        assert!((0.0..=0.5).contains(&noise), "noise must be in [0, 0.5]");
        Self { votes_per_line: 4, relevance_threshold: 2, noise, rng: StdRng::seed_from_u64(seed) }
    }

    /// The latent relevance a human judge would perceive for a line, given
    /// the query: keyword truthfulness weighted by location proximity.
    /// Distance relevance decays linearly within the radius and is zero
    /// beyond twice the radius (a judge looking at a "local expert" whose
    /// tweet is from far outside the asked area marks it irrelevant).
    pub fn latent_relevance(query_loc: &Point, radius_km: f64, line: &StudyLine) -> f64 {
        let d = query_loc.euclidean_km(&line.tweet_location);
        let locality = if d <= radius_km {
            1.0 - 0.3 * (d / radius_km)
        } else if d <= 2.0 * radius_km {
            0.7 * (1.0 - (d - radius_km) / radius_km)
        } else {
            0.0
        };
        (line.keyword_match * locality).clamp(0.0, 1.0)
    }

    /// Judges one line: casts the panel's votes and applies the ≥ threshold
    /// rule. Returns whether the line's user is deemed relevant.
    pub fn judge(&mut self, query_loc: &Point, radius_km: f64, line: &StudyLine) -> bool {
        let latent = Self::latent_relevance(query_loc, radius_km, line);
        let mut votes = 0usize;
        for _ in 0..self.votes_per_line {
            // A judge votes "relevant" with probability = latent relevance,
            // then noise flips the vote.
            let mut vote = self.rng.gen_bool(latent.clamp(0.0, 1.0));
            if self.rng.gen_bool(self.noise) {
                vote = !vote;
            }
            votes += vote as usize;
        }
        votes >= self.relevance_threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q() -> Point {
        Point::new_unchecked(43.7, -79.4)
    }

    fn line(dist_km: f64, keyword_match: f64) -> StudyLine {
        // Move north by dist_km (1 deg lat ~ 111.32 km).
        let loc = Point::new_unchecked(43.7 + dist_km / 111.32, -79.4);
        StudyLine { user: UserId(1), tweet_location: loc, keyword_match }
    }

    #[test]
    fn latent_relevance_decays_with_distance() {
        let r = 10.0;
        let near = JudgePanel::latent_relevance(&q(), r, &line(0.5, 1.0));
        let mid = JudgePanel::latent_relevance(&q(), r, &line(8.0, 1.0));
        let outside = JudgePanel::latent_relevance(&q(), r, &line(15.0, 1.0));
        let far = JudgePanel::latent_relevance(&q(), r, &line(25.0, 1.0));
        assert!(near > mid && mid > outside && outside > far);
        assert_eq!(far, 0.0);
        assert!(near > 0.9);
    }

    #[test]
    fn keyword_match_scales_relevance() {
        let r = 10.0;
        let full = JudgePanel::latent_relevance(&q(), r, &line(1.0, 1.0));
        let half = JudgePanel::latent_relevance(&q(), r, &line(1.0, 0.5));
        let none = JudgePanel::latent_relevance(&q(), r, &line(1.0, 0.0));
        assert!((half - full / 2.0).abs() < 1e-12);
        assert_eq!(none, 0.0);
    }

    #[test]
    fn panel_judges_obvious_cases_correctly() {
        let mut panel = JudgePanel::new(0.05, 42);
        let mut relevant_hits = 0;
        let mut irrelevant_hits = 0;
        for _ in 0..200 {
            relevant_hits += panel.judge(&q(), 10.0, &line(0.5, 1.0)) as usize;
            irrelevant_hits += panel.judge(&q(), 10.0, &line(30.0, 1.0)) as usize;
        }
        assert!(relevant_hits > 180, "clear hits judged relevant: {relevant_hits}/200");
        assert!(irrelevant_hits < 40, "clear misses judged irrelevant: {irrelevant_hits}/200");
    }

    #[test]
    fn deterministic_given_seed() {
        let verdicts = |seed| {
            let mut panel = JudgePanel::new(0.1, seed);
            (0..50).map(|i| panel.judge(&q(), 10.0, &line(i as f64 * 0.4, 0.8))).collect::<Vec<_>>()
        };
        assert_eq!(verdicts(7), verdicts(7));
        assert_ne!(verdicts(7), verdicts(8));
    }

    #[test]
    #[should_panic(expected = "noise must be in")]
    fn silly_noise_rejected() {
        let _ = JudgePanel::new(0.9, 1);
    }
}
