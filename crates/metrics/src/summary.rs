//! Small descriptive-statistics helpers for the benchmark harnesses.

/// Summary statistics over a sample of f64 values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (p50).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile — the tail the overload bench bounds.
    pub p99: f64,
    /// Sample standard deviation (0 when n < 2).
    pub stddev: f64,
}

impl Summary {
    /// Computes a summary; panics on an empty or non-finite sample.
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "summary of empty sample");
        assert!(values.iter().all(|v| v.is_finite()), "non-finite sample value");
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        let n = sorted.len();
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let var = if n < 2 {
            0.0
        } else {
            sorted.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        };
        Self {
            n,
            mean,
            min: sorted[0],
            max: sorted[n - 1],
            p50: percentile(&sorted, 0.50),
            p95: percentile(&sorted, 0.95),
            p99: percentile(&sorted, 0.99),
            stddev: var.sqrt(),
        }
    }
}

/// Nearest-rank percentile over an already-sorted sample.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&q));
    let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_stats() {
        let s = Summary::of(&[4.0, 1.0, 3.0, 2.0, 5.0]);
        assert_eq!(s.n, 5);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.p50, 3.0);
        assert_eq!(s.p95, 5.0);
        assert_eq!(s.p99, 5.0);
        assert!((s.stddev - (2.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn single_value() {
        let s = Summary::of(&[7.5]);
        assert_eq!(s.mean, 7.5);
        assert_eq!(s.p50, 7.5);
        assert_eq!(s.stddev, 0.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_rejected() {
        let _ = Summary::of(&[]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_rejected() {
        let _ = Summary::of(&[1.0, f64::NAN]);
    }
}
