//! Precision: "the fraction of the returned local users that are regarded
//! as relevant by the user study" (Section VI-B6).

use std::collections::HashSet;
use std::hash::Hash;

/// Precision of `returned` (best first, truncated to `k`) against the set
/// of `relevant` items. Returns 0 for an empty result.
pub fn precision_at_k<T: Eq + Hash>(returned: &[T], relevant: &HashSet<T>, k: usize) -> f64 {
    let considered = &returned[..returned.len().min(k)];
    if considered.is_empty() {
        return 0.0;
    }
    let hits = considered.iter().filter(|x| relevant.contains(x)).count();
    hits as f64 / considered.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(items: &[&'static str]) -> HashSet<&'static str> {
        items.iter().copied().collect()
    }

    #[test]
    fn full_and_zero_precision() {
        let relevant = set(&["a", "b", "c"]);
        assert_eq!(precision_at_k(&["a", "b", "c"], &relevant, 3), 1.0);
        assert_eq!(precision_at_k(&["x", "y"], &relevant, 2), 0.0);
        assert_eq!(precision_at_k::<&str>(&[], &relevant, 5), 0.0);
    }

    #[test]
    fn partial_precision() {
        let relevant = set(&["a", "c"]);
        assert_eq!(precision_at_k(&["a", "b", "c", "d"], &relevant, 4), 0.5);
    }

    #[test]
    fn k_truncates() {
        let relevant = set(&["a"]);
        // Only the first 2 considered: {a, b} -> 1 hit of 2.
        assert_eq!(precision_at_k(&["a", "b", "a2", "a3"], &relevant, 2), 0.5);
    }

    #[test]
    fn short_result_divides_by_its_own_length() {
        let relevant = set(&["a"]);
        assert_eq!(precision_at_k(&["a"], &relevant, 10), 1.0);
    }
}
