//! Evaluation metrics for the TkLUS experimental study.
//!
//! * [`kendall`] — the paper's padded variant of the Kendall tau rank
//!   correlation coefficient (Section VI-B3), used to compare Sum- vs
//!   Maximum-score rankings (Figures 9 and 11).
//! * [`precision`] — precision@k for the user study (Figure 13).
//! * [`user_study`] — the simulated judging panel standing in for the
//!   paper's six human participants: four votes per result line, a line is
//!   relevant when at least two votes agree (Section VI-B6).
//! * [`summary`] — small statistics helpers (mean, percentiles) for the
//!   benchmark harnesses.
//! * [`health`] — health/readiness probe types ([`HealthReport`]) the
//!   overload-resilient serving layer reports through (DESIGN.md §11).
//! * [`registry`] — the operational telemetry registry (DESIGN.md §12):
//!   lock-free named counters and power-of-two-bucket latency histograms
//!   with mergeable snapshots and stable Prometheus/JSON renderings.

pub mod health;
pub mod kendall;
pub mod precision;
pub mod registry;
pub mod summary;
pub mod user_study;

pub use health::{Health, HealthReport, Probe};
pub use kendall::padded_kendall_tau;
pub use precision::precision_at_k;
pub use registry::{
    Counter, Histogram, HistogramSnapshot, MetricRegistry, RegistrySnapshot, HISTOGRAM_BUCKETS,
};
pub use summary::Summary;
pub use user_study::{JudgePanel, StudyLine};
