//! Operational metric registry (DESIGN.md §12).
//!
//! A lock-free registry of named [`Counter`]s and fixed-log-bucket
//! [`Histogram`]s. Registration and snapshotting take a mutex; the hot
//! path — recording through a cloned handle — is a single relaxed atomic
//! RMW per counter increment and four per histogram sample, so the engine
//! can record from every query thread without contention.
//!
//! Design points:
//!
//! * **Power-of-two buckets.** A histogram has 64 buckets: bucket 0 holds
//!   the value 0; bucket *i* (1 ≤ *i* ≤ 63) holds values in
//!   `[2^(i-1), 2^i)`, with bucket 63 also absorbing everything above.
//!   Bucket index is one `leading_zeros` — no float math, no search.
//! * **Mergeable snapshots.** [`HistogramSnapshot`] and
//!   [`RegistrySnapshot`] merge bucket-wise / counter-wise, so per-shard
//!   or per-engine registries can be combined for fleet-level views.
//! * **Stable renderings.** [`RegistrySnapshot::render_prometheus`] and
//!   [`RegistrySnapshot::render_json`] emit names in sorted order with a
//!   format pinned by golden tests (the CI metrics smoke job).
//! * **Re-export, don't duplicate.** External counter families
//!   (`IoStats`, `CacheStats`, the serve-layer shed/breaker tallies) are
//!   injected into snapshots via [`RegistrySnapshot::set_counter`] at
//!   snapshot time instead of being double-counted at record time.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of buckets in every [`Histogram`] (one per u64 bit, plus zero).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotonically increasing named counter.
///
/// Cheap to clone; all clones share the same cell. Increments are relaxed
/// atomics — individually exact, monotone, and tear-free.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A fixed-log-bucket latency histogram (values are u64, conventionally
/// microseconds for `*_us` metrics).
///
/// Cheap to clone; all clones share the same cells.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    inner: Arc<HistogramCells>,
}

struct HistogramCells {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramCells {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl std::fmt::Debug for HistogramCells {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistogramCells")
            .field("count", &self.count.load(Ordering::Relaxed))
            .field("sum", &self.sum.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// Bucket index for a value: 0 for 0, else the value's bit length
/// (clamped to 63), so bucket `i` covers `[2^(i-1), 2^i)`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((u64::BITS - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i` (the Prometheus `le` label).
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        _ if i >= HISTOGRAM_BUCKETS - 1 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, value: u64) {
        let cells = &*self.inner;
        cells.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        cells.count.fetch_add(1, Ordering::Relaxed);
        cells.sum.fetch_add(value, Ordering::Relaxed);
        cells.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] in whole microseconds.
    pub fn record_duration_us(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Reads every cell into a snapshot. Each cell is read once; under
    /// concurrent recording the cross-cell skew is bounded by in-flight
    /// `record` calls (each cell individually is exact and monotone).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let cells = &*self.inner;
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| cells.buckets[i].load(Ordering::Relaxed)),
            count: cells.count.load(Ordering::Relaxed),
            sum: cells.sum.load(Ordering::Relaxed),
            max: cells.max.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of a [`Histogram`], mergeable bucket-wise.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`bucket_index`] for the layout).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all recorded values (wrapping add on overflow).
    pub sum: u64,
    /// Largest value recorded.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self { buckets: [0; HISTOGRAM_BUCKETS], count: 0, sum: 0, max: 0 }
    }
}

impl HistogramSnapshot {
    /// Folds `other` into `self` bucket-wise.
    pub fn merge(&mut self, other: &Self) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b = b.saturating_add(*o);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Value at quantile `q` in `[0, 1]`: the upper bound of the bucket
    /// holding the ⌈q·count⌉-th sample, capped at the observed max.
    /// Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(n);
            if seen >= target {
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Median (bucket upper bound).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile (bucket upper bound).
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile (bucket upper bound).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[derive(Debug, Default)]
struct Registered {
    counters: BTreeMap<String, Counter>,
    histograms: BTreeMap<String, Histogram>,
}

/// A named-metric registry.
///
/// `counter`/`histogram` are get-or-register: the first call under a name
/// creates the metric, later calls hand back a clone of the same handle.
/// Only registration and [`snapshot`](Self::snapshot) lock; recording
/// through a handle is lock-free.
#[derive(Debug, Default)]
pub struct MetricRegistry {
    inner: Mutex<Registered>,
}

impl MetricRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Handle to the counter named `name`, registering it if new.
    ///
    /// Names should be `snake_case` ASCII identifiers (they are rendered
    /// verbatim into the Prometheus exposition).
    pub fn counter(&self, name: &str) -> Counter {
        let mut reg = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        debug_assert!(!reg.histograms.contains_key(name), "{name} is a histogram");
        reg.counters.entry(name.to_string()).or_default().clone()
    }

    /// Handle to the histogram named `name`, registering it if new.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut reg = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        debug_assert!(!reg.counters.contains_key(name), "{name} is a counter");
        reg.histograms.entry(name.to_string()).or_default().clone()
    }

    /// Snapshot of every registered metric, names sorted.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let reg = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        RegistrySnapshot {
            counters: reg.counters.iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            histograms: reg.histograms.iter().map(|(k, v)| (k.clone(), v.snapshot())).collect(),
        }
    }
}

/// Point-in-time copy of a whole registry: counter values plus histogram
/// snapshots, keyed by name (sorted). External counter families are
/// injected with [`set_counter`](Self::set_counter) so one snapshot can
/// present every subsystem coherently.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RegistrySnapshot {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, HistogramSnapshot>,
}

impl RegistrySnapshot {
    /// Value of the counter named `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Snapshot of the histogram named `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Sets (or injects) a counter value — used to re-export counters
    /// that live outside the registry (`IoStats`, `CacheStats`, serve
    /// tallies) without double-counting them at record time.
    pub fn set_counter(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_string(), value);
    }

    /// Iterates `(name, value)` over all counters in sorted name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterates `(name, snapshot)` over all histograms in sorted order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &HistogramSnapshot)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Folds `other` into `self`: counters add, histograms merge.
    pub fn merge(&mut self, other: &Self) {
        for (name, &v) in &other.counters {
            let slot = self.counters.entry(name.clone()).or_insert(0);
            *slot = slot.saturating_add(v);
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
    }

    /// Prometheus text exposition: counters as `# TYPE … counter` plus a
    /// value line; histograms as cumulative `_bucket{le="…"}` lines up to
    /// the highest non-empty bucket, then `+Inf`, `_sum`, `_count`.
    /// Names render in sorted order; the format is pinned by golden tests.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(out, "# TYPE {name} histogram");
            let last = h.buckets.iter().rposition(|&n| n > 0);
            let mut cumulative = 0u64;
            if let Some(last) = last {
                for (i, &n) in h.buckets.iter().enumerate().take(last + 1) {
                    cumulative = cumulative.saturating_add(n);
                    let _ = writeln!(
                        out,
                        "{name}_bucket{{le=\"{}\"}} {cumulative}",
                        bucket_upper_bound(i)
                    );
                }
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{name}_sum {}", h.sum);
            let _ = writeln!(out, "{name}_count {}", h.count);
        }
        out
    }

    /// JSON rendering: `{"counters": {…}, "histograms": {name: {count,
    /// sum, max, p50, p90, p99}}}`, names sorted. Metric names are ASCII
    /// identifiers by convention, so no string escaping is performed.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{name}\": {value}");
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    \"{name}\": {{ \"count\": {}, \"sum\": {}, \"max\": {}, \
                 \"p50\": {}, \"p90\": {}, \"p99\": {} }}",
                h.count,
                h.sum,
                h.max,
                h.p50(),
                h.p90(),
                h.p99()
            );
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn counter_accumulates_and_handles_share_state() {
        let reg = MetricRegistry::new();
        let a = reg.counter("tklus_test_total");
        let b = reg.counter("tklus_test_total");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        assert_eq!(reg.snapshot().counter("tklus_test_total"), Some(5));
        assert_eq!(reg.snapshot().counter("missing"), None);
    }

    #[test]
    fn bucket_layout_is_power_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), 63);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(3), 7);
        assert_eq!(bucket_upper_bound(63), u64::MAX);
        // Every value falls inside its bucket's (lower, upper] range.
        for v in [0u64, 1, 2, 3, 15, 16, 17, 1023, 1024, u64::MAX / 2, u64::MAX] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper_bound(i), "{v} above bucket {i}");
            if i > 0 {
                assert!(v > bucket_upper_bound(i - 1), "{v} below bucket {i}");
            }
        }
    }

    #[test]
    fn histogram_quantiles_and_max() {
        let h = Histogram::default();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 5050);
        assert_eq!(s.max, 100);
        // p50 of 1..=100 lands in bucket [33,64] -> upper bound 63.
        assert_eq!(s.p50(), 63);
        // p99 and p100 cap at the observed max.
        assert_eq!(s.p99(), 100);
        assert_eq!(s.quantile(1.0), 100);
        let empty = HistogramSnapshot::default();
        assert_eq!(empty.p50(), 0);
    }

    #[test]
    fn snapshots_merge_bucket_wise() {
        let a = Histogram::default();
        let b = Histogram::default();
        a.record(3);
        a.record(5);
        b.record(5);
        b.record(900);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 4);
        assert_eq!(m.sum, 913);
        assert_eq!(m.max, 900);
        assert_eq!(m.buckets[bucket_index(5)], 2);

        let reg_a = MetricRegistry::new();
        reg_a.counter("x").add(2);
        let reg_b = MetricRegistry::new();
        reg_b.counter("x").add(3);
        reg_b.counter("y").inc();
        let mut snap = reg_a.snapshot();
        snap.merge(&reg_b.snapshot());
        assert_eq!(snap.counter("x"), Some(5));
        assert_eq!(snap.counter("y"), Some(1));
    }

    #[test]
    fn concurrent_recording_is_exact() {
        let reg = std::sync::Arc::new(MetricRegistry::new());
        let n_threads = 8;
        let per_thread = 10_000u64;
        std::thread::scope(|scope| {
            for _ in 0..n_threads {
                let reg = std::sync::Arc::clone(&reg);
                scope.spawn(move || {
                    let c = reg.counter("tklus_storm_total");
                    let h = reg.histogram("tklus_storm_us");
                    for v in 0..per_thread {
                        c.inc();
                        h.record(v % 1024);
                    }
                });
            }
        });
        let snap = reg.snapshot();
        let total = n_threads as u64 * per_thread;
        assert_eq!(snap.counter("tklus_storm_total"), Some(total));
        let h = snap.histogram("tklus_storm_us").unwrap();
        assert_eq!(h.count, total);
        assert_eq!(h.buckets.iter().sum::<u64>(), total);
    }

    #[test]
    fn set_counter_injects_external_values() {
        let reg = MetricRegistry::new();
        reg.counter("tklus_native_total").add(7);
        let mut snap = reg.snapshot();
        snap.set_counter("tklus_injected_total", 42);
        assert_eq!(snap.counter("tklus_injected_total"), Some(42));
        assert_eq!(snap.counter("tklus_native_total"), Some(7));
        // Injection overwrites (re-export semantics, not accumulation).
        snap.set_counter("tklus_injected_total", 43);
        assert_eq!(snap.counter("tklus_injected_total"), Some(43));
    }

    /// Golden-format check: the exact Prometheus exposition for a small
    /// registry. The CI metrics smoke job runs this test; any format
    /// drift fails it.
    #[test]
    fn prometheus_rendering_is_golden() {
        let reg = MetricRegistry::new();
        reg.counter("tklus_queries_total").add(3);
        reg.counter("tklus_cache_cover_hits_total").add(1);
        let h = reg.histogram("tklus_query_latency_us");
        h.record(0);
        h.record(1);
        h.record(5);
        h.record(5);
        let rendered = reg.snapshot().render_prometheus();
        let expected = "\
# TYPE tklus_cache_cover_hits_total counter
tklus_cache_cover_hits_total 1
# TYPE tklus_queries_total counter
tklus_queries_total 3
# TYPE tklus_query_latency_us histogram
tklus_query_latency_us_bucket{le=\"0\"} 1
tklus_query_latency_us_bucket{le=\"1\"} 2
tklus_query_latency_us_bucket{le=\"3\"} 2
tklus_query_latency_us_bucket{le=\"7\"} 4
tklus_query_latency_us_bucket{le=\"+Inf\"} 4
tklus_query_latency_us_sum 11
tklus_query_latency_us_count 4
";
        assert_eq!(rendered, expected);
    }

    #[test]
    fn json_rendering_is_golden() {
        let reg = MetricRegistry::new();
        reg.counter("tklus_queries_total").add(2);
        let h = reg.histogram("tklus_query_latency_us");
        h.record(4);
        h.record(6);
        let rendered = reg.snapshot().render_json();
        let expected = "{
  \"counters\": {
    \"tklus_queries_total\": 2
  },
  \"histograms\": {
    \"tklus_query_latency_us\": { \"count\": 2, \"sum\": 10, \"max\": 6, \
\"p50\": 6, \"p90\": 6, \"p99\": 6 }
  }
}
";
        assert_eq!(rendered, expected);
    }

    #[test]
    fn empty_histogram_renders_inf_only() {
        let reg = MetricRegistry::new();
        let _ = reg.histogram("tklus_idle_us");
        let rendered = reg.snapshot().render_prometheus();
        assert_eq!(
            rendered,
            "# TYPE tklus_idle_us histogram\ntklus_idle_us_bucket{le=\"+Inf\"} 0\n\
             tklus_idle_us_sum 0\ntklus_idle_us_count 0\n"
        );
    }
}
