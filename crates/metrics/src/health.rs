//! Health and readiness probes (DESIGN.md §11).
//!
//! The serving layer reports its operational state — admission-queue
//! pressure, circuit-breaker states, shed counters — as a
//! [`HealthReport`]: a set of named [`Probe`]s each carrying a
//! [`Health`] verdict, plus free-form numeric gauges. The report is plain
//! data with a stable text rendering, so it serves equally as a CLI
//! status line, a test assertion target, and the payload a real
//! `/healthz` endpoint would serialize.
//!
//! Semantics follow the usual liveness/readiness split:
//!
//! * **ready** — the component accepts new work. A draining server is
//!   alive but not ready.
//! * overall [`Health`] — the worst verdict across probes: one `Unhealthy`
//!   probe (say, an open circuit breaker) makes the whole report
//!   `Unhealthy` even while other subsystems hum along.

/// One probe's verdict, ordered best-to-worst so `max` picks the worst.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Health {
    /// Operating normally.
    Healthy,
    /// Operating with reduced quality (e.g. shedding load, probing a
    /// half-open breaker) — answers may be partial or delayed.
    Degraded,
    /// Not operating (e.g. an open breaker failing fast).
    Unhealthy,
}

impl std::fmt::Display for Health {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Health::Healthy => "healthy",
            Health::Degraded => "degraded",
            Health::Unhealthy => "unhealthy",
        })
    }
}

/// One named component's health plus a human-readable detail line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Probe {
    /// Component name (e.g. `"admission"`, `"breaker:storage"`).
    pub name: String,
    /// The verdict.
    pub health: Health,
    /// Operator-facing detail (`"queue 12/64, 3 in flight"`).
    pub detail: String,
}

impl Probe {
    /// Builds a probe.
    pub fn new(name: impl Into<String>, health: Health, detail: impl Into<String>) -> Self {
        Self { name: name.into(), health, detail: detail.into() }
    }
}

/// A point-in-time health snapshot of a serving component.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    /// Whether the component admits new work right now.
    pub ready: bool,
    /// Per-subsystem probes.
    pub probes: Vec<Probe>,
    /// Monotone or point-in-time numeric gauges (queue depth, shed
    /// counts, …), in insertion order.
    pub gauges: Vec<(String, f64)>,
}

impl HealthReport {
    /// An empty, ready report to extend with probes and gauges.
    pub fn ready() -> Self {
        Self { ready: true, probes: Vec::new(), gauges: Vec::new() }
    }

    /// The worst verdict across all probes (`Healthy` when empty).
    pub fn overall(&self) -> Health {
        self.probes.iter().map(|p| p.health).max().unwrap_or(Health::Healthy)
    }

    /// Adds a probe.
    pub fn probe(&mut self, probe: Probe) -> &mut Self {
        self.probes.push(probe);
        self
    }

    /// Adds a gauge.
    pub fn gauge(&mut self, name: impl Into<String>, value: f64) -> &mut Self {
        self.gauges.push((name.into(), value));
        self
    }

    /// Looks up a gauge by name.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Stable multi-line text rendering:
    ///
    /// ```text
    /// status: healthy (ready)
    ///   admission        healthy    queue 0/64, 0 in flight
    ///   breaker:storage  healthy    closed
    /// gauges: queue_depth=0 shed_total=0
    /// ```
    pub fn render(&self) -> String {
        let mut out = format!(
            "status: {} ({})\n",
            self.overall(),
            if self.ready { "ready" } else { "not ready" }
        );
        let name_w = self.probes.iter().map(|p| p.name.len()).max().unwrap_or(0).max(8);
        for p in &self.probes {
            out.push_str(&format!(
                "  {:<name_w$}  {:<9}  {}\n",
                p.name,
                p.health.to_string(),
                p.detail
            ));
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:");
            for (name, value) in &self.gauges {
                if (value.fract() == 0.0) && value.abs() < 1e15 {
                    out.push_str(&format!(" {name}={value:.0}"));
                } else {
                    out.push_str(&format!(" {name}={value:.3}"));
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overall_is_worst_probe() {
        let mut r = HealthReport::ready();
        assert_eq!(r.overall(), Health::Healthy);
        r.probe(Probe::new("a", Health::Healthy, "ok"));
        r.probe(Probe::new("b", Health::Degraded, "shedding"));
        assert_eq!(r.overall(), Health::Degraded);
        r.probe(Probe::new("c", Health::Unhealthy, "breaker open"));
        assert_eq!(r.overall(), Health::Unhealthy);
    }

    #[test]
    fn gauges_are_ordered_and_queryable() {
        let mut r = HealthReport::ready();
        r.gauge("queue_depth", 3.0).gauge("shed_total", 12.0);
        assert_eq!(r.gauge_value("queue_depth"), Some(3.0));
        assert_eq!(r.gauge_value("missing"), None);
        assert_eq!(r.gauges[0].0, "queue_depth");
    }

    #[test]
    fn render_mentions_everything() {
        let mut r = HealthReport::ready();
        r.ready = false;
        r.probe(Probe::new("admission", Health::Degraded, "queue 60/64"));
        r.gauge("queue_depth", 60.0);
        let text = r.render();
        assert!(text.contains("status: degraded (not ready)"), "{text}");
        assert!(text.contains("admission"), "{text}");
        assert!(text.contains("queue 60/64"), "{text}");
        assert!(text.contains("queue_depth=60"), "{text}");
    }

    #[test]
    fn health_orders_best_to_worst() {
        assert!(Health::Healthy < Health::Degraded);
        assert!(Health::Degraded < Health::Unhealthy);
    }
}
