//! The end-to-end TkLUS engine: Figure 3's system in one object.
//!
//! Building the engine runs the full offline pipeline — the MapReduce
//! index build (Algorithms 2/3), the metadata database load, and the
//! hot-keyword bound precomputation (Section V-B) — after which
//! [`TklusEngine::query`] answers TkLUS queries with either ranking
//! algorithm.
//!
//! Every build and query entry point comes in two flavours (DESIGN.md
//! §10): a `try_*` method that threads typed [`EngineError`]s up from the
//! storage and index layers, and the historical panicking method, now a
//! thin wrapper — appropriate when the engine runs over the default
//! in-memory stores, which never fail.

use crate::bounds::{BoundsMode, BoundsTable};
use crate::cache::{CacheConfig, CacheStats, QueryCaches};
use crate::error::EngineError;
use crate::metadata::{MetadataDb, MetadataStoreFactory};
use crate::obs::EngineMetrics;
use crate::query::{
    max::try_query_max,
    sum::{try_query_sum, try_sum_rows},
    Completeness, PartialSumOutcome, QueryContext, QueryOutcome, QueryStats, RankedUser,
    StageClock,
};
use crate::scratch::ScratchPool;
use std::time::Instant;
use tklus_geo::Point;
use tklus_graph::{try_build_thread, upper_bound_popularity, SocialNetwork};
use tklus_index::{build_index, HybridIndex, IndexBuildConfig, IndexBuildReport};
use tklus_metrics::RegistrySnapshot;
use tklus_model::{Corpus, Post, ScoringConfig, Semantics, TklusQuery, TweetId, UserId};
use tklus_text::{TermId, TextPipeline};

/// How users are ranked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ranking {
    /// Sum-score ranking (Definition 7, Algorithm 4).
    Sum,
    /// Maximum-score ranking (Definition 8, Algorithm 5) with the given
    /// popularity-bound mode.
    Max(BoundsMode),
}

/// Engine build configuration.
#[derive(Clone)]
pub struct EngineConfig {
    /// Hybrid index build parameters.
    pub index: IndexBuildConfig,
    /// Scoring parameters (α, ε, N, thread depth, metric).
    pub scoring: ScoringConfig,
    /// Metadata buffer-pool pages (0 = caches off, the paper's setting).
    pub cache_pages: usize,
    /// Number of hot keywords to precompute bounds for (the paper uses the
    /// top-10 of Table II).
    pub hot_keywords: usize,
    /// Worker threads used inside a single query (postings fetch and
    /// candidate scoring) and across a [`TklusEngine::query_batch`] call.
    /// `1` (the default) runs fully sequentially; any value produces
    /// byte-identical ranked results.
    pub parallelism: usize,
    /// Entry budgets for the query cache hierarchy (cover, postings,
    /// thread layers). All zero by default — caches off, matching the
    /// paper's experimental setting. Any budgets produce byte-identical
    /// ranked results; only query cost changes.
    pub caches: CacheConfig,
    /// The page store under the metadata database's checksum layer
    /// (`None` = the default in-memory pager). Chaos tests substitute a
    /// fault-injecting stack here; everything above it is unchanged.
    pub metadata_store: Option<MetadataStoreFactory>,
    /// Operational telemetry (DESIGN.md §12): per-query stage timings in
    /// `QueryStats::stages` and aggregation into the engine's metric
    /// registry ([`TklusEngine::metrics_snapshot`]). On by default — the
    /// `obs_overhead` bench holds the cost under a 2% median-latency
    /// budget; `false` skips every clock read and registry touch.
    pub metrics: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            index: IndexBuildConfig::default(),
            scoring: ScoringConfig::default(),
            cache_pages: 0,
            hot_keywords: 10,
            parallelism: 1,
            caches: CacheConfig::default(),
            metadata_store: None,
            metrics: true,
        }
    }
}

impl std::fmt::Debug for EngineConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineConfig")
            .field("index", &self.index)
            .field("scoring", &self.scoring)
            .field("cache_pages", &self.cache_pages)
            .field("hot_keywords", &self.hot_keywords)
            .field("parallelism", &self.parallelism)
            .field("caches", &self.caches)
            .field("metadata_store", &self.metadata_store.as_ref().map(|_| "<factory>"))
            .field("metrics", &self.metrics)
            .finish()
    }
}

/// The assembled system.
///
/// ```
/// use tklus_core::{BoundsMode, EngineConfig, Ranking, TklusEngine};
/// use tklus_geo::Point;
/// use tklus_model::{Corpus, Post, Semantics, TklusQuery, TweetId, UserId};
///
/// let here = Point::new_unchecked(43.7, -79.4);
/// let corpus = Corpus::new(vec![
///     Post::original(TweetId(1), UserId(9), here, "I'm at the Clarion Hotel"),
/// ]).unwrap();
/// let (engine, _report) = TklusEngine::build(&corpus, &EngineConfig::default());
///
/// let q = TklusQuery::new(here, 10.0, vec!["hotel".into()], 5, Semantics::Or).unwrap();
/// let (top, _stats) = engine.query(&q, Ranking::Max(BoundsMode::HotKeywords));
/// assert_eq!(top[0].user, UserId(9));
/// ```
///
/// Queries take `&self`: every layer underneath (buffer pool, B⁺-trees,
/// DFS) uses interior mutability, so one engine can serve many client
/// threads at once.
pub struct TklusEngine {
    index: HybridIndex,
    db: MetadataDb,
    bounds: BoundsTable,
    pipeline: TextPipeline,
    scoring: ScoringConfig,
    parallelism: usize,
    caches: QueryCaches,
    /// Pooled per-query scratch allocations (block unpack buffers, the
    /// candidate accumulator), recycled across queries.
    scratch: ScratchPool,
    /// `Some` when built with `EngineConfig::metrics` (the default).
    obs: Option<EngineMetrics>,
}

// The whole point of the `&self` query API: one engine, many client
// threads. Breaking this bound is a compile error, not a runtime surprise.
const fn _assert_engine_is_shareable<T: Send + Sync>() {}
const _: () = _assert_engine_is_shareable::<TklusEngine>();

impl TklusEngine {
    /// Builds the engine from a corpus; returns it with the index build
    /// report. Panics on storage failure (impossible over the default
    /// in-memory stores); see [`Self::try_build`].
    pub fn build(corpus: &Corpus, config: &EngineConfig) -> (Self, IndexBuildReport) {
        match Self::try_build(corpus, config) {
            Ok(built) => built,
            Err(e) => panic!("engine build failed: {e}"),
        }
    }

    /// Fallible [`Self::build`]: a storage failure while bulk-loading the
    /// metadata database surfaces as a typed error.
    pub fn try_build(
        corpus: &Corpus,
        config: &EngineConfig,
    ) -> Result<(Self, IndexBuildReport), EngineError> {
        config.scoring.validate().expect("valid scoring config");
        let (index, report) = build_index(corpus.posts(), &config.index);
        Ok((Self::try_assemble(index, corpus, config)?, report))
    }

    /// Assembles an engine from a pre-built (e.g. loaded-from-disk) hybrid
    /// index plus the corpus it was built over. Skips the MapReduce build
    /// but still loads the metadata database and precomputes bounds —
    /// matching Figure 3's architecture where the index is periodically
    /// rebuilt offline while the query side just loads it.
    /// Panics on storage failure; see [`Self::try_from_index`].
    pub fn from_index(index: HybridIndex, corpus: &Corpus, config: &EngineConfig) -> Self {
        match Self::try_from_index(index, corpus, config) {
            Ok(engine) => engine,
            Err(e) => panic!("engine assembly failed: {e}"),
        }
    }

    /// Fallible [`Self::from_index`].
    pub fn try_from_index(
        index: HybridIndex,
        corpus: &Corpus,
        config: &EngineConfig,
    ) -> Result<Self, EngineError> {
        config.scoring.validate().expect("valid scoring config");
        Self::try_assemble(index, corpus, config)
    }

    fn try_assemble(
        index: HybridIndex,
        corpus: &Corpus,
        config: &EngineConfig,
    ) -> Result<Self, EngineError> {
        let db = MetadataDb::try_from_posts(
            corpus.posts(),
            config.cache_pages,
            config.metadata_store.as_ref(),
        )?;
        let network = SocialNetwork::from_corpus(corpus);
        let caches = QueryCaches::new(config.caches);
        // The bound precomputation already builds the hot-keyword threads
        // offline; seeding their φ(p) values pre-warms the thread cache
        // with exactly the threads most likely to dominate query cost.
        let bounds = BoundsTable::precompute_with_seed(
            corpus,
            &network,
            index.vocab(),
            config.hot_keywords,
            &config.scoring,
            |tid, phi| caches.thread.insert(tid, phi),
        );
        Ok(Self {
            index,
            db,
            bounds,
            pipeline: TextPipeline::new(),
            scoring: config.scoring,
            parallelism: config.parallelism.max(1),
            caches,
            scratch: ScratchPool::new(),
            obs: config.metrics.then(EngineMetrics::new),
        })
    }

    /// The hybrid index.
    pub fn index(&self) -> &HybridIndex {
        &self.index
    }

    /// The metadata database. Lookups take `&self` — buffer-pool state is
    /// behind interior mutability.
    pub fn db(&self) -> &MetadataDb {
        &self.db
    }

    /// The per-query worker-thread count the engine was built with.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// The precomputed bounds table.
    pub fn bounds(&self) -> &BoundsTable {
        &self.bounds
    }

    /// The scoring configuration.
    pub fn scoring(&self) -> &ScoringConfig {
        &self.scoring
    }

    /// A snapshot of the query-cache hierarchy's counters (all layers).
    /// Counters are monotone: across two snapshots with queries in
    /// between, hits and misses never decrease.
    pub fn cache_stats(&self) -> CacheStats {
        self.caches.stats()
    }

    /// One coherent snapshot of the engine's metric registry
    /// (DESIGN.md §12): the natively recorded query counters and stage
    /// histograms, with the storage I/O counters re-exported as
    /// `tklus_storage_*` and the query-cache counters as `tklus_cache_*`.
    /// Returns `None` when the engine was built with
    /// `EngineConfig::metrics` off.
    pub fn metrics_snapshot(&self) -> Option<RegistrySnapshot> {
        let obs = self.obs.as_ref()?;
        Some(obs.snapshot(&self.db.io().snapshot(), &self.caches.stats()))
    }

    /// Normalizes raw query keywords to term ids, position-aligned with
    /// the input. `None` entries are keywords absent from the corpus
    /// dictionary (or normalized away).
    pub fn resolve_keywords(&self, keywords: &[String]) -> Vec<Option<TermId>> {
        keywords
            .iter()
            .map(|kw| self.pipeline.normalize_keyword(kw).and_then(|t| self.index.vocab().get(&t)))
            .collect()
    }

    /// The distinct term ids a query's keywords resolve to, in first-
    /// occurrence order; unknown keywords are dropped. Keywords that
    /// normalize to the same term — exact duplicates, case variants,
    /// inflections sharing a stem ("Hotels" and "hotel") — contribute
    /// **one** term: Definition 6's `|q.W ∩ p.W|` counts matches against
    /// the *set* of query keywords, so letting a duplicate through would
    /// double-count every matching tweet's tf (and, under AND, intersect
    /// a keyword's postings with themselves).
    pub fn resolve_query_terms(&self, keywords: &[String]) -> Vec<TermId> {
        let mut seen = std::collections::HashSet::new();
        self.resolve_keywords(keywords).into_iter().flatten().filter(|&t| seen.insert(t)).collect()
    }

    /// Answers a TkLUS query with the chosen ranking method, using the
    /// engine's configured worker-thread count inside the query.
    ///
    /// Panics on storage/index failure and discards the completeness
    /// marker — the historical interface, appropriate over the default
    /// in-memory stores with unbudgeted queries. Fault-tolerant or
    /// budgeted callers use [`Self::try_query`].
    pub fn query(&self, q: &TklusQuery, ranking: Ranking) -> (Vec<RankedUser>, QueryStats) {
        match self.try_query_with_parallelism(q, ranking, self.parallelism) {
            Ok(outcome) => (outcome.users, outcome.stats),
            Err(e) => panic!("query failed: {e}"),
        }
    }

    /// Answers a TkLUS query, surfacing storage/index failures as typed
    /// [`EngineError`]s and reporting whether the result is exact or
    /// budget-degraded (see [`Completeness`]). A degraded outcome is the
    /// exact top-k over the cover-cell prefix the budget admitted.
    pub fn try_query(&self, q: &TklusQuery, ranking: Ranking) -> Result<QueryOutcome, EngineError> {
        self.try_query_with_parallelism(q, ranking, self.parallelism)
    }

    /// Answers a batch of queries, fanning the *queries* (rather than the
    /// work inside one query) across up to `parallelism` worker threads
    /// over this one shared engine. Results come back in request order,
    /// each identical to what a standalone [`Self::query`] call returns.
    ///
    /// Inside the batch each query runs sequentially — inter-query
    /// parallelism is the throughput lever here, which is also what the
    /// QPS benchmark measures.
    ///
    /// Panics if any query in the batch fails; over fallible stores use
    /// [`Self::try_query_batch`], where one bad query costs only its own
    /// slot.
    pub fn query_batch(
        &self,
        requests: &[(TklusQuery, Ranking)],
    ) -> Vec<(Vec<RankedUser>, QueryStats)> {
        self.try_query_batch(requests)
            .into_iter()
            .map(|result| match result {
                Ok(outcome) => (outcome.users, outcome.stats),
                Err(e) => panic!("query failed: {e}"),
            })
            .collect()
    }

    /// Fallible [`Self::query_batch`]: each query gets its own
    /// `Result` slot, so a storage or index failure on one query never
    /// poisons the rest of the batch — the other slots still carry
    /// answers identical to standalone [`Self::try_query`] calls.
    pub fn try_query_batch(
        &self,
        requests: &[(TklusQuery, Ranking)],
    ) -> Vec<Result<QueryOutcome, EngineError>> {
        crate::query::parallel_map(requests, self.parallelism, |(q, ranking)| {
            self.try_query_with_parallelism(q, *ranking, 1)
        })
    }

    /// [`Self::try_query`] with an explicit per-query worker count (so
    /// [`Self::query_batch`] can spend its threads across queries instead).
    fn try_query_with_parallelism(
        &self,
        q: &TklusQuery,
        ranking: Ranking,
        parallelism: usize,
    ) -> Result<QueryOutcome, EngineError> {
        // Under AND, a keyword no tweet contains empties the result; under
        // OR, unknown keywords are simply dropped. The unknown check runs
        // per input keyword, *before* deduplication, so an AND query with
        // one known and one unknown keyword stays empty even if other
        // keywords repeat. A trivially empty result is always complete.
        let empty = || QueryOutcome {
            users: Vec::new(),
            stats: QueryStats::default(),
            completeness: Completeness::Complete,
        };
        if q.semantics == Semantics::And
            && self.resolve_keywords(&q.keywords).iter().any(Option::is_none)
        {
            return Ok(self.finish(empty()));
        }
        let terms = self.resolve_query_terms(&q.keywords);
        if terms.is_empty() {
            return Ok(self.finish(empty()));
        }
        let ctx = QueryContext {
            index: &self.index,
            db: &self.db,
            caches: &self.caches,
            scoring: &self.scoring,
            scratch: &self.scratch,
            parallelism,
            timings: self.obs.is_some(),
        };
        let result = match ranking {
            Ranking::Sum => try_query_sum(&ctx, q, &terms),
            Ranking::Max(mode) => try_query_max(&ctx, &self.bounds, mode, q, &terms),
        };
        match result {
            Ok((users, stats, completeness)) => {
                Ok(self.finish(QueryOutcome { users, stats, completeness }))
            }
            Err(e) => {
                if let Some(obs) = &self.obs {
                    obs.observe_error();
                }
                Err(e)
            }
        }
    }

    /// Aggregates an answered query into the registry (every answered
    /// query counts, including trivially empty ones) and passes the
    /// outcome through.
    fn finish(&self, outcome: QueryOutcome) -> QueryOutcome {
        if let Some(obs) = &self.obs {
            obs.observe(&outcome.stats, !outcome.completeness.is_complete());
        }
        outcome
    }

    /// The row-producing half of Algorithm 4 for scatter-gather execution:
    /// cover, fetch, combine, and per-candidate relevance scoring, with the
    /// per-user Sum fold and distance blend left to the caller. Rows come
    /// back in candidate (tweet-id) order — a router that merges rows from
    /// engines over disjoint tweet sets by tweet id and folds sequentially
    /// reproduces [`Self::try_query`]'s Sum scores bit for bit.
    ///
    /// Follows the same keyword contract as a full query: an AND query
    /// with any unknown keyword, or a query whose keywords all resolve
    /// away, yields no rows and is complete.
    pub fn try_partial_sum(&self, q: &TklusQuery) -> Result<PartialSumOutcome, EngineError> {
        let empty = || PartialSumOutcome {
            rows: Vec::new(),
            stats: QueryStats::default(),
            completeness: Completeness::Complete,
        };
        if q.semantics == Semantics::And
            && self.resolve_keywords(&q.keywords).iter().any(Option::is_none)
        {
            return Ok(self.finish_partial(empty()));
        }
        let terms = self.resolve_query_terms(&q.keywords);
        if terms.is_empty() {
            return Ok(self.finish_partial(empty()));
        }
        let ctx = QueryContext {
            index: &self.index,
            db: &self.db,
            caches: &self.caches,
            scoring: &self.scoring,
            scratch: &self.scratch,
            parallelism: self.parallelism,
            timings: self.obs.is_some(),
        };
        let start = Instant::now();
        let mut clock = StageClock::new(ctx.timings, start);
        match try_sum_rows(&ctx, q, &terms, start, &mut clock) {
            Ok((rows, mut stats, completeness)) => {
                stats.elapsed = start.elapsed();
                Ok(self.finish_partial(PartialSumOutcome { rows, stats, completeness }))
            }
            Err(e) => {
                if let Some(obs) = &self.obs {
                    obs.observe_error();
                }
                Err(e)
            }
        }
    }

    /// Aggregates a partial-sum execution into the registry, like
    /// [`Self::finish`] does for full queries.
    fn finish_partial(&self, outcome: PartialSumOutcome) -> PartialSumOutcome {
        if let Some(obs) = &self.obs {
            obs.observe(&outcome.stats, !outcome.completeness.is_complete());
        }
        outcome
    }

    /// Definition 10's user distance score δ(u, q) for one user, computed
    /// over the user's posts in this engine's metadata database. This is
    /// exactly the per-user blend input of Algorithm 4's lines 25–27, so a
    /// scatter-gather router holding engines over the full corpus gets
    /// bitwise the same δ the monolithic engine blends with.
    pub fn try_user_distance_score(
        &self,
        center: &Point,
        radius_km: f64,
        user: UserId,
    ) -> Result<f64, EngineError> {
        let locations: Vec<Point> =
            self.db.try_posts_of_user(user)?.into_iter().map(|(_, l)| l).collect();
        Ok(crate::score::user_distance_score(center, radius_km, &locations, &self.scoring))
    }

    // ---- Streaming-ingest primitives (DESIGN.md §15) -------------------
    //
    // The engine's build-time state was immutable through PR 7; the
    // `tklus-wal` write path relaxes that with a small, explicit mutation
    // surface. The contract: after `try_insert_metadata` + thread-cache
    // invalidation + bound loosening for an ingested post, every query
    // answer is bitwise-identical to a from-scratch engine whose *index*
    // covers the same sealed posts and whose *metadata/bounds* cover the
    // same full post set. The inverted index itself is never mutated here —
    // new posts' postings live in the caller's memtable until compaction.

    /// Inserts `post` into the metadata database (primary row, reply
    /// edge, user-location entry) and evicts the thread-cache entries the
    /// insert stales: the post's own φ and every ancestor's, since a new
    /// reply grows each ancestor thread it lands in. On error the caller
    /// must treat the engine as suspect and rebuild from its durable log
    /// (see [`MetadataDb::try_insert_post`]).
    pub fn try_insert_metadata(&mut self, post: &Post) -> Result<(), EngineError> {
        // Resolve the ancestor chain BEFORE inserting, so a failure after
        // the insert cannot leave freshly staled cache entries behind: we
        // evict only after the insert commits.
        let ancestors = self.try_ancestor_chain(post)?;
        self.db.try_insert_post(post)?;
        self.caches.thread.remove(&post.id);
        for tid in ancestors {
            self.caches.thread.remove(&tid);
        }
        Ok(())
    }

    /// The reply chain above `post` (its target, the target's target, …),
    /// resolved through the metadata database. Bounded by a visited set so
    /// a malformed corpus with a reply cycle terminates.
    pub fn try_ancestor_chain(&self, post: &Post) -> Result<Vec<TweetId>, EngineError> {
        let mut chain = Vec::new();
        let mut seen = std::collections::HashSet::new();
        let mut cursor = post.in_reply_to.map(|r| r.target);
        while let Some(tid) = cursor {
            if !seen.insert(tid) {
                break;
            }
            chain.push(tid);
            cursor = self.db.try_row(tid)?.and_then(|row| row.rsid);
        }
        Ok(chain)
    }

    /// The thread popularity φ(p) of the thread rooted at `tid`, built
    /// over the **current** metadata database through the same thread
    /// cache the query path uses (hit returns the cached value, miss
    /// builds and caches). Ingest calls this after invalidation to obtain
    /// live φ values for bound refresh; query-time candidates see exactly
    /// the same numbers.
    pub fn try_thread_phi(&self, tid: TweetId) -> Result<f64, EngineError> {
        if let Some(phi) = self.caches.thread.get(&tid) {
            return Ok(phi);
        }
        let thread = try_build_thread(&mut &self.db, tid, self.scoring.thread_depth)?;
        let phi = thread.popularity(self.scoring.epsilon);
        if self.caches.thread.is_enabled() {
            self.caches.thread.insert(tid, phi);
        }
        Ok(phi)
    }

    /// Normalizes free text into the distinct term ids of this engine's
    /// vocabulary (tokenize + stem, unknown terms dropped, first-occurrence
    /// order). The ingest path uses this to find which hot-keyword bounds
    /// an updated thread root can affect.
    pub fn text_terms(&self, text: &str) -> Vec<TermId> {
        let mut seen = std::collections::HashSet::new();
        self.pipeline
            .terms(text)
            .iter()
            .filter_map(|t| self.index.vocab().get(t))
            .filter(|&t| seen.insert(t))
            .collect()
    }

    /// Normalizes one query keyword through this engine's text pipeline
    /// (lowercase + stem; `None` when it normalizes away entirely). The
    /// live-delta index is keyed by term *string* — new terms have no id
    /// in the sealed vocabulary yet — so its query path needs the
    /// pipeline's normalization without the vocabulary lookup of
    /// [`Self::resolve_keywords`].
    pub fn normalize_keyword(&self, keyword: &str) -> Option<String> {
        self.pipeline.normalize_keyword(keyword)
    }

    /// Tokenizes free text into `(term, tf)` pairs in first-occurrence
    /// order — the exact counts the index builder would assign the post,
    /// which is what makes a delta index over term strings agree with a
    /// from-scratch rebuild.
    pub fn term_counts(&self, text: &str) -> Vec<(String, u32)> {
        let mut order: Vec<(String, u32)> = Vec::new();
        for term in self.pipeline.terms(text) {
            match order.iter_mut().find(|(t, _)| *t == term) {
                Some((_, tf)) => *tf += 1,
                None => order.push((term, 1)),
            }
        }
        order
    }

    /// Loosen-only hot-bound refresh: raises `term`'s bound to at least
    /// `phi`. See [`BoundsTable::raise_hot_bound`] for the soundness
    /// argument. Returns whether the bound moved.
    pub fn loosen_hot_bound(&mut self, term: TermId, phi: f64) -> bool {
        self.bounds.raise_hot_bound(term, phi)
    }

    /// Loosen-only global-bound refresh for an observed reply fan-out:
    /// recomputes Definition 11's `φ_m` upper bound from `max_fanout` under
    /// this engine's scoring parameters and raises the global bound to it
    /// if larger. Returns whether the bound moved.
    pub fn loosen_global_for_fanout(&mut self, max_fanout: usize) -> bool {
        let bound =
            upper_bound_popularity(max_fanout, self.scoring.thread_depth, self.scoring.epsilon);
        self.bounds.raise_global(bound)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test code: panics are the failure report
mod tests {
    use super::*;
    use tklus_geo::Point;
    use tklus_model::{Post, TweetId, UserId};

    fn corpus() -> Corpus {
        let here = Point::new_unchecked(43.7, -79.4);
        Corpus::new(vec![
            Post::original(TweetId(1), UserId(1), here, "great hotel downtown"),
            Post::original(TweetId(2), UserId(2), here, "pizza place with hotels nearby"),
            Post::reply(TweetId(3), UserId(3), here, "thanks", TweetId(1), UserId(1)),
        ])
        .unwrap()
    }

    #[test]
    fn resolve_keywords_normalizes_and_reports_misses() {
        let (engine, _) = TklusEngine::build(&corpus(), &EngineConfig::default());
        // "Hotels" stems to the indexed "hotel"; stop words normalize away;
        // unknown words miss.
        let resolved = engine.resolve_keywords(&[
            "Hotels".to_string(),
            "the".to_string(),
            "zzzunknown".to_string(),
            "pizza".to_string(),
        ]);
        assert!(resolved[0].is_some());
        assert!(resolved[1].is_none(), "stop word normalizes away");
        assert!(resolved[2].is_none(), "unknown keyword");
        assert!(resolved[3].is_some());
        // Both "hotel"-family keywords resolve to the same term id.
        let direct = engine.resolve_keywords(&["hotel".to_string()]);
        assert_eq!(resolved[0], direct[0]);
    }

    #[test]
    fn duplicate_keywords_resolve_to_one_term() {
        let (engine, _) = TklusEngine::build(&corpus(), &EngineConfig::default());
        // "hotel", "Hotels", and "HOTEL" all normalize to the same stem;
        // the query term set must contain it exactly once so Definition
        // 6's occurrence count is not inflated.
        let terms = engine.resolve_query_terms(&[
            "hotel".to_string(),
            "Hotels".to_string(),
            "HOTEL".to_string(),
            "pizza".to_string(),
            "hotel".to_string(),
        ]);
        assert_eq!(terms.len(), 2, "expected [hotel, pizza], got {terms:?}");
        let direct = engine.resolve_query_terms(&["hotel".to_string(), "pizza".to_string()]);
        assert_eq!(terms, direct);
        // Unknown keywords drop out without affecting dedup.
        let with_unknown = engine.resolve_query_terms(&[
            "zzzunknown".to_string(),
            "hotel".to_string(),
            "Hotels".to_string(),
        ]);
        assert_eq!(with_unknown, engine.resolve_query_terms(&["hotel".to_string()]));
    }

    #[test]
    fn duplicate_keywords_do_not_inflate_scores() {
        // Regression: a query repeating a keyword (verbatim or as a case or
        // inflection variant) must score identically to the deduplicated
        // query. Before the fix, each duplicate re-fetched the keyword's
        // postings, doubling tf — and so N of Definition 6's ρ(p,q) — under
        // OR, and self-intersecting under AND.
        let corpus = corpus();
        let (engine, _) = TklusEngine::build(&corpus, &EngineConfig::default());
        let here = Point::new_unchecked(43.7, -79.4);
        let qk = |keywords: Vec<&str>, semantics| {
            tklus_model::TklusQuery::new(
                here,
                10.0,
                keywords.into_iter().map(String::from).collect(),
                5,
                semantics,
            )
            .unwrap()
        };
        for semantics in [Semantics::Or, Semantics::And] {
            for ranking in [Ranking::Sum, Ranking::Max(BoundsMode::HotKeywords)] {
                let (clean, _) = engine.query(&qk(vec!["hotel"], semantics), ranking);
                let (duped, _) =
                    engine.query(&qk(vec!["hotel", "Hotels", "hotel"], semantics), ranking);
                assert_eq!(clean.len(), duped.len(), "{semantics:?}/{ranking:?}");
                for (a, b) in clean.iter().zip(&duped) {
                    assert_eq!(a.user, b.user, "{semantics:?}/{ranking:?}");
                    assert_eq!(
                        a.score.to_bits(),
                        b.score.to_bits(),
                        "{semantics:?}/{ranking:?}: {} vs {}",
                        a.score,
                        b.score
                    );
                }
            }
        }
        // AND with an unknown keyword is still empty even when a known
        // keyword repeats (the unknown check precedes deduplication).
        let (empty, _) =
            engine.query(&qk(vec!["hotel", "hotel", "zzzunknown"], Semantics::And), Ranking::Sum);
        assert!(empty.is_empty());
    }

    #[test]
    fn keyword_order_does_not_change_results() {
        // Definition 6 scores the *set* of query keywords, so any
        // permutation (with or without duplicates) is the same query and
        // must produce bit-identical rankings.
        let corpus = corpus();
        let (engine, _) = TklusEngine::build(&corpus, &EngineConfig::default());
        let here = Point::new_unchecked(43.7, -79.4);
        let permutations: [&[&str]; 3] =
            [&["hotel", "pizza"], &["pizza", "hotel"], &["pizza", "hotel", "Hotels", "pizza"]];
        for semantics in [Semantics::Or, Semantics::And] {
            for ranking in [Ranking::Sum, Ranking::Max(BoundsMode::HotKeywords)] {
                let runs: Vec<_> = permutations
                    .iter()
                    .map(|kws| {
                        let q = tklus_model::TklusQuery::new(
                            here,
                            10.0,
                            kws.iter().map(|s| s.to_string()).collect(),
                            5,
                            semantics,
                        )
                        .unwrap();
                        engine.query(&q, ranking).0
                    })
                    .collect();
                for other in &runs[1..] {
                    assert_eq!(runs[0].len(), other.len(), "{semantics:?}/{ranking:?}");
                    for (a, b) in runs[0].iter().zip(other) {
                        assert_eq!(a.user, b.user, "{semantics:?}/{ranking:?}");
                        assert_eq!(
                            a.score.to_bits(),
                            b.score.to_bits(),
                            "{semantics:?}/{ranking:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn cache_stats_start_cold_and_count_after_queries() {
        let corpus = corpus();
        let config = EngineConfig {
            caches: crate::cache::CacheConfig { cover: 8, postings: 32, thread: 32 },
            ..EngineConfig::default()
        };
        let (engine, _) = TklusEngine::build(&corpus, &config);
        let warm = engine.cache_stats();
        // The bounds precomputation pre-warms the thread cache.
        assert!(warm.thread.entries > 0, "bounds precompute seeds the thread cache");
        assert_eq!(warm.cover.hits + warm.cover.misses, 0);
        let q = tklus_model::TklusQuery::new(
            Point::new_unchecked(43.7, -79.4),
            10.0,
            vec!["hotel".into()],
            5,
            Semantics::Or,
        )
        .unwrap();
        let (cold_res, s1) = engine.query(&q, Ranking::Sum);
        let (warm_res, s2) = engine.query(&q, Ranking::Sum);
        assert_eq!(s1.cover_cache_misses, 1);
        assert_eq!(s2.cover_cache_hits, 1);
        assert!(s2.postings_cache_hits >= s1.postings_cache_hits);
        // Identical results hot vs cold.
        assert_eq!(cold_res.len(), warm_res.len());
        for (a, b) in cold_res.iter().zip(&warm_res) {
            assert_eq!(a.user, b.user);
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
        // Per-query tallies are consistent with the global counters.
        let after = engine.cache_stats();
        assert_eq!(after.cover.hits, s1.cover_cache_hits + s2.cover_cache_hits);
        assert_eq!(after.cover.misses, s1.cover_cache_misses + s2.cover_cache_misses);
        assert_eq!(after.postings.hits, s1.postings_cache_hits + s2.postings_cache_hits);
        assert_eq!(after.postings.misses, s1.postings_cache_misses + s2.postings_cache_misses);
        assert_eq!(after.thread.hits, s1.thread_cache_hits + s2.thread_cache_hits);
        assert_eq!(after.thread.misses, s1.thread_cache_misses + s2.thread_cache_misses);
        // The registry re-exports the same cache counters coherently.
        let snap = engine.metrics_snapshot().expect("metrics on by default");
        assert_eq!(snap.counter("tklus_queries_total"), Some(2));
        assert_eq!(snap.counter("tklus_cache_cover_hits_total"), Some(after.cover.hits));
        assert_eq!(snap.counter("tklus_cache_cover_misses_total"), Some(after.cover.misses));
        assert_eq!(snap.counter("tklus_cache_postings_hits_total"), Some(after.postings.hits));
        assert_eq!(snap.counter("tklus_cache_thread_hits_total"), Some(after.thread.hits));
    }

    #[test]
    fn registry_aggregates_query_stats_and_stage_timings() {
        let corpus = corpus();
        let (engine, _) = TklusEngine::build(&corpus, &EngineConfig::default());
        let q = tklus_model::TklusQuery::new(
            Point::new_unchecked(43.7, -79.4),
            10.0,
            vec!["hotel".into()],
            5,
            Semantics::Or,
        )
        .unwrap();
        let (_, s1) = engine.query(&q, Ranking::Sum);
        let (_, s2) = engine.query(&q, Ranking::Max(BoundsMode::HotKeywords));
        let snap = engine.metrics_snapshot().expect("metrics on by default");
        assert_eq!(snap.counter("tklus_queries_total"), Some(2));
        assert_eq!(snap.counter("tklus_queries_degraded_total"), Some(0));
        assert_eq!(
            snap.counter("tklus_query_candidates_total"),
            Some((s1.candidates + s2.candidates) as u64)
        );
        assert_eq!(
            snap.counter("tklus_query_metadata_page_reads_total"),
            Some(s1.metadata_page_reads + s2.metadata_page_reads)
        );
        let latency = snap.histogram("tklus_query_latency_us").expect("registered");
        assert_eq!(latency.count, 2);
        // Stage spans are recorded and cover+fetch+… sums below elapsed.
        assert!(s1.stages.total() <= s1.elapsed, "{:?} > {:?}", s1.stages.total(), s1.elapsed);
        assert!(s1.stages.total() > std::time::Duration::ZERO);
        let threads = snap.histogram("tklus_stage_threads_us").expect("registered");
        assert_eq!(threads.count, 2);
        // The trivially-empty path still counts as an answered query.
        let unknown = tklus_model::TklusQuery::new(
            Point::new_unchecked(43.7, -79.4),
            10.0,
            vec!["zzzunknown".into()],
            5,
            Semantics::And,
        )
        .unwrap();
        let _ = engine.query(&unknown, Ranking::Sum);
        let snap = engine.metrics_snapshot().expect("metrics on by default");
        assert_eq!(snap.counter("tklus_queries_total"), Some(3));
    }

    #[test]
    fn metrics_disabled_engine_skips_all_instrumentation() {
        let corpus = corpus();
        let config = EngineConfig { metrics: false, ..EngineConfig::default() };
        let (engine, _) = TklusEngine::build(&corpus, &config);
        assert!(engine.metrics_snapshot().is_none());
        let q = tklus_model::TklusQuery::new(
            Point::new_unchecked(43.7, -79.4),
            10.0,
            vec!["hotel".into()],
            5,
            Semantics::Or,
        )
        .unwrap();
        let (users, stats) = engine.query(&q, Ranking::Sum);
        assert!(!users.is_empty());
        assert_eq!(stats.stages, crate::query::StageTimings::default());
        // Results are identical with metrics on (instrumentation is
        // observation only).
        let (on, _) = TklusEngine::build(&corpus, &EngineConfig::default());
        let (users_on, stats_on) = on.query(&q, Ranking::Sum);
        assert_eq!(users.len(), users_on.len());
        for (a, b) in users.iter().zip(&users_on) {
            assert_eq!(a.user, b.user);
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
        assert_eq!(stats.metadata_page_reads, stats_on.metadata_page_reads);
    }

    #[test]
    fn from_index_matches_full_build() {
        let corpus = corpus();
        let config = EngineConfig::default();
        let (built, _) = TklusEngine::build(&corpus, &config);
        // Re-assemble from the already-built index (the loaded-from-disk
        // path, minus the disk).
        let (index2, _) = build_index(corpus.posts(), &config.index);
        let assembled = TklusEngine::from_index(index2, &corpus, &config);
        let q = tklus_model::TklusQuery::new(
            Point::new_unchecked(43.7, -79.4),
            10.0,
            vec!["hotel".into()],
            5,
            Semantics::Or,
        )
        .unwrap();
        for ranking in [Ranking::Sum, Ranking::Max(BoundsMode::HotKeywords)] {
            let (a, _) = built.query(&q, ranking);
            let (b, _) = assembled.query(&q, ranking);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.user, y.user);
                assert!((x.score - y.score).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn try_query_batch_matches_infallible_batch() {
        let corpus = corpus();
        let (engine, _) = TklusEngine::build(&corpus, &EngineConfig::default());
        let here = Point::new_unchecked(43.7, -79.4);
        let q = |kw: &str| {
            tklus_model::TklusQuery::new(here, 10.0, vec![kw.into()], 5, Semantics::Or).unwrap()
        };
        let requests = vec![
            (q("hotel"), Ranking::Sum),
            (q("pizza"), Ranking::Max(BoundsMode::HotKeywords)),
            (q("zzzunknown"), Ranking::Sum),
        ];
        let infallible = engine.query_batch(&requests);
        let fallible = engine.try_query_batch(&requests);
        assert_eq!(infallible.len(), fallible.len());
        for ((users, _), result) in infallible.iter().zip(&fallible) {
            let outcome = result.as_ref().expect("in-memory stores never fail");
            assert_eq!(outcome.completeness, Completeness::Complete);
            assert_eq!(&outcome.users, users);
        }
    }

    #[test]
    fn zero_k_is_rejected_at_query_construction() {
        // Guarded by TklusQuery::new, so the engine never sees k = 0.
        let err = tklus_model::TklusQuery::new(
            Point::new_unchecked(0.0, 0.0),
            1.0,
            vec!["x".into()],
            0,
            Semantics::Or,
        );
        assert!(err.is_err());
    }

    #[test]
    fn all_stopword_query_returns_empty() {
        let (engine, _) = TklusEngine::build(&corpus(), &EngineConfig::default());
        let q = tklus_model::TklusQuery::new(
            Point::new_unchecked(43.7, -79.4),
            10.0,
            vec!["the".into(), "and".into()],
            5,
            Semantics::Or,
        )
        .unwrap();
        let (top, stats) = engine.query(&q, Ranking::Sum);
        assert!(top.is_empty());
        assert_eq!(stats.candidates, 0);
    }
}
