//! The end-to-end TkLUS engine: Figure 3's system in one object.
//!
//! Building the engine runs the full offline pipeline — the MapReduce
//! index build (Algorithms 2/3), the metadata database load, and the
//! hot-keyword bound precomputation (Section V-B) — after which
//! [`TklusEngine::query`] answers TkLUS queries with either ranking
//! algorithm.

use crate::bounds::{BoundsMode, BoundsTable};
use crate::metadata::MetadataDb;
use crate::query::{max::query_max, sum::query_sum, QueryStats, RankedUser};
use tklus_graph::SocialNetwork;
use tklus_index::{build_index, HybridIndex, IndexBuildConfig, IndexBuildReport};
use tklus_model::{Corpus, ScoringConfig, Semantics, TklusQuery};
use tklus_text::{TermId, TextPipeline};

/// How users are ranked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ranking {
    /// Sum-score ranking (Definition 7, Algorithm 4).
    Sum,
    /// Maximum-score ranking (Definition 8, Algorithm 5) with the given
    /// popularity-bound mode.
    Max(BoundsMode),
}

/// Engine build configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Hybrid index build parameters.
    pub index: IndexBuildConfig,
    /// Scoring parameters (α, ε, N, thread depth, metric).
    pub scoring: ScoringConfig,
    /// Metadata buffer-pool pages (0 = caches off, the paper's setting).
    pub cache_pages: usize,
    /// Number of hot keywords to precompute bounds for (the paper uses the
    /// top-10 of Table II).
    pub hot_keywords: usize,
    /// Worker threads used inside a single query (postings fetch and
    /// candidate scoring) and across a [`TklusEngine::query_batch`] call.
    /// `1` (the default) runs fully sequentially; any value produces
    /// byte-identical ranked results.
    pub parallelism: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            index: IndexBuildConfig::default(),
            scoring: ScoringConfig::default(),
            cache_pages: 0,
            hot_keywords: 10,
            parallelism: 1,
        }
    }
}

/// The assembled system.
///
/// ```
/// use tklus_core::{BoundsMode, EngineConfig, Ranking, TklusEngine};
/// use tklus_geo::Point;
/// use tklus_model::{Corpus, Post, Semantics, TklusQuery, TweetId, UserId};
///
/// let here = Point::new_unchecked(43.7, -79.4);
/// let corpus = Corpus::new(vec![
///     Post::original(TweetId(1), UserId(9), here, "I'm at the Clarion Hotel"),
/// ]).unwrap();
/// let (engine, _report) = TklusEngine::build(&corpus, &EngineConfig::default());
///
/// let q = TklusQuery::new(here, 10.0, vec!["hotel".into()], 5, Semantics::Or).unwrap();
/// let (top, _stats) = engine.query(&q, Ranking::Max(BoundsMode::HotKeywords));
/// assert_eq!(top[0].user, UserId(9));
/// ```
///
/// Queries take `&self`: every layer underneath (buffer pool, B⁺-trees,
/// DFS) uses interior mutability, so one engine can serve many client
/// threads at once.
pub struct TklusEngine {
    index: HybridIndex,
    db: MetadataDb,
    bounds: BoundsTable,
    pipeline: TextPipeline,
    scoring: ScoringConfig,
    parallelism: usize,
}

// The whole point of the `&self` query API: one engine, many client
// threads. Breaking this bound is a compile error, not a runtime surprise.
const fn _assert_engine_is_shareable<T: Send + Sync>() {}
const _: () = _assert_engine_is_shareable::<TklusEngine>();

impl TklusEngine {
    /// Builds the engine from a corpus; returns it with the index build
    /// report.
    pub fn build(corpus: &Corpus, config: &EngineConfig) -> (Self, IndexBuildReport) {
        config.scoring.validate().expect("valid scoring config");
        let (index, report) = build_index(corpus.posts(), &config.index);
        let db = MetadataDb::from_posts(corpus.posts(), config.cache_pages);
        let network = SocialNetwork::from_corpus(corpus);
        let bounds = BoundsTable::precompute(
            corpus,
            &network,
            index.vocab(),
            config.hot_keywords,
            &config.scoring,
        );
        (
            Self {
                index,
                db,
                bounds,
                pipeline: TextPipeline::new(),
                scoring: config.scoring,
                parallelism: config.parallelism.max(1),
            },
            report,
        )
    }

    /// Assembles an engine from a pre-built (e.g. loaded-from-disk) hybrid
    /// index plus the corpus it was built over. Skips the MapReduce build
    /// but still loads the metadata database and precomputes bounds —
    /// matching Figure 3's architecture where the index is periodically
    /// rebuilt offline while the query side just loads it.
    pub fn from_index(index: HybridIndex, corpus: &Corpus, config: &EngineConfig) -> Self {
        config.scoring.validate().expect("valid scoring config");
        let db = MetadataDb::from_posts(corpus.posts(), config.cache_pages);
        let network = SocialNetwork::from_corpus(corpus);
        let bounds = BoundsTable::precompute(
            corpus,
            &network,
            index.vocab(),
            config.hot_keywords,
            &config.scoring,
        );
        Self {
            index,
            db,
            bounds,
            pipeline: TextPipeline::new(),
            scoring: config.scoring,
            parallelism: config.parallelism.max(1),
        }
    }

    /// The hybrid index.
    pub fn index(&self) -> &HybridIndex {
        &self.index
    }

    /// The metadata database. Lookups take `&self` — buffer-pool state is
    /// behind interior mutability.
    pub fn db(&self) -> &MetadataDb {
        &self.db
    }

    /// The per-query worker-thread count the engine was built with.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// The precomputed bounds table.
    pub fn bounds(&self) -> &BoundsTable {
        &self.bounds
    }

    /// The scoring configuration.
    pub fn scoring(&self) -> &ScoringConfig {
        &self.scoring
    }

    /// Normalizes raw query keywords to term ids. `None` entries are
    /// keywords absent from the corpus dictionary (or normalized away).
    pub fn resolve_keywords(&self, keywords: &[String]) -> Vec<Option<TermId>> {
        keywords
            .iter()
            .map(|kw| self.pipeline.normalize_keyword(kw).and_then(|t| self.index.vocab().get(&t)))
            .collect()
    }

    /// Answers a TkLUS query with the chosen ranking method, using the
    /// engine's configured worker-thread count inside the query.
    pub fn query(&self, q: &TklusQuery, ranking: Ranking) -> (Vec<RankedUser>, QueryStats) {
        self.query_with_parallelism(q, ranking, self.parallelism)
    }

    /// Answers a batch of queries, fanning the *queries* (rather than the
    /// work inside one query) across up to `parallelism` worker threads
    /// over this one shared engine. Results come back in request order,
    /// each identical to what a standalone [`Self::query`] call returns.
    ///
    /// Inside the batch each query runs sequentially — inter-query
    /// parallelism is the throughput lever here, which is also what the
    /// QPS benchmark measures.
    pub fn query_batch(
        &self,
        requests: &[(TklusQuery, Ranking)],
    ) -> Vec<(Vec<RankedUser>, QueryStats)> {
        crate::query::parallel_map(requests, self.parallelism, |(q, ranking)| {
            self.query_with_parallelism(q, *ranking, 1)
        })
    }

    /// [`Self::query`] with an explicit per-query worker count (so
    /// [`Self::query_batch`] can spend its threads across queries instead).
    fn query_with_parallelism(
        &self,
        q: &TklusQuery,
        ranking: Ranking,
        parallelism: usize,
    ) -> (Vec<RankedUser>, QueryStats) {
        let resolved = self.resolve_keywords(&q.keywords);
        // Under AND, a keyword no tweet contains empties the result; under
        // OR, unknown keywords are simply dropped.
        let terms: Vec<TermId> = match q.semantics {
            Semantics::And => {
                if resolved.iter().any(Option::is_none) {
                    return (Vec::new(), QueryStats::default());
                }
                resolved.into_iter().flatten().collect()
            }
            Semantics::Or => resolved.into_iter().flatten().collect(),
        };
        if terms.is_empty() {
            return (Vec::new(), QueryStats::default());
        }
        match ranking {
            Ranking::Sum => query_sum(&self.index, &self.db, q, &terms, &self.scoring, parallelism),
            Ranking::Max(mode) => query_max(
                &self.index,
                &self.db,
                &self.bounds,
                mode,
                q,
                &terms,
                &self.scoring,
                parallelism,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tklus_geo::Point;
    use tklus_model::{Post, TweetId, UserId};

    fn corpus() -> Corpus {
        let here = Point::new_unchecked(43.7, -79.4);
        Corpus::new(vec![
            Post::original(TweetId(1), UserId(1), here, "great hotel downtown"),
            Post::original(TweetId(2), UserId(2), here, "pizza place with hotels nearby"),
            Post::reply(TweetId(3), UserId(3), here, "thanks", TweetId(1), UserId(1)),
        ])
        .unwrap()
    }

    #[test]
    fn resolve_keywords_normalizes_and_reports_misses() {
        let (engine, _) = TklusEngine::build(&corpus(), &EngineConfig::default());
        // "Hotels" stems to the indexed "hotel"; stop words normalize away;
        // unknown words miss.
        let resolved = engine.resolve_keywords(&[
            "Hotels".to_string(),
            "the".to_string(),
            "zzzunknown".to_string(),
            "pizza".to_string(),
        ]);
        assert!(resolved[0].is_some());
        assert!(resolved[1].is_none(), "stop word normalizes away");
        assert!(resolved[2].is_none(), "unknown keyword");
        assert!(resolved[3].is_some());
        // Both "hotel"-family keywords resolve to the same term id.
        let direct = engine.resolve_keywords(&["hotel".to_string()]);
        assert_eq!(resolved[0], direct[0]);
    }

    #[test]
    fn from_index_matches_full_build() {
        let corpus = corpus();
        let config = EngineConfig::default();
        let (built, _) = TklusEngine::build(&corpus, &config);
        // Re-assemble from the already-built index (the loaded-from-disk
        // path, minus the disk).
        let (index2, _) = build_index(corpus.posts(), &config.index);
        let assembled = TklusEngine::from_index(index2, &corpus, &config);
        let q = tklus_model::TklusQuery::new(
            Point::new_unchecked(43.7, -79.4),
            10.0,
            vec!["hotel".into()],
            5,
            Semantics::Or,
        )
        .unwrap();
        for ranking in [Ranking::Sum, Ranking::Max(BoundsMode::HotKeywords)] {
            let (a, _) = built.query(&q, ranking);
            let (b, _) = assembled.query(&q, ranking);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.user, y.user);
                assert!((x.score - y.score).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn zero_k_is_rejected_at_query_construction() {
        // Guarded by TklusQuery::new, so the engine never sees k = 0.
        let err = tklus_model::TklusQuery::new(
            Point::new_unchecked(0.0, 0.0),
            1.0,
            vec!["x".into()],
            0,
            Semantics::Or,
        );
        assert!(err.is_err());
    }

    #[test]
    fn all_stopword_query_returns_empty() {
        let (engine, _) = TklusEngine::build(&corpus(), &EngineConfig::default());
        let q = tklus_model::TklusQuery::new(
            Point::new_unchecked(43.7, -79.4),
            10.0,
            vec!["the".into(), "and".into()],
            5,
            Semantics::Or,
        )
        .unwrap();
        let (top, stats) = engine.query(&q, Ranking::Sum);
        assert!(top.is_empty());
        assert_eq!(stats.candidates, 0);
    }
}
