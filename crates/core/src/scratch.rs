//! Per-query scratch memory, pooled across queries.
//!
//! The block-compressed hot path (DESIGN.md §13) replaces "decode every
//! list into a fresh `Vec` per query" with lazy per-block unpacking — but
//! lazily unpacking into freshly allocated buffers would hand the win
//! straight back to the allocator. [`QueryScratch`] owns the reusable
//! allocations one query execution needs (block unpack buffers and the
//! candidate accumulator), and [`ScratchPool`] recycles them across
//! queries on the shared engine: a query checks a scratch out, runs with
//! exclusive `&mut` access, and the RAII [`ScratchGuard`] returns the
//! (cleared but capacity-retaining) scratch on drop — including the early
//! exits, `?` error paths and panics.
//!
//! The pool is a plain mutex over a small stack of scratches: it is
//! touched twice per query (checkout/return), never inside the hot loops,
//! so striping it would buy nothing. Concurrent queries beyond the pooled
//! count simply build a fresh scratch and the pool keeps the largest
//! working sets up to a small cap.

use parking_lot::Mutex;
use tklus_index::BlockScratch;
use tklus_model::TweetId;

/// Most scratches the pool retains; checkouts beyond this build fresh
/// scratches and returns beyond this drop them. Matches the largest
/// plausible concurrent-query fan-in on one engine.
const MAX_POOLED: usize = 32;

/// The reusable allocations of one query execution.
#[derive(Default)]
pub struct QueryScratch {
    /// Unpack buffers for block-postings set operations.
    pub(crate) blocks: BlockScratch,
    /// The candidate accumulator `(tweet, occurrence-count)`; taken by the
    /// combine stage, given back by the ranking algorithms after scoring.
    pub(crate) candidates: Vec<(TweetId, u32)>,
}

impl QueryScratch {
    /// Takes the candidate buffer (cleared, capacity retained) out of the
    /// scratch; ownership comes back via [`Self::recycle_candidates`].
    pub(crate) fn take_candidates(&mut self) -> Vec<(TweetId, u32)> {
        let mut out = std::mem::take(&mut self.candidates);
        out.clear();
        out
    }

    /// Returns a candidate buffer's capacity to the scratch.
    pub(crate) fn recycle_candidates(&mut self, buf: Vec<(TweetId, u32)>) {
        if buf.capacity() > self.candidates.capacity() {
            self.candidates = buf;
        }
    }
}

/// A shared pool of [`QueryScratch`]es, one per engine.
#[derive(Default)]
pub struct ScratchPool {
    pool: Mutex<Vec<QueryScratch>>,
}

impl ScratchPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks a scratch out (reusing a pooled one when available); the
    /// guard returns it on drop.
    pub(crate) fn checkout(&self) -> ScratchGuard<'_> {
        let scratch = self.pool.lock().pop().unwrap_or_default();
        ScratchGuard { pool: self, scratch }
    }

    fn give_back(&self, scratch: QueryScratch) {
        let mut pool = self.pool.lock();
        if pool.len() < MAX_POOLED {
            pool.push(scratch);
        }
    }

    /// Scratches currently resident in the pool (test/diagnostic hook).
    pub fn pooled(&self) -> usize {
        self.pool.lock().len()
    }
}

/// RAII handle on a checked-out [`QueryScratch`].
pub(crate) struct ScratchGuard<'a> {
    pool: &'a ScratchPool,
    scratch: QueryScratch,
}

impl std::ops::Deref for ScratchGuard<'_> {
    type Target = QueryScratch;
    fn deref(&self) -> &QueryScratch {
        &self.scratch
    }
}

impl std::ops::DerefMut for ScratchGuard<'_> {
    fn deref_mut(&mut self) -> &mut QueryScratch {
        &mut self.scratch
    }
}

impl Drop for ScratchGuard<'_> {
    fn drop(&mut self) {
        self.pool.give_back(std::mem::take(&mut self.scratch));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_reuses_returned_scratch() {
        let pool = ScratchPool::new();
        assert_eq!(pool.pooled(), 0);
        {
            let mut guard = pool.checkout();
            let mut cands = guard.take_candidates();
            cands.reserve(1024);
            guard.recycle_candidates(cands);
            assert_eq!(pool.pooled(), 0, "checked out, not pooled");
        }
        assert_eq!(pool.pooled(), 1, "guard drop returns the scratch");
        let mut guard = pool.checkout();
        assert_eq!(pool.pooled(), 0);
        let cands = guard.take_candidates();
        assert!(cands.capacity() >= 1024, "capacity survives the round trip");
        assert!(cands.is_empty(), "contents do not");
        guard.recycle_candidates(cands);
    }

    #[test]
    fn recycle_keeps_larger_buffer() {
        let mut scratch = QueryScratch::default();
        scratch.recycle_candidates(Vec::with_capacity(100));
        scratch.recycle_candidates(Vec::with_capacity(10));
        assert!(scratch.take_candidates().capacity() >= 100);
    }

    #[test]
    fn concurrent_checkouts_get_distinct_scratches() {
        let pool = ScratchPool::new();
        let g1 = pool.checkout();
        let g2 = pool.checkout();
        drop(g1);
        drop(g2);
        assert_eq!(pool.pooled(), 2);
    }
}
