//! The paper's primary contribution: TkLUS query processing.
//!
//! This crate ties the substrates together into the system of Sections III–V:
//!
//! * [`metadata`] — the centralized tweet-metadata database of Section IV-A:
//!   the relation `(sid, uid, lat, lon, ruid, rsid)` over from-scratch
//!   B⁺-trees on `sid`, `rsid`, and (for user distance scores) `uid`, with
//!   buffer-pool-accounted I/O.
//! * [`score`] — the scoring functions: tweet distance score (Def. 5),
//!   keyword relevance (Def. 6), Sum/Maximum user keyword scores
//!   (Defs. 7/8), user distance score (Def. 9), combined user score
//!   (Def. 10).
//! * [`bounds`] — the pruning bounds of Section V-B: the global upper bound
//!   popularity (Def. 11) and the pre-computed per-hot-keyword bounds.
//! * [`cache`] — the multi-level query cache hierarchy: memoized circle
//!   covers, decoded postings lists, and thread popularities, each a
//!   size-bounded lock-striped LRU layer with hit/miss accounting.
//! * [`scratch`] — the pooled per-query scratch allocator: block unpack
//!   buffers and the candidate accumulator, recycled across queries so the
//!   block-compressed hot path (DESIGN.md §13) stays allocation-free.
//! * [`query`] — Algorithm 4 (Sum-score ranking) and Algorithm 5
//!   (Maximum-score ranking with upper-bound pruning).
//! * [`engine`] — [`engine::TklusEngine`], the end-to-end facade: build the
//!   hybrid index and metadata database from a corpus, then answer
//!   [`tklus_model::TklusQuery`]s with either ranking.
//! * [`error`] — the typed failure taxonomy of DESIGN.md §10:
//!   [`error::EngineError`] wraps the storage and index subsystem errors,
//!   and [`TklusEngine::try_query`](engine::TklusEngine::try_query)
//!   reports budget-degraded results through [`query::Completeness`].
//! * [`obs`] (private) — the observability layer of DESIGN.md §12:
//!   per-query [`query::StageTimings`] spans and aggregation into the
//!   [`tklus_metrics::MetricRegistry`] surfaced by
//!   [`TklusEngine::metrics_snapshot`](engine::TklusEngine::metrics_snapshot).

pub mod bounds;
pub mod cache;
pub mod engine;
pub mod error;
pub mod metadata;
mod obs;
pub mod query;
pub mod score;
pub mod scratch;

pub use bounds::{BoundsMode, BoundsTable};
pub use cache::{CacheConfig, CacheStats, QueryCaches};
pub use engine::{EngineConfig, Ranking, TklusEngine};
pub use error::EngineError;
pub use metadata::{MetaRow, MetadataDb, MetadataStoreFactory};
pub use query::{
    top_k, Completeness, PartialSumOutcome, QueryOutcome, QueryStats, RankedUser, StageTimings,
    SumRow,
};
