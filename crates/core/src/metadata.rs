//! The centralized tweet-metadata database of Section IV-A.
//!
//! "All tweets in our system form a relation with the schema of
//! `(sid, uid, lat, lon, ruid, rsid)` which is stored in a centralized
//! metadata database … attribute sid is the primary key for which we build
//! a B⁺-tree. Another B⁺-tree is built on attribute rsid."
//!
//! Three B⁺-trees over one buffer pool:
//!
//! * primary — key `(sid, 0)`, value = the 40-byte row remainder;
//! * reply index — key `(rsid, sid)`, empty value; `replies_to` is a range
//!   scan, exactly Algorithm 1's `select all where rsid equals Id`;
//! * user index — key `(uid, sid)`, value = `(lat, lon)`; user distance
//!   scores (Definition 9) average over all of a user's posts, which this
//!   index retrieves without touching post text.
//!
//! Every tree runs over a [`CheckedPager`] (DESIGN.md §10): pages are
//! sealed with a magic/version/CRC32 header on write and verified on every
//! read, so torn writes and bit flips in the page store below surface as
//! typed [`StorageError`]s instead of silently wrong rows. The store under
//! the checksum layer is pluggable ([`MetadataStoreFactory`]) — the default
//! is an in-memory pager; fault-injection tests substitute a
//! [`tklus_storage::FaultPager`] stack.
//!
//! Every logical operation's physical cost is visible through
//! [`MetadataDb::io`]; the experiments run with a zero-capacity pool
//! ("database caches are set off").

use std::sync::Arc;
use tklus_geo::Point;
use tklus_graph::TryReplyProvider;
use tklus_model::{Post, TweetId, UserId};
use tklus_storage::{
    BPlusTree, BufferPool, CheckedPager, IoStats, MemPager, PageStore, StorageError, StorageResult,
};

/// Sentinel for "no reply target" in the `ruid`/`rsid` columns.
const NONE_ID: u64 = u64::MAX;

/// Builds the page store that backs each of the database's three B⁺-trees
/// (called once per tree, with the shared I/O counters). The produced store
/// sits *below* the checksum layer, so anything it corrupts or tears is
/// caught at read time.
pub type MetadataStoreFactory = Arc<dyn Fn(IoStats) -> Box<dyn PageStore> + Send + Sync>;

/// A decoded metadata row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetaRow {
    /// Author.
    pub uid: UserId,
    /// Post location.
    pub location: Point,
    /// Reply target author, if any.
    pub ruid: Option<UserId>,
    /// Reply target post, if any.
    pub rsid: Option<TweetId>,
}

const ROW_SIZE: usize = 40;
const LOC_SIZE: usize = 16;

fn encode_row(row: &MetaRow) -> [u8; ROW_SIZE] {
    let mut out = [0u8; ROW_SIZE];
    out[0..8].copy_from_slice(&row.uid.0.to_le_bytes());
    out[8..16].copy_from_slice(&row.location.lat().to_le_bytes());
    out[16..24].copy_from_slice(&row.location.lon().to_le_bytes());
    out[24..32].copy_from_slice(&row.ruid.map_or(NONE_ID, |u| u.0).to_le_bytes());
    out[32..40].copy_from_slice(&row.rsid.map_or(NONE_ID, |s| s.0).to_le_bytes());
    out
}

/// An 8-byte slice of a fixed-size row (infallible by construction).
fn field8(bytes: &[u8]) -> [u8; 8] {
    bytes.try_into().expect("row field is 8 bytes")
}

fn decode_row(bytes: &[u8; ROW_SIZE]) -> MetaRow {
    let uid = UserId(u64::from_le_bytes(field8(&bytes[0..8])));
    let lat = f64::from_le_bytes(field8(&bytes[8..16]));
    let lon = f64::from_le_bytes(field8(&bytes[16..24]));
    let ruid = u64::from_le_bytes(field8(&bytes[24..32]));
    let rsid = u64::from_le_bytes(field8(&bytes[32..40]));
    MetaRow {
        uid,
        location: Point::new_unchecked(lat, lon),
        ruid: (ruid != NONE_ID).then_some(UserId(ruid)),
        rsid: (rsid != NONE_ID).then_some(TweetId(rsid)),
    }
}

type Pool = BufferPool<CheckedPager<Box<dyn PageStore>>>;

/// The metadata database.
pub struct MetadataDb {
    primary: BPlusTree<Pool, ROW_SIZE>,
    reply_index: BPlusTree<Pool, 0>,
    user_index: BPlusTree<Pool, LOC_SIZE>,
    stats: IoStats,
    rows: u64,
}

impl MetadataDb {
    /// Bulk loads the database from posts over the default in-memory page
    /// store. `cache_pages` sizes the shared buffer-pool budget (0 = caches
    /// off, the paper's experimental setting); the budget is split across
    /// the three trees.
    ///
    /// Panics on storage failure, which the in-memory store never produces;
    /// fault-tolerant callers use [`Self::try_from_posts`].
    pub fn from_posts(posts: &[Post], cache_pages: usize) -> Self {
        match Self::try_from_posts(posts, cache_pages, None) {
            Ok(db) => db,
            Err(e) => panic!("metadata bulk load failed: {e}"),
        }
    }

    /// Fallible [`Self::from_posts`] over a caller-chosen page store
    /// (`None` = the default in-memory pager). Bulk-load I/O errors surface
    /// as typed [`StorageError`]s.
    pub fn try_from_posts(
        posts: &[Post],
        cache_pages: usize,
        store: Option<&MetadataStoreFactory>,
    ) -> StorageResult<Self> {
        let stats = IoStats::new();
        let per_tree = cache_pages / 3;

        let mut primary_entries: Vec<((u64, u64), [u8; ROW_SIZE])> = posts
            .iter()
            .map(|p| {
                let row = MetaRow {
                    uid: p.user,
                    location: p.location,
                    ruid: p.in_reply_to.map(|r| r.target_user),
                    rsid: p.in_reply_to.map(|r| r.target),
                };
                ((p.id.0, 0), encode_row(&row))
            })
            .collect();
        primary_entries.sort_by_key(|e| e.0);

        let mut reply_entries: Vec<((u64, u64), [u8; 0])> = posts
            .iter()
            .filter_map(|p| p.in_reply_to.map(|r| ((r.target.0, p.id.0), [])))
            .collect();
        reply_entries.sort_by_key(|e| e.0);

        let mut user_entries: Vec<((u64, u64), [u8; LOC_SIZE])> = posts
            .iter()
            .map(|p| {
                let mut loc = [0u8; LOC_SIZE];
                loc[0..8].copy_from_slice(&p.location.lat().to_le_bytes());
                loc[8..16].copy_from_slice(&p.location.lon().to_le_bytes());
                ((p.user.0, p.id.0), loc)
            })
            .collect();
        user_entries.sort_by_key(|e| e.0);

        let pool = |s: &IoStats| -> Pool {
            let inner: Box<dyn PageStore> = match store {
                Some(factory) => factory(s.clone()),
                None => Box::new(MemPager::with_stats(s.clone())),
            };
            BufferPool::new(CheckedPager::new(inner), per_tree)
        };
        Ok(Self {
            primary: BPlusTree::bulk_load(pool(&stats), &primary_entries)?,
            reply_index: BPlusTree::bulk_load(pool(&stats), &reply_entries)?,
            user_index: BPlusTree::bulk_load(pool(&stats), &user_entries)?,
            stats,
            rows: posts.len() as u64,
        })
    }

    /// Inserts one post into all three trees — the streaming-ingest path
    /// (bulk construction stays [`Self::try_from_posts`]).
    ///
    /// On a mid-insert storage failure the already-inserted keys are
    /// rolled back best-effort so a clean failure leaves no half-applied
    /// post behind. If the rollback *itself* fails the database may retain
    /// a partial row; the returned error tells the caller that happened
    /// only implicitly (any error ⇒ treat the database as suspect), so
    /// fault-tolerant ingest layers rebuild from their durable log rather
    /// than trust post-error state — exactly what `tklus-wal` does.
    pub fn try_insert_post(&mut self, post: &Post) -> StorageResult<()> {
        let row = MetaRow {
            uid: post.user,
            location: post.location,
            ruid: post.in_reply_to.map(|r| r.target_user),
            rsid: post.in_reply_to.map(|r| r.target),
        };
        self.primary.insert((post.id.0, 0), encode_row(&row))?;
        if let Some(r) = post.in_reply_to {
            if let Err(e) = self.reply_index.insert((r.target.0, post.id.0), []) {
                let _ = self.primary.delete((post.id.0, 0));
                return Err(e);
            }
        }
        let mut loc = [0u8; LOC_SIZE];
        loc[0..8].copy_from_slice(&post.location.lat().to_le_bytes());
        loc[8..16].copy_from_slice(&post.location.lon().to_le_bytes());
        if let Err(e) = self.user_index.insert((post.user.0, post.id.0), loc) {
            let _ = self.primary.delete((post.id.0, 0));
            if let Some(r) = post.in_reply_to {
                let _ = self.reply_index.delete((r.target.0, post.id.0));
            }
            return Err(e);
        }
        self.rows += 1;
        Ok(())
    }

    /// Number of rows.
    pub fn len(&self) -> u64 {
        self.rows
    }

    /// True when the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Shared I/O counters across all three trees.
    pub fn io(&self) -> &IoStats {
        &self.stats
    }

    /// `select * where sid = ?` on the primary index.
    /// Panics on storage failure; see [`Self::try_row`].
    pub fn row(&self, sid: TweetId) -> Option<MetaRow> {
        match self.try_row(sid) {
            Ok(row) => row,
            Err(e) => panic!("metadata row lookup failed: {e}"),
        }
    }

    /// Fallible [`Self::row`].
    pub fn try_row(&self, sid: TweetId) -> StorageResult<Option<MetaRow>> {
        Ok(self.primary.get((sid.0, 0))?.map(|bytes| decode_row(&bytes)))
    }

    /// `select uid where sid = ?` (Algorithm 4 line 20 / Algorithm 5
    /// line 22).
    pub fn user_of(&self, sid: TweetId) -> Option<UserId> {
        self.row(sid).map(|r| r.uid)
    }

    /// The location of a post.
    pub fn location_of(&self, sid: TweetId) -> Option<Point> {
        self.row(sid).map(|r| r.location)
    }

    /// `select sid where rsid = ?` on the reply index (Algorithm 1 line 7).
    /// Panics on storage failure; see [`Self::try_replies_to_ids`].
    pub fn replies_to_ids(&self, rsid: TweetId) -> Vec<TweetId> {
        match self.try_replies_to_ids(rsid) {
            Ok(ids) => ids,
            Err(e) => panic!("metadata reply scan failed: {e}"),
        }
    }

    /// Fallible [`Self::replies_to_ids`].
    pub fn try_replies_to_ids(&self, rsid: TweetId) -> StorageResult<Vec<TweetId>> {
        Ok(self
            .reply_index
            .scan_major(rsid.0)?
            .into_iter()
            .map(|((_, sid), _)| TweetId(sid))
            .collect())
    }

    /// All posts of a user, as `(sid, location)` — the `P_u` scan for
    /// Definition 9's user distance score.
    /// Panics on storage failure; see [`Self::try_posts_of_user`].
    pub fn posts_of_user(&self, uid: UserId) -> Vec<(TweetId, Point)> {
        match self.try_posts_of_user(uid) {
            Ok(posts) => posts,
            Err(e) => panic!("metadata user scan failed: {e}"),
        }
    }

    /// Fallible [`Self::posts_of_user`].
    pub fn try_posts_of_user(&self, uid: UserId) -> StorageResult<Vec<(TweetId, Point)>> {
        Ok(self
            .user_index
            .scan_major(uid.0)?
            .into_iter()
            .map(|((_, sid), loc)| {
                let lat = f64::from_le_bytes(field8(&loc[0..8]));
                let lon = f64::from_le_bytes(field8(&loc[8..16]));
                (TweetId(sid), Point::new_unchecked(lat, lon))
            })
            .collect())
    }
}

/// Owned-database provider: infallible interface for tools and benches
/// that panic on storage failure (the blanket impl also makes this a
/// `TryReplyProvider` with `Error = Infallible`).
impl tklus_graph::ReplyProvider for MetadataDb {
    fn replies_to(&mut self, id: TweetId) -> Vec<TweetId> {
        self.replies_to_ids(id)
    }
}

/// Shared-reference provider: thread construction only reads, so a `&self`
/// borrow satisfies the (historically `&mut`) provider contract — this is
/// what lets many scoring threads walk threads over one shared database —
/// and storage failures propagate as typed errors instead of panics.
impl TryReplyProvider for &MetadataDb {
    type Error = StorageError;

    fn try_replies_to(&mut self, id: TweetId) -> Result<Vec<TweetId>, StorageError> {
        self.try_replies_to_ids(id)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test code: panics are the failure report
mod tests {
    use super::*;
    use tklus_graph::try_build_thread;
    use tklus_storage::{FaultConfig, FaultPager};

    fn pt(lat: f64, lon: f64) -> Point {
        Point::new_unchecked(lat, lon)
    }

    fn posts() -> Vec<Post> {
        vec![
            Post::original(TweetId(1), UserId(10), pt(43.7, -79.4), "root tweet"),
            Post::reply(
                TweetId(2),
                UserId(11),
                pt(43.8, -79.3),
                "reply one",
                TweetId(1),
                UserId(10),
            ),
            Post::reply(
                TweetId(3),
                UserId(12),
                pt(43.9, -79.2),
                "reply two",
                TweetId(1),
                UserId(10),
            ),
            Post::forward(TweetId(4), UserId(11), pt(43.6, -79.5), "rt", TweetId(2), UserId(11)),
            Post::original(TweetId(5), UserId(10), pt(44.0, -79.0), "another original"),
        ]
    }

    #[test]
    fn incremental_insert_matches_bulk_load() {
        let all = posts();
        let bulk = MetadataDb::from_posts(&all, 0);
        let mut grown = MetadataDb::from_posts(&all[..2], 0);
        for p in &all[2..] {
            grown.try_insert_post(p).unwrap();
        }
        assert_eq!(grown.len(), bulk.len());
        for p in &all {
            assert_eq!(grown.row(p.id), bulk.row(p.id));
        }
        assert_eq!(grown.replies_to_ids(TweetId(1)), bulk.replies_to_ids(TweetId(1)));
        assert_eq!(grown.replies_to_ids(TweetId(2)), bulk.replies_to_ids(TweetId(2)));
        for uid in [UserId(10), UserId(11), UserId(12)] {
            assert_eq!(grown.posts_of_user(uid), bulk.posts_of_user(uid));
        }
    }

    #[test]
    fn primary_lookups() {
        let db = MetadataDb::from_posts(&posts(), 0);
        assert_eq!(db.len(), 5);
        let row = db.row(TweetId(2)).unwrap();
        assert_eq!(row.uid, UserId(11));
        assert_eq!(row.rsid, Some(TweetId(1)));
        assert_eq!(row.ruid, Some(UserId(10)));
        assert_eq!(db.user_of(TweetId(5)), Some(UserId(10)));
        assert_eq!(db.row(TweetId(99)), None);
        let root = db.row(TweetId(1)).unwrap();
        assert_eq!(root.rsid, None);
        assert_eq!(root.ruid, None);
    }

    #[test]
    fn reply_index_scans() {
        let db = MetadataDb::from_posts(&posts(), 0);
        assert_eq!(db.replies_to_ids(TweetId(1)), vec![TweetId(2), TweetId(3)]);
        assert_eq!(db.replies_to_ids(TweetId(2)), vec![TweetId(4)]);
        assert!(db.replies_to_ids(TweetId(5)).is_empty());
    }

    #[test]
    fn user_index_scans() {
        let db = MetadataDb::from_posts(&posts(), 0);
        let u10 = db.posts_of_user(UserId(10));
        assert_eq!(u10.len(), 2);
        assert_eq!(u10[0].0, TweetId(1));
        assert_eq!(u10[1].0, TweetId(5));
        assert!((u10[1].1.lat() - 44.0).abs() < 1e-12);
        assert!(db.posts_of_user(UserId(99)).is_empty());
    }

    #[test]
    fn works_as_reply_provider_for_threads() {
        let db = MetadataDb::from_posts(&posts(), 0);
        let t = try_build_thread(&mut &db, TweetId(1), 5).unwrap();
        assert_eq!(t.level_sizes(), vec![1, 2, 1]);
    }

    #[test]
    fn io_counted_with_caches_off() {
        let db = MetadataDb::from_posts(&posts(), 0);
        db.io().reset();
        db.row(TweetId(1));
        let first = db.io().page_reads();
        assert!(first > 0, "caches off: lookups cost physical reads");
        db.row(TweetId(1));
        assert_eq!(db.io().page_reads(), first * 2, "no caching between identical lookups");
    }

    #[test]
    fn caching_reduces_io() {
        let db = MetadataDb::from_posts(&posts(), 300);
        db.io().reset();
        db.row(TweetId(1));
        db.row(TweetId(1));
        db.row(TweetId(1));
        assert!(db.io().cache_hits() > 0);
    }

    #[test]
    fn location_roundtrip_precision() {
        let original = pt(43.6839128037, -79.37356590);
        let p = vec![Post::original(TweetId(7), UserId(1), original, "x")];
        let db = MetadataDb::from_posts(&p, 0);
        let loc = db.location_of(TweetId(7)).unwrap();
        assert_eq!(loc.lat(), original.lat());
        assert_eq!(loc.lon(), original.lon());
    }

    #[test]
    fn custom_store_factory_is_used() {
        // A fault pager with 100% transient writes, armed from the start:
        // the (write-heavy) bulk load itself must surface the typed error.
        let cfg = FaultConfig { seed: 1, transient_write_ppm: 1_000_000, ..FaultConfig::default() };
        let handle = tklus_storage::FaultHandle::new();
        handle.arm(true);
        let factory: MetadataStoreFactory = {
            let handle = Arc::clone(&handle);
            Arc::new(move |stats| {
                Box::new(FaultPager::with_handle(
                    MemPager::with_stats(stats),
                    cfg,
                    Arc::clone(&handle),
                ))
            })
        };
        let err = match MetadataDb::try_from_posts(&posts(), 0, Some(&factory)) {
            Err(e) => e,
            Ok(_) => panic!("bulk load over an always-failing store must fail"),
        };
        assert!(err.is_transient(), "{err}");
        assert!(handle.transient_injected() > 0);
    }

    #[test]
    fn try_accessors_match_infallible_ones() {
        let db = MetadataDb::from_posts(&posts(), 0);
        assert_eq!(db.try_row(TweetId(2)).unwrap(), db.row(TweetId(2)));
        assert_eq!(db.try_replies_to_ids(TweetId(1)).unwrap(), db.replies_to_ids(TweetId(1)));
        assert_eq!(db.try_posts_of_user(UserId(10)).unwrap(), db.posts_of_user(UserId(10)));
    }
}
