//! The multi-level query cache hierarchy.
//!
//! Three memoization layers sit between query processing and the storage
//! substrates, each keyed by a *semantic* identity rather than a physical
//! page (that job belongs to [`tklus_storage::BufferPool`] underneath):
//!
//! 1. **Cover cache** — `CoverKey → Arc<Vec<Geohash>>`, memoizing the
//!    geohash circle cover of Algorithms 4/5 line 1. Repeated queries
//!    around the same hot spot (the Zipf-shaped reality of query logs)
//!    skip the quadtree descent entirely.
//! 2. **Postings cache** — `(Geohash, TermId) → CachedPostings`, holding
//!    *decoded* postings above the DFS and its page layer in whichever
//!    layout the index was built with: a flat [`PostingsList`] or a
//!    [`BlockPostings`] whose payload blocks stay packed until a set
//!    operation touches them (DESIGN.md §13). A hit saves both the DFS
//!    read and the wire decode/validation, and the `Arc` inside either
//!    variant lets every concurrent query share one decoded copy.
//! 3. **Thread cache** — `TweetId → f64`, memoizing the popularity φ(p)
//!    of Definition 4 for the thread rooted at a tweet. Thread
//!    construction is the dominant per-candidate I/O cost (Section V-B);
//!    a hit skips the whole BFS over the reply B⁺-tree.
//!
//! # Coherence
//!
//! Every cached value is a pure function of engine build-time state: the
//! corpus, the index, and the scoring configuration are all immutable once
//! [`crate::TklusEngine::build`] returns. There are no invalidation paths
//! because there is nothing to invalidate — a cached value can never go
//! stale, so cached and uncached executions are *bitwise* identical (the
//! oracle and concurrency suites assert exactly this). The thread cache
//! additionally bakes the engine's `thread_depth` and `epsilon` into its
//! identity implicitly: both are fixed per engine, so the root tweet id
//! alone is a complete key.
//!
//! Each layer is a [`ShardedLruCache`]: size-bounded, lock-striped,
//! monotone hit/miss counters. Capacity 0 disables a layer (the default —
//! the paper's experiments run with caches off).

use std::sync::Arc;
use tklus_geo::{CoverKey, Geohash};
use tklus_index::{BlockPostings, PostingsList};
use tklus_model::TweetId;
use tklus_storage::{CacheLayerStats, ShardedLruCache};
use tklus_text::TermId;

/// A decoded postings value in whichever layout the index carries
/// ([`tklus_index::PostingsFormat`]); the cache holds exactly the layout
/// the fetch path produced so a hit never re-encodes or converts.
#[derive(Clone)]
pub enum CachedPostings {
    /// Fully materialized `(tweet, tf)` pairs (format `flat`).
    Flat(Arc<PostingsList>),
    /// Block-compressed postings with lazily unpacked payloads (format
    /// `block`).
    Block(Arc<BlockPostings>),
}

/// Entry budgets for the three cache layers (0 = layer disabled).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheConfig {
    /// Cover-cache entries (memoized circle covers).
    pub cover: usize,
    /// Postings-cache entries (decoded `⟨geohash, term⟩` lists).
    pub postings: usize,
    /// Thread-cache entries (memoized thread popularities φ(p)).
    pub thread: usize,
}

/// A point-in-time snapshot of all three layers' counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Cover-cache counters.
    pub cover: CacheLayerStats,
    /// Postings-cache counters.
    pub postings: CacheLayerStats,
    /// Thread-cache counters.
    pub thread: CacheLayerStats,
}

/// The three cache layers owned by one engine and shared by every thread
/// querying it.
pub struct QueryCaches {
    pub(crate) cover: ShardedLruCache<CoverKey, Arc<Vec<Geohash>>>,
    pub(crate) postings: ShardedLruCache<(Geohash, TermId), CachedPostings>,
    pub(crate) thread: ShardedLruCache<TweetId, f64>,
}

impl QueryCaches {
    /// Builds the hierarchy with the given per-layer budgets.
    pub fn new(config: CacheConfig) -> Self {
        Self {
            cover: ShardedLruCache::new(config.cover),
            postings: ShardedLruCache::new(config.postings),
            thread: ShardedLruCache::new(config.thread),
        }
    }

    /// Counters for all three layers in one snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            cover: self.cover.stats(),
            postings: self.postings.stats(),
            thread: self.thread.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tklus_geo::{DistanceMetric, Point};

    #[test]
    fn disabled_by_default_config() {
        let caches = QueryCaches::new(CacheConfig::default());
        assert!(!caches.cover.is_enabled());
        assert!(!caches.postings.is_enabled());
        assert!(!caches.thread.is_enabled());
        assert_eq!(caches.stats(), CacheStats::default());
    }

    #[test]
    fn layers_are_independent() {
        let caches = QueryCaches::new(CacheConfig { cover: 4, postings: 0, thread: 8 });
        let key = CoverKey::new(&Point::new_unchecked(1.0, 2.0), 5.0, 4, DistanceMetric::Euclidean);
        assert!(caches.cover.get(&key).is_none());
        caches.cover.insert(key, Arc::new(Vec::new()));
        assert!(caches.cover.get(&key).is_some());
        caches.thread.insert(TweetId(1), 0.5);
        let s = caches.stats();
        assert_eq!((s.cover.hits, s.cover.misses), (1, 1));
        assert_eq!(s.postings.capacity, 0);
        assert_eq!(s.thread.entries, 1);
    }
}
