//! Pruning bounds for Maximum-score ranking (Section V-B).
//!
//! The global bound is Definition 11's `φ(p)_m = Σ t_m × 1/i` with `t_m`
//! the maximum reply fan-out observed in the database. Because that bound
//! is loose ("the upper bound of any specific-keyword tweet threads should
//! be much smaller than t_m"), the paper additionally pre-computes, for
//! each of the top-10 hot keywords, the largest actual thread popularity
//! among threads rooted at tweets containing that keyword, and uses the
//! keyword-specific bound when a query contains a hot keyword.

use std::collections::HashMap;
use tklus_graph::{build_thread, upper_bound_popularity, SocialNetwork};
use tklus_model::{Corpus, ScoringConfig, Semantics, TweetId};
use tklus_text::{TermId, TextPipeline, Vocab};

/// Which popularity bound Algorithm 5 consults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BoundsMode {
    /// Only the global Definition 11 bound.
    Global,
    /// Per-hot-keyword bounds where available, global otherwise
    /// (the Section VI-B5 configuration).
    #[default]
    HotKeywords,
}

/// Pre-computed popularity bounds.
#[derive(Debug, Clone)]
pub struct BoundsTable {
    global: f64,
    hot: HashMap<TermId, f64>,
}

impl BoundsTable {
    /// Computes the global bound and per-keyword bounds for the `hot_n`
    /// most frequent terms by offline thread construction over the corpus
    /// (as the paper does: "a specific upper bound popularity is
    /// pre-computed by offline constructing tweet threads and selecting the
    /// largest thread score").
    pub fn precompute(
        corpus: &Corpus,
        network: &SocialNetwork,
        vocab: &Vocab,
        hot_n: usize,
        config: &ScoringConfig,
    ) -> Self {
        Self::precompute_with_seed(corpus, network, vocab, hot_n, config, |_, _| {})
    }

    /// [`Self::precompute`], also reporting every `(root tweet, φ)` pair it
    /// computes to `seed`. The engine uses this to pre-warm its thread
    /// cache: the threads built here are exactly the hot-keyword threads
    /// queries are most likely to pay for, and φ depends only on the
    /// thread's level sizes, so a value computed offline over the social
    /// network equals what query time would compute over the metadata
    /// database.
    pub fn precompute_with_seed(
        corpus: &Corpus,
        network: &SocialNetwork,
        vocab: &Vocab,
        hot_n: usize,
        config: &ScoringConfig,
        mut seed: impl FnMut(TweetId, f64),
    ) -> Self {
        let global =
            upper_bound_popularity(network.max_fanout(), config.thread_depth, config.epsilon);
        let pipeline = TextPipeline::new();
        let hot_terms: Vec<TermId> = vocab.top_terms(hot_n).into_iter().map(|(id, _)| id).collect();
        let mut hot: HashMap<TermId, f64> =
            hot_terms.iter().map(|&t| (t, config.epsilon)).collect();

        // One pass over the corpus: for each post containing a hot term,
        // build its thread and raise that term's bound.
        for post in corpus.posts() {
            let terms = pipeline.terms(&post.text);
            let mut matched: Vec<TermId> =
                terms.iter().filter_map(|t| vocab.get(t)).filter(|t| hot.contains_key(t)).collect();
            matched.sort_unstable();
            matched.dedup();
            if matched.is_empty() {
                continue;
            }
            let mut provider = network;
            let phi = build_thread(&mut provider, post.id, config.thread_depth)
                .popularity(config.epsilon);
            seed(post.id, phi);
            for t in matched {
                let entry = hot.get_mut(&t).expect("hot term");
                if phi > *entry {
                    *entry = phi;
                }
            }
        }
        Self { global, hot }
    }

    /// A table with only the global bound (no hot keywords).
    pub fn global_only(global: f64) -> Self {
        Self { global, hot: HashMap::new() }
    }

    /// Raises `term`'s hot bound to at least `phi` (no-op for non-hot
    /// terms, whose queries consult the global bound, and for values the
    /// current bound already dominates). Returns whether the table moved.
    ///
    /// This is the streaming-ingest refresh: a reply arriving after build
    /// can only *grow* its ancestors' thread popularities, so maintaining
    /// the table loosen-only keeps every bound dominating every live φ —
    /// pruning stays exact, it merely skips less than a freshly computed
    /// (tight) table would. The `tklus-wal` proptests prove the dominance
    /// invariant over random ingest interleavings.
    pub fn raise_hot_bound(&mut self, term: TermId, phi: f64) -> bool {
        match self.hot.get_mut(&term) {
            Some(entry) if phi > *entry => {
                *entry = phi;
                true
            }
            _ => false,
        }
    }

    /// Raises the global Definition 11 bound to at least `bound` (the
    /// loosen-only counterpart of [`Self::raise_hot_bound`] for the
    /// non-hot path; callers recompute `upper_bound_popularity` from the
    /// grown maximum fan-out). Returns whether the table moved.
    pub fn raise_global(&mut self, bound: f64) -> bool {
        if bound > self.global {
            self.global = bound;
            true
        } else {
            false
        }
    }

    /// The global Definition 11 bound.
    pub fn global(&self) -> f64 {
        self.global
    }

    /// The keyword-specific bound, if `term` is hot.
    pub fn hot_bound(&self, term: TermId) -> Option<f64> {
        self.hot.get(&term).copied()
    }

    /// Number of hot keywords tracked.
    pub fn hot_count(&self) -> usize {
        self.hot.len()
    }

    /// The popularity bound Algorithm 5 should use for a query:
    ///
    /// * [`BoundsMode::Global`] → always the global bound;
    /// * [`BoundsMode::HotKeywords`] → per-keyword bounds (global for
    ///   non-hot keywords), combined across the query's keywords with
    ///   **min** under AND and **max** under OR, per Section VI-B5
    ///   ("'AND' semantic uses the smallest upper bound among the query
    ///   keywords whereas 'OR' chooses the largest").
    pub fn query_bound(&self, terms: &[TermId], semantics: Semantics, mode: BoundsMode) -> f64 {
        if mode == BoundsMode::Global || terms.is_empty() {
            return self.global;
        }
        let per_term = terms.iter().map(|t| self.hot_bound(*t).unwrap_or(self.global));
        match semantics {
            Semantics::And => per_term.fold(f64::INFINITY, f64::min),
            Semantics::Or => per_term.fold(0.0, f64::max),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test code: panics are the failure report
mod tests {
    use super::*;
    use tklus_geo::Point;
    use tklus_model::{Post, TweetId, UserId};

    fn pt() -> Point {
        Point::new_unchecked(43.7, -79.4)
    }

    /// Corpus where "restaurant" tweets have big threads and "pizza" tweets
    /// have none.
    fn corpus() -> Corpus {
        let mut posts = vec![
            Post::original(TweetId(1), UserId(1), pt(), "best restaurant in town"),
            Post::original(TweetId(2), UserId(2), pt(), "pizza slice"),
        ];
        // 6 replies to the restaurant tweet.
        for i in 0..6u64 {
            posts.push(Post::reply(
                TweetId(10 + i),
                UserId(50 + i),
                pt(),
                "wow",
                TweetId(1),
                UserId(1),
            ));
        }
        Corpus::new(posts).unwrap()
    }

    fn setup() -> (Corpus, SocialNetwork, Vocab) {
        let corpus = corpus();
        let network = SocialNetwork::from_corpus(&corpus);
        let pipeline = TextPipeline::new();
        let mut vocab = Vocab::new();
        for post in corpus.posts() {
            for t in pipeline.terms(&post.text) {
                vocab.intern_occurrence(&t);
            }
        }
        (corpus, network, vocab)
    }

    #[test]
    fn global_bound_uses_max_fanout() {
        let (corpus, network, vocab) = setup();
        let config = ScoringConfig::default();
        let table = BoundsTable::precompute(&corpus, &network, &vocab, 5, &config);
        assert_eq!(network.max_fanout(), 6);
        let expect = upper_bound_popularity(6, config.thread_depth, config.epsilon);
        assert_eq!(table.global(), expect);
    }

    #[test]
    fn hot_bounds_are_tighter_than_global() {
        let (corpus, network, vocab) = setup();
        let config = ScoringConfig::default();
        let table = BoundsTable::precompute(&corpus, &network, &vocab, 10, &config);
        let pipeline = TextPipeline::new();
        let restaurant = vocab.get(&pipeline.normalize_keyword("restaurant").unwrap()).unwrap();
        let pizza = vocab.get(&pipeline.normalize_keyword("pizza").unwrap()).unwrap();
        // Restaurant's thread: root + 6 replies -> popularity 3.0.
        assert_eq!(table.hot_bound(restaurant), Some(3.0));
        // Pizza has only a singleton thread -> epsilon.
        assert_eq!(table.hot_bound(pizza), Some(config.epsilon));
        assert!(table.hot_bound(restaurant).unwrap() <= table.global());
    }

    #[test]
    fn query_bound_combines_per_semantics() {
        let (corpus, network, vocab) = setup();
        let config = ScoringConfig::default();
        let table = BoundsTable::precompute(&corpus, &network, &vocab, 10, &config);
        let pipeline = TextPipeline::new();
        let restaurant = vocab.get(&pipeline.normalize_keyword("restaurant").unwrap()).unwrap();
        let pizza = vocab.get(&pipeline.normalize_keyword("pizza").unwrap()).unwrap();
        let terms = [restaurant, pizza];
        let and = table.query_bound(&terms, Semantics::And, BoundsMode::HotKeywords);
        let or = table.query_bound(&terms, Semantics::Or, BoundsMode::HotKeywords);
        assert_eq!(and, config.epsilon, "AND takes the smallest bound");
        assert_eq!(or, 3.0, "OR takes the largest bound");
        // Global mode ignores hot bounds.
        assert_eq!(table.query_bound(&terms, Semantics::And, BoundsMode::Global), table.global());
    }

    #[test]
    fn non_hot_terms_fall_back_to_global() {
        let (corpus, network, vocab) = setup();
        let config = ScoringConfig::default();
        // Track only 1 hot keyword, so most terms are not hot.
        let table = BoundsTable::precompute(&corpus, &network, &vocab, 1, &config);
        assert_eq!(table.hot_count(), 1);
        let cold = TermId(9999);
        assert_eq!(table.hot_bound(cold), None);
        assert_eq!(
            table.query_bound(&[cold], Semantics::Or, BoundsMode::HotKeywords),
            table.global()
        );
    }

    #[test]
    fn bounds_dominate_actual_popularity() {
        // Soundness: every thread rooted at a tweet containing a hot term
        // scores at most that term's bound.
        let (corpus, network, vocab) = setup();
        let config = ScoringConfig::default();
        let table = BoundsTable::precompute(&corpus, &network, &vocab, 10, &config);
        let pipeline = TextPipeline::new();
        for post in corpus.posts() {
            let mut provider = &network;
            let phi = build_thread(&mut provider, post.id, config.thread_depth)
                .popularity(config.epsilon);
            for term in pipeline.terms(&post.text) {
                if let Some(id) = vocab.get(&term) {
                    if let Some(bound) = table.hot_bound(id) {
                        assert!(phi <= bound + 1e-12, "term {term}: {phi} > {bound}");
                    }
                    assert!(phi <= table.global() + 1e-12);
                }
            }
        }
    }
}
