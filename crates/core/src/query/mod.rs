//! TkLUS query processing: Algorithm 4 (Sum) and Algorithm 5 (Maximum).
//!
//! Both algorithms share the same front half — geohash circle cover,
//! postings retrieval, AND/OR candidate formation — and differ in how they
//! aggregate per-tweet scores into user scores and in whether they can
//! prune thread construction with an upper bound.

pub mod max;
pub mod sum;

use tklus_index::{intersect_sum, union_sum, QueryFetch};
use tklus_model::{Semantics, TweetId, UserId};

/// One result row: a user and their score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedUser {
    /// The local user.
    pub user: UserId,
    /// `score(u, q)` under the ranking method used.
    pub score: f64,
}

/// Cost accounting for one query execution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QueryStats {
    /// Wall-clock time of the whole query.
    pub elapsed: std::time::Duration,
    /// Geohash cells in the circle cover.
    pub cover_cells: usize,
    /// Postings lists fetched from the DFS.
    pub lists_fetched: usize,
    /// Bytes fetched from the DFS.
    pub dfs_bytes: u64,
    /// Candidate tweets after AND/OR combination.
    pub candidates: usize,
    /// Candidates that passed the exact radius check.
    pub in_radius: usize,
    /// Tweet threads actually constructed (Algorithm 1 runs).
    pub threads_built: usize,
    /// Thread constructions skipped by the upper-bound prune
    /// (always 0 for the Sum algorithm).
    pub threads_pruned: usize,
    /// Physical metadata-database page reads incurred.
    pub metadata_page_reads: u64,
}

/// Lines 8–14 of Algorithms 4/5: combine the fetched postings lists into
/// the candidate list `P` of `(tweet, keyword-occurrence-count)` pairs.
///
/// * OR — union of every list; a tweet's count sums over all keywords.
/// * AND — per-keyword union across cover cells, then intersection across
///   keywords (a tweet must contain every keyword), counts summed.
pub(crate) fn candidates(fetch: &QueryFetch, semantics: Semantics) -> Vec<(TweetId, u32)> {
    match semantics {
        Semantics::Or => {
            let all: Vec<tklus_index::PostingsList> =
                fetch.per_keyword.iter().flatten().cloned().collect();
            union_sum(&all)
        }
        Semantics::And => {
            let groups: Vec<Vec<(TweetId, u32)>> =
                fetch.per_keyword.iter().map(|lists| union_sum(lists)).collect();
            if groups.iter().any(Vec::is_empty) {
                return Vec::new();
            }
            intersect_sum(&groups)
        }
    }
}

/// Maps `f` over `items` across up to `parallelism` scoped threads,
/// returning outputs in slot order. The split is contiguous chunks, so the
/// output vector is identical at any parallelism; `parallelism <= 1` (or a
/// single item) runs inline with no threads spawned.
///
/// This is the worker harness of the concurrent query engine: `f` must be
/// pure given the shared read-only state it captures (the `&self` index and
/// metadata database), which is what makes result determinism a property of
/// *where* values are folded (sequentially, by the caller) rather than of
/// scheduling.
pub(crate) fn parallel_map<T, U, F>(items: &[T], parallelism: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let workers = parallelism.max(1).min(items.len().max(1));
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|part| scope.spawn(|| part.iter().map(&f).collect::<Vec<U>>()))
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("scoring worker panicked")).collect()
    })
}

/// Sorts users by score descending (ties broken by user id for
/// determinism) and truncates to `k`.
pub(crate) fn top_k(mut users: Vec<RankedUser>, k: usize) -> Vec<RankedUser> {
    users.sort_by(|a, b| {
        b.score.partial_cmp(&a.score).expect("scores are finite").then(a.user.cmp(&b.user))
    });
    users.truncate(k);
    users
}

#[cfg(test)]
mod tests {
    use super::*;
    use tklus_index::PostingsList;

    fn fetch(per_keyword: Vec<Vec<Vec<(u64, u32)>>>) -> QueryFetch {
        QueryFetch {
            per_keyword: per_keyword
                .into_iter()
                .map(|lists| {
                    lists.into_iter().map(|l| l.into_iter().collect::<PostingsList>()).collect()
                })
                .collect(),
            cells: 0,
            lists: 0,
            bytes: 0,
        }
    }

    #[test]
    fn or_unions_across_keywords() {
        let f = fetch(vec![vec![vec![(1, 1), (2, 1)]], vec![vec![(2, 2), (3, 1)]]]);
        let got = candidates(&f, Semantics::Or);
        assert_eq!(got, vec![(TweetId(1), 1), (TweetId(2), 3), (TweetId(3), 1)]);
    }

    #[test]
    fn and_intersects_across_keywords() {
        let f = fetch(vec![vec![vec![(1, 1), (2, 1)]], vec![vec![(2, 2), (3, 1)]]]);
        let got = candidates(&f, Semantics::And);
        assert_eq!(got, vec![(TweetId(2), 3)]);
    }

    #[test]
    fn and_with_missing_keyword_is_empty() {
        let f = fetch(vec![vec![vec![(1, 1)]], vec![]]);
        assert!(candidates(&f, Semantics::And).is_empty());
        // OR still returns the present keyword's candidates.
        assert_eq!(candidates(&f, Semantics::Or), vec![(TweetId(1), 1)]);
    }

    #[test]
    fn and_merges_per_keyword_cells_first() {
        // Keyword 0 spread over two cells; tweet 5 only matches keyword 0
        // in cell B and keyword 1 in its own cell.
        let f = fetch(vec![vec![vec![(1, 1)], vec![(5, 2)]], vec![vec![(5, 1)]]]);
        assert_eq!(candidates(&f, Semantics::And), vec![(TweetId(5), 3)]);
    }

    #[test]
    fn top_k_sorts_and_breaks_ties_by_id() {
        let users = vec![
            RankedUser { user: UserId(3), score: 1.0 },
            RankedUser { user: UserId(1), score: 2.0 },
            RankedUser { user: UserId(2), score: 1.0 },
        ];
        let top = top_k(users, 2);
        assert_eq!(top[0].user, UserId(1));
        assert_eq!(top[1].user, UserId(2), "tie broken by id");
        assert_eq!(top.len(), 2);
    }
}
