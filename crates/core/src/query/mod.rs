//! TkLUS query processing: Algorithm 4 (Sum) and Algorithm 5 (Maximum).
//!
//! Both algorithms share the same front half — geohash circle cover,
//! postings retrieval, AND/OR candidate formation — and differ in how they
//! aggregate per-tweet scores into user scores and in whether they can
//! prune thread construction with an upper bound.

pub mod max;
pub mod sum;

use crate::cache::{CachedPostings, QueryCaches};
use crate::error::EngineError;
use crate::metadata::MetadataDb;
use crate::scratch::{QueryScratch, ScratchPool};
use std::sync::Arc;
use std::time::Instant;
use tklus_geo::{circle_cover, CoverKey, Geohash, Point};
use tklus_graph::try_build_thread;
use tklus_index::{
    intersect_sum, intersect_winnow_blocks, union_sum, union_sum_blocks, BlockPostings,
    DecodeError, HybridIndex, IndexError, PostingsFormat, PostingsList, PostingsLocation,
};
use tklus_model::{QueryBudget, ScoringConfig, Semantics, TweetId, UserId};
use tklus_text::TermId;

/// One result row: a user and their score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedUser {
    /// The local user.
    pub user: UserId,
    /// `score(u, q)` under the ranking method used.
    pub score: f64,
}

/// Whether a query examined its whole cover or ran out of budget
/// (DESIGN.md §10): a degraded answer is the exact top-k over the cells
/// that *were* processed, never a silently truncated "complete" one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Completeness {
    /// Every cover cell was examined; this is the exact answer.
    Complete,
    /// The budget expired mid-cover; the result ranks only the tweets
    /// found in the first `cells_processed` of `cells_total` cover cells.
    Degraded {
        /// Cover cells fully examined before the budget expired.
        cells_processed: usize,
        /// Cover cells the query would have examined with no budget.
        cells_total: usize,
    },
}

impl Completeness {
    /// True when the result is exact.
    pub fn is_complete(&self) -> bool {
        matches!(self, Completeness::Complete)
    }
}

/// Everything [`crate::TklusEngine::try_query`] produces: the ranked
/// users, the cost accounting, and whether the answer is exact.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    /// The top-k local users, best first.
    pub users: Vec<RankedUser>,
    /// Cost accounting for this execution.
    pub stats: QueryStats,
    /// Whether the whole cover was examined.
    pub completeness: Completeness,
}

/// One scored candidate row of the Sum pipeline (Algorithm 4 lines
/// 15–24), before the per-user fold: the tweet, its author, and the
/// tweet's keyword-relevance contribution ρ (thread popularity × keyword
/// score × recency). Rows come out in candidate (tweet-id) order, which
/// is exactly the order the monolithic engine folds them in — a
/// scatter-gather router that merges rows from disjoint shards by tweet
/// id and folds sequentially reproduces the monolithic Sum scores bit
/// for bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SumRow {
    /// The candidate tweet.
    pub tweet: TweetId,
    /// The tweet's author.
    pub user: UserId,
    /// The tweet's contribution to its author's Sum score.
    pub rho: f64,
}

/// What [`crate::TklusEngine::try_partial_sum`] produces: the scored
/// candidate rows in tweet-id order (the fold and distance blend left to
/// the caller), plus cost accounting and budget completeness.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialSumOutcome {
    /// Scored rows in candidate (tweet-id) order.
    pub rows: Vec<SumRow>,
    /// Cost accounting through the thread-construction stage.
    pub stats: QueryStats,
    /// Whether the whole cover was examined.
    pub completeness: Completeness,
}

/// A query budget resolved against this execution's start time, checked at
/// cover-cell granularity: a cell is either fully examined or not started,
/// which is what keeps degraded results deterministic for a fixed
/// `max_cells` and exact for whatever prefix a deadline admits.
///
/// The deadline check reads the clock only every
/// [`DEADLINE_POLL_STRIDE`] cells: `Instant::now()` is a syscall-class
/// operation, and polling it per cell dominated the budgeted fetch loop
/// for small cells. Once a poll observes the deadline passed, the latch
/// sticks — `allows` never flips back to true. The `max_cells` check is
/// unaffected (it never reads the clock), so `max_cells`-budgeted and
/// unbudgeted executions are byte-identical to the unbatched code, which
/// the oracle suite asserts.
#[derive(Debug, Clone)]
pub(crate) struct CellBudget {
    deadline: Option<Instant>,
    max_cells: Option<usize>,
    /// Sticky "deadline passed" latch (single query thread; `Cell` keeps
    /// `allows` a `&self` call like before).
    expired: std::cell::Cell<bool>,
    /// Calls since the last real clock poll (0 = never polled).
    calls_since_poll: std::cell::Cell<u32>,
    /// `Instant::now()` calls skipped by the stride, exported through
    /// [`QueryStats::deadline_polls_saved`] and the metric registry.
    polls_saved: std::cell::Cell<u64>,
}

/// Deadline checks between cover cells read the clock once per this many
/// `allows` calls (DESIGN.md §12).
pub(crate) const DEADLINE_POLL_STRIDE: u32 = 8;

impl CellBudget {
    /// Resolves a query's budget; `None` when there is nothing to enforce.
    pub(crate) fn new(budget: Option<&QueryBudget>, start: Instant) -> Option<Self> {
        let budget = budget?;
        if budget.is_unlimited() {
            return None;
        }
        Some(Self {
            deadline: budget.timeout_ms.map(|ms| start + std::time::Duration::from_millis(ms)),
            max_cells: budget.max_cells,
            expired: std::cell::Cell::new(false),
            calls_since_poll: std::cell::Cell::new(0),
            polls_saved: std::cell::Cell::new(0),
        })
    }

    /// May another cover cell be started after `cells_done` finished ones?
    pub(crate) fn allows(&self, cells_done: usize) -> bool {
        if self.max_cells.is_some_and(|m| cells_done >= m) {
            return false;
        }
        let Some(deadline) = self.deadline else { return true };
        if self.expired.get() {
            return false;
        }
        let since = self.calls_since_poll.get();
        if since > 0 && since < DEADLINE_POLL_STRIDE {
            self.calls_since_poll.set(since + 1);
            self.polls_saved.set(self.polls_saved.get() + 1);
            return true;
        }
        self.calls_since_poll.set(1);
        if Instant::now() >= deadline {
            self.expired.set(true);
            return false;
        }
        true
    }

    /// Clock polls the stride elided so far (see [`DEADLINE_POLL_STRIDE`]).
    pub(crate) fn deadline_polls_saved(&self) -> u64 {
        self.polls_saved.get()
    }
}

/// Wall-clock breakdown of one query by pipeline stage (DESIGN.md §12).
///
/// Stages follow Algorithms 4/5: circle-cover resolution, postings fetch
/// (cache probes + DFS reads), candidate combination (union/intersection),
/// thread construction, scoring, and top-k aggregation. All zero when the
/// engine was built with `EngineConfig::metrics` off.
///
/// The Maximum-score path (Algorithm 5) interleaves thread construction,
/// scoring, and admission inside one upper-bound prune loop; that whole
/// loop is attributed to `threads` and `scoring` stays zero there.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Circle-cover resolution (cover cache probe or fresh computation).
    pub cover: std::time::Duration,
    /// Postings retrieval: cache probes plus DFS reads and decoding.
    pub fetch: std::time::Duration,
    /// AND/OR candidate combination (union/intersection).
    pub combine: std::time::Duration,
    /// Thread construction (Algorithm 1 runs and thread-cache probes).
    pub threads: std::time::Duration,
    /// Per-user scoring (distance blend; 0 on the Maximum-score path).
    pub scoring: std::time::Duration,
    /// Final top-k sort and truncation.
    pub topk: std::time::Duration,
}

impl StageTimings {
    /// Sum of every stage (≤ `QueryStats::elapsed`; the difference is
    /// untimed glue).
    pub fn total(&self) -> std::time::Duration {
        self.cover + self.fetch + self.combine + self.threads + self.scoring + self.topk
    }
}

/// Stage-boundary stopwatch: `lap()` returns the time since the previous
/// lap (or construction) and re-arms. Disabled, it never reads the clock
/// and always returns zero — the whole instrumentation cost of a disabled
/// engine is one branch per stage boundary.
pub(crate) struct StageClock {
    last: Option<Instant>,
}

impl StageClock {
    pub(crate) fn new(enabled: bool, start: Instant) -> Self {
        Self { last: enabled.then_some(start) }
    }

    pub(crate) fn lap(&mut self) -> std::time::Duration {
        match self.last {
            Some(prev) => {
                let now = Instant::now();
                self.last = Some(now);
                now - prev
            }
            None => std::time::Duration::ZERO,
        }
    }
}

/// Cost accounting for one query execution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QueryStats {
    /// Wall-clock time of the whole query.
    pub elapsed: std::time::Duration,
    /// Geohash cells in the circle cover.
    pub cover_cells: usize,
    /// Postings lists fetched from the DFS.
    pub lists_fetched: usize,
    /// Bytes fetched from the DFS.
    pub dfs_bytes: u64,
    /// Candidate tweets after AND/OR combination.
    pub candidates: usize,
    /// Candidates that passed the exact radius check.
    pub in_radius: usize,
    /// Tweet threads actually constructed (Algorithm 1 runs).
    pub threads_built: usize,
    /// Thread constructions skipped by the upper-bound prune
    /// (always 0 for the Sum algorithm).
    pub threads_pruned: usize,
    /// Physical metadata-database page reads incurred.
    pub metadata_page_reads: u64,
    /// Circle covers served from the cover cache (0 or 1 per query; 0
    /// whenever the layer is disabled).
    pub cover_cache_hits: u64,
    /// Circle covers computed because the (enabled) cover cache missed.
    pub cover_cache_misses: u64,
    /// Postings lists served decoded from the postings cache.
    pub postings_cache_hits: u64,
    /// Postings lists fetched from the DFS because the (enabled) postings
    /// cache missed.
    pub postings_cache_misses: u64,
    /// Thread popularities φ(p) served from the thread cache.
    pub thread_cache_hits: u64,
    /// Thread popularities computed because the (enabled) thread cache
    /// missed. Under parallel Maximum-score execution this also counts
    /// speculative probes whose candidate the live prune later discarded,
    /// so the per-query tallies stay consistent with the global cache
    /// counters.
    pub thread_cache_misses: u64,
    /// Deadline clock polls elided by the strided budget check
    /// (DESIGN.md §12); 0 for unbudgeted queries.
    pub deadline_polls_saved: u64,
    /// Per-stage wall-clock breakdown (all zero with metrics disabled).
    pub stages: StageTimings,
}

impl QueryStats {
    /// Folds one thread-cache probe outcome (`None` = layer disabled,
    /// `Some(hit?)` otherwise) into the tallies.
    pub(crate) fn record_thread_probe(&mut self, outcome: Option<bool>) {
        match outcome {
            Some(true) => self.thread_cache_hits += 1,
            Some(false) => self.thread_cache_misses += 1,
            None => {}
        }
    }
}

/// Per-fetch cache-probe tallies, folded into [`QueryStats`] by the caller.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct FetchTally {
    /// `Some(hit?)` when the cover cache is enabled, `None` otherwise.
    pub cover: Option<bool>,
    pub postings_hits: u64,
    pub postings_misses: u64,
    /// Time spent resolving the circle cover (zero with metrics off).
    pub cover_time: std::time::Duration,
    /// Time spent in postings retrieval after the cover was resolved
    /// (zero with metrics off).
    pub fetch_time: std::time::Duration,
}

/// The per-keyword postings a query fetched, in whichever layout the
/// index stores ([`PostingsFormat`]). The whole downstream pipeline
/// dispatches on this once, in [`candidates`]; block postings stay packed
/// here — only the set operations unpack them, block by block, into
/// pooled scratch buffers.
pub(crate) enum FetchedLists {
    /// Fully materialized lists (format `flat`, the pre-block layout).
    Flat(Vec<Vec<Arc<PostingsList>>>),
    /// Block-compressed lists with lazily unpacked payloads.
    Block(Vec<Vec<Arc<BlockPostings>>>),
}

/// What one [`QueryContext::fetch_lists`] pass returns: per-keyword lists
/// plus the (cells processed, lists retrieved, DFS bytes) tallies.
type FetchedRaw<T> = (Vec<Vec<T>>, usize, usize, u64);

/// The result of the postings-retrieval phase (Algorithms 4/5 lines 1–7):
/// per-keyword postings plus the cost accounting the stats report.
pub(crate) struct Fetched {
    /// Postings grouped by query keyword, each keyword's lists in cover
    /// order.
    pub per_keyword: FetchedLists,
    /// Cover cells processed (may trail the full cover under a budget).
    pub cells: usize,
    /// Postings lists retrieved (cache hits included).
    pub lists: usize,
    /// Bytes read from the DFS (cache hits cost none).
    pub bytes: u64,
}

/// Everything query execution needs from the engine, bundled so both
/// ranking algorithms run through the same cache-aware access paths.
pub(crate) struct QueryContext<'a> {
    pub index: &'a HybridIndex,
    pub db: &'a MetadataDb,
    pub caches: &'a QueryCaches,
    pub scoring: &'a ScoringConfig,
    pub scratch: &'a ScratchPool,
    pub parallelism: usize,
    /// Record per-stage wall-clock spans (engine `metrics` flag).
    pub timings: bool,
}

impl QueryContext<'_> {
    /// The postings-retrieval phase of Algorithms 4/5 (lines 1–7), run
    /// through the cache hierarchy: the circle cover through the cover
    /// cache, each `⟨cell, term⟩` list through the postings cache, and
    /// only the misses down to the DFS — in `(partition, offset)` order,
    /// fanned over up to `parallelism` workers, exactly like
    /// [`HybridIndex::fetch_for_query_parallel`].
    ///
    /// Per-keyword lists are assembled in cover order, which differs from
    /// the uncached path's storage order; both orders feed the same
    /// order-insensitive union/intersection, so candidates — and therefore
    /// results — are identical. Directory misses (a `⟨cell, term⟩` with no
    /// postings) are never cached: the in-memory forward lookup already
    /// answers them for free.
    ///
    /// With a `budget`, cells are processed one at a time (each cell's
    /// misses fetched before the next cell starts) so the deadline check
    /// between cells reflects real work done; the per-keyword list order is
    /// the same as the batch path's, so a budget that admits the whole
    /// cover yields bitwise-identical results. Returns the fetch (whose
    /// `cells` counts *processed* cells), the cache tally, and the cover's
    /// total cell count.
    pub(crate) fn try_fetch(
        &self,
        center: &Point,
        radius_km: f64,
        terms: &[TermId],
        budget: Option<&CellBudget>,
    ) -> Result<(Fetched, FetchTally, usize), EngineError> {
        let mut tally = FetchTally::default();
        let mut clock = StageClock::new(self.timings, Instant::now());
        let geohash_len = self.index.geohash_len();
        let metric = self.scoring.metric;
        let compute_cover = || {
            Arc::new(
                circle_cover(center, radius_km, geohash_len, metric)
                    .expect("index geohash length is valid"),
            )
        };
        let cover: Arc<Vec<Geohash>> = if self.caches.cover.is_enabled() {
            let key = CoverKey::new(center, radius_km, geohash_len, metric);
            match self.caches.cover.get(&key) {
                Some(c) => {
                    tally.cover = Some(true);
                    c
                }
                None => {
                    tally.cover = Some(false);
                    let c = compute_cover();
                    self.caches.cover.insert(key, Arc::clone(&c));
                    c
                }
            }
        } else {
            compute_cover()
        };
        let cells_total = cover.len();
        tally.cover_time = clock.lap();

        // One dispatch on the index's postings layout; everything below it
        // is layout-generic, so both layouts share one fetch discipline
        // (and the postings cache holds exactly the layout fetched).
        let fetch = match self.index.postings_format() {
            PostingsFormat::Flat => {
                let (per_keyword, cells, lists, bytes) = self.fetch_lists(
                    &cover,
                    terms,
                    budget,
                    &mut tally,
                    |cached| match cached {
                        CachedPostings::Flat(list) => Some(list),
                        CachedPostings::Block(_) => None,
                    },
                    |list| CachedPostings::Flat(Arc::clone(list)),
                    |loc| self.index.try_read_postings(loc).map(|(l, b)| (Arc::new(l), b)),
                )?;
                Fetched { per_keyword: FetchedLists::Flat(per_keyword), cells, lists, bytes }
            }
            PostingsFormat::Block => {
                let (per_keyword, cells, lists, bytes) = self.fetch_lists(
                    &cover,
                    terms,
                    budget,
                    &mut tally,
                    |cached| match cached {
                        CachedPostings::Block(list) => Some(list),
                        CachedPostings::Flat(_) => None,
                    },
                    |list| CachedPostings::Block(Arc::clone(list)),
                    |loc| self.index.try_read_block_postings(loc).map(|(l, b)| (Arc::new(l), b)),
                )?;
                Fetched { per_keyword: FetchedLists::Block(per_keyword), cells, lists, bytes }
            }
        };
        tally.fetch_time = clock.lap();
        Ok((fetch, tally, cells_total))
    }

    /// The layout-generic fetch: probe the postings cache, send the misses
    /// to the DFS, file everything per keyword in cover order. `T` is the
    /// decoded-list handle (`Arc<PostingsList>` or `Arc<BlockPostings>`);
    /// `unwrap_cached`/`wrap_cached` bridge it to the shared cache value
    /// (a cached value of the other layout — impossible while the engine's
    /// format is build-time fixed — would simply refetch as a miss), and
    /// `read` is the layout's DFS read. Returns
    /// `(per_keyword, cells_processed, lists, bytes)`.
    ///
    /// Unbudgeted, misses are batched: probe everything first (reserving a
    /// slot per list so hits and later-fetched misses land in deterministic
    /// positions), then fetch misses in storage order — the locality the
    /// sorted ⟨geohash, term⟩ layout provides — fanned over up to
    /// `parallelism` workers. With a `budget`, cells are processed one at a
    /// time (cell-outer/keyword-inner, each cell's misses fetched before
    /// the next cell starts) so the deadline check between cells reflects
    /// real work done; both paths produce the same per-keyword list order,
    /// so a budget that admits the whole cover yields bitwise-identical
    /// results.
    #[allow(clippy::too_many_arguments)]
    fn fetch_lists<T, R>(
        &self,
        cover: &[Geohash],
        terms: &[TermId],
        budget: Option<&CellBudget>,
        tally: &mut FetchTally,
        unwrap_cached: impl Fn(CachedPostings) -> Option<T>,
        wrap_cached: impl Fn(&T) -> CachedPostings,
        read: R,
    ) -> Result<FetchedRaw<T>, EngineError>
    where
        T: Send,
        R: Fn(PostingsLocation) -> Result<(T, u64), IndexError> + Sync,
    {
        if let Some(budget) = budget {
            let mut per_keyword: Vec<Vec<T>> = terms.iter().map(|_| Vec::new()).collect();
            let mut lists = 0usize;
            let mut bytes = 0u64;
            let mut processed = 0usize;
            for &cell in cover {
                if !budget.allows(processed) {
                    break;
                }
                for (ki, &term) in terms.iter().enumerate() {
                    let Some(loc) = self.index.forward().lookup(cell, term) else { continue };
                    lists += 1;
                    if let Some(list) =
                        self.caches.postings.get(&(cell, term)).and_then(&unwrap_cached)
                    {
                        tally.postings_hits += 1;
                        per_keyword[ki].push(list);
                        continue;
                    }
                    if self.caches.postings.is_enabled() {
                        tally.postings_misses += 1;
                    }
                    let (list, b) = read(loc)?;
                    bytes += b;
                    self.caches.postings.insert((cell, term), wrap_cached(&list));
                    per_keyword[ki].push(list);
                }
                processed += 1;
            }
            return Ok((per_keyword, processed, lists, bytes));
        }

        // Probe the postings cache in (keyword, cover-cell) order.
        let mut per_keyword: Vec<Vec<Option<T>>> = terms.iter().map(|_| Vec::new()).collect();
        let mut misses: Vec<(usize, usize, (Geohash, TermId), PostingsLocation)> = Vec::new();
        let mut lists = 0usize;
        for (ki, &term) in terms.iter().enumerate() {
            for &cell in cover.iter() {
                let Some(loc) = self.index.forward().lookup(cell, term) else { continue };
                lists += 1;
                match self.caches.postings.get(&(cell, term)).and_then(&unwrap_cached) {
                    Some(list) => {
                        tally.postings_hits += 1;
                        per_keyword[ki].push(Some(list));
                    }
                    None => {
                        if self.caches.postings.is_enabled() {
                            tally.postings_misses += 1;
                        }
                        misses.push((ki, per_keyword[ki].len(), (cell, term), loc));
                        per_keyword[ki].push(None);
                    }
                }
            }
        }

        misses.sort_by_key(|&(_, _, _, loc)| (loc.partition, loc.offset));
        let fetched: Vec<Result<(T, u64), IndexError>> =
            parallel_map(&misses, self.parallelism, |&(_, _, _, loc)| read(loc));
        let mut bytes = 0u64;
        for (&(ki, slot, key, _), fetched) in misses.iter().zip(fetched) {
            let (list, b) = fetched?;
            bytes += b;
            self.caches.postings.insert(key, wrap_cached(&list));
            per_keyword[ki][slot] = Some(list);
        }
        let per_keyword: Vec<Vec<T>> = per_keyword
            .into_iter()
            .map(|lists| lists.into_iter().map(|l| l.expect("every slot filled")).collect())
            .collect();
        Ok((per_keyword, cover.len(), lists, bytes))
    }

    /// Definition 4's thread popularity φ(p) for the thread rooted at
    /// `tid`, through the thread cache. Returns the probe outcome
    /// (`None` = layer disabled, `Some(hit?)` otherwise); the thread is
    /// actually constructed exactly when the outcome is not `Some(true)`.
    ///
    /// Pure given the immutable corpus and the engine-fixed `thread_depth`
    /// and `epsilon`, so any thread may compute and cache it. A metadata
    /// storage failure during the thread walk surfaces as a typed error.
    pub(crate) fn try_popularity(&self, tid: TweetId) -> Result<(f64, Option<bool>), EngineError> {
        if let Some(phi) = self.caches.thread.get(&tid) {
            return Ok((phi, Some(true)));
        }
        let phi = try_build_thread(&mut &*self.db, tid, self.scoring.thread_depth)
            .map_err(EngineError::Storage)?
            .popularity(self.scoring.epsilon);
        if self.caches.thread.is_enabled() {
            self.caches.thread.insert(tid, phi);
            Ok((phi, Some(false)))
        } else {
            Ok((phi, None))
        }
    }
}

/// Lines 8–14 of Algorithms 4/5: combine the fetched postings lists into
/// the candidate list `P` of `(tweet, keyword-occurrence-count)` pairs.
///
/// * OR — union of every list; a tweet's count sums over all keywords.
/// * AND — per-keyword union across cover cells, then intersection across
///   keywords (a tweet must contain every keyword), counts summed.
///
/// Both layouts compute the same `P` (the oracle suite asserts bitwise
/// identity); they differ in *how*. The flat path materializes per-keyword
/// unions. The block path never materializes a full list: OR k-way merges
/// the blocks directly into `scratch`-backed buffers; AND seeds the
/// accumulator from the *smallest* keyword's union and winnows it through
/// each remaining keyword in ascending size order — galloping over skip
/// tables and unpacking only blocks that can still intersect, so a rare
/// keyword prunes a common one's postings without ever decoding most of
/// them. Occurrence counts are summed `u32`s, so keyword order cannot
/// change the result. The returned vector is the scratch's pooled buffer;
/// callers hand it back via [`QueryScratch::recycle_candidates`].
///
/// A block that fails to unpack here means post-fetch corruption (the wire
/// envelope was already validated at read time) and surfaces as a typed
/// [`IndexError::CorruptPostings`], never a panic.
pub(crate) fn candidates(
    fetch: &Fetched,
    semantics: Semantics,
    scratch: &mut QueryScratch,
) -> Result<Vec<(TweetId, u32)>, EngineError> {
    match &fetch.per_keyword {
        FetchedLists::Flat(per_keyword) => Ok(match semantics {
            Semantics::Or => {
                let all: Vec<Arc<PostingsList>> =
                    per_keyword.iter().flatten().map(Arc::clone).collect();
                union_sum(&all)
            }
            Semantics::And => {
                let groups: Vec<Vec<(TweetId, u32)>> =
                    per_keyword.iter().map(|lists| union_sum(lists)).collect();
                if groups.iter().any(Vec::is_empty) {
                    Vec::new()
                } else {
                    intersect_sum(&groups)
                }
            }
        }),
        FetchedLists::Block(per_keyword) => {
            let mut out = scratch.take_candidates();
            match block_candidates(per_keyword, semantics, &mut scratch.blocks, &mut out) {
                Ok(()) => Ok(out),
                Err(e) => {
                    scratch.recycle_candidates(out);
                    Err(corrupt_block(e))
                }
            }
        }
    }
}

/// The block-native combine behind [`candidates`], writing into `out`.
fn block_candidates(
    per_keyword: &[Vec<Arc<BlockPostings>>],
    semantics: Semantics,
    blocks: &mut tklus_index::BlockScratch,
    out: &mut Vec<(TweetId, u32)>,
) -> Result<(), DecodeError> {
    fn as_refs(lists: &[Arc<BlockPostings>]) -> Vec<&BlockPostings> {
        lists.iter().map(Arc::as_ref).collect()
    }
    match semantics {
        Semantics::Or => {
            let all: Vec<&BlockPostings> = per_keyword.iter().flatten().map(Arc::as_ref).collect();
            union_sum_blocks(&all, blocks, out)
        }
        Semantics::And => {
            // A keyword whose lists hold no postings empties the result
            // (same rule as the flat path's empty per-keyword union).
            let sizes: Vec<usize> =
                per_keyword.iter().map(|ls| ls.iter().map(|l| l.len()).sum()).collect();
            if sizes.contains(&0) {
                out.clear();
                return Ok(());
            }
            // Seed from the smallest keyword, winnow through the rest
            // ascending: the accumulator only ever shrinks, so every later
            // gallop works over the tightest candidate set available.
            let mut order: Vec<usize> = (0..per_keyword.len()).collect();
            order.sort_by_key(|&ki| sizes[ki]);
            let (&base, rest) = order.split_first().expect("terms are non-empty");
            union_sum_blocks(&as_refs(&per_keyword[base]), blocks, out)?;
            for &ki in rest {
                if out.is_empty() {
                    return Ok(());
                }
                intersect_winnow_blocks(out, &as_refs(&per_keyword[ki]), blocks)?;
            }
            Ok(())
        }
    }
}

/// Maps a block-decode failure discovered *after* the wire envelope
/// validated (i.e. inside a set operation) onto the index error taxonomy.
fn corrupt_block(e: DecodeError) -> EngineError {
    EngineError::Index(IndexError::CorruptPostings {
        file: "block payload (post-fetch)".to_string(),
        offset: 0,
        detail: e.to_string(),
    })
}

/// Maps `f` over `items` across up to `parallelism` scoped threads,
/// returning outputs in slot order. The split is contiguous chunks, so the
/// output vector is identical at any parallelism; `parallelism <= 1` (or a
/// single item) runs inline with no threads spawned.
///
/// This is the worker harness of the concurrent query engine: `f` must be
/// pure given the shared read-only state it captures (the `&self` index and
/// metadata database), which is what makes result determinism a property of
/// *where* values are folded (sequentially, by the caller) rather than of
/// scheduling.
pub(crate) fn parallel_map<T, U, F>(items: &[T], parallelism: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let workers = parallelism.max(1).min(items.len().max(1));
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|part| scope.spawn(|| part.iter().map(&f).collect::<Vec<U>>()))
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("scoring worker panicked")).collect()
    })
}

/// Sorts users by score descending (ties broken by user id for
/// determinism) and truncates to `k`.
///
/// Public because the sharded router (`tklus-shard`) must rank its merged
/// user set with exactly this comparator to stay bitwise-identical to the
/// monolithic engine.
pub fn top_k(mut users: Vec<RankedUser>, k: usize) -> Vec<RankedUser> {
    users.sort_by(|a, b| {
        b.score.partial_cmp(&a.score).expect("scores are finite").then(a.user.cmp(&b.user))
    });
    users.truncate(k);
    users
}

#[cfg(test)]
mod tests {
    use super::*;
    use tklus_index::PostingsList;

    fn fetch_flat(per_keyword: Vec<Vec<Vec<(u64, u32)>>>) -> Fetched {
        Fetched {
            per_keyword: FetchedLists::Flat(
                per_keyword
                    .into_iter()
                    .map(|lists| {
                        lists
                            .into_iter()
                            .map(|l| Arc::new(l.into_iter().collect::<PostingsList>()))
                            .collect()
                    })
                    .collect(),
            ),
            cells: 0,
            lists: 0,
            bytes: 0,
        }
    }

    fn fetch_block(per_keyword: Vec<Vec<Vec<(u64, u32)>>>) -> Fetched {
        Fetched {
            per_keyword: FetchedLists::Block(
                per_keyword
                    .into_iter()
                    .map(|lists| {
                        lists
                            .into_iter()
                            .map(|l| {
                                let list = l.into_iter().collect::<PostingsList>();
                                Arc::new(BlockPostings::from_list(&list))
                            })
                            .collect()
                    })
                    .collect(),
            ),
            cells: 0,
            lists: 0,
            bytes: 0,
        }
    }

    /// Runs [`candidates`] over both layouts of the same lists, asserts
    /// they agree, and returns the shared result.
    fn cands(per_keyword: Vec<Vec<Vec<(u64, u32)>>>, semantics: Semantics) -> Vec<(TweetId, u32)> {
        let mut scratch = QueryScratch::default();
        let flat = candidates(&fetch_flat(per_keyword.clone()), semantics, &mut scratch)
            .expect("flat combine is infallible");
        let block = candidates(&fetch_block(per_keyword), semantics, &mut scratch)
            .expect("well-formed blocks decode");
        assert_eq!(flat, block, "layouts must agree ({semantics:?})");
        block
    }

    #[test]
    fn or_unions_across_keywords() {
        let got =
            cands(vec![vec![vec![(1, 1), (2, 1)]], vec![vec![(2, 2), (3, 1)]]], Semantics::Or);
        assert_eq!(got, vec![(TweetId(1), 1), (TweetId(2), 3), (TweetId(3), 1)]);
    }

    #[test]
    fn and_intersects_across_keywords() {
        let got =
            cands(vec![vec![vec![(1, 1), (2, 1)]], vec![vec![(2, 2), (3, 1)]]], Semantics::And);
        assert_eq!(got, vec![(TweetId(2), 3)]);
    }

    #[test]
    fn and_with_missing_keyword_is_empty() {
        let lists = vec![vec![vec![(1, 1)]], vec![]];
        assert!(cands(lists.clone(), Semantics::And).is_empty());
        // OR still returns the present keyword's candidates.
        assert_eq!(cands(lists, Semantics::Or), vec![(TweetId(1), 1)]);
    }

    #[test]
    fn and_merges_per_keyword_cells_first() {
        // Keyword 0 spread over two cells; tweet 5 only matches keyword 0
        // in cell B and keyword 1 in its own cell.
        let got = cands(vec![vec![vec![(1, 1)], vec![(5, 2)]], vec![vec![(5, 1)]]], Semantics::And);
        assert_eq!(got, vec![(TweetId(5), 3)]);
    }

    #[test]
    fn and_seeds_from_smallest_keyword_without_changing_counts() {
        // Keyword 1 is far smaller than keyword 0, so the block path seeds
        // from it and winnows with keyword 0; counts must still sum over
        // *all* keywords regardless of that order.
        let big: Vec<(u64, u32)> = (0..400).map(|i| (i, 1)).collect();
        let got = cands(vec![vec![big], vec![vec![(7, 5), (399, 2)]]], Semantics::And);
        assert_eq!(got, vec![(TweetId(7), 6), (TweetId(399), 3)]);
    }

    #[test]
    fn block_candidates_span_many_blocks() {
        // Three keywords, each > one 128-posting block, intersecting on a
        // sparse stride — exercises seek/gallop across block boundaries.
        let k0: Vec<(u64, u32)> = (0..1000).map(|i| (i * 2, 1)).collect();
        let k1: Vec<(u64, u32)> = (0..700).map(|i| (i * 3, 2)).collect();
        let k2: Vec<(u64, u32)> = (0..500).map(|i| (i * 4, 3)).collect();
        let lists = vec![vec![k0], vec![k1], vec![k2]];
        let and = cands(lists.clone(), Semantics::And);
        // Multiples of lcm(2,3,4)=12 below min(2000, 2100, 2000).
        assert_eq!(and.len(), 1998 / 12 + 1);
        assert!(and.iter().all(|&(_, tf)| tf == 6));
        let or = cands(lists, Semantics::Or);
        assert!(or.len() > 1000);
    }

    #[test]
    fn cell_budget_polls_deadline_with_stride() {
        let budget = QueryBudget { timeout_ms: Some(10_000), max_cells: None };
        let b = CellBudget::new(Some(&budget), Instant::now()).expect("budget enforced");
        for i in 0..17 {
            assert!(b.allows(i), "far deadline always allows");
        }
        // 17 calls with stride 8 poll the clock on calls 1, 9, and 17.
        assert_eq!(b.deadline_polls_saved(), 14);
    }

    #[test]
    fn cell_budget_expiry_latch_sticks() {
        let budget = QueryBudget { timeout_ms: Some(0), max_cells: None };
        let b = CellBudget::new(Some(&budget), Instant::now()).expect("budget enforced");
        assert!(!b.allows(0), "deadline at start has already passed");
        assert!(!b.allows(0), "latch sticks without re-polling");
        assert_eq!(b.deadline_polls_saved(), 0, "latched checks are not elided polls");
    }

    #[test]
    fn cell_budget_max_cells_never_touches_clock() {
        let budget = QueryBudget { timeout_ms: None, max_cells: Some(3) };
        let b = CellBudget::new(Some(&budget), Instant::now()).expect("budget enforced");
        assert!(b.allows(2));
        assert!(!b.allows(3));
        assert_eq!(b.deadline_polls_saved(), 0);
    }

    #[test]
    fn stage_clock_disabled_returns_zero() {
        let mut off = StageClock::new(false, Instant::now());
        assert_eq!(off.lap(), std::time::Duration::ZERO);
        let mut on = StageClock::new(true, Instant::now());
        std::thread::sleep(std::time::Duration::from_millis(1));
        assert!(on.lap() > std::time::Duration::ZERO);
    }

    #[test]
    fn top_k_sorts_and_breaks_ties_by_id() {
        let users = vec![
            RankedUser { user: UserId(3), score: 1.0 },
            RankedUser { user: UserId(1), score: 2.0 },
            RankedUser { user: UserId(2), score: 1.0 },
        ];
        let top = top_k(users, 2);
        assert_eq!(top[0].user, UserId(1));
        assert_eq!(top[1].user, UserId(2), "tie broken by id");
        assert_eq!(top.len(), 2);
    }
}
