//! Algorithm 5: query processing for Maximum-score based user ranking.
//!
//! The key device is the upper-bound prune (lines 18–19): before paying the
//! I/Os of thread construction for a candidate tweet, compute the best user
//! score that tweet could possibly yield — keyword part bounded by the
//! popularity bound (global Definition 11, or the tighter per-hot-keyword
//! bound of Section VI-B5), distance part bounded by 1. If that optimistic
//! score cannot beat the current k-th best user, skip the tweet entirely.
//!
//! # Parallel execution
//!
//! The prune makes this algorithm inherently sequential: each decision
//! depends on the top-k state left by every earlier candidate. The parallel
//! path therefore runs in blocks. Workers score a block of candidates
//! against a *snapshot* of the top-k floor taken at block start; because
//! that floor only ever rises, a candidate the snapshot prunes would also
//! have been pruned by the live state, so workers may skip its thread
//! safely, and anything else they score speculatively. The sequential merge
//! then replays the exact live prune in candidate order — discarding
//! speculative work the real floor rejects — so results *and* the
//! `threads_pruned`/`threads_built` counters are identical to a
//! single-threaded run. Speculation can only inflate `metadata_page_reads`
//! (I/O spent on threads the merge then discards); that is the price of the
//! fan-out, not a change in what the algorithm computes.
//!
//! # Caching
//!
//! The cover/postings caches front the fetch and the thread cache fronts
//! φ(p); every cached value is pure, so cached runs return identical
//! results. One accounting nuance: a *speculative* φ probe touches the
//! shared thread cache even when the merge later discards the candidate,
//! so `thread_cache_hits`/`_misses` count every probe (keeping per-query
//! tallies consistent with the global cache counters), while
//! `threads_built`/`threads_pruned` keep replaying the live prune exactly.
//!
//! # Failure
//!
//! Storage and index failures — postings fetch, metadata lookups, thread
//! walks — propagate as typed [`EngineError`]s instead of panics, from
//! both the sequential path and the speculative workers (worker errors are
//! surfaced by the in-order merge). A query budget degrades the cover
//! instead (see [`Completeness`]).

use crate::bounds::{BoundsMode, BoundsTable};
use crate::error::EngineError;
use crate::metadata::MetadataDb;
use crate::query::{
    candidates, parallel_map, top_k, CellBudget, Completeness, QueryContext, QueryStats,
    RankedUser, StageClock,
};
use crate::score::{tweet_keyword_score, upper_bound_user_score, user_distance_score, user_score};
use std::collections::HashMap;
use std::time::Instant;
use tklus_geo::Point;
use tklus_model::{ScoringConfig, TklusQuery, UserId};
use tklus_storage::IoStats;
use tklus_text::TermId;

/// Per-user state in the running top-k set.
struct Candidate {
    /// Best (maximum) keyword relevance of the user's tweets so far —
    /// Definition 8's `ρ_m`.
    rho_max: f64,
    /// Cached user distance score (Definition 9).
    delta: f64,
    /// Combined user score (Definition 10).
    score: f64,
}

/// The running top-k user set of Algorithm 5 (the paper's `topKUser`
/// priority queue). With k ≤ tens, a flat map with linear min search is
/// faster than a heap with lazy deletion and trivially correct.
struct TopK {
    k: usize,
    users: HashMap<UserId, Candidate>,
}

impl TopK {
    fn new(k: usize) -> Self {
        Self { k, users: HashMap::with_capacity(k + 1) }
    }

    fn is_full(&self) -> bool {
        self.users.len() >= self.k
    }

    /// The smallest user score in the set (`topKUser.peek()`).
    fn min_score(&self) -> Option<f64> {
        self.users.values().map(|c| c.score).min_by(|a, b| a.partial_cmp(b).expect("finite scores"))
    }

    fn evict_min(&mut self) {
        if let Some((&uid, _)) = self.users.iter().min_by(|a, b| {
            a.1.score.partial_cmp(&b.1.score).expect("finite scores").then(b.0.cmp(a.0))
        }) {
            self.users.remove(&uid);
        }
    }

    /// Lines 23–33: maintain the set under Definition 8's max-aggregation.
    fn admit(&mut self, uid: UserId, rho: f64, delta: f64, config: &ScoringConfig) {
        match self.users.get_mut(&uid) {
            Some(c) => {
                if rho > c.rho_max {
                    c.rho_max = rho;
                    c.score = user_score(c.rho_max, c.delta, config);
                }
            }
            None => {
                let score = user_score(rho, delta, config);
                if !self.is_full() {
                    self.users.insert(uid, Candidate { rho_max: rho, delta, score });
                } else if score > self.min_score().expect("full set has a min") {
                    self.evict_min();
                    self.users.insert(uid, Candidate { rho_max: rho, delta, score });
                }
            }
        }
    }

    fn into_ranked(self) -> Vec<RankedUser> {
        self.users.into_iter().map(|(user, c)| RankedUser { user, score: c.score }).collect()
    }
}

/// A candidate that survived the cheap filters, with the expensive parts
/// possibly precomputed by a worker.
struct Prepared {
    tf: u32,
    recency: f64,
    uid: UserId,
    /// `(rho, delta, thread-cache probe outcome)` if a worker scored the
    /// candidate speculatively; `None` when the snapshot floor already
    /// proved it prunable.
    speculative: Option<(f64, f64, Option<bool>)>,
}

/// How many candidates each parallel round scores before the merge
/// refreshes the prune floor (per worker, so speculation waste stays
/// bounded as the floor tightens).
const BLOCK_PER_WORKER: usize = 32;

/// Runs Algorithm 5 with the given popularity-bound table and mode.
///
/// The temporal extension (Section VIII) composes with the prune: the
/// time window filters candidates before any I/O, and the recency factor —
/// known from the candidate's timestamp alone — *tightens* the upper bound
/// (an old tweet's best possible score shrinks by its decay factor), so
/// recency-biased queries prune more, not less.
///
/// `ctx.parallelism` fans the postings fetch and the block-speculative
/// scoring across worker threads; the ranked output and prune/build
/// counters are identical at any value (see the module docs for why).
pub(crate) fn try_query_max(
    ctx: &QueryContext<'_>,
    bounds: &BoundsTable,
    mode: BoundsMode,
    query: &TklusQuery,
    terms: &[TermId],
) -> Result<(Vec<RankedUser>, QueryStats, Completeness), EngineError> {
    let start = Instant::now();
    let db = ctx.db;
    let config = ctx.scoring;
    let center = &query.location;
    let radius_km = query.radius_km;
    let k = query.k;
    let budget = CellBudget::new(query.budget.as_ref(), start);
    let mut clock = StageClock::new(ctx.timings, start);

    // Lines 1–14: identical to Algorithm 4, through the cache hierarchy,
    // stopping between cover cells if the budget expires.
    let (fetch, tally, cells_total) = ctx.try_fetch(center, radius_km, terms, budget.as_ref())?;
    let _ = clock.lap(); // cover+fetch measured inside try_fetch
    let completeness = if fetch.cells < cells_total {
        Completeness::Degraded { cells_processed: fetch.cells, cells_total }
    } else {
        Completeness::Complete
    };
    let mut scratch = ctx.scratch.checkout();
    let cands = candidates(&fetch, query.semantics, &mut scratch)?;

    let mut stats = QueryStats {
        cover_cells: fetch.cells,
        lists_fetched: fetch.lists,
        dfs_bytes: fetch.bytes,
        candidates: cands.len(),
        cover_cache_hits: tally.cover.map_or(0, u64::from),
        cover_cache_misses: tally.cover.map_or(0, |hit| u64::from(!hit)),
        postings_cache_hits: tally.postings_hits,
        postings_cache_misses: tally.postings_misses,
        deadline_polls_saved: budget.as_ref().map_or(0, CellBudget::deadline_polls_saved),
        ..QueryStats::default()
    };
    stats.stages.cover = tally.cover_time;
    stats.stages.fetch = tally.fetch_time;
    stats.stages.combine = clock.lap();

    let popularity_bound = bounds.query_bound(terms, query.semantics, mode);
    let mut top = TopK::new(k);
    // Per-user distance scores are query-constant; cache them.
    let mut delta_cache: HashMap<UserId, f64> = HashMap::new();

    let mut page_reads = 0u64;
    if ctx.parallelism <= 1 {
        // Sequential path: the prune always sees the exact live floor, so
        // no speculative I/O is ever spent. Every metadata read happens on
        // this thread, so one thread-tally delta around the loop
        // attributes them all to this query exactly.
        let reads_before = IoStats::thread_page_reads();
        for &(tid, tf) in &cands {
            if !query.in_time_range(tid.0) {
                continue;
            }
            let Some(row) = db.try_row(tid)? else { continue };
            if center.distance_km(&row.location, config.metric) > radius_km {
                continue;
            }
            stats.in_radius += 1;
            let recency = query.recency_factor(tid.0);

            // Lines 18–19: the prune. The best score this tweet can give
            // its author cannot beat the current k-th user -> skip the
            // thread. The recency factor scales the keyword part.
            if top.is_full() {
                let upper = upper_bound_user_score(tf, popularity_bound * recency, config);
                if upper <= top.min_score().expect("full set has a min") {
                    stats.threads_pruned += 1;
                    continue;
                }
            }

            // Lines 20–22: thread popularity (cached or constructed),
            // tweet and user scores.
            let (phi, probe) = ctx.try_popularity(tid)?;
            stats.record_thread_probe(probe);
            if probe != Some(true) {
                stats.threads_built += 1;
            }
            let rho = tweet_keyword_score(tf, phi, config) * recency;
            let uid = row.uid;
            let delta = match delta_cache.get(&uid) {
                Some(&d) => d,
                None => {
                    let d = user_distance_for(db, center, radius_km, uid, config)?;
                    delta_cache.insert(uid, d);
                    d
                }
            };
            top.admit(uid, rho, delta, config);
        }
        page_reads = IoStats::thread_page_reads() - reads_before;
    } else {
        let block = BLOCK_PER_WORKER * ctx.parallelism;
        for chunk in cands.chunks(block) {
            // Snapshot the floor once per block. It can only be lower than
            // (or equal to) the live floor at any later merge point, so a
            // snapshot prune is always a subset of the live prune.
            let snapshot_floor = if top.is_full() { top.min_score() } else { None };

            // Each slot carries the page reads it incurred on its worker
            // thread (measured inside the closure, so the attribution is
            // exact whichever thread — including this one — ran it).
            let prepared: Vec<(u64, Result<Option<Prepared>, EngineError>)> =
                parallel_map(chunk, ctx.parallelism, |&(tid, tf)| {
                    let reads_before = IoStats::thread_page_reads();
                    let slot = (|| {
                        if !query.in_time_range(tid.0) {
                            return Ok(None);
                        }
                        let Some(row) = db.try_row(tid)? else { return Ok(None) };
                        if center.distance_km(&row.location, config.metric) > radius_km {
                            return Ok(None);
                        }
                        let recency = query.recency_factor(tid.0);
                        let uid = row.uid;
                        if let Some(floor) = snapshot_floor {
                            let upper =
                                upper_bound_user_score(tf, popularity_bound * recency, config);
                            if upper <= floor {
                                return Ok(Some(Prepared { tf, recency, uid, speculative: None }));
                            }
                        }
                        let (phi, probe) = ctx.try_popularity(tid)?;
                        let rho = tweet_keyword_score(tf, phi, config) * recency;
                        let delta = user_distance_for(db, center, radius_km, uid, config)?;
                        Ok(Some(Prepared {
                            tf,
                            recency,
                            uid,
                            speculative: Some((rho, delta, probe)),
                        }))
                    })();
                    (IoStats::thread_page_reads() - reads_before, slot)
                });

            // Merge in candidate order, replaying the exact live prune
            // (and surfacing the first worker error in candidate order).
            for (reads, p) in prepared {
                page_reads += reads;
                let Some(p) = p? else { continue };
                stats.in_radius += 1;
                // A speculative probe touched the shared thread cache
                // whether or not the live prune keeps the candidate, so it
                // is tallied unconditionally.
                if let Some((_, _, probe)) = p.speculative {
                    stats.record_thread_probe(probe);
                }
                if top.is_full() {
                    let upper = upper_bound_user_score(p.tf, popularity_bound * p.recency, config);
                    if upper <= top.min_score().expect("full set has a min") {
                        stats.threads_pruned += 1;
                        continue;
                    }
                }
                // Live floor did not prune, and the snapshot floor was no
                // higher, so the worker must have scored this candidate.
                let (rho, delta, probe) =
                    p.speculative.expect("snapshot prune is conservative w.r.t. the live floor");
                if probe != Some(true) {
                    stats.threads_built += 1;
                }
                let delta = *delta_cache.entry(p.uid).or_insert(delta);
                top.admit(p.uid, rho, delta, config);
            }
        }
    }

    scratch.recycle_candidates(cands);
    stats.stages.threads = clock.lap();
    // Algorithm 5 interleaves scoring with the prune loop above, so the
    // whole loop is attributed to `threads` and `scoring` stays zero.
    stats.metadata_page_reads = page_reads;
    let ranked = top_k(top.into_ranked(), k);
    stats.stages.topk = clock.lap();
    stats.elapsed = start.elapsed();
    Ok((ranked, stats, completeness))
}

/// Definition 9's user distance score over `P_u` (pure: same inputs, same
/// float result, whichever thread computes it).
fn user_distance_for(
    db: &MetadataDb,
    center: &Point,
    radius_km: f64,
    uid: UserId,
    config: &ScoringConfig,
) -> Result<f64, EngineError> {
    let locations: Vec<Point> = db.try_posts_of_user(uid)?.into_iter().map(|(_, l)| l).collect();
    Ok(user_distance_score(center, radius_km, &locations, config))
}
