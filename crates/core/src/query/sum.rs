//! Algorithm 4: query processing for Sum-score based user ranking.
//!
//! Every candidate tweet inside the radius gets its thread constructed
//! (the I/O bottleneck of Section V-B) and its keyword relevance added to
//! its author's Sum score (Definition 7); user scores then blend with the
//! user distance score (Definitions 9/10).
//!
//! Per-candidate scoring is pure given the shared read-only metadata
//! database, so it fans out across worker threads; the per-user Sum
//! accumulation stays sequential in candidate order, which makes the
//! floating-point result byte-identical at any parallelism. The cover,
//! postings, and thread caches slot in transparently: every cached value
//! is pure, so cached and uncached runs differ only in cost, never in
//! results.

use crate::query::{candidates, parallel_map, top_k, QueryContext, QueryStats, RankedUser};
use crate::score::{tweet_keyword_score, user_distance_score, user_score};
use std::collections::HashMap;
use std::time::Instant;
use tklus_model::{TklusQuery, UserId};
use tklus_text::TermId;

/// Runs Algorithm 4. `terms` are the query keywords already normalized to
/// term ids (keywords missing from the dictionary are resolved upstream).
/// The query's optional time window and recency bias (the Section VIII
/// temporal extension) are honoured: out-of-window candidates are skipped
/// before any metadata I/O, and keyword relevance is decayed by the
/// recency factor.
///
/// `ctx.parallelism` is the number of worker threads for the postings
/// fetch, the per-candidate thread scoring, and the per-user distance
/// blend; the ranked output is identical at any value.
pub(crate) fn query_sum(
    ctx: &QueryContext<'_>,
    query: &TklusQuery,
    terms: &[TermId],
) -> (Vec<RankedUser>, QueryStats) {
    let start = Instant::now();
    let db = ctx.db;
    let config = ctx.scoring;
    let io_before = db.io().page_reads();
    let center = &query.location;
    let radius_km = query.radius_km;

    // Lines 1–14: cover, fetch, AND/OR combine — through the cache
    // hierarchy.
    let (fetch, tally) = ctx.fetch(center, radius_km, terms);
    let cands = candidates(&fetch, query.semantics);

    let mut stats = QueryStats {
        cover_cells: fetch.cells,
        lists_fetched: fetch.lists,
        dfs_bytes: fetch.bytes,
        candidates: cands.len(),
        cover_cache_hits: tally.cover.map_or(0, u64::from),
        cover_cache_misses: tally.cover.map_or(0, |hit| u64::from(!hit)),
        postings_cache_hits: tally.postings_hits,
        postings_cache_misses: tally.postings_misses,
        ..QueryStats::default()
    };

    // Lines 15–24, fan-out half: per-tweet relevance. Each slot is pure —
    // radius check, thread popularity (possibly cached), keyword score —
    // and lands back in candidate order.
    let scored: Vec<Option<(UserId, f64, Option<bool>)>> =
        parallel_map(&cands, ctx.parallelism, |&(tid, tf)| {
            // Temporal extension: the id is the timestamp, so the window
            // check costs nothing and precedes all metadata I/O.
            if !query.in_time_range(tid.0) {
                return None;
            }
            let row = db.row(tid)?;
            if center.distance_km(&row.location, config.metric) > radius_km {
                return None;
            }
            let (phi, probe) = ctx.popularity(tid);
            let rs = tweet_keyword_score(tf, phi, config) * query.recency_factor(tid.0);
            Some((row.uid, rs, probe))
        });

    // Fold half: per-user Sum scores accumulate sequentially in candidate
    // order, so float addition order never depends on scheduling.
    let mut users: HashMap<UserId, f64> = HashMap::new();
    for &(uid, rs, probe) in scored.iter().flatten() {
        stats.in_radius += 1;
        stats.record_thread_probe(probe);
        if probe != Some(true) {
            stats.threads_built += 1;
        }
        *users.entry(uid).or_insert(0.0) += rs;
    }

    // Lines 25–27: blend with user distance scores (Definition 10). Each
    // user's blend is independent, so this fans out too; users are visited
    // in id order for deterministic I/O patterns.
    let mut entries: Vec<(UserId, f64)> = users.into_iter().collect();
    entries.sort_by_key(|e| e.0);
    let ranked: Vec<RankedUser> = parallel_map(&entries, ctx.parallelism, |&(uid, rho_sum)| {
        let locations: Vec<tklus_geo::Point> =
            db.posts_of_user(uid).into_iter().map(|(_, l)| l).collect();
        let delta = user_distance_score(center, radius_km, &locations, config);
        RankedUser { user: uid, score: user_score(rho_sum, delta, config) }
    });

    stats.metadata_page_reads = db.io().page_reads() - io_before;
    stats.elapsed = start.elapsed();
    (top_k(ranked, query.k), stats)
}
