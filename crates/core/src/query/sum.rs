//! Algorithm 4: query processing for Sum-score based user ranking.
//!
//! Every candidate tweet inside the radius gets its thread constructed
//! (the I/O bottleneck of Section V-B) and its keyword relevance added to
//! its author's Sum score (Definition 7); user scores then blend with the
//! user distance score (Definitions 9/10).
//!
//! Per-candidate scoring is pure given the shared read-only metadata
//! database, so it fans out across worker threads; the per-user Sum
//! accumulation stays sequential in candidate order, which makes the
//! floating-point result byte-identical at any parallelism. The cover,
//! postings, and thread caches slot in transparently: every cached value
//! is pure, so cached and uncached runs differ only in cost, never in
//! results.
//!
//! The pipeline is split at the per-user fold: [`try_sum_rows`] produces
//! the scored candidate rows in tweet-id order, and [`try_query_sum`]
//! folds them into user Sum scores and blends with distance. The split is
//! what lets the sharded router (`tklus-shard`) gather rows from disjoint
//! shard engines, merge them by tweet id, and run the *same* sequential
//! fold — reproducing the monolithic result bit for bit.
//!
//! Storage and index failures anywhere along the path — postings fetch,
//! metadata row lookup, thread walk, user scan — propagate as typed
//! [`EngineError`]s; a query budget degrades the cover instead
//! (see [`Completeness`]).
//!
//! Metadata page reads are attributed to the query via per-thread read
//! tallies measured *inside* each fanned-out closure
//! ([`IoStats::thread_page_reads`]), so `QueryStats::metadata_page_reads`
//! is exact even with other queries running concurrently on the shared
//! engine (a global counter delta would absorb their reads too).

use crate::error::EngineError;
use crate::query::{
    candidates, parallel_map, top_k, CellBudget, Completeness, QueryContext, QueryStats,
    RankedUser, StageClock, SumRow,
};
use crate::score::{tweet_keyword_score, user_distance_score, user_score};
use std::collections::HashMap;
use std::time::Instant;
use tklus_model::{TklusQuery, UserId};
use tklus_storage::IoStats;
use tklus_text::TermId;

/// One fanned-out scoring slot: the page reads the slot incurred on its
/// worker thread, and `None` when the candidate fell outside the radius or
/// time window, otherwise `(author, relevance, cache-probe)`.
type ScoredSlot = (u64, Result<Option<(UserId, f64, Option<bool>)>, EngineError>);

/// The row-producing front half of Algorithm 4 (lines 1–24): cover,
/// fetch, AND/OR combine, and per-candidate relevance scoring. Returns
/// the surviving rows in candidate (tweet-id) order, stats through the
/// thread stage, and the budget completeness; the per-user fold and
/// distance blend are left to the caller.
pub(crate) fn try_sum_rows(
    ctx: &QueryContext<'_>,
    query: &TklusQuery,
    terms: &[TermId],
    start: Instant,
    clock: &mut StageClock,
) -> Result<(Vec<SumRow>, QueryStats, Completeness), EngineError> {
    let db = ctx.db;
    let config = ctx.scoring;
    let center = &query.location;
    let radius_km = query.radius_km;
    let budget = CellBudget::new(query.budget.as_ref(), start);

    // Lines 1–14: cover, fetch, AND/OR combine — through the cache
    // hierarchy, stopping between cover cells if the budget expires.
    let (fetch, tally, cells_total) = ctx.try_fetch(center, radius_km, terms, budget.as_ref())?;
    let _ = clock.lap(); // cover+fetch measured inside try_fetch
    let completeness = if fetch.cells < cells_total {
        Completeness::Degraded { cells_processed: fetch.cells, cells_total }
    } else {
        Completeness::Complete
    };
    let mut scratch = ctx.scratch.checkout();
    let cands = candidates(&fetch, query.semantics, &mut scratch)?;

    let mut stats = QueryStats {
        cover_cells: fetch.cells,
        lists_fetched: fetch.lists,
        dfs_bytes: fetch.bytes,
        candidates: cands.len(),
        cover_cache_hits: tally.cover.map_or(0, u64::from),
        cover_cache_misses: tally.cover.map_or(0, |hit| u64::from(!hit)),
        postings_cache_hits: tally.postings_hits,
        postings_cache_misses: tally.postings_misses,
        deadline_polls_saved: budget.as_ref().map_or(0, CellBudget::deadline_polls_saved),
        ..QueryStats::default()
    };
    stats.stages.cover = tally.cover_time;
    stats.stages.fetch = tally.fetch_time;
    stats.stages.combine = clock.lap();

    // Lines 15–24, fan-out half: per-tweet relevance. Each slot is pure —
    // radius check, thread popularity (possibly cached), keyword score —
    // and lands back in candidate order; any slot's storage error aborts
    // the query in the sequential collection below.
    let scored: Vec<ScoredSlot> = parallel_map(&cands, ctx.parallelism, |&(tid, tf)| {
        let reads_before = IoStats::thread_page_reads();
        let slot = (|| {
            // Temporal extension: the id is the timestamp, so the window
            // check costs nothing and precedes all metadata I/O.
            if !query.in_time_range(tid.0) {
                return Ok(None);
            }
            let Some(row) = db.try_row(tid)? else { return Ok(None) };
            if center.distance_km(&row.location, config.metric) > radius_km {
                return Ok(None);
            }
            let (phi, probe) = ctx.try_popularity(tid)?;
            let rs = tweet_keyword_score(tf, phi, config) * query.recency_factor(tid.0);
            Ok(Some((row.uid, rs, probe)))
        })();
        (IoStats::thread_page_reads() - reads_before, slot)
    });

    // Collect surviving rows in candidate order (the fold order every
    // consumer must preserve for float determinism).
    let mut page_reads = 0u64;
    let mut rows: Vec<SumRow> = Vec::new();
    for ((reads, slot), &(tid, _)) in scored.into_iter().zip(cands.iter()) {
        page_reads += reads;
        let Some((uid, rs, probe)) = slot? else { continue };
        stats.in_radius += 1;
        stats.record_thread_probe(probe);
        if probe != Some(true) {
            stats.threads_built += 1;
        }
        rows.push(SumRow { tweet: tid, user: uid, rho: rs });
    }
    scratch.recycle_candidates(cands);
    stats.metadata_page_reads = page_reads;
    stats.stages.threads = clock.lap();
    Ok((rows, stats, completeness))
}

/// The per-user distance blend (lines 25–27): each user's Sum score ρ
/// blends with their distance score δ (Definition 10) into the final
/// `score(u, q)`. Users are visited in id order for deterministic I/O
/// patterns; the blend fans out across `parallelism` workers. Returns the
/// unranked users and the metadata page reads incurred.
pub(crate) fn try_blend_users(
    ctx: &QueryContext<'_>,
    query: &TklusQuery,
    users: HashMap<UserId, f64>,
) -> Result<(Vec<RankedUser>, u64), EngineError> {
    let db = ctx.db;
    let config = ctx.scoring;
    let center = &query.location;
    let radius_km = query.radius_km;
    let mut entries: Vec<(UserId, f64)> = users.into_iter().collect();
    entries.sort_by_key(|e| e.0);
    let ranked: Vec<(u64, Result<RankedUser, EngineError>)> =
        parallel_map(&entries, ctx.parallelism, |&(uid, rho_sum)| {
            let reads_before = IoStats::thread_page_reads();
            let slot = (|| {
                let locations: Vec<tklus_geo::Point> =
                    db.try_posts_of_user(uid)?.into_iter().map(|(_, l)| l).collect();
                let delta = user_distance_score(center, radius_km, &locations, config);
                Ok(RankedUser { user: uid, score: user_score(rho_sum, delta, config) })
            })();
            (IoStats::thread_page_reads() - reads_before, slot)
        });
    let mut page_reads = 0u64;
    let mut users_ranked = Vec::with_capacity(ranked.len());
    for (reads, slot) in ranked {
        page_reads += reads;
        users_ranked.push(slot?);
    }
    Ok((users_ranked, page_reads))
}

/// Runs Algorithm 4. `terms` are the query keywords already normalized to
/// term ids (keywords missing from the dictionary are resolved upstream).
/// The query's optional time window and recency bias (the Section VIII
/// temporal extension) are honoured: out-of-window candidates are skipped
/// before any metadata I/O, and keyword relevance is decayed by the
/// recency factor.
///
/// `ctx.parallelism` is the number of worker threads for the postings
/// fetch, the per-candidate thread scoring, and the per-user distance
/// blend; the ranked output is identical at any value.
pub(crate) fn try_query_sum(
    ctx: &QueryContext<'_>,
    query: &TklusQuery,
    terms: &[TermId],
) -> Result<(Vec<RankedUser>, QueryStats, Completeness), EngineError> {
    let start = Instant::now();
    let mut clock = StageClock::new(ctx.timings, start);
    let (rows, mut stats, completeness) = try_sum_rows(ctx, query, terms, start, &mut clock)?;

    // Fold half: per-user Sum scores accumulate sequentially in candidate
    // order, so float addition order never depends on scheduling.
    let mut users: HashMap<UserId, f64> = HashMap::new();
    for row in &rows {
        *users.entry(row.user).or_insert(0.0) += row.rho;
    }

    let (users_ranked, blend_reads) = try_blend_users(ctx, query, users)?;
    stats.metadata_page_reads += blend_reads;
    stats.stages.scoring = clock.lap();

    let top = top_k(users_ranked, query.k);
    stats.stages.topk = clock.lap();
    stats.elapsed = start.elapsed();
    Ok((top, stats, completeness))
}
