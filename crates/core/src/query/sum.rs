//! Algorithm 4: query processing for Sum-score based user ranking.
//!
//! Every candidate tweet inside the radius gets its thread constructed
//! (the I/O bottleneck of Section V-B) and its keyword relevance added to
//! its author's Sum score (Definition 7); user scores then blend with the
//! user distance score (Definitions 9/10).

use crate::metadata::MetadataDb;
use crate::query::{candidates, top_k, QueryStats, RankedUser};
use crate::score::{tweet_keyword_score, user_distance_score, user_score};
use std::collections::HashMap;
use std::time::Instant;
use tklus_graph::build_thread;
use tklus_index::HybridIndex;
use tklus_model::{ScoringConfig, TklusQuery, UserId};
use tklus_text::TermId;

/// Runs Algorithm 4. `terms` are the query keywords already normalized to
/// term ids (keywords missing from the dictionary are resolved upstream).
/// The query's optional time window and recency bias (the Section VIII
/// temporal extension) are honoured: out-of-window candidates are skipped
/// before any metadata I/O, and keyword relevance is decayed by the
/// recency factor.
pub fn query_sum(
    index: &HybridIndex,
    db: &mut MetadataDb,
    query: &TklusQuery,
    terms: &[TermId],
    config: &ScoringConfig,
) -> (Vec<RankedUser>, QueryStats) {
    let start = Instant::now();
    let io_before = db.io().page_reads();
    let center = &query.location;
    let radius_km = query.radius_km;

    // Lines 1–14: cover, fetch, AND/OR combine.
    let fetch = index.fetch_for_query(center, radius_km, terms, config.metric);
    let cands = candidates(&fetch, query.semantics);

    let mut stats = QueryStats {
        cover_cells: fetch.cells,
        lists_fetched: fetch.lists,
        dfs_bytes: fetch.bytes,
        candidates: cands.len(),
        ..QueryStats::default()
    };

    // Lines 15–24: per-tweet scoring into per-user Sum scores.
    let mut users: HashMap<UserId, f64> = HashMap::new();
    for (tid, tf) in cands {
        // Temporal extension: the id is the timestamp, so the window
        // check costs nothing and precedes all metadata I/O.
        if !query.in_time_range(tid.0) {
            continue;
        }
        let Some(row) = db.row(tid) else { continue };
        if center.distance_km(&row.location, config.metric) > radius_km {
            continue;
        }
        stats.in_radius += 1;
        let thread = build_thread(db, tid, config.thread_depth);
        stats.threads_built += 1;
        let phi = thread.popularity(config.epsilon);
        let rs = tweet_keyword_score(tf, phi, config) * query.recency_factor(tid.0);
        *users.entry(row.uid).or_insert(0.0) += rs;
    }

    // Lines 25–27: blend with user distance scores (Definition 10).
    let ranked: Vec<RankedUser> = users
        .into_iter()
        .map(|(uid, rho_sum)| {
            let locations: Vec<tklus_geo::Point> = db.posts_of_user(uid).into_iter().map(|(_, l)| l).collect();
            let delta = user_distance_score(center, radius_km, &locations, config);
            RankedUser { user: uid, score: user_score(rho_sum, delta, config) }
        })
        .collect();

    stats.metadata_page_reads = db.io().page_reads() - io_before;
    stats.elapsed = start.elapsed();
    (top_k(ranked, query.k), stats)
}
