//! The engine-level error taxonomy (DESIGN.md §10).
//!
//! Every fallible engine operation reports an [`EngineError`] naming the
//! subsystem that failed: the metadata database's storage stack or the
//! inverted index's DFS/decode path. Both wrap the subsystem's own typed
//! error, so callers can match all the way down (e.g. to
//! [`tklus_storage::StorageError::PageCorrupt`]) when they need to.

use tklus_index::IndexError;
use tklus_storage::StorageError;

/// An error surfaced by engine construction or query execution.
#[derive(Debug)]
pub enum EngineError {
    /// The metadata database's storage stack failed (I/O, corruption, a
    /// malformed B⁺-tree node).
    Storage(StorageError),
    /// The inverted index failed to serve postings (DFS read, decode).
    Index(IndexError),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Storage(e) => write!(f, "metadata storage error: {e}"),
            EngineError::Index(e) => write!(f, "index error: {e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Storage(e) => Some(e),
            EngineError::Index(e) => Some(e),
        }
    }
}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

impl From<IndexError> for EngineError {
    fn from(e: IndexError) -> Self {
        EngineError::Index(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tklus_storage::PageId;

    #[test]
    fn display_names_the_subsystem() {
        let e = EngineError::from(StorageError::PageCorrupt {
            page_id: PageId(3),
            expected: 1,
            actual: 2,
        });
        let msg = e.to_string();
        assert!(msg.starts_with("metadata storage error:"), "{msg}");
        assert!(msg.contains("p3"), "{msg}");
        assert!(std::error::Error::source(&e).is_some());
    }
}
