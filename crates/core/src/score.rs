//! The scoring functions of Section III.

use tklus_geo::Point;
use tklus_model::ScoringConfig;

/// Definition 5 — distance score of a tweet:
/// `(r − ‖q.l, p.l‖) / r` within the radius, else 0. Range `[0, 1]`.
pub fn tweet_distance_score(
    query_loc: &Point,
    radius_km: f64,
    post_loc: &Point,
    config: &ScoringConfig,
) -> f64 {
    let d = query_loc.distance_km(post_loc, config.metric);
    if d <= radius_km {
        (radius_km - d) / radius_km
    } else {
        0.0
    }
}

/// Definition 6 — keyword relevance score of a tweet:
/// `ρ(p, q) = |q.W ∩ p.W| / N · φ(p)`, where the intersection is counted
/// under the bag model (`matched_occurrences` = total occurrences of query
/// keywords in the tweet) and `φ(p)` is the tweet's thread popularity.
pub fn tweet_keyword_score(
    matched_occurrences: u32,
    popularity: f64,
    config: &ScoringConfig,
) -> f64 {
    matched_occurrences as f64 / config.keyword_norm * popularity
}

/// Definition 9 — distance score of a user: the mean of the tweet distance
/// scores over all the user's posts (posts outside the radius contribute 0
/// but still count in the denominator).
pub fn user_distance_score(
    query_loc: &Point,
    radius_km: f64,
    post_locations: &[Point],
    config: &ScoringConfig,
) -> f64 {
    if post_locations.is_empty() {
        return 0.0;
    }
    let sum: f64 =
        post_locations.iter().map(|l| tweet_distance_score(query_loc, radius_km, l, config)).sum();
    sum / post_locations.len() as f64
}

/// Definition 10 — combined user score:
/// `score(u, q) = α · ρ(u, q) + (1 − α) · δ(u, q)`, where `ρ(u, q)` is the
/// Sum (Def. 7) or Maximum (Def. 8) keyword score depending on the ranking
/// method.
pub fn user_score(keyword_score: f64, distance_score: f64, config: &ScoringConfig) -> f64 {
    config.alpha * keyword_score + (1.0 - config.alpha) * distance_score
}

/// The maximum user score any tweet with `matched_occurrences` keyword hits
/// can produce under a popularity upper bound: keyword part bounded by
/// `tf/N · φ_bound`, distance part bounded by 1 (Section V-B: "the maximum
/// distance score can be 1"). Algorithm 5 compares this against the k-th
/// best user score to skip thread construction.
pub fn upper_bound_user_score(
    matched_occurrences: u32,
    popularity_bound: f64,
    config: &ScoringConfig,
) -> f64 {
    user_score(tweet_keyword_score(matched_occurrences, popularity_bound, config), 1.0, config)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ScoringConfig {
        ScoringConfig::default()
    }

    fn p(lat: f64, lon: f64) -> Point {
        Point::new_unchecked(lat, lon)
    }

    #[test]
    fn distance_score_range_and_boundaries() {
        let q = p(43.7, -79.4);
        let c = cfg();
        // At the query point itself: score 1.
        assert_eq!(tweet_distance_score(&q, 10.0, &q, &c), 1.0);
        // Outside the radius: 0.
        let far = p(44.7, -79.4); // ~111 km away
        assert_eq!(tweet_distance_score(&q, 10.0, &far, &c), 0.0);
        // Midway: in (0, 1).
        let mid = p(43.745, -79.4); // ~5 km
        let s = tweet_distance_score(&q, 10.0, &mid, &c);
        assert!((0.4..0.6).contains(&s), "score {s}");
    }

    #[test]
    fn keyword_score_is_linear_in_occurrences_and_popularity() {
        let c = cfg(); // N = 40
        assert_eq!(tweet_keyword_score(0, 5.0, &c), 0.0);
        assert_eq!(tweet_keyword_score(1, 40.0, &c), 1.0);
        let base = tweet_keyword_score(2, 3.0, &c);
        assert!((tweet_keyword_score(4, 3.0, &c) - 2.0 * base).abs() < 1e-12);
        assert!((tweet_keyword_score(2, 6.0, &c) - 2.0 * base).abs() < 1e-12);
    }

    #[test]
    fn keyword_score_may_exceed_one() {
        // "we do not necessarily further normalize φ(p) since ρ(p,q) is
        // allowed to exceed 1".
        let c = cfg();
        assert!(tweet_keyword_score(3, 100.0, &c) > 1.0);
    }

    #[test]
    fn user_distance_averages_over_all_posts() {
        let q = p(43.7, -79.4);
        let c = cfg();
        // One post at the query point, one outside the radius: mean of
        // {1.0, 0.0} = 0.5 — the far post dilutes the score.
        let locs = [q, p(44.7, -79.4)];
        assert_eq!(user_distance_score(&q, 10.0, &locs, &c), 0.5);
        assert_eq!(user_distance_score(&q, 10.0, &[], &c), 0.0);
    }

    #[test]
    fn user_score_alpha_blend() {
        let mut c = cfg();
        c.alpha = 0.5;
        assert_eq!(user_score(2.0, 0.5, &c), 1.25);
        c.alpha = 1.0;
        assert_eq!(user_score(2.0, 0.5, &c), 2.0);
        c.alpha = 0.0;
        assert_eq!(user_score(2.0, 0.5, &c), 0.5);
    }

    #[test]
    fn upper_bound_dominates_actual_scores() {
        let c = cfg();
        let bound_pop = 12.0;
        for tf in [1u32, 2, 5] {
            for actual_pop in [0.1, 1.0, 11.9] {
                for dist in [0.0, 0.3, 1.0] {
                    let actual = user_score(tweet_keyword_score(tf, actual_pop, &c), dist, &c);
                    let bound = upper_bound_user_score(tf, bound_pop, &c);
                    assert!(actual <= bound + 1e-12, "tf={tf} pop={actual_pop} dist={dist}");
                }
            }
        }
    }
}
