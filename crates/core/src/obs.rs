//! Engine-side observability (DESIGN.md §12): the per-engine metric
//! registry and the aggregation of per-query [`QueryStats`] into it.
//!
//! One [`EngineMetrics`] lives inside each [`crate::TklusEngine`] built
//! with `EngineConfig::metrics` on. Query counters and stage/latency
//! histograms are recorded natively (pre-registered handles, lock-free);
//! the storage [`tklus_storage::IoStats`] counters and the query-cache
//! [`CacheStats`] are *re-exported* into snapshots at read time under
//! `tklus_storage_*` / `tklus_cache_*` names, so the registry presents one
//! coherent view without double-counting anything at record time.

use crate::cache::CacheStats;
use crate::query::QueryStats;
use tklus_metrics::{Counter, Histogram, MetricRegistry, RegistrySnapshot};
use tklus_storage::IoSnapshot;

/// Pre-registered handles for everything the query path records.
pub(crate) struct EngineMetrics {
    registry: MetricRegistry,
    queries: Counter,
    query_errors: Counter,
    degraded: Counter,
    candidates: Counter,
    in_radius: Counter,
    threads_built: Counter,
    threads_pruned: Counter,
    lists_fetched: Counter,
    dfs_bytes: Counter,
    metadata_page_reads: Counter,
    deadline_polls_saved: Counter,
    latency: Histogram,
    stage_cover: Histogram,
    stage_fetch: Histogram,
    stage_combine: Histogram,
    stage_threads: Histogram,
    stage_scoring: Histogram,
    stage_topk: Histogram,
}

impl EngineMetrics {
    pub(crate) fn new() -> Self {
        let registry = MetricRegistry::new();
        Self {
            queries: registry.counter("tklus_queries_total"),
            query_errors: registry.counter("tklus_query_errors_total"),
            degraded: registry.counter("tklus_queries_degraded_total"),
            candidates: registry.counter("tklus_query_candidates_total"),
            in_radius: registry.counter("tklus_query_in_radius_total"),
            threads_built: registry.counter("tklus_query_threads_built_total"),
            threads_pruned: registry.counter("tklus_query_threads_pruned_total"),
            lists_fetched: registry.counter("tklus_query_lists_fetched_total"),
            dfs_bytes: registry.counter("tklus_query_dfs_bytes_total"),
            metadata_page_reads: registry.counter("tklus_query_metadata_page_reads_total"),
            deadline_polls_saved: registry.counter("tklus_query_deadline_polls_saved_total"),
            latency: registry.histogram("tklus_query_latency_us"),
            stage_cover: registry.histogram("tklus_stage_cover_us"),
            stage_fetch: registry.histogram("tklus_stage_fetch_us"),
            stage_combine: registry.histogram("tklus_stage_combine_us"),
            stage_threads: registry.histogram("tklus_stage_threads_us"),
            stage_scoring: registry.histogram("tklus_stage_scoring_us"),
            stage_topk: registry.histogram("tklus_stage_topk_us"),
            registry,
        }
    }

    /// Folds one answered query's stats into the registry.
    pub(crate) fn observe(&self, stats: &QueryStats, degraded: bool) {
        self.queries.inc();
        if degraded {
            self.degraded.inc();
        }
        self.candidates.add(stats.candidates as u64);
        self.in_radius.add(stats.in_radius as u64);
        self.threads_built.add(stats.threads_built as u64);
        self.threads_pruned.add(stats.threads_pruned as u64);
        self.lists_fetched.add(stats.lists_fetched as u64);
        self.dfs_bytes.add(stats.dfs_bytes);
        self.metadata_page_reads.add(stats.metadata_page_reads);
        self.deadline_polls_saved.add(stats.deadline_polls_saved);
        self.latency.record_duration_us(stats.elapsed);
        self.stage_cover.record_duration_us(stats.stages.cover);
        self.stage_fetch.record_duration_us(stats.stages.fetch);
        self.stage_combine.record_duration_us(stats.stages.combine);
        self.stage_threads.record_duration_us(stats.stages.threads);
        self.stage_scoring.record_duration_us(stats.stages.scoring);
        self.stage_topk.record_duration_us(stats.stages.topk);
    }

    /// Counts a query that failed with a typed engine error (such queries
    /// produce no stats, so they are tallied separately from
    /// `tklus_queries_total`).
    pub(crate) fn observe_error(&self) {
        self.query_errors.inc();
    }

    /// Registry snapshot with the storage and cache counter families
    /// injected (re-exported, not duplicated — see the module docs).
    pub(crate) fn snapshot(&self, io: &IoSnapshot, cache: &CacheStats) -> RegistrySnapshot {
        let mut snap = self.registry.snapshot();
        snap.set_counter("tklus_storage_page_reads_total", io.page_reads);
        snap.set_counter("tklus_storage_page_writes_total", io.page_writes);
        snap.set_counter("tklus_storage_buffer_hits_total", io.cache_hits);
        snap.set_counter("tklus_storage_buffer_misses_total", io.cache_misses);
        snap.set_counter("tklus_cache_cover_hits_total", cache.cover.hits);
        snap.set_counter("tklus_cache_cover_misses_total", cache.cover.misses);
        snap.set_counter("tklus_cache_postings_hits_total", cache.postings.hits);
        snap.set_counter("tklus_cache_postings_misses_total", cache.postings.misses);
        snap.set_counter("tklus_cache_thread_hits_total", cache.thread.hits);
        snap.set_counter("tklus_cache_thread_misses_total", cache.thread.misses);
        snap
    }
}
