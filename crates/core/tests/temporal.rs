//! Tests for the temporal TkLUS extension (the paper's Section VIII
//! future-work direction): time-windowed queries and recency-weighted
//! ranking, on top of both query algorithms.

#![allow(clippy::unwrap_used)] // test code: panics are the failure report

use tklus_core::{BoundsMode, EngineConfig, Ranking, TklusEngine};
use tklus_geo::Point;
use tklus_model::{Corpus, Post, Semantics, TklusQuery, TweetId, UserId};

fn pt(lat: f64, lon: f64) -> Point {
    Point::new_unchecked(lat, lon)
}

fn q_loc() -> Point {
    pt(43.6839128037, -79.37356590)
}

/// Two users tweet "hotel" at the same spot: u1 early (t=100..110),
/// u2 late (t=900..910). u1's tweets draw replies; u2's do not — so
/// without temporal features u1 wins, and temporal features can flip it.
fn corpus() -> Corpus {
    let near = pt(43.685, -79.372);
    let mut posts = Vec::new();
    for i in 0..3u64 {
        posts.push(Post::original(TweetId(100 + i), UserId(1), near, "great hotel downtown"));
        for j in 0..3u64 {
            posts.push(Post::reply(
                TweetId(200 + i * 10 + j),
                UserId(50 + i * 10 + j),
                near,
                "agreed",
                TweetId(100 + i),
                UserId(1),
            ));
        }
    }
    for i in 0..3u64 {
        posts.push(Post::original(TweetId(900 + i), UserId(2), near, "great hotel downtown"));
    }
    Corpus::new(posts).unwrap()
}

fn engine() -> TklusEngine {
    TklusEngine::build(&corpus(), &EngineConfig::default()).0
}

fn base_query(k: usize) -> TklusQuery {
    TklusQuery::new(q_loc(), 10.0, vec!["hotel".into()], k, Semantics::Or).unwrap()
}

#[test]
fn without_temporal_features_popular_user_wins() {
    let e = engine();
    for ranking in [Ranking::Sum, Ranking::Max(BoundsMode::HotKeywords)] {
        let (top, _) = e.query(&base_query(2), ranking);
        assert_eq!(top[0].user, UserId(1), "{ranking:?}");
    }
}

#[test]
fn time_window_restricts_to_period() {
    let e = engine();
    // Window covering only u2's late tweets.
    let q = base_query(5).with_time_range(800, 1000).unwrap();
    for ranking in [Ranking::Sum, Ranking::Max(BoundsMode::Global)] {
        let (top, _) = e.query(&q, ranking);
        let users: Vec<UserId> = top.iter().map(|r| r.user).collect();
        assert_eq!(users, vec![UserId(2)], "{ranking:?}: only the in-window author qualifies");
    }
    // Window covering only u1's early tweets.
    let q = base_query(5).with_time_range(0, 150).unwrap();
    let (top, _) = e.query(&q, Ranking::Sum);
    let users: Vec<UserId> = top.iter().map(|r| r.user).collect();
    assert_eq!(users, vec![UserId(1)]);
    // Empty window -> empty result.
    let q = base_query(5).with_time_range(400, 500).unwrap();
    let (top, stats) = e.query(&q, Ranking::Sum);
    assert!(top.is_empty());
    assert_eq!(stats.threads_built, 0, "no thread construction for out-of-window tweets");
}

#[test]
fn window_filter_skips_io_before_metadata_lookups() {
    let e = engine();
    let unfiltered = e.query(&base_query(5), Ranking::Sum).1;
    let filtered_q = base_query(5).with_time_range(800, 1000).unwrap();
    let filtered = e.query(&filtered_q, Ranking::Sum).1;
    assert!(filtered.metadata_page_reads < unfiltered.metadata_page_reads);
    assert!(filtered.threads_built < unfiltered.threads_built);
}

#[test]
fn recency_bias_flips_ranking_toward_fresh_users() {
    let e = engine();
    // Reference time 1000, half-life 100: u1's tweets (t~100) decay by
    // 2^-9; u2's (t~900) by 2^-1. u1's popularity advantage (threads of 3
    // replies, phi = 1.5 vs epsilon 0.1) cannot survive that.
    let q = base_query(2).with_recency(1000, 100).unwrap();
    let (top, _) = e.query(&q, Ranking::Sum);
    assert_eq!(top[0].user, UserId(2), "recent user outranks stale popular user: {top:?}");
    // A very long half-life changes (almost) nothing.
    let q = base_query(2).with_recency(1000, 1_000_000).unwrap();
    let (top, _) = e.query(&q, Ranking::Sum);
    assert_eq!(top[0].user, UserId(1));
}

#[test]
fn recency_agrees_across_rankings_and_tightens_pruning() {
    let e = engine();
    let q = base_query(2).with_recency(1000, 100).unwrap();
    let (max_top, _) = e.query(&q, Ranking::Max(BoundsMode::HotKeywords));
    assert_eq!(max_top[0].user, UserId(2), "{max_top:?}");
    // Results identical between bound modes under recency too.
    let (g, _) = e.query(&q, Ranking::Max(BoundsMode::Global));
    assert_eq!(
        g.iter().map(|r| r.user).collect::<Vec<_>>(),
        max_top.iter().map(|r| r.user).collect::<Vec<_>>()
    );
}

#[test]
fn window_and_recency_compose() {
    let e = engine();
    let q = base_query(5).with_time_range(0, 1000).unwrap().with_recency(1000, 100).unwrap();
    let (top, _) = e.query(&q, Ranking::Sum);
    // Both users are in-window; recency puts u2 first.
    let users: Vec<UserId> = top.iter().map(|r| r.user).collect();
    assert_eq!(users, vec![UserId(2), UserId(1)]);
}
