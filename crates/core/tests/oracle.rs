//! Oracle-backed differential suite.
//!
//! [`oracle_top_k`] is a deliberately naive O(posts) implementation of
//! Definitions 4–10: one linear scan over the corpus, explicit
//! reply-tree construction per candidate, no index, no pruning bound, no
//! cache, no shared query machinery. Its only dependencies on the system
//! under test are the data model and the text pipeline (so both sides
//! agree on what a "keyword" is).
//!
//! The suite drives ≥2000 randomized (corpus, query, ranking, semantics)
//! cases through the full engine in four configurations — caches off,
//! caches on with a cold cache, caches on re-querying warm, and the
//! pre-block `flat` postings layout — and requires every run to return
//! the oracle's ranked users with scores within 1e-9, with the cached and
//! flat-layout runs *bit-identical* to the uncached block run (the
//! postings layout is a storage decision, never a semantic one).

#![allow(clippy::unwrap_used)] // test code: panics are the failure report

use proptest::prelude::*;
use std::collections::{HashMap, HashSet};
use tklus_core::{BoundsMode, CacheConfig, EngineConfig, Ranking, TklusEngine};
use tklus_geo::Point;
use tklus_index::{IndexBuildConfig, PostingsFormat};
use tklus_model::{Corpus, Post, ScoringConfig, Semantics, TklusQuery, TweetId, UserId};
use tklus_text::TextPipeline;

/// An engine config whose index stores the pre-block flat postings layout.
fn flat_config() -> EngineConfig {
    EngineConfig {
        index: IndexBuildConfig { postings_format: PostingsFormat::Flat, ..Default::default() },
        ..EngineConfig::default()
    }
}

const WORDS: [&str; 8] = ["hotel", "pizza", "cafe", "museum", "sushi", "beach", "coffee", "club"];

#[derive(Debug, Clone)]
struct RawPost {
    user: u8,
    dlat: i8,
    dlon: i8,
    words: Vec<u8>,
    reply_to: Option<u8>,
}

fn arb_post() -> impl Strategy<Value = RawPost> {
    (
        0u8..10,
        -100i8..=100,
        -100i8..=100,
        proptest::collection::vec(0u8..WORDS.len() as u8, 1..5),
        proptest::option::of(0u8..40),
    )
        .prop_map(|(user, dlat, dlon, words, reply_to)| RawPost {
            user,
            dlat,
            dlon,
            words,
            reply_to,
        })
}

fn materialize(raw: &[RawPost]) -> Corpus {
    let base = Point::new_unchecked(43.68, -79.38);
    let posts: Vec<Post> = raw
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let id = TweetId(i as u64 + 1);
            let loc = Point::new_unchecked(
                base.lat() + r.dlat as f64 * 0.0015,
                base.lon() + r.dlon as f64 * 0.002,
            );
            let text: String =
                r.words.iter().map(|&w| WORDS[w as usize]).collect::<Vec<_>>().join(" ");
            match r.reply_to {
                Some(t) if (t as usize) < i => {
                    let target = TweetId(t as u64 + 1);
                    let target_user = UserId(raw[t as usize].user as u64);
                    Post::reply(id, UserId(r.user as u64), loc, text, target, target_user)
                }
                _ => Post::original(id, UserId(r.user as u64), loc, text),
            }
        })
        .collect();
    Corpus::new(posts).expect("sequential ids")
}

/// Definition 4 by hand: build the reply tree rooted at `root` level by
/// level from a parent → children map scanned straight off the corpus,
/// then sum `|level i| / i` (1-based levels, root level excluded), or ε
/// for a childless root.
fn oracle_popularity(
    replies: &HashMap<TweetId, Vec<TweetId>>,
    root: TweetId,
    depth: usize,
    epsilon: f64,
) -> f64 {
    let mut levels: Vec<Vec<TweetId>> = vec![vec![root]];
    while levels.len() < depth {
        let next: Vec<TweetId> = levels
            .last()
            .unwrap()
            .iter()
            .flat_map(|t| replies.get(t).cloned().unwrap_or_default())
            .collect();
        if next.is_empty() {
            break;
        }
        levels.push(next);
    }
    if levels.len() <= 1 {
        return epsilon;
    }
    levels.iter().enumerate().skip(1).map(|(i, l)| l.len() as f64 / (i + 1) as f64).sum()
}

/// Definitions 4–10, straight off the corpus: linear scan, explicit
/// thread trees, no index, no bounds, no cache.
fn oracle_top_k(
    corpus: &Corpus,
    q: &TklusQuery,
    use_max: bool,
    config: &ScoringConfig,
) -> Vec<(UserId, f64)> {
    let pipeline = TextPipeline::new();

    // The query keyword *set* (Definition 6's q.W): duplicates and case or
    // inflection variants collapse to one stem.
    let normalized: Vec<Option<String>> =
        q.keywords.iter().map(|k| pipeline.normalize_keyword(k)).collect();
    let known: HashSet<String> =
        corpus.posts().iter().flat_map(|p| pipeline.terms(&p.text)).collect();
    // Mirror the engine's AND contract: a keyword that normalizes away or
    // appears in no tweet empties the result.
    if q.semantics == Semantics::And
        && normalized.iter().any(|s| !matches!(s, Some(s) if known.contains(s)))
    {
        return Vec::new();
    }
    let mut stems: Vec<String> = normalized.into_iter().flatten().collect();
    stems.sort();
    stems.dedup();

    // Reply map for explicit thread construction.
    let mut replies: HashMap<TweetId, Vec<TweetId>> = HashMap::new();
    for post in corpus.posts() {
        if let Some(r) = &post.in_reply_to {
            replies.entry(r.target).or_default().push(post.id);
        }
    }

    let mut per_user: HashMap<UserId, f64> = HashMap::new();
    for post in corpus.posts() {
        if !q.in_time_range(post.id.0) {
            continue;
        }
        if q.location.distance_km(&post.location, config.metric) > q.radius_km {
            continue;
        }
        let terms = pipeline.terms(&post.text);
        let occurrences: u32 =
            stems.iter().map(|s| terms.iter().filter(|t| *t == s).count() as u32).sum();
        let qualifies = match q.semantics {
            Semantics::And => !stems.is_empty() && stems.iter().all(|s| terms.contains(s)),
            Semantics::Or => occurrences > 0,
        };
        if !qualifies {
            continue;
        }
        let phi = oracle_popularity(&replies, post.id, config.thread_depth, config.epsilon);
        // Definition 6 (ρ = N(p,q)/N × φ) times the recency factor of the
        // temporal extension (1.0 for untimed queries).
        let rho = occurrences as f64 / config.keyword_norm * phi * q.recency_factor(post.id.0);
        let entry = per_user.entry(post.user).or_insert(0.0);
        if use_max {
            // Definition 8.
            *entry = entry.max(rho);
        } else {
            // Definition 7.
            *entry += rho;
        }
    }

    // Definitions 9/10: blend with the mean tweet distance score.
    let mut scored: Vec<(UserId, f64)> = per_user
        .into_iter()
        .map(|(uid, rho)| {
            let locs: Vec<Point> = corpus.posts_of(uid).map(|p| p.location).collect();
            let delta: f64 = locs
                .iter()
                .map(|l| {
                    let d = q.location.distance_km(l, config.metric);
                    if d <= q.radius_km {
                        (q.radius_km - d) / q.radius_km
                    } else {
                        0.0
                    }
                })
                .sum::<f64>()
                / locs.len() as f64;
            (uid, config.alpha * rho + (1.0 - config.alpha) * delta)
        })
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    scored.truncate(q.k);
    scored
}

/// Cache budgets exercised by the suite: generous (everything fits) and
/// starved (constant eviction pressure) — both must be invisible in
/// results.
fn arb_cache_config() -> impl Strategy<Value = CacheConfig> {
    prop_oneof![
        Just(CacheConfig { cover: 16, postings: 64, thread: 128 }),
        Just(CacheConfig { cover: 1, postings: 2, thread: 2 }),
    ]
}

proptest! {
    // 170 corpora × (2 semantics × 3 rankings) = 1020 query cases, each
    // run uncached, cache-on cold, and cache-on warm (3060 engine runs —
    // on top of `oracle_matches_with_duplicates_and_time_windows` below).
    #![proptest_config(ProptestConfig::with_cases(170))]

    #[test]
    fn engine_matches_oracle_cached_and_uncached(
        raw in proptest::collection::vec(arb_post(), 5..45),
        radius in 2.0f64..25.0,
        k in 1usize..6,
        kw_idx in proptest::collection::vec(0u8..WORDS.len() as u8, 1..3),
        caches in arb_cache_config(),
    ) {
        let corpus = materialize(&raw);
        let plain = EngineConfig::default();
        let cached_cfg = EngineConfig { caches, ..EngineConfig::default() };
        let (engine_off, _) = TklusEngine::build(&corpus, &plain);
        let (engine_on, _) = TklusEngine::build(&corpus, &cached_cfg);
        let (engine_flat, _) = TklusEngine::build(&corpus, &flat_config());
        let keywords: Vec<String> =
            kw_idx.iter().map(|&i| WORDS[i as usize].to_string()).collect();

        for semantics in [Semantics::Or, Semantics::And] {
            let q = TklusQuery::new(
                Point::new_unchecked(43.68, -79.38),
                radius,
                keywords.clone(),
                k,
                semantics,
            ).unwrap();
            for (ranking, use_max) in [
                (Ranking::Sum, false),
                (Ranking::Max(BoundsMode::Global), true),
                (Ranking::Max(BoundsMode::HotKeywords), true),
            ] {
                let want = oracle_top_k(&corpus, &q, use_max, &plain.scoring);
                let (off, _) = engine_off.query(&q, ranking);
                let (cold, _) = engine_on.query(&q, ranking);
                let (warm, _) = engine_on.query(&q, ranking);
                let (flat, _) = engine_flat.query(&q, ranking);

                // Engine (uncached) vs oracle: same users, scores to 1e-9.
                prop_assert_eq!(off.len(), want.len(), "{:?}/{:?}", ranking, semantics);
                for (g, w) in off.iter().zip(&want) {
                    prop_assert_eq!(g.user, w.0, "{:?}/{:?}", ranking, semantics);
                    prop_assert!(
                        (g.score - w.1).abs() < 1e-9,
                        "{} vs {} ({:?}/{:?})", g.score, w.1, ranking, semantics
                    );
                }
                // Cached runs (cold and warm) and the flat-layout engine
                // vs the uncached block engine: bit-identical.
                for other in [&cold, &warm, &flat] {
                    prop_assert_eq!(other.len(), off.len());
                    for (c, o) in other.iter().zip(&off) {
                        prop_assert_eq!(c.user, o.user, "{:?}/{:?}", ranking, semantics);
                        prop_assert_eq!(
                            c.score.to_bits(), o.score.to_bits(),
                            "variant {} vs block-uncached {} ({:?}/{:?})",
                            c.score, o.score, ranking, semantics
                        );
                    }
                }
            }
        }

        // Cache counters stayed consistent with per-layer monotonicity.
        let cs = engine_on.cache_stats();
        prop_assert!(cs.cover.entries <= cs.cover.capacity.max(1));
        prop_assert!(cs.postings.entries <= cs.postings.capacity.max(1));
        prop_assert!(cs.thread.entries <= cs.thread.capacity.max(1));
    }
}

proptest! {
    // 256 corpora × 2 rankings × 2 engines = 1024 more query cases
    // focused on the duplicate-keyword fix and the temporal extension.
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn oracle_matches_with_duplicates_and_time_windows(
        raw in proptest::collection::vec(arb_post(), 5..35),
        radius in 2.0f64..20.0,
        k in 1usize..5,
        kw in 0u8..WORDS.len() as u8,
        dup_case in any::<bool>(),
        window in proptest::option::of((1u64..20, 10u64..40)),
        and_sem in any::<bool>(),
    ) {
        let corpus = materialize(&raw);
        let (engine_off, _) = TklusEngine::build(&corpus, &EngineConfig::default());
        let cached_cfg = EngineConfig {
            caches: CacheConfig { cover: 8, postings: 32, thread: 64 },
            ..EngineConfig::default()
        };
        let (engine_on, _) = TklusEngine::build(&corpus, &cached_cfg);
        let (engine_flat, _) = TklusEngine::build(&corpus, &flat_config());

        // The keyword appears twice: verbatim plus a case variant —
        // Definition 6 must count it once.
        let base = WORDS[kw as usize];
        let keywords = if dup_case {
            vec![base.to_string(), base.to_uppercase()]
        } else {
            vec![base.to_string(), base.to_string()]
        };
        let semantics = if and_sem { Semantics::And } else { Semantics::Or };
        let mut q = TklusQuery::new(
            Point::new_unchecked(43.68, -79.38),
            radius,
            keywords,
            k,
            semantics,
        ).unwrap();
        if let Some((since, until)) = window {
            q = q.with_time_range(since, until.max(since)).unwrap();
        }

        for (ranking, use_max) in [(Ranking::Sum, false), (Ranking::Max(BoundsMode::HotKeywords), true)] {
            let want = oracle_top_k(&corpus, &q, use_max, &EngineConfig::default().scoring);
            let (block_run, _) = engine_off.query(&q, ranking);
            for engine in [&engine_off, &engine_on, &engine_flat] {
                let (got, _) = engine.query(&q, ranking);
                prop_assert_eq!(got.len(), want.len(), "{:?} window={:?}", ranking, window);
                for ((g, w), b) in got.iter().zip(&want).zip(&block_run) {
                    prop_assert_eq!(g.user, w.0, "{:?}", ranking);
                    prop_assert!(
                        (g.score - w.1).abs() < 1e-9,
                        "{} vs {} ({:?})", g.score, w.1, ranking
                    );
                    // Layout and caching are invisible to the bit.
                    prop_assert_eq!(g.score.to_bits(), b.score.to_bits(), "{:?}", ranking);
                }
            }
        }
    }
}
