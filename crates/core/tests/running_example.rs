//! End-to-end tests built around the paper's running example
//! (Figure 1 / Table I): seven "hotel" tweets around Toronto, where Sum
//! ranking favours u1 (two relevant tweets, one very close to the query)
//! and Maximum ranking favours u5 (whose tweet E has by far the most
//! replies/forwards).

#![allow(clippy::unwrap_used)] // test code: panics are the failure report

use tklus_core::{BoundsMode, EngineConfig, Ranking, TklusEngine};
use tklus_geo::Point;
use tklus_model::{Corpus, Post, Semantics, TklusQuery, TweetId, UserId};

fn pt(lat: f64, lon: f64) -> Point {
    Point::new_unchecked(lat, lon)
}

/// Query location from Section II-B.
fn query_location() -> Point {
    pt(43.6839128037, -79.37356590)
}

/// The Table I scenario scaled so the two rankings actually diverge under
/// the paper's default parameters (α = 0.5, N = 40, ε = 0.1):
///
/// * u1 — *many* relevant tweets, all very close to the query, each with a
///   moderate reply cascade: the Sum-score profile ("favors users with more
///   relevant tweets").
/// * u5 — one tweet E with an outstanding cascade ("considerably more
///   replies and forwards than other tweets"): the Maximum-score profile.
/// * u2/u3/u4/u6 — the remaining Table I users, single quiet tweets.
fn corpus() -> Corpus {
    let q = query_location();
    let mut posts = vec![
        // B (u2).
        Post::original(TweetId(101), UserId(2), pt(43.645, -79.38), "Finally Toronto (at Clarion Hotel)"),
        // C (u3).
        Post::original(TweetId(102), UserId(3), pt(43.671, -79.389), "I'm at Four Seasons Hotel Toronto"),
        // D (u4).
        Post::original(TweetId(103), UserId(4), pt(43.671, -79.389), "Veal, lemon ricotta gnocchi @ Four Seasons Hotel Toronto"),
        // E (u5): the popular tweet.
        Post::original(TweetId(104), UserId(5), pt(43.672, -79.390), "And that was the best massage I've ever had. (@ The Spa at Four Seasons Hotel Toronto)"),
        // F (u6).
        Post::original(TweetId(105), UserId(6), pt(43.672, -79.390), "Saturday night steez #fashion #toronto @ Four Seasons Hotel Toronto"),
    ];
    // u1: 8 relevant tweets right next to the query location (tweet A and
    // friends), each drawing 4 replies.
    for i in 0..8u64 {
        let id = 110 + i;
        posts.push(Post::original(
            TweetId(id),
            UserId(1),
            pt(q.lat() + 0.001, q.lon() - 0.001),
            "I'm at Toronto Marriott Bloor Yorkville Hotel",
        ));
        for j in 0..4u64 {
            posts.push(Post::reply(
                TweetId(1000 + i * 10 + j),
                UserId(100 + i * 10 + j),
                pt(43.69, -79.37),
                "looks like a great stay",
                TweetId(id),
                UserId(1),
            ));
        }
    }
    // E's outstanding cascade: 20 direct replies, 6 second-level forwards.
    for i in 0..20u64 {
        posts.push(Post::reply(
            TweetId(2000 + i),
            UserId(300 + i),
            pt(43.68, -79.39),
            "sounds amazing",
            TweetId(104),
            UserId(5),
        ));
    }
    for i in 0..6u64 {
        posts.push(Post::forward(
            TweetId(2100 + i),
            UserId(400 + i),
            pt(43.66, -79.40),
            "rt massage spa",
            TweetId(2000),
            UserId(300),
        ));
    }
    Corpus::new(posts).unwrap()
}

fn engine() -> TklusEngine {
    TklusEngine::build(&corpus(), &EngineConfig::default()).0
}

fn hotel_query(k: usize) -> TklusQuery {
    TklusQuery::new(query_location(), 10.0, vec!["hotel".into()], k, Semantics::Or).unwrap()
}

#[test]
fn sum_ranking_favours_u1() {
    // "If we use the sum score based ranking, user u1 is ranked as the top
    // local user because u1 has two relevant tweets A and G … and A is very
    // close to the query location."
    let e = engine();
    let (top, stats) = e.query(&hotel_query(1), Ranking::Sum);
    assert_eq!(top.len(), 1);
    assert_eq!(top[0].user, UserId(1), "top = {top:?}");
    assert!(stats.threads_built >= 7, "all candidates get threads under Sum");
    assert_eq!(stats.threads_pruned, 0);
}

#[test]
fn max_ranking_favours_u5() {
    // "In contrast, the maximum based ranking returns u5 as the top …
    // tweet E has considerably more replies and forwards than other
    // tweets."
    let e = engine();
    let (top, _) = e.query(&hotel_query(1), Ranking::Max(BoundsMode::HotKeywords));
    assert_eq!(top.len(), 1);
    assert_eq!(top[0].user, UserId(5), "top = {top:?}");
}

#[test]
fn top_k_returns_k_distinct_users_sorted() {
    let e = engine();
    let (top, _) = e.query(&hotel_query(5), Ranking::Sum);
    assert_eq!(top.len(), 5);
    let mut users: Vec<UserId> = top.iter().map(|r| r.user).collect();
    users.sort();
    users.dedup();
    assert_eq!(users.len(), 5, "users are distinct");
    assert!(top.windows(2).all(|w| w[0].score >= w[1].score), "sorted by score");
}

#[test]
fn all_returned_users_satisfy_problem_condition() {
    // Problem Definition condition 1: every returned user has a relevant
    // post within the radius.
    let corpus = corpus();
    let e = engine();
    let q = hotel_query(10);
    for ranking in [Ranking::Sum, Ranking::Max(BoundsMode::Global)] {
        let (top, _) = e.query(&q, ranking);
        for r in &top {
            let has_qualifying = corpus.posts_of(r.user).any(|p| {
                p.text.to_lowercase().contains("hotel")
                    && q.location.euclidean_km(&p.location) <= q.radius_km
            });
            assert!(has_qualifying, "user {} has no qualifying post ({ranking:?})", r.user);
        }
    }
}

#[test]
fn radius_excludes_far_tweets() {
    // A tighter radius drops candidates; B (u2) at ~4.3 km from the query
    // survives a 5 km radius but not a 2 km one.
    let e = engine();
    let near =
        TklusQuery::new(query_location(), 2.0, vec!["hotel".into()], 10, Semantics::Or).unwrap();
    let (top_near, _) = e.query(&near, Ranking::Sum);
    assert!(!top_near.iter().any(|r| r.user == UserId(2)), "{top_near:?}");
    let wide = hotel_query(10);
    let (top_wide, _) = e.query(&wide, Ranking::Sum);
    assert!(top_wide.iter().any(|r| r.user == UserId(2)));
}

#[test]
fn and_semantics_requires_all_keywords() {
    let e = engine();
    // Only tweet E and the "rt massage spa" forwards mention massage; only
    // E combines massage AND hotel.
    let q = TklusQuery::new(
        query_location(),
        10.0,
        vec!["hotel".into(), "massage".into()],
        10,
        Semantics::And,
    )
    .unwrap();
    let (top, _) = e.query(&q, Ranking::Sum);
    assert_eq!(top.len(), 1);
    assert_eq!(top[0].user, UserId(5));
    // OR relaxes the constraint and returns more users.
    let q_or = TklusQuery::new(
        query_location(),
        10.0,
        vec!["hotel".into(), "massage".into()],
        10,
        Semantics::Or,
    )
    .unwrap();
    let (top_or, _) = e.query(&q_or, Ranking::Sum);
    assert!(top_or.len() > top.len(), "OR ({}) should beat AND ({})", top_or.len(), top.len());
}

#[test]
fn unknown_keyword_behaviour() {
    let e = engine();
    // AND with an unindexed keyword -> empty.
    let q_and = TklusQuery::new(
        query_location(),
        10.0,
        vec!["hotel".into(), "zzzxqwert".into()],
        5,
        Semantics::And,
    )
    .unwrap();
    let (top, stats) = e.query(&q_and, Ranking::Sum);
    assert!(top.is_empty());
    assert_eq!(stats.candidates, 0);
    // OR drops the unknown keyword and still answers.
    let q_or = TklusQuery::new(
        query_location(),
        10.0,
        vec!["hotel".into(), "zzzxqwert".into()],
        5,
        Semantics::Or,
    )
    .unwrap();
    let (top_or, _) = e.query(&q_or, Ranking::Sum);
    assert!(!top_or.is_empty());
}

#[test]
fn sum_and_max_agree_on_membership_mostly() {
    // The paper's Kendall-tau experiments show the two rankings are highly
    // consistent; on this tiny corpus the top-5 sets overlap heavily.
    let e = engine();
    let (sum, _) = e.query(&hotel_query(5), Ranking::Sum);
    let (max, _) = e.query(&hotel_query(5), Ranking::Max(BoundsMode::HotKeywords));
    let sum_set: std::collections::BTreeSet<UserId> = sum.iter().map(|r| r.user).collect();
    let max_set: std::collections::BTreeSet<UserId> = max.iter().map(|r| r.user).collect();
    assert!(sum_set.intersection(&max_set).count() >= 3, "sum={sum_set:?} max={max_set:?}");
}

#[test]
fn pruning_preserves_max_results() {
    // Algorithm 5 with pruning (global or hot bounds) must return the same
    // users and scores as with an infinitely loose bound (no pruning).
    let e = engine();
    let q = hotel_query(3);
    let (with_hot, s_hot) = e.query(&q, Ranking::Max(BoundsMode::HotKeywords));
    let (with_global, s_global) = e.query(&q, Ranking::Max(BoundsMode::Global));
    assert_eq!(with_hot.len(), with_global.len());
    for (a, b) in with_hot.iter().zip(&with_global) {
        assert_eq!(a.user, b.user);
        assert!((a.score - b.score).abs() < 1e-12);
    }
    // Hot bounds are tighter, so they prune at least as much.
    assert!(s_hot.threads_pruned >= s_global.threads_pruned, "hot={s_hot:?} global={s_global:?}");
}
