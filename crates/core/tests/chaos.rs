//! Deterministic chaos suite (ISSUE acceptance, DESIGN.md §10).
//!
//! Every test builds two engines over the same generated corpus: a
//! fault-free reference, and an engine whose metadata page store is a
//! seeded [`FaultPager`] (optionally fronted by a [`RetryPager`]). Faults
//! are armed per phase, and every query outcome must be one of:
//!
//! * `Ok` with exactly the reference's ranked users (never silently
//!   wrong), or
//! * a typed [`EngineError`] matching the fault class injected.
//!
//! A third option — panicking — fails the test by construction. Each
//! scenario runs under three seeds (overridable with `TKLUS_CHAOS_SEED`,
//! which is how the CI chaos matrix fans out), and asserts via the shared
//! [`FaultHandle`] counters that faults actually fired, so a green run is
//! never vacuous.
//!
//! The suite pins `cache_pages: 0` (every lookup is a physical page read —
//! the buffer pool must not mask corruption) and `parallelism: 1` (the
//! deterministic fault schedule meets a deterministic operation order).

#![allow(clippy::unwrap_used)] // test code: panics are the failure report

use std::sync::Arc;
use tklus_core::{
    BoundsMode, Completeness, EngineConfig, EngineError, MetadataStoreFactory, QueryOutcome,
    RankedUser, Ranking, TklusEngine,
};
use tklus_gen::{generate_corpus, generate_queries, GenConfig, QueryConfig};
use tklus_model::{Corpus, Semantics, TklusQuery};
use tklus_storage::{
    FaultConfig, FaultHandle, FaultPager, MemPager, PageStore, RetryPager, RetryPolicy,
    StorageError,
};

/// Seeds each scenario runs under; `TKLUS_CHAOS_SEED` (the CI matrix
/// variable) replaces the whole list with one seed.
fn chaos_seeds() -> Vec<u64> {
    match std::env::var("TKLUS_CHAOS_SEED") {
        Ok(s) => vec![s.parse().expect("TKLUS_CHAOS_SEED must be a u64")],
        Err(_) => vec![101, 202, 303],
    }
}

fn corpus() -> Corpus {
    generate_corpus(&GenConfig {
        original_posts: 300,
        users: 60,
        vocab_size: 300,
        ..GenConfig::default()
    })
}

fn queries(corpus: &Corpus) -> Vec<(TklusQuery, Ranking)> {
    let specs = generate_queries(corpus, &QueryConfig { per_bucket: 4, seed: 0xC4A0 });
    specs
        .into_iter()
        .enumerate()
        .map(|(i, spec)| {
            let semantics = if i % 2 == 0 { Semantics::Or } else { Semantics::And };
            let ranking =
                if i % 3 == 0 { Ranking::Sum } else { Ranking::Max(BoundsMode::HotKeywords) };
            let q = TklusQuery::new(spec.location, 15.0, spec.keywords, 5, semantics)
                .expect("generated query is valid");
            (q, ranking)
        })
        .collect()
}

fn base_config() -> EngineConfig {
    EngineConfig { cache_pages: 0, parallelism: 1, ..EngineConfig::default() }
}

/// A metadata store factory stacking `MemPager` → `FaultPager` (shared
/// `handle`) → optional `RetryPager`.
fn faulty_store(
    cfg: FaultConfig,
    handle: Arc<FaultHandle>,
    retry: Option<RetryPolicy>,
) -> MetadataStoreFactory {
    Arc::new(move |stats| {
        let faulty = FaultPager::with_handle(MemPager::with_stats(stats), cfg, Arc::clone(&handle));
        match retry {
            Some(policy) => Box::new(RetryPager::new(faulty, policy)) as Box<dyn PageStore>,
            None => Box::new(faulty),
        }
    })
}

fn build_reference(corpus: &Corpus) -> (TklusEngine, Vec<Vec<RankedUser>>) {
    let (engine, _) = TklusEngine::build(corpus, &base_config());
    let expected = queries(corpus).iter().map(|(q, ranking)| engine.query(q, *ranking).0).collect();
    (engine, expected)
}

fn assert_same_users(got: &[RankedUser], want: &[RankedUser], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: result size");
    for (g, w) in got.iter().zip(want) {
        assert_eq!(g.user, w.user, "{ctx}");
        assert_eq!(g.score.to_bits(), w.score.to_bits(), "{ctx}: {} vs {}", g.score, w.score);
    }
}

/// Armed transient read faults: every query either matches the fault-free
/// reference exactly or fails with a typed *transient* storage error.
#[test]
fn transient_read_faults_never_corrupt_results() {
    let corpus = corpus();
    let (_, expected) = build_reference(&corpus);
    for seed in chaos_seeds() {
        let handle = FaultHandle::new();
        let cfg = FaultConfig { seed, transient_read_ppm: 20_000, ..FaultConfig::default() };
        let config = EngineConfig {
            metadata_store: Some(faulty_store(cfg, Arc::clone(&handle), None)),
            ..base_config()
        };
        let (engine, _) =
            TklusEngine::try_build(&corpus, &config).expect("disarmed build is clean");
        handle.arm(true);
        let mut errors = 0usize;
        for (i, (q, ranking)) in queries(&corpus).iter().enumerate() {
            match engine.try_query(q, *ranking) {
                Ok(outcome) => {
                    assert_same_users(&outcome.users, &expected[i], &format!("seed {seed} q{i}"));
                    assert_eq!(outcome.completeness, Completeness::Complete);
                }
                Err(EngineError::Storage(e)) => {
                    assert!(e.is_transient(), "seed {seed} q{i}: unexpected error class: {e}");
                    errors += 1;
                }
                Err(e) => panic!("seed {seed} q{i}: transient faults must not surface as {e}"),
            }
        }
        assert!(
            handle.transient_injected() > 0,
            "seed {seed}: schedule never fired — the run was vacuous"
        );
        assert!(errors > 0, "seed {seed}: no query observed an injected fault");
    }
}

/// Armed bit flips on the read path: the checksum layer turns every one
/// into a typed `PageCorrupt` — never a silently different ranking.
#[test]
fn read_bit_flips_surface_as_page_corruption() {
    let corpus = corpus();
    let (_, expected) = build_reference(&corpus);
    for seed in chaos_seeds() {
        let handle = FaultHandle::new();
        let cfg = FaultConfig { seed, bit_flip_read_ppm: 15_000, ..FaultConfig::default() };
        let config = EngineConfig {
            metadata_store: Some(faulty_store(cfg, Arc::clone(&handle), None)),
            ..base_config()
        };
        let (engine, _) =
            TklusEngine::try_build(&corpus, &config).expect("disarmed build is clean");
        handle.arm(true);
        let mut corrupt = 0usize;
        for (i, (q, ranking)) in queries(&corpus).iter().enumerate() {
            match engine.try_query(q, *ranking) {
                Ok(outcome) => {
                    assert_same_users(&outcome.users, &expected[i], &format!("seed {seed} q{i}"));
                }
                Err(EngineError::Storage(StorageError::PageCorrupt { .. })) => corrupt += 1,
                Err(e) => panic!("seed {seed} q{i}: a read flip must be caught as corruption: {e}"),
            }
        }
        assert!(handle.flips_injected() > 0, "seed {seed}: no flips fired — vacuous run");
        assert!(corrupt > 0, "seed {seed}: no query observed a flip");
    }
}

/// Torn writes and write-path bit flips armed during the *build*: either
/// the build itself fails typed, or the damage is latent and every query
/// that touches a damaged page reports `PageCorrupt` — and queries that
/// succeed still return exactly the reference ranking.
#[test]
fn write_faults_during_build_are_caught_at_read_time() {
    let corpus = corpus();
    let (_, expected) = build_reference(&corpus);
    for seed in chaos_seeds() {
        let handle = FaultHandle::new();
        let cfg = FaultConfig {
            seed,
            torn_write_ppm: 60_000,
            bit_flip_write_ppm: 60_000,
            ..FaultConfig::default()
        };
        let config = EngineConfig {
            metadata_store: Some(faulty_store(cfg, Arc::clone(&handle), None)),
            ..base_config()
        };
        handle.arm(true); // faults live through the whole bulk load
        let engine = match TklusEngine::try_build(&corpus, &config) {
            Ok((engine, _)) => engine,
            Err(EngineError::Storage(StorageError::PageCorrupt { .. })) => {
                // The bulk load read back a page it had (tornly) written.
                assert!(handle.total_injected() > 0);
                continue;
            }
            Err(e) => panic!("seed {seed}: write faults must not surface as {e}"),
        };
        handle.arm(false); // damage is already on the pages
        assert!(
            handle.torn_injected() + handle.flips_injected() > 0,
            "seed {seed}: no write fault fired — vacuous run"
        );
        let mut corrupt = 0usize;
        for (i, (q, ranking)) in queries(&corpus).iter().enumerate() {
            match engine.try_query(q, *ranking) {
                Ok(outcome) => {
                    assert_same_users(&outcome.users, &expected[i], &format!("seed {seed} q{i}"));
                }
                Err(EngineError::Storage(StorageError::PageCorrupt { .. })) => corrupt += 1,
                Err(e) => panic!("seed {seed} q{i}: latent write damage must be corruption: {e}"),
            }
        }
        if corrupt == 0 {
            // The query workload happened to avoid the damaged pages; a
            // full sweep of all three trees must still find them. (Only
            // bit flips damage a page unconditionally — a torn write whose
            // tail matched the old page content is a genuine no-op.)
            let db = engine.db();
            let found = corpus.posts().iter().any(|p| {
                matches!(db.try_row(p.id), Err(StorageError::PageCorrupt { .. }))
                    || matches!(db.try_replies_to_ids(p.id), Err(StorageError::PageCorrupt { .. }))
                    || matches!(db.try_posts_of_user(p.user), Err(StorageError::PageCorrupt { .. }))
            });
            assert!(
                found || handle.flips_injected() == 0,
                "seed {seed}: a write flip fired but no page reads back as corrupt"
            );
        }
    }
}

/// Bounded retry masks transient faults completely: with enough attempts,
/// every query succeeds and matches the reference, while the handle proves
/// faults really were injected (and retried through).
#[test]
fn retry_layer_masks_transient_faults() {
    let corpus = corpus();
    let (_, expected) = build_reference(&corpus);
    for seed in chaos_seeds() {
        let handle = FaultHandle::new();
        let cfg = FaultConfig { seed, transient_read_ppm: 100_000, ..FaultConfig::default() };
        let policy = RetryPolicy { max_attempts: 8, base_backoff: std::time::Duration::ZERO };
        let config = EngineConfig {
            metadata_store: Some(faulty_store(cfg, Arc::clone(&handle), Some(policy))),
            ..base_config()
        };
        let (engine, _) =
            TklusEngine::try_build(&corpus, &config).expect("disarmed build is clean");
        handle.arm(true);
        for (i, (q, ranking)) in queries(&corpus).iter().enumerate() {
            let outcome = engine
                .try_query(q, *ranking)
                .unwrap_or_else(|e| panic!("seed {seed} q{i}: retry must mask transients: {e}"));
            assert_same_users(&outcome.users, &expected[i], &format!("seed {seed} q{i}"));
        }
        assert!(handle.transient_injected() > 0, "seed {seed}: nothing was ever retried");
    }
}

/// All fault classes at once, armed through build *and* queries: whatever
/// happens must be an `Ok`-and-correct or a typed error — this test's
/// assertion is mostly that nothing panics and nothing is silently wrong.
#[test]
fn combined_fault_storm_never_panics_or_lies() {
    let corpus = corpus();
    let (_, expected) = build_reference(&corpus);
    for seed in chaos_seeds() {
        let handle = FaultHandle::new();
        let cfg = FaultConfig {
            seed,
            transient_read_ppm: 10_000,
            transient_write_ppm: 2_000,
            torn_write_ppm: 2_000,
            bit_flip_read_ppm: 5_000,
            bit_flip_write_ppm: 2_000,
        };
        let policy = RetryPolicy { max_attempts: 3, base_backoff: std::time::Duration::ZERO };
        let config = EngineConfig {
            metadata_store: Some(faulty_store(cfg, Arc::clone(&handle), Some(policy))),
            ..base_config()
        };
        handle.arm(true);
        let engine = match TklusEngine::try_build(&corpus, &config) {
            Ok((engine, _)) => engine,
            Err(EngineError::Storage(_)) => continue, // typed build failure is a valid outcome
            Err(e) => panic!("seed {seed}: build failed outside the storage taxonomy: {e}"),
        };
        for (i, (q, ranking)) in queries(&corpus).iter().enumerate() {
            match engine.try_query(q, *ranking) {
                Ok(outcome) => {
                    assert_same_users(&outcome.users, &expected[i], &format!("seed {seed} q{i}"));
                }
                Err(EngineError::Storage(_)) => {}
                Err(e) => panic!("seed {seed} q{i}: fault surfaced outside the taxonomy: {e}"),
            }
        }
        assert!(handle.total_injected() > 0, "seed {seed}: vacuous storm");
    }
}

/// The full stack at once — injected storage faults × tight wall-clock
/// budgets × 8 concurrent query threads (the serving layer's worst case).
/// Every outcome must be typed: a complete answer matching the reference,
/// a degraded exact prefix, or a typed storage error. Any panic —
/// including a poisoned lock from a panicking worker — fails the test.
#[test]
fn fault_budget_concurrency_storm_stays_typed() {
    let corpus = corpus();
    let (_, expected) = build_reference(&corpus);
    let workload = queries(&corpus);
    for seed in chaos_seeds() {
        let handle = FaultHandle::new();
        let cfg = FaultConfig { seed, transient_read_ppm: 15_000, ..FaultConfig::default() };
        // parallelism > 1 plus concurrent callers: the fault schedule is
        // no longer deterministic per query — only the outcome taxonomy
        // is asserted, which is exactly the point of this storm.
        let config = EngineConfig {
            cache_pages: 0,
            parallelism: 2,
            metadata_store: Some(faulty_store(cfg, Arc::clone(&handle), None)),
            ..EngineConfig::default()
        };
        let (engine, _) =
            TklusEngine::try_build(&corpus, &config).expect("disarmed build is clean");
        handle.arm(true);
        let engine = &engine;
        let workload = &workload;
        let expected = &expected;
        std::thread::scope(|scope| {
            let threads: Vec<_> = (0..8)
                .map(|t| {
                    scope.spawn(move || {
                        let mut ok = 0usize;
                        let mut degraded = 0usize;
                        let mut errors = 0usize;
                        for (i, (q, ranking)) in workload.iter().enumerate() {
                            // Stagger budgets across threads so some runs
                            // hit the deadline mid-cover and some finish.
                            let budgeted = q.clone().with_timeout_ms((t as u64) % 3);
                            match engine.try_query(&budgeted, *ranking) {
                                Ok(outcome) => match outcome.completeness {
                                    Completeness::Complete => {
                                        assert_same_users(
                                            &outcome.users,
                                            &expected[i],
                                            &format!("seed {seed} t{t} q{i}"),
                                        );
                                        ok += 1;
                                    }
                                    Completeness::Degraded { cells_processed, cells_total } => {
                                        assert!(
                                            cells_processed < cells_total,
                                            "seed {seed} t{t} q{i}: degraded must be a strict prefix"
                                        );
                                        degraded += 1;
                                    }
                                },
                                Err(EngineError::Storage(e)) => {
                                    assert!(
                                        e.is_transient(),
                                        "seed {seed} t{t} q{i}: unexpected error class: {e}"
                                    );
                                    errors += 1;
                                }
                                Err(e) => panic!(
                                    "seed {seed} t{t} q{i}: fault surfaced outside the taxonomy: {e}"
                                ),
                            }
                        }
                        (ok, degraded, errors)
                    })
                })
                .collect();
            let mut total_ok = 0usize;
            let mut total_degraded = 0usize;
            let mut total_errors = 0usize;
            for thread in threads {
                let (ok, degraded, errors) = thread.join().expect("no worker may panic");
                total_ok += ok;
                total_degraded += degraded;
                total_errors += errors;
            }
            // The storm must actually exercise all three outcome classes.
            assert!(total_ok > 0, "seed {seed}: nothing completed");
            assert!(total_degraded > 0, "seed {seed}: no budget ever expired — vacuous");
            assert!(total_errors > 0, "seed {seed}: no fault ever surfaced — vacuous");
        });
        assert!(handle.transient_injected() > 0, "seed {seed}: schedule never fired");
    }
}

/// `try_query_batch` under armed faults: per-slot `Result`s — some slots
/// fail typed while the rest of the batch still matches the reference
/// (one bad page must not poison sibling queries).
#[test]
fn try_query_batch_isolates_per_query_faults() {
    let corpus = corpus();
    let (_, expected) = build_reference(&corpus);
    let workload = queries(&corpus);
    for seed in chaos_seeds() {
        let handle = FaultHandle::new();
        let cfg = FaultConfig { seed, transient_read_ppm: 20_000, ..FaultConfig::default() };
        let config = EngineConfig {
            metadata_store: Some(faulty_store(cfg, Arc::clone(&handle), None)),
            ..base_config()
        };
        let (engine, _) =
            TklusEngine::try_build(&corpus, &config).expect("disarmed build is clean");
        handle.arm(true);
        let results = engine.try_query_batch(&workload);
        assert_eq!(results.len(), workload.len());
        let mut errors = 0usize;
        for (i, result) in results.iter().enumerate() {
            match result {
                Ok(outcome) => {
                    assert_same_users(&outcome.users, &expected[i], &format!("seed {seed} q{i}"));
                }
                Err(EngineError::Storage(e)) => {
                    assert!(e.is_transient(), "seed {seed} q{i}: unexpected class: {e}");
                    errors += 1;
                }
                Err(e) => panic!("seed {seed} q{i}: fault outside the taxonomy: {e}"),
            }
        }
        assert!(errors > 0, "seed {seed}: no slot observed a fault — vacuous");
        assert!(errors < results.len(), "seed {seed}: every slot failed — isolation unproven");
    }
}

// ---- Deadline / budget determinism (fault-free engine) -----------------

/// A query whose cover has several cells, so budgets have something to cut.
fn wide_query(corpus: &Corpus, engine: &TklusEngine) -> (TklusQuery, Ranking, usize) {
    for (q, ranking) in queries(corpus) {
        let (_, stats) = engine.query(&q, ranking);
        if stats.cover_cells >= 3 && stats.candidates > 0 {
            return (q, ranking, stats.cover_cells);
        }
    }
    panic!("generated workload has no multi-cell query");
}

#[test]
fn max_cells_budget_is_deterministic_and_monotone() {
    let corpus = corpus();
    let (engine, _) = build_reference(&corpus);
    let (q, ranking, total) = wide_query(&corpus, &engine);
    let (full, _) = engine.query(&q, ranking);
    for m in 0..=total {
        let budgeted = q.clone().with_max_cells(m);
        let a = engine.try_query(&budgeted, ranking).expect("fault-free");
        let b = engine.try_query(&budgeted, ranking).expect("fault-free");
        assert_eq!(a.users, b.users, "max_cells={m}: budgeted results must be reproducible");
        assert_eq!(a.completeness, b.completeness);
        if m >= total {
            assert_eq!(a.completeness, Completeness::Complete);
            assert_same_users(&a.users, &full, &format!("max_cells={m} admits the whole cover"));
        } else {
            assert_eq!(
                a.completeness,
                Completeness::Degraded { cells_processed: m, cells_total: total },
                "max_cells={m}"
            );
        }
    }
}

#[test]
fn zero_timeout_degrades_to_an_empty_exact_prefix() {
    let corpus = corpus();
    let (engine, _) = build_reference(&corpus);
    let (q, ranking, total) = wide_query(&corpus, &engine);
    let outcome: QueryOutcome =
        engine.try_query(&q.clone().with_timeout_ms(0), ranking).expect("fault-free");
    assert!(outcome.users.is_empty(), "no cells processed -> no candidates");
    assert_eq!(
        outcome.completeness,
        Completeness::Degraded { cells_processed: 0, cells_total: total }
    );
    assert_eq!(outcome.stats.cover_cells, 0);
}

#[test]
fn generous_timeout_is_complete_and_identical_to_unbudgeted() {
    let corpus = corpus();
    let (engine, _) = build_reference(&corpus);
    let (q, ranking, _) = wide_query(&corpus, &engine);
    let (full, _) = engine.query(&q, ranking);
    let outcome =
        engine.try_query(&q.clone().with_timeout_ms(60_000), ranking).expect("fault-free");
    assert_eq!(outcome.completeness, Completeness::Complete);
    assert_same_users(&outcome.users, &full, "generous timeout");
}

// ---- Sharded scatter-gather under per-shard faults (DESIGN.md §14) ----

/// One shard of a 4-shard router runs on a seeded `FaultPager`; every
/// query must come back either bitwise-equal to the fault-free sharded
/// answer (`Complete`) or as a typed degraded partial *naming the faulted
/// shard* — never a panic, never a silently truncated `Complete`.
#[test]
fn faulted_shard_yields_typed_degraded_partials_never_lies() {
    use tklus_shard::{ShardCompleteness, ShardId, ShardedEngine};

    let corpus = corpus();
    let n_shards = 4;
    let reference =
        ShardedEngine::try_build(&corpus, n_shards, &base_config()).expect("fault-free build");
    let plan = reference.plan().clone();
    let workload = queries(&corpus);
    let expected: Vec<_> = workload.iter().map(|(q, r)| reference.query(q, *r)).collect();
    let faulted = 1usize; // a middle shard, so covers straddle it

    for seed in chaos_seeds() {
        let handle = FaultHandle::new();
        let cfg = FaultConfig { seed, transient_read_ppm: 60_000, ..FaultConfig::default() };
        let store = faulty_store(cfg, Arc::clone(&handle), None);
        let engine = ShardedEngine::try_build_with(&corpus, plan.clone(), &|i| {
            if i == faulted {
                EngineConfig { metadata_store: Some(Arc::clone(&store)), ..base_config() }
            } else {
                base_config()
            }
        })
        .expect("disarmed build is clean");
        handle.arm(true);

        let mut clean = 0usize;
        let mut degraded = 0usize;
        for (i, (q, ranking)) in workload.iter().enumerate() {
            // `query` is infallible by contract: a shard fault must become
            // a typed partial, so any panic here fails the test itself.
            let got = engine.query(q, *ranking);
            match got.completeness {
                ShardCompleteness::Complete => {
                    assert_same_users(
                        &got.users,
                        &expected[i].users,
                        &format!("seed {seed} q{i}: complete answers must match fault-free"),
                    );
                    clean += 1;
                }
                ShardCompleteness::Degraded { ref failed_shards, .. } => {
                    assert_eq!(
                        failed_shards.as_slice(),
                        &[ShardId(faulted)],
                        "seed {seed} q{i}: only the faulted shard may be named"
                    );
                    degraded += 1;
                }
            }
        }
        assert!(
            handle.transient_injected() > 0,
            "seed {seed}: schedule never fired — the run was vacuous"
        );
        assert!(degraded > 0, "seed {seed}: no query ever observed the faulted shard");
        assert!(clean > 0, "seed {seed}: every query degraded — healthy path unproven");
    }
}

/// A shard whose store *always* faults trips its circuit breaker: after
/// the failure threshold, dispatches are refused outright (state `Open`),
/// and the router keeps serving typed partials that name the dead shard.
#[test]
fn dead_shard_trips_its_breaker_and_stays_typed() {
    use tklus_shard::{BreakerConfig, BreakerState, ShardCompleteness, ShardId, ShardedEngine};

    let corpus = corpus();
    let reference = ShardedEngine::try_build(&corpus, 4, &base_config()).expect("fault-free build");
    let plan = reference.plan().clone();
    let workload = queries(&corpus);
    let expected: Vec<_> = workload.iter().map(|(q, r)| reference.query(q, *r)).collect();
    let dead = 1usize;

    let handle = FaultHandle::new();
    // Every read faults: the shard is effectively down. (A query only
    // touches a shard's metadata when the shard holds candidates for it,
    // so the breaker is tuned to trip on the few dispatches that do.)
    let cfg = FaultConfig { seed: 7, transient_read_ppm: 1_000_000, ..FaultConfig::default() };
    let store = faulty_store(cfg, Arc::clone(&handle), None);
    let engine = ShardedEngine::try_build_with(&corpus, plan, &|i| {
        if i == dead {
            EngineConfig { metadata_store: Some(Arc::clone(&store)), ..base_config() }
        } else {
            base_config()
        }
    })
    .expect("disarmed build is clean")
    .with_breaker_config(BreakerConfig { failure_threshold: 2, ..BreakerConfig::default() });
    handle.arm(true);

    // Several passes over the workload: enough failing dispatches to cross
    // the breaker's threshold even though only some queries touch the
    // dead shard's data.
    let mut degraded = 0usize;
    for pass in 0..4 {
        for (i, (q, ranking)) in workload.iter().enumerate() {
            let got = engine.query(q, *ranking);
            match got.completeness {
                ShardCompleteness::Complete => assert_same_users(
                    &got.users,
                    &expected[i].users,
                    &format!("pass {pass} q{i}: the cover avoided the dead shard"),
                ),
                ShardCompleteness::Degraded { ref failed_shards, .. } => {
                    assert_eq!(failed_shards.as_slice(), &[ShardId(dead)], "pass {pass} q{i}");
                    degraded += 1;
                }
            }
        }
    }
    assert!(handle.transient_injected() > 0, "no fault ever fired — vacuous");
    assert!(degraded >= 2, "too few degraded outcomes ({degraded}) to trip the breaker");
    assert_eq!(
        engine.breaker_state(dead),
        BreakerState::Open,
        "a persistently failing shard must trip its breaker"
    );
    for sid in [0usize, 2, 3] {
        assert_eq!(engine.breaker_state(sid), BreakerState::Closed, "healthy shard {sid}");
    }
}

/// The degraded prefix is itself exact: ranking only the tweets found in
/// the first `m` cover cells of the *reference* engine's fetch order.
#[test]
fn degraded_results_are_a_prefix_ranking_not_garbage() {
    let corpus = corpus();
    let (engine, _) = build_reference(&corpus);
    let (q, ranking, total) = wide_query(&corpus, &engine);
    // Build a second, independent engine: the degraded answer for a given
    // max_cells must agree across engines (pure function of corpus+query).
    let (engine2, _) = TklusEngine::build(&corpus, &base_config());
    for m in [1, total / 2, total.saturating_sub(1)] {
        let budgeted = q.clone().with_max_cells(m);
        let a = engine.try_query(&budgeted, ranking).expect("fault-free");
        let b = engine2.try_query(&budgeted, ranking).expect("fault-free");
        assert_same_users(&a.users, &b.users, &format!("max_cells={m} across engines"));
        assert_eq!(a.completeness, b.completeness);
    }
}
