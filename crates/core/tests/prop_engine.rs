//! Property test: on arbitrary small corpora and queries, the full engine
//! (hybrid index + metadata DB + either algorithm, with and without
//! pruning) returns exactly the users and scores that a direct
//! implementation of Definitions 4–10 computes.

#![allow(clippy::unwrap_used)] // test code: panics are the failure report

use proptest::prelude::*;
use std::collections::HashMap;
use tklus_core::{BoundsMode, EngineConfig, Ranking, TklusEngine};
use tklus_geo::Point;
use tklus_graph::{build_thread, SocialNetwork};
use tklus_model::{Corpus, Post, ScoringConfig, Semantics, TklusQuery, TweetId, UserId};
use tklus_text::TextPipeline;

const WORDS: [&str; 8] = ["hotel", "pizza", "cafe", "museum", "sushi", "beach", "coffee", "club"];

#[derive(Debug, Clone)]
struct RawPost {
    user: u8,
    // Offsets within a ~30 km box around Toronto.
    dlat: i8,
    dlon: i8,
    words: Vec<u8>,
    reply_to: Option<u8>,
}

fn arb_post() -> impl Strategy<Value = RawPost> {
    (
        0u8..12,
        -100i8..=100,
        -100i8..=100,
        proptest::collection::vec(0u8..WORDS.len() as u8, 1..5),
        proptest::option::of(0u8..40),
    )
        .prop_map(|(user, dlat, dlon, words, reply_to)| RawPost {
            user,
            dlat,
            dlon,
            words,
            reply_to,
        })
}

fn materialize(raw: &[RawPost]) -> Corpus {
    let base = Point::new_unchecked(43.68, -79.38);
    let posts: Vec<Post> = raw
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let id = TweetId(i as u64 + 1);
            let loc = Point::new_unchecked(
                base.lat() + r.dlat as f64 * 0.0015,
                base.lon() + r.dlon as f64 * 0.002,
            );
            let text: String =
                r.words.iter().map(|&w| WORDS[w as usize]).collect::<Vec<_>>().join(" ");
            // Replies target an earlier post when the index resolves.
            match r.reply_to {
                Some(t) if (t as usize) < i => {
                    let target = TweetId(t as u64 + 1);
                    let target_user = UserId(raw[t as usize].user as u64);
                    Post::reply(id, UserId(r.user as u64), loc, text, target, target_user)
                }
                _ => Post::original(id, UserId(r.user as u64), loc, text),
            }
        })
        .collect();
    Corpus::new(posts).expect("sequential ids")
}

/// Direct implementation of the scoring definitions.
fn reference(
    corpus: &Corpus,
    q: &TklusQuery,
    use_max: bool,
    config: &ScoringConfig,
) -> Vec<(UserId, f64)> {
    let pipeline = TextPipeline::new();
    let network = SocialNetwork::from_corpus(corpus);
    // Definition 6 counts occurrences of the *set* of query keywords, so
    // keywords normalizing to the same stem count once (the engine
    // deduplicates the same way).
    let mut stems: Vec<String> =
        q.keywords.iter().filter_map(|k| pipeline.normalize_keyword(k)).collect();
    stems.sort();
    stems.dedup();
    let mut per_user: HashMap<UserId, f64> = HashMap::new();
    for post in corpus.posts() {
        if q.location.distance_km(&post.location, config.metric) > q.radius_km {
            continue;
        }
        let terms = pipeline.terms(&post.text);
        let occurrences: u32 =
            stems.iter().map(|s| terms.iter().filter(|t| *t == s).count() as u32).sum();
        let qualifies = match q.semantics {
            Semantics::And => !stems.is_empty() && stems.iter().all(|s| terms.contains(s)),
            Semantics::Or => occurrences > 0,
        };
        if !qualifies {
            continue;
        }
        let mut provider = &network;
        let phi =
            build_thread(&mut provider, post.id, config.thread_depth).popularity(config.epsilon);
        let rho = occurrences as f64 / config.keyword_norm * phi;
        let entry = per_user.entry(post.user).or_insert(0.0);
        if use_max {
            *entry = entry.max(rho);
        } else {
            *entry += rho;
        }
    }
    let mut scored: Vec<(UserId, f64)> = per_user
        .into_iter()
        .map(|(uid, rho)| {
            let locs: Vec<Point> = corpus.posts_of(uid).map(|p| p.location).collect();
            let delta: f64 = locs
                .iter()
                .map(|l| {
                    let d = q.location.distance_km(l, config.metric);
                    if d <= q.radius_km {
                        (q.radius_km - d) / q.radius_km
                    } else {
                        0.0
                    }
                })
                .sum::<f64>()
                / locs.len() as f64;
            (uid, config.alpha * rho + (1.0 - config.alpha) * delta)
        })
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    scored.truncate(q.k);
    scored
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn engine_equals_reference_on_random_corpora(
        raw in proptest::collection::vec(arb_post(), 5..60),
        radius in 2.0f64..25.0,
        k in 1usize..6,
        kw_idx in proptest::collection::vec(0u8..WORDS.len() as u8, 1..3),
        and_sem in any::<bool>(),
    ) {
        let corpus = materialize(&raw);
        let config = EngineConfig::default();
        let (engine, _) = TklusEngine::build(&corpus, &config);
        let mut keywords: Vec<String> = kw_idx.iter().map(|&i| WORDS[i as usize].to_string()).collect();
        keywords.dedup();
        let semantics = if and_sem { Semantics::And } else { Semantics::Or };
        let q = TklusQuery::new(Point::new_unchecked(43.68, -79.38), radius, keywords, k, semantics).unwrap();

        for (ranking, use_max) in [
            (Ranking::Sum, false),
            (Ranking::Max(BoundsMode::Global), true),
            (Ranking::Max(BoundsMode::HotKeywords), true),
        ] {
            let (got, _) = engine.query(&q, ranking);
            let want = reference(&corpus, &q, use_max, &config.scoring);
            prop_assert_eq!(got.len(), want.len(), "{:?} {:?}", ranking, &q.keywords);
            for (g, w) in got.iter().zip(&want) {
                prop_assert_eq!(g.user, w.0, "{:?}", ranking);
                prop_assert!((g.score - w.1).abs() < 1e-9, "{} vs {} ({:?})", g.score, w.1, ranking);
            }
        }
    }
}
