//! Concurrency contract of the shared-immutable engine.
//!
//! Two guarantees, tested without loom (plain OS threads):
//!
//! 1. **Determinism** — the same query returns a byte-identical
//!    `RankedUser` list (ids and the exact `f64` bit patterns of scores)
//!    whether the engine runs sequentially or with any number of workers.
//!    The parallel paths are designed so every floating-point fold happens
//!    sequentially in a scheduling-independent order; this test is the
//!    enforcement of that design.
//! 2. **Shared safety** — one engine behind `&self` serves many client
//!    threads at once, and every client sees the same (correct) answers
//!    while the striped buffer pool, DFS counters, and B⁺-trees are being
//!    hammered concurrently.

#![allow(clippy::unwrap_used)] // test code: panics are the failure report

use tklus_core::{BoundsMode, CacheConfig, EngineConfig, QueryStats, Ranking, TklusEngine};
use tklus_geo::Point;
use tklus_model::{Corpus, Post, Semantics, TklusQuery, TweetId, UserId};

/// A deterministic medium-sized corpus: 12 users posting around Toronto
/// with a reply web deep enough to exercise thread construction and the
/// popularity prune.
fn corpus() -> Corpus {
    const WORDS: [&str; 6] = ["hotel", "pizza", "museum", "coffee", "beach", "club"];
    let base = Point::new_unchecked(43.68, -79.38);
    let mut state = 0x243F6A8885A308D3u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    // A dominant tweet first in id order: maximum keyword occurrences,
    // the corpus's most popular thread, author (user 12) exactly at the
    // query center with no other posts (distance score 1). Once it fills a
    // k=1 top set, every later low-tf candidate's optimistic bound loses —
    // so the Max algorithm's prune actually fires in this workload.
    let mut posts: Vec<Post> =
        vec![Post::original(TweetId(1), UserId(12), base, "hotel hotel hotel hotel hotel hotel")];
    for i in 0..24u64 {
        posts.push(Post::reply(
            TweetId(2 + i),
            UserId(next() % 12),
            Point::new_unchecked(base.lat() + 0.01, base.lon() + 0.01),
            "boost",
            TweetId(1),
            UserId(12),
        ));
    }
    posts.extend((26..400u64).map(|i| {
        let id = TweetId(i + 1);
        let user = UserId(next() % 12);
        let loc = Point::new_unchecked(
            base.lat() + (next() % 200) as f64 * 0.0015 - 0.15,
            base.lon() + (next() % 200) as f64 * 0.002 - 0.2,
        );
        let nwords = 1 + (next() % 3) as usize;
        let text = (0..nwords).map(|_| WORDS[(next() % 6) as usize]).collect::<Vec<_>>().join(" ");
        // A third of posts reply to some earlier post.
        if next() % 3 == 0 {
            let t = next() % i;
            Post::reply(id, user, loc, text, TweetId(t + 1), UserId(0))
        } else {
            Post::original(id, user, loc, text)
        }
    }));
    Corpus::new(posts).unwrap()
}

fn queries() -> Vec<(TklusQuery, Ranking)> {
    let center = Point::new_unchecked(43.68, -79.38);
    let mut out = Vec::new();
    for (keywords, semantics) in [
        (vec!["hotel".to_string()], Semantics::Or),
        (vec!["pizza".to_string(), "coffee".to_string()], Semantics::Or),
        (vec!["hotel".to_string(), "museum".to_string()], Semantics::And),
        (vec!["beach".to_string(), "club".to_string(), "pizza".to_string()], Semantics::Or),
    ] {
        for k in [1, 3, 10] {
            let q = TklusQuery::new(center, 25.0, keywords.clone(), k, semantics).unwrap();
            out.push((q.clone(), Ranking::Sum));
            out.push((q.clone(), Ranking::Max(BoundsMode::Global)));
            out.push((q, Ranking::Max(BoundsMode::HotKeywords)));
        }
    }
    out
}

fn engine_with_parallelism(corpus: &Corpus, parallelism: usize) -> TklusEngine {
    let config = EngineConfig { parallelism, cache_pages: 96, ..EngineConfig::default() };
    TklusEngine::build(corpus, &config).0
}

#[test]
fn parallel_results_are_byte_identical_to_sequential() {
    let corpus = corpus();
    let sequential = engine_with_parallelism(&corpus, 1);
    let requests = queries();
    let reference: Vec<_> = requests.iter().map(|(q, r)| sequential.query(q, *r)).collect();
    // Sanity: the workload actually exercises scoring and pruning.
    assert!(reference.iter().any(|(top, _)| !top.is_empty()));
    assert!(reference.iter().any(|(_, s)| s.threads_pruned > 0));

    for parallelism in [2, 3, 8] {
        let parallel = engine_with_parallelism(&corpus, parallelism);
        for ((q, ranking), (want_top, want_stats)) in requests.iter().zip(&reference) {
            let (top, stats) = parallel.query(q, *ranking);
            assert_eq!(top.len(), want_top.len(), "parallelism {parallelism}: {q:?}");
            for (got, want) in top.iter().zip(want_top) {
                assert_eq!(got.user, want.user, "parallelism {parallelism}: {q:?}");
                assert_eq!(
                    got.score.to_bits(),
                    want.score.to_bits(),
                    "parallelism {parallelism}: score bits differ for {:?} on {q:?}",
                    got.user
                );
            }
            // The prune/build accounting replays exactly, too.
            assert_eq!(stats.candidates, want_stats.candidates);
            assert_eq!(stats.in_radius, want_stats.in_radius);
            assert_eq!(stats.threads_built, want_stats.threads_built);
            assert_eq!(stats.threads_pruned, want_stats.threads_pruned);
            assert_eq!(stats.lists_fetched, want_stats.lists_fetched);
            assert_eq!(stats.dfs_bytes, want_stats.dfs_bytes);
        }
    }
}

#[test]
fn query_batch_matches_individual_queries() {
    let corpus = corpus();
    let engine = engine_with_parallelism(&corpus, 4);
    let requests = queries();
    let individual: Vec<_> = requests.iter().map(|(q, r)| engine.query(q, *r)).collect();
    let batched = engine.query_batch(&requests);
    assert_eq!(batched.len(), individual.len());
    for ((got, _), (want, _)) in batched.iter().zip(&individual) {
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want) {
            assert_eq!(g.user, w.user);
            assert_eq!(g.score.to_bits(), w.score.to_bits());
        }
    }
}

/// Per-layer (hits, misses) totals plus the query-path counters,
/// accumulated from per-query [`QueryStats`] tallies, for checking
/// against the engine's global cache counters and metric registry.
#[derive(Default, Clone, Copy)]
struct CacheTally {
    cover: (u64, u64),
    postings: (u64, u64),
    thread: (u64, u64),
    queries: u64,
    candidates: u64,
    threads_built: u64,
    metadata_page_reads: u64,
    polls_saved: u64,
}

impl CacheTally {
    fn absorb(&mut self, s: &QueryStats) {
        self.cover.0 += s.cover_cache_hits;
        self.cover.1 += s.cover_cache_misses;
        self.postings.0 += s.postings_cache_hits;
        self.postings.1 += s.postings_cache_misses;
        self.thread.0 += s.thread_cache_hits;
        self.thread.1 += s.thread_cache_misses;
        self.queries += 1;
        self.candidates += s.candidates as u64;
        self.threads_built += s.threads_built as u64;
        self.metadata_page_reads += s.metadata_page_reads;
        self.polls_saved += s.deadline_polls_saved;
    }

    fn add(&mut self, other: &CacheTally) {
        self.cover.0 += other.cover.0;
        self.cover.1 += other.cover.1;
        self.postings.0 += other.postings.0;
        self.postings.1 += other.postings.1;
        self.thread.0 += other.thread.0;
        self.thread.1 += other.thread.1;
        self.queries += other.queries;
        self.candidates += other.candidates;
        self.threads_built += other.threads_built;
        self.metadata_page_reads += other.metadata_page_reads;
        self.polls_saved += other.polls_saved;
    }
}

/// Cache-coherence under contention: 8 client threads replay a mixed
/// repeated/unique query log against ONE engine with all three cache
/// layers enabled (and sized small enough to evict), and every answer
/// must be bit-identical to a cold, cache-disabled engine's. On top of
/// the value check, the cache counters must behave like counters:
/// monotone non-decreasing across snapshots taken mid-storm, and — once
/// the storm settles — the global deltas must equal the sum of every
/// query's own hit/miss tallies (nothing double- or under-counted even
/// when threads race on the same keys).
#[test]
fn cached_engine_under_contention_matches_cold_uncached_engine() {
    let corpus = corpus();
    // Reference: caches off (EngineConfig::default() disables all layers).
    let cold = engine_with_parallelism(&corpus, 1);
    // Tiny budgets so the stress run keeps inserting and evicting instead
    // of settling into an all-hit steady state.
    let cached_config = EngineConfig {
        parallelism: 2,
        cache_pages: 96,
        caches: CacheConfig { cover: 4, postings: 16, thread: 32 },
        ..EngineConfig::default()
    };
    let cached = TklusEngine::build(&corpus, &cached_config).0;

    // Mixed log: the repeated request set (cache-friendly), plus unique
    // radius variants no other thread ever repeats (cache-hostile).
    let mut log = queries();
    let center = Point::new_unchecked(43.68, -79.38);
    for i in 0..16u32 {
        let keywords = vec!["hotel".to_string(), "coffee".to_string()];
        let q = TklusQuery::new(center, 18.0 + f64::from(i) * 0.53, keywords, 3, Semantics::Or)
            .unwrap();
        log.push((q.clone(), Ranking::Sum));
        log.push((q, Ranking::Max(BoundsMode::HotKeywords)));
    }
    let reference: Vec<_> = log.iter().map(|(q, r)| cold.query(q, *r)).collect();
    assert!(reference.iter().any(|(top, _)| !top.is_empty()));

    let before = cached.cache_stats();
    let registry_before = cached.metrics_snapshot().expect("metrics on by default");
    let mut total = CacheTally::default();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|t: usize| {
                let cached = &cached;
                let log = &log;
                let reference = &reference;
                scope.spawn(move || {
                    let mut tally = CacheTally::default();
                    let mut last = cached.cache_stats();
                    for round in 0..24 {
                        let i = (t * 11 + round * 5) % log.len();
                        let (q, ranking) = &log[i];
                        let (top, stats) = cached.query(q, *ranking);
                        let (want, _) = &reference[i];
                        assert_eq!(top.len(), want.len(), "thread {t} round {round}");
                        for (g, w) in top.iter().zip(want) {
                            assert_eq!(g.user, w.user, "thread {t} round {round}");
                            assert_eq!(
                                g.score.to_bits(),
                                w.score.to_bits(),
                                "thread {t} round {round}: cached score diverged"
                            );
                        }
                        tally.absorb(&stats);
                        // Counters are monotone even while 7 other threads
                        // hammer the same shards.
                        let now = cached.cache_stats();
                        for (prev, cur) in [
                            (last.cover, now.cover),
                            (last.postings, now.postings),
                            (last.thread, now.thread),
                        ] {
                            assert!(cur.hits >= prev.hits, "thread {t} round {round}");
                            assert!(cur.misses >= prev.misses, "thread {t} round {round}");
                        }
                        last = now;
                    }
                    tally
                })
            })
            .collect();
        for h in handles {
            total.add(&h.join().expect("stress worker panicked"));
        }
    });

    // Global counter movement is exactly the sum of what the queries
    // reported: racing threads may each miss on the same key (both pay the
    // compute), but every probe is counted once, on both sides.
    let after = cached.cache_stats();
    for (layer, before, after, (hits, misses)) in [
        ("cover", before.cover, after.cover, total.cover),
        ("postings", before.postings, after.postings, total.postings),
        ("thread", before.thread, after.thread, total.thread),
    ] {
        assert_eq!(after.hits - before.hits, hits, "{layer} hit counter drifted");
        assert_eq!(after.misses - before.misses, misses, "{layer} miss counter drifted");
        assert!(after.entries <= after.capacity, "{layer} overflowed its budget");
    }
    // The repeated half of the log must actually have hit each layer.
    assert!(total.cover.0 > 0, "no cover-cache hits in a repeating log");
    assert!(total.postings.0 > 0, "no postings-cache hits in a repeating log");
    assert!(total.thread.0 > 0, "no thread-cache hits in a repeating log");

    // Exposition coherence (DESIGN.md §12): the registry's counter deltas
    // across the 8-thread storm equal the sums of the per-query tallies —
    // for the natively recorded query counters AND the re-exported cache
    // and storage families. In particular the page-I/O triangle closes
    // exactly: per-query `metadata_page_reads` (thread-local attribution)
    // sums to the same number the global `IoStats` counter moved by, which
    // is the number the registry re-exports.
    let registry_after = cached.metrics_snapshot().expect("metrics on by default");
    let delta = |name: &str| {
        registry_after.counter(name).unwrap_or(0) - registry_before.counter(name).unwrap_or(0)
    };
    assert_eq!(delta("tklus_queries_total"), total.queries);
    assert_eq!(delta("tklus_query_candidates_total"), total.candidates);
    assert_eq!(delta("tklus_query_threads_built_total"), total.threads_built);
    assert_eq!(delta("tklus_query_metadata_page_reads_total"), total.metadata_page_reads);
    assert_eq!(delta("tklus_query_deadline_polls_saved_total"), total.polls_saved);
    assert_eq!(delta("tklus_storage_page_reads_total"), total.metadata_page_reads);
    for (layer, (hits, misses)) in
        [("cover", total.cover), ("postings", total.postings), ("thread", total.thread)]
    {
        assert_eq!(delta(&format!("tklus_cache_{layer}_hits_total")), hits, "{layer} registry");
        assert_eq!(delta(&format!("tklus_cache_{layer}_misses_total")), misses, "{layer} registry");
    }
    let latency = registry_after.histogram("tklus_query_latency_us").expect("latency histogram");
    assert_eq!(
        latency.count,
        registry_before.histogram("tklus_query_latency_us").map_or(0, |h| h.count) + total.queries,
        "one latency sample per answered query"
    );
}

#[test]
fn eight_threads_hammer_one_shared_engine() {
    let corpus = corpus();
    // Small cache so the stress run constantly inserts/evicts in the
    // striped buffer pool rather than settling into an all-hit steady
    // state.
    let engine = engine_with_parallelism(&corpus, 2);
    let requests = queries();
    let reference: Vec<_> = requests.iter().map(|(q, r)| engine.query(q, *r)).collect();

    std::thread::scope(|scope| {
        for t in 0..8 {
            let engine = &engine;
            let requests = &requests;
            let reference = &reference;
            scope.spawn(move || {
                for round in 0..20 {
                    let i = (t * 5 + round * 7) % requests.len();
                    let (q, ranking) = &requests[i];
                    let (top, _) = engine.query(q, *ranking);
                    let (want, _) = &reference[i];
                    assert_eq!(top.len(), want.len(), "thread {t} round {round}");
                    for (g, w) in top.iter().zip(want) {
                        assert_eq!(g.user, w.user, "thread {t} round {round}");
                        assert_eq!(
                            g.score.to_bits(),
                            w.score.to_bits(),
                            "thread {t} round {round}"
                        );
                    }
                }
            });
        }
    });
}
