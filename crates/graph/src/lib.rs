//! Social-network substrate: the graph of Definition 2, tweet threads
//! (Definition 3 / Algorithm 1), and popularity scores (Definitions 4 and
//! 11).
//!
//! Thread construction is written against the small [`ReplyProvider`]
//! trait — "who replied to / forwarded this tweet?" — so the same
//! algorithm runs over the in-memory [`SocialNetwork`] (fast, for tests and
//! offline bound precomputation) and over the B⁺-tree-backed metadata
//! database (I/O-counted, the configuration the paper measures; see
//! `tklus-core::metadata`).

pub mod network;
pub mod popularity;
pub mod thread;

pub use network::SocialNetwork;
pub use popularity::{harmonic_tail, popularity, upper_bound_popularity};
pub use thread::{build_thread, try_build_thread, ReplyProvider, TryReplyProvider, TweetThread};
