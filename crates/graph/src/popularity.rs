//! Popularity scores: Definition 4 and its upper bound, Definition 11.

/// `Σ_{i=2}^{n} 1/i` — the harmonic weight mass available to levels 2..=n
/// of a thread. Shared by the actual popularity and the upper bound.
pub fn harmonic_tail(n: usize) -> f64 {
    (2..=n).map(|i| 1.0 / i as f64).sum()
}

/// Definition 4: popularity of a tweet whose thread has the given level
/// sizes. `level_sizes[0]` is the root level (size 1); level `i` (1-based
/// index `i+1` in the paper) contributes `|T_i| × 1/i`.
///
/// A single-level thread (no responses) scores the smoothing `epsilon`.
pub fn popularity(level_sizes: &[usize], epsilon: f64) -> f64 {
    if level_sizes.len() <= 1 {
        return epsilon;
    }
    level_sizes.iter().enumerate().skip(1).map(|(idx, &size)| size as f64 / (idx + 1) as f64).sum()
}

/// Definition 11: upper bound popularity `φ(p)_m = Σ_{i=2}^{n} t_m × 1/i`,
/// where `t_m` is the maximum reply fan-out in the database and `n` the
/// thread depth bound. With maximal fan-out `t_m` at every level this
/// over-counts (level i could hold up to `t_m^(i-1)` tweets, but the paper
/// deliberately uses the flat bound, and so do we — it is what Algorithm 5
/// compares against).
pub fn upper_bound_popularity(max_fanout: usize, depth: usize, epsilon: f64) -> f64 {
    if depth <= 1 || max_fanout == 0 {
        return epsilon;
    }
    (max_fanout as f64 * harmonic_tail(depth)).max(epsilon)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figure2_example() {
        // "the score of tweet p1 is 3 × 1/2 + 4 × 1/3 + 2 × 1/4 = 10/3".
        let phi = popularity(&[1, 3, 4, 2], 0.1);
        assert!((phi - 10.0 / 3.0).abs() < 1e-12, "phi = {phi}");
    }

    #[test]
    fn singleton_thread_scores_epsilon() {
        assert_eq!(popularity(&[1], 0.1), 0.1);
        assert_eq!(popularity(&[], 0.25), 0.25);
    }

    #[test]
    fn two_level_thread() {
        // Root + 5 direct responses: 5 × 1/2.
        assert_eq!(popularity(&[1, 5], 0.1), 2.5);
    }

    #[test]
    fn harmonic_tail_values() {
        assert_eq!(harmonic_tail(1), 0.0);
        assert!((harmonic_tail(2) - 0.5).abs() < 1e-12);
        assert!((harmonic_tail(4) - (0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn upper_bound_dominates_any_thread_with_bounded_fanout() {
        // Any thread whose every level has at most t_m tweets and depth <= n
        // scores below the bound.
        let t_m = 4;
        let depth = 5;
        let bound = upper_bound_popularity(t_m, depth, 0.1);
        for levels in [vec![1, 4, 4, 4, 4], vec![1, 4], vec![1, 1, 1, 1, 1], vec![1]] {
            let phi = popularity(&levels, 0.1);
            assert!(phi <= bound + 1e-12, "levels {levels:?}: {phi} > {bound}");
        }
    }

    #[test]
    fn upper_bound_degenerate_cases() {
        assert_eq!(upper_bound_popularity(0, 5, 0.1), 0.1);
        assert_eq!(upper_bound_popularity(10, 1, 0.1), 0.1);
        // Tiny fan-out with deep threads still at least epsilon.
        assert!(upper_bound_popularity(1, 2, 0.7) >= 0.7);
    }

    #[test]
    fn upper_bound_monotone_in_fanout_and_depth() {
        let e = 0.1;
        assert!(upper_bound_popularity(5, 4, e) < upper_bound_popularity(6, 4, e));
        assert!(upper_bound_popularity(5, 4, e) < upper_bound_popularity(5, 5, e));
    }
}
