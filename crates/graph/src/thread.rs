//! Tweet-thread construction: Definition 3 and Algorithm 1.
//!
//! A thread is the tree of replies/forwards rooted at a tweet, built
//! level by level ("breadth-first") down to a configured depth `d`, since
//! "constructing a complete tweet thread can incur quite a number of I/Os".
//! The provider abstraction mirrors Algorithm 1's line 7 — `select all
//! where rsid equals Id` — whose cost is exactly what the Maximum-score
//! pruning avoids paying.

use crate::network::SocialNetwork;
use crate::popularity::popularity;
use tklus_model::TweetId;

/// Source of "which tweets reply to / forward `id`?" lookups.
///
/// `&mut self` because database-backed providers mutate buffer-pool state
/// and I/O counters on every lookup.
pub trait ReplyProvider {
    /// The ids of tweets whose `rsid` equals `id`.
    fn replies_to(&mut self, id: TweetId) -> Vec<TweetId>;
}

/// Fallible variant of [`ReplyProvider`] for providers backed by storage
/// that can fail (the metadata database's secondary B⁺-tree scan). Every
/// infallible [`ReplyProvider`] is automatically a `TryReplyProvider` with
/// `Error = Infallible` via the blanket impl.
pub trait TryReplyProvider {
    /// The error a lookup can surface.
    type Error;
    /// The ids of tweets whose `rsid` equals `id`, or a storage error.
    fn try_replies_to(&mut self, id: TweetId) -> Result<Vec<TweetId>, Self::Error>;
}

impl<P: ReplyProvider> TryReplyProvider for P {
    type Error = std::convert::Infallible;

    fn try_replies_to(&mut self, id: TweetId) -> Result<Vec<TweetId>, Self::Error> {
        Ok(self.replies_to(id))
    }
}

impl ReplyProvider for &SocialNetwork {
    fn replies_to(&mut self, id: TweetId) -> Vec<TweetId> {
        self.children_of(id).to_vec()
    }
}

/// A constructed tweet thread: the tweets at each level, root first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TweetThread {
    root: TweetId,
    levels: Vec<Vec<TweetId>>,
}

impl TweetThread {
    /// The root tweet.
    pub fn root(&self) -> TweetId {
        self.root
    }

    /// Level sizes, root level first (so `sizes()[0] == 1`).
    pub fn level_sizes(&self) -> Vec<usize> {
        self.levels.iter().map(Vec::len).collect()
    }

    /// Thread height `T.h` (number of non-empty levels; 1 = just the root).
    pub fn height(&self) -> usize {
        self.levels.len()
    }

    /// Total number of tweets in the thread.
    pub fn size(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// The tweets at `level` (0 = root level).
    pub fn level(&self, level: usize) -> &[TweetId] {
        self.levels.get(level).map_or(&[], Vec::as_slice)
    }

    /// Definition 4 popularity of this thread.
    pub fn popularity(&self, epsilon: f64) -> f64 {
        popularity(&self.level_sizes(), epsilon)
    }
}

/// Algorithm 1: builds the thread rooted at `root`, following reply links
/// level by level down to `depth` levels total (root counts as level 1, as
/// in the paper where `i` starts at 1 and lookups run `while i <= d`).
///
/// ```
/// use tklus_graph::{build_thread, SocialNetwork};
/// use tklus_model::{Corpus, Post, TweetId, UserId};
/// use tklus_geo::Point;
///
/// let at = Point::new_unchecked(43.7, -79.4);
/// let corpus = Corpus::new(vec![
///     Post::original(TweetId(1), UserId(1), at, "root"),
///     Post::reply(TweetId(2), UserId(2), at, "re", TweetId(1), UserId(1)),
///     Post::reply(TweetId(3), UserId(3), at, "re", TweetId(1), UserId(1)),
/// ]).unwrap();
/// let network = SocialNetwork::from_corpus(&corpus);
/// let thread = build_thread(&mut (&network), TweetId(1), 6);
/// assert_eq!(thread.level_sizes(), vec![1, 2]);
/// assert_eq!(thread.popularity(0.1), 1.0); // 2 × 1/2, Definition 4
/// ```
///
/// Each tweet in levels `1..depth` costs one `replies_to` lookup, exactly
/// like the per-tweet SQL of the paper's implementation.
pub fn build_thread<P: ReplyProvider>(
    provider: &mut P,
    root: TweetId,
    depth: usize,
) -> TweetThread {
    match try_build_thread(provider, root, depth) {
        Ok(thread) => thread,
        // The blanket impl gives infallible providers `Error = Infallible`.
        Err(infallible) => match infallible {},
    }
}

/// Fallible Algorithm 1: identical to [`build_thread`] but propagates the
/// provider's error (a partially built thread is discarded — popularity
/// over a truncated thread would be silently wrong).
pub fn try_build_thread<P: TryReplyProvider>(
    provider: &mut P,
    root: TweetId,
    depth: usize,
) -> Result<TweetThread, P::Error> {
    assert!(depth >= 1, "thread depth must be at least 1");
    let mut levels = vec![vec![root]];
    while levels.len() < depth {
        let current = levels.last().expect("non-empty levels");
        let mut next = Vec::new();
        for &id in current {
            next.extend(provider.try_replies_to(id)?);
        }
        if next.is_empty() {
            break;
        }
        levels.push(next);
    }
    Ok(TweetThread { root, levels })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use tklus_geo::Point;
    use tklus_model::{Corpus, Post, UserId};

    /// A provider that counts lookups, for cost assertions.
    struct CountingProvider {
        children: HashMap<TweetId, Vec<TweetId>>,
        lookups: usize,
    }

    impl ReplyProvider for CountingProvider {
        fn replies_to(&mut self, id: TweetId) -> Vec<TweetId> {
            self.lookups += 1;
            self.children.get(&id).cloned().unwrap_or_default()
        }
    }

    fn provider(edges: &[(u64, u64)]) -> CountingProvider {
        let mut children: HashMap<TweetId, Vec<TweetId>> = HashMap::new();
        for &(parent, child) in edges {
            children.entry(TweetId(parent)).or_default().push(TweetId(child));
        }
        CountingProvider { children, lookups: 0 }
    }

    #[test]
    fn paper_figure2_thread() {
        // p1 <- p2, p3, p4; p2 <- p5, p6; p3 <- p7; p4 <- p8;  (4 at level 3
        // in the figure); level 4 has 2.
        let mut p =
            provider(&[(1, 2), (1, 3), (1, 4), (2, 5), (2, 6), (3, 7), (4, 8), (5, 9), (6, 10)]);
        let t = build_thread(&mut p, TweetId(1), 10);
        assert_eq!(t.level_sizes(), vec![1, 3, 4, 2]);
        assert!((t.popularity(0.1) - 10.0 / 3.0).abs() < 1e-12);
        assert_eq!(t.height(), 4);
        assert_eq!(t.size(), 10);
        assert_eq!(t.root(), TweetId(1));
    }

    #[test]
    fn singleton_thread() {
        let mut p = provider(&[]);
        let t = build_thread(&mut p, TweetId(42), 5);
        assert_eq!(t.level_sizes(), vec![1]);
        assert_eq!(t.popularity(0.1), 0.1);
        assert_eq!(p.lookups, 1, "one lookup discovers there are no replies");
    }

    #[test]
    fn depth_limit_truncates() {
        // Chain 1 <- 2 <- 3 <- 4 <- 5.
        let mut p = provider(&[(1, 2), (2, 3), (3, 4), (4, 5)]);
        let t = build_thread(&mut p, TweetId(1), 3);
        assert_eq!(t.level_sizes(), vec![1, 1, 1]);
        // Levels beyond the limit are not fetched: lookups only for levels
        // 1 and 2 (tweets 1 and 2).
        assert_eq!(p.lookups, 2);
        // Depth 1 = root only, zero lookups.
        let mut p2 = provider(&[(1, 2)]);
        let t1 = build_thread(&mut p2, TweetId(1), 1);
        assert_eq!(t1.level_sizes(), vec![1]);
        assert_eq!(p2.lookups, 0);
    }

    #[test]
    fn lookup_cost_equals_tweets_in_non_final_levels() {
        let mut p = provider(&[(1, 2), (1, 3), (2, 4), (3, 5), (4, 6), (5, 7)]);
        let t = build_thread(&mut p, TweetId(1), 4);
        assert_eq!(t.level_sizes(), vec![1, 2, 2, 2]);
        // Lookups: level1 (1) + level2 (2) + level3 (2) = 5 — Algorithm 1's
        // I/O bottleneck, one query per tweet above the depth bound.
        assert_eq!(p.lookups, 5);
    }

    #[test]
    #[should_panic(expected = "depth must be at least 1")]
    fn zero_depth_rejected() {
        let mut p = provider(&[]);
        let _ = build_thread(&mut p, TweetId(1), 0);
    }

    /// A fallible provider that errors after a fixed number of lookups.
    struct FailingProvider {
        inner: CountingProvider,
        fail_after: usize,
    }

    impl TryReplyProvider for FailingProvider {
        type Error = String;

        fn try_replies_to(&mut self, id: TweetId) -> Result<Vec<TweetId>, Self::Error> {
            if self.inner.lookups >= self.fail_after {
                return Err(format!("lookup of {id:?} failed"));
            }
            Ok(self.inner.replies_to(id))
        }
    }

    #[test]
    fn try_build_thread_matches_infallible_path() {
        let edges = [(1, 2), (1, 3), (2, 4), (3, 5)];
        let mut p = provider(&edges);
        let infallible = build_thread(&mut p, TweetId(1), 4);
        // Via the blanket impl, the same provider works fallibly.
        let mut p2 = provider(&edges);
        let fallible = try_build_thread(&mut p2, TweetId(1), 4).unwrap();
        assert_eq!(infallible, fallible);
    }

    #[test]
    fn provider_error_discards_the_partial_thread() {
        let mut p = FailingProvider { inner: provider(&[(1, 2), (2, 3), (3, 4)]), fail_after: 2 };
        let err = try_build_thread(&mut p, TweetId(1), 5).unwrap_err();
        assert!(err.contains("failed"), "{err}");
    }

    #[test]
    fn social_network_is_a_provider() {
        let pt = Point::new_unchecked(43.7, -79.4);
        let corpus = Corpus::new(vec![
            Post::original(TweetId(1), UserId(1), pt, "root"),
            Post::reply(TweetId(2), UserId(2), pt, "re", TweetId(1), UserId(1)),
            Post::forward(TweetId(3), UserId(3), pt, "rt", TweetId(2), UserId(2)),
        ])
        .unwrap();
        let net = SocialNetwork::from_corpus(&corpus);
        let mut p = &net;
        let t = build_thread(&mut p, TweetId(1), 5);
        assert_eq!(t.level_sizes(), vec![1, 1, 1]);
        assert_eq!(t.level(1), &[TweetId(2)]);
        assert_eq!(t.level(2), &[TweetId(3)]);
        assert!(t.level(3).is_empty());
    }
}
