//! The social network of Definition 2.
//!
//! `G = (U, E_reply, l_reply, E_forward, l_forward)`: users as vertices,
//! directed reply/forward edges, and label maps from each edge to the posts
//! that realize it ("each reply edge must involve at least one post").
//! Built in one pass over a [`Corpus`].

use std::collections::HashMap;
use tklus_model::{Corpus, InteractionKind, TweetId, UserId};

/// Directed edge key: `(from, to)`.
type Edge = (UserId, UserId);

/// In-memory social network with post-labelled reply/forward edges and a
/// child index for thread construction.
#[derive(Debug, Default)]
pub struct SocialNetwork {
    reply_edges: HashMap<Edge, Vec<TweetId>>,
    forward_edges: HashMap<Edge, Vec<TweetId>>,
    /// tweet -> the tweets that reply to or forward it (time order).
    children: HashMap<TweetId, Vec<TweetId>>,
    users: Vec<UserId>,
    max_fanout: usize,
}

impl SocialNetwork {
    /// Builds the network from a corpus. Posts referencing targets outside
    /// the corpus still contribute edges (the paper's crawl is a sample;
    /// dangling `rsid`s are normal) but only in-corpus targets get children.
    pub fn from_corpus(corpus: &Corpus) -> Self {
        let mut net = SocialNetwork::default();
        let mut users: Vec<UserId> = corpus.users().collect();
        users.sort();
        net.users = users;
        for post in corpus.posts() {
            let Some(rt) = post.in_reply_to else { continue };
            let edge = (post.user, rt.target_user);
            match rt.kind {
                InteractionKind::Reply => net.reply_edges.entry(edge).or_default().push(post.id),
                InteractionKind::Forward => {
                    net.forward_edges.entry(edge).or_default().push(post.id)
                }
            }
            net.children.entry(rt.target).or_default().push(post.id);
        }
        // Posts are iterated in id (= time) order, so children are sorted.
        net.max_fanout = net.children.values().map(Vec::len).max().unwrap_or(0);
        net
    }

    /// All users, sorted.
    pub fn users(&self) -> &[UserId] {
        &self.users
    }

    /// `l_reply(u1, u2)`: the posts in which `u1` replies to `u2`.
    pub fn reply_posts(&self, from: UserId, to: UserId) -> &[TweetId] {
        self.reply_edges.get(&(from, to)).map_or(&[], Vec::as_slice)
    }

    /// `l_forward(u1, u2)`: `u2`'s posts forwarded by `u1` (recorded by the
    /// forwarding post's id).
    pub fn forward_posts(&self, from: UserId, to: UserId) -> &[TweetId] {
        self.forward_edges.get(&(from, to)).map_or(&[], Vec::as_slice)
    }

    /// Whether a reply edge `⟨u1, u2⟩ ∈ E_reply` exists.
    pub fn has_reply_edge(&self, from: UserId, to: UserId) -> bool {
        self.reply_edges.contains_key(&(from, to))
    }

    /// Whether a forward edge exists.
    pub fn has_forward_edge(&self, from: UserId, to: UserId) -> bool {
        self.forward_edges.contains_key(&(from, to))
    }

    /// Number of reply edges.
    pub fn reply_edge_count(&self) -> usize {
        self.reply_edges.len()
    }

    /// Number of forward edges.
    pub fn forward_edge_count(&self) -> usize {
        self.forward_edges.len()
    }

    /// The tweets replying to / forwarding `id`, in time order.
    pub fn children_of(&self, id: TweetId) -> &[TweetId] {
        self.children.get(&id).map_or(&[], Vec::as_slice)
    }

    /// `t_m`: "the maximum number of replied tweets a tweet can have in our
    /// database" (Definition 11).
    pub fn max_fanout(&self) -> usize {
        self.max_fanout
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tklus_geo::Point;
    use tklus_model::Post;

    fn pt() -> Point {
        Point::new_unchecked(43.7, -79.4)
    }

    fn corpus() -> Corpus {
        // u9 posts 1; u3 replies (2), u4 forwards (3); u3 replies again (4);
        // u5 replies to 2 (5).
        Corpus::new(vec![
            Post::original(TweetId(1), UserId(9), pt(), "root"),
            Post::reply(TweetId(2), UserId(3), pt(), "re", TweetId(1), UserId(9)),
            Post::forward(TweetId(3), UserId(4), pt(), "rt", TweetId(1), UserId(9)),
            Post::reply(TweetId(4), UserId(3), pt(), "re2", TweetId(1), UserId(9)),
            Post::reply(TweetId(5), UserId(5), pt(), "re3", TweetId(2), UserId(3)),
        ])
        .unwrap()
    }

    #[test]
    fn edges_and_labels() {
        let net = SocialNetwork::from_corpus(&corpus());
        assert!(net.has_reply_edge(UserId(3), UserId(9)));
        assert!(net.has_forward_edge(UserId(4), UserId(9)));
        assert!(!net.has_reply_edge(UserId(9), UserId(3)));
        assert_eq!(net.reply_posts(UserId(3), UserId(9)), &[TweetId(2), TweetId(4)]);
        assert_eq!(net.forward_posts(UserId(4), UserId(9)), &[TweetId(3)]);
        assert_eq!(net.reply_edge_count(), 2); // (3->9), (5->3)
        assert_eq!(net.forward_edge_count(), 1);
    }

    #[test]
    fn children_in_time_order() {
        let net = SocialNetwork::from_corpus(&corpus());
        assert_eq!(net.children_of(TweetId(1)), &[TweetId(2), TweetId(3), TweetId(4)]);
        assert_eq!(net.children_of(TweetId(2)), &[TweetId(5)]);
        assert!(net.children_of(TweetId(5)).is_empty());
    }

    #[test]
    fn max_fanout_is_global_max() {
        let net = SocialNetwork::from_corpus(&corpus());
        assert_eq!(net.max_fanout(), 3);
        let empty = SocialNetwork::from_corpus(&Corpus::new(vec![]).unwrap());
        assert_eq!(empty.max_fanout(), 0);
    }

    #[test]
    fn users_sorted() {
        let net = SocialNetwork::from_corpus(&corpus());
        assert_eq!(net.users(), &[UserId(3), UserId(4), UserId(5), UserId(9)]);
    }

    #[test]
    fn dangling_targets_make_edges_but_no_children() {
        let c = Corpus::new(vec![Post::reply(
            TweetId(10),
            UserId(1),
            pt(),
            "re",
            TweetId(99),
            UserId(2),
        )])
        .unwrap();
        let net = SocialNetwork::from_corpus(&c);
        assert!(net.has_reply_edge(UserId(1), UserId(2)));
        // Target 99 is outside the corpus but the child index still knows
        // who pointed at it.
        assert_eq!(net.children_of(TweetId(99)), &[TweetId(10)]);
    }
}
