//! Figure 12 — effect of the specific (hot-keyword) popularity bound on
//! Maximum-score query processing.
//!
//! Paper shape: replacing the global Definition 11 bound with the
//! pre-computed per-hot-keyword bound speeds up queries containing hot
//! keywords under both semantics, and the gain grows with the query range
//! (more candidates → more pruning opportunity).

use tklus_bench::{
    banner, build_engine, csv_row, ms, parse_flags, query_workload, standard_corpus, to_query,
};
use tklus_core::{BoundsMode, Ranking};
use tklus_metrics::Summary;
use tklus_model::Semantics;

fn main() {
    let flags = parse_flags();
    banner("Figure 12: specific popularity bound vs global bound", &flags);
    let corpus = standard_corpus(&flags);
    let engine = build_engine(&corpus, 4);
    // Hot-keyword queries where AND/OR semantics actually differ: the
    // 2- and 3-keyword buckets, which all anchor on a Table II keyword.
    let all_specs = query_workload(&corpus);
    let hot: Vec<_> = all_specs
        .iter()
        .filter(|s| {
            s.keywords.len() >= 2 && tklus_gen::TABLE2_KEYWORDS.contains(&s.keywords[0].as_str())
        })
        .cloned()
        .collect();
    let radii = [5.0, 10.0, 20.0, 50.0];
    println!(
        "{:<10} {:<9} {:>12} {:>12} {:>10} {:>14} {:>14}",
        "radius km", "semantic", "global ms", "hot ms", "speedup", "pruned global", "pruned hot"
    );
    for &radius in &radii {
        for semantics in [Semantics::And, Semantics::Or] {
            let mut g_times = Vec::new();
            let mut h_times = Vec::new();
            let mut g_pruned = 0u64;
            let mut h_pruned = 0u64;
            for spec in hot.iter().take(flags.queries.max(5)) {
                let q = to_query(spec, radius, 5, semantics);
                let (rg, sg) = engine.query(&q, Ranking::Max(BoundsMode::Global));
                let (rh, sh) = engine.query(&q, Ranking::Max(BoundsMode::HotKeywords));
                // Pruning must not change results.
                assert_eq!(
                    rg.iter().map(|r| r.user).collect::<Vec<_>>(),
                    rh.iter().map(|r| r.user).collect::<Vec<_>>(),
                    "bound mode changed the result set"
                );
                g_times.push(ms(sg.elapsed));
                h_times.push(ms(sh.elapsed));
                g_pruned += sg.threads_pruned as u64;
                h_pruned += sh.threads_pruned as u64;
            }
            let g = Summary::of(&g_times);
            let h = Summary::of(&h_times);
            let speedup = g.mean / h.mean.max(1e-9);
            println!(
                "{:<10} {:<9} {:>12.2} {:>12.2} {:>10.2} {:>14} {:>14}",
                radius,
                semantics.to_string(),
                g.mean,
                h.mean,
                speedup,
                g_pruned,
                h_pruned
            );
            csv_row(&[
                radius.to_string(),
                semantics.to_string(),
                format!("{:.4}", g.mean),
                format!("{:.4}", h.mean),
                format!("{speedup:.3}"),
                g_pruned.to_string(),
                h_pruned.to_string(),
            ]);
        }
    }
    println!("\npaper shape: hot-keyword bounds beat the global bound under both semantics, more so at larger ranges");
}
