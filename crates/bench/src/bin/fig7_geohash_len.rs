//! Figure 7 — effect of geohash encoding length on query processing.
//!
//! Paper shape: for city-scale radii (5–20 km), longer encodings win —
//! shorter encodings mean giant cells whose postings are mostly outside
//! the query circle, so the processor wades through far more candidates.
//! The reproduction runs the same random queries against indexes built at
//! lengths 1–4 and reports mean query time and candidate counts.

use tklus_bench::{
    banner, build_engine, csv_row, ms, parse_flags, query_workload, standard_corpus, to_query,
};
use tklus_core::Ranking;
use tklus_metrics::Summary;
use tklus_model::Semantics;

fn main() {
    let flags = parse_flags();
    banner("Figure 7: effect of geohash encoding length", &flags);
    let corpus = standard_corpus(&flags);
    let specs = query_workload(&corpus);
    let radii = [5.0, 10.0, 15.0, 20.0];
    println!(
        "{:<8} {:>10} {:>14} {:>12} {:>12}",
        "length", "radius km", "mean ms", "candidates", "cover cells"
    );
    for len in 1..=4usize {
        let engine = build_engine(&corpus, len);
        for &radius in &radii {
            let mut times = Vec::new();
            let mut cands = Vec::new();
            let mut cells = Vec::new();
            for spec in specs.iter().take(flags.queries) {
                let q = to_query(spec, radius, 5, Semantics::Or);
                let (_, stats) = engine.query(&q, Ranking::Sum);
                times.push(ms(stats.elapsed));
                cands.push(stats.candidates as f64);
                cells.push(stats.cover_cells as f64);
            }
            let t = Summary::of(&times);
            let c = Summary::of(&cands);
            let g = Summary::of(&cells);
            println!(
                "{:<8} {:>10} {:>14.2} {:>12.0} {:>12.0}",
                len, radius, t.mean, c.mean, g.mean
            );
            csv_row(&[
                len.to_string(),
                radius.to_string(),
                format!("{:.4}", t.mean),
                format!("{:.0}", c.mean),
                format!("{:.0}", g.mean),
            ]);
        }
    }
    println!("\npaper shape: longer encodings process fewer out-of-range candidates and answer faster at 5-20 km radii");
}
