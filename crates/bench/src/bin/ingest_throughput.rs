//! Streaming-ingest throughput of the crash-safe WAL store
//! (DESIGN.md §15), emitted as `results/BENCH_ingest.json`.
//!
//! Three measurements:
//!
//! 1. **Sustained ingest rate** (posts/s) into an [`IngestStore`] on the
//!    real filesystem, one run per fsync policy — `Always` (every ack
//!    durable), `EveryN(64)` (group commit), `Never` (OS-buffered). The
//!    spread is the price of the durability guarantee.
//! 2. **Replay rate** (posts/s): reopening the store and redoing the whole
//!    WAL into the live memtable — the crash-recovery cost curve.
//! 3. **Query latency under ingest**: one writer streams posts while
//!    reader threads measure top-k latency against the moving sealed∪live
//!    snapshot, versus the same workload on a quiescent store. This
//!    contention curve needs spare cores: below [`MIN_CONCURRENT_CORES`]
//!    the JSON records `"valid": false` with a skip reason instead of
//!    fabricated numbers.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;
use tklus_bench::{banner, csv_row, parse_flags, query_workload, standard_corpus, to_query};
use tklus_core::{BoundsMode, EngineConfig, Ranking};
use tklus_model::{Post, Semantics, TklusQuery};
use tklus_wal::{FsyncPolicy, IngestStore, StdFs, StoreConfig, WalConfig, WalFs};

/// Minimum host cores for the ingest-vs-query contention section.
const MIN_CONCURRENT_CORES: usize = 4;

/// Caps the `FsyncPolicy::Always` run — one fsync per post is the point,
/// and ~2k of them measure it without stalling the whole bench on a slow
/// disk.
const ALWAYS_POSTS_CAP: usize = 2_000;

fn store_at(dir: &std::path::Path, fsync: FsyncPolicy) -> IngestStore {
    let _ = std::fs::remove_dir_all(dir);
    let fs: Arc<dyn WalFs> = Arc::new(StdFs::open(dir).expect("open bench wal dir"));
    let config = StoreConfig {
        engine: EngineConfig { parallelism: 1, ..EngineConfig::default() },
        wal: WalConfig { fsync, ..WalConfig::default() },
        ..StoreConfig::default()
    };
    IngestStore::open(fs, config).expect("open ingest store").0
}

fn ingest_rate(store: &IngestStore, posts: &[Post]) -> f64 {
    let t = Instant::now();
    for post in posts {
        store.ingest(post.clone()).expect("bench ingest");
    }
    posts.len() as f64 / t.elapsed().as_secs_f64()
}

fn median_us(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    if samples.is_empty() {
        return 0.0;
    }
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        (samples[mid - 1] + samples[mid]) / 2.0
    }
}

/// Median query latency (µs) over `rounds` passes of the workload.
fn query_median_us(store: &IngestStore, requests: &[(TklusQuery, Ranking)], rounds: usize) -> f64 {
    let mut samples = Vec::with_capacity(requests.len() * rounds);
    for _ in 0..rounds {
        for (q, ranking) in requests {
            let t = Instant::now();
            let top = store.try_query(q, *ranking).expect("bench query");
            std::hint::black_box(top);
            samples.push(t.elapsed().as_secs_f64() * 1e6);
        }
    }
    median_us(samples)
}

fn main() {
    let flags = parse_flags();
    banner("Ingest throughput: WAL-acked streaming writes", &flags);
    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let corpus = standard_corpus(&flags);
    let posts = corpus.posts();
    let base = std::env::temp_dir().join(format!("tklus-bench-ingest-{}", std::process::id()));

    let requests: Vec<(TklusQuery, Ranking)> = query_workload(&corpus)
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let ranking = match i % 3 {
                0 => Ranking::Sum,
                1 => Ranking::Max(BoundsMode::Global),
                _ => Ranking::Max(BoundsMode::HotKeywords),
            };
            (to_query(spec, 10.0, 5, Semantics::Or), ranking)
        })
        .collect();

    // -- Section 1: sustained ingest rate per fsync policy. --------------
    println!("{:<16} {:>10} {:>14}", "fsync policy", "posts", "posts/s");
    let mut policy_rows: Vec<(&str, usize, f64)> = Vec::new();
    for (name, fsync, cap) in [
        ("always", FsyncPolicy::Always, ALWAYS_POSTS_CAP.min(posts.len())),
        ("every-64", FsyncPolicy::EveryN(64), posts.len()),
        ("never", FsyncPolicy::Never, posts.len()),
    ] {
        let store = store_at(&base.join(name), fsync);
        let rate = ingest_rate(&store, &posts[..cap]);
        println!("{:<16} {:>10} {:>14.0}", name, cap, rate);
        csv_row(&["ingest".into(), name.to_string(), cap.to_string(), format!("{rate:.0}")]);
        policy_rows.push((name, cap, rate));
    }

    // -- Section 2: replay (crash-recovery) rate. ------------------------
    // The "never" store holds the full corpus in its WAL; reopening redoes
    // every record into the live state.
    let replay_rate = {
        let dir = base.join("never");
        let fs: Arc<dyn WalFs> = Arc::new(StdFs::open(&dir).expect("reopen bench wal dir"));
        let config = StoreConfig {
            engine: EngineConfig { parallelism: 1, ..EngineConfig::default() },
            ..StoreConfig::default()
        };
        let t = Instant::now();
        let (store, report) = IngestStore::open(fs, config).expect("replay");
        let rate = report.live_posts as f64 / t.elapsed().as_secs_f64();
        println!("replay: {} records at {:.0} posts/s", report.live_posts, rate);
        csv_row(&["replay".into(), report.live_posts.to_string(), format!("{rate:.0}")]);
        drop(store);
        rate
    };

    // -- Section 3: query latency under concurrent ingest. ---------------
    let concurrent_valid = host_cores >= MIN_CONCURRENT_CORES;
    let mut quiescent_us = 0.0f64;
    let mut under_ingest_us = 0.0f64;
    if concurrent_valid {
        let store = store_at(&base.join("concurrent"), FsyncPolicy::EveryN(64));
        let split = posts.len() / 2;
        for post in &posts[..split] {
            store.ingest(post.clone()).expect("preload ingest");
        }
        store.compact().expect("seal the preloaded half");
        let rounds = flags.queries.clamp(2, 8);
        quiescent_us = query_median_us(&store, &requests, rounds);

        let done = AtomicBool::new(false);
        let mut measured = 0.0;
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for post in &posts[split..] {
                    store.ingest(post.clone()).expect("concurrent ingest");
                    if done.load(Ordering::Relaxed) {
                        break;
                    }
                }
                done.store(true, Ordering::Relaxed);
            });
            measured = query_median_us(&store, &requests, rounds);
            done.store(true, Ordering::Relaxed);
        });
        under_ingest_us = measured;
        println!(
            "query median: {quiescent_us:.1} us quiescent, {under_ingest_us:.1} us under ingest"
        );
        csv_row(&[
            "query-under-ingest".into(),
            format!("{quiescent_us:.1}"),
            format!("{under_ingest_us:.1}"),
        ]);
    } else {
        println!(
            "host cores: {host_cores} < {MIN_CONCURRENT_CORES}; skipping the concurrent section \
             (an ingest/query contention curve on a starved host is not a measurement)"
        );
    }

    // Hand-rolled JSON, same discipline as BENCH_qps.json: flat scalar
    // lines `json_number_field` can read back.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"ingest_throughput\",\n");
    json.push_str(&format!("  \"posts\": {},\n", flags.posts));
    json.push_str(&format!("  \"seed\": {},\n", flags.seed));
    json.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    for (name, cap, rate) in &policy_rows {
        let key = name.replace('-', "_");
        json.push_str(&format!("  \"ingest_{key}_posts\": {cap},\n"));
        json.push_str(&format!("  \"ingest_{key}_posts_per_s\": {rate:.0},\n"));
    }
    json.push_str(&format!("  \"replay_posts_per_s\": {replay_rate:.0},\n"));
    json.push_str("  \"query_under_ingest\": {\n");
    json.push_str(&format!("    \"valid\": {concurrent_valid},\n"));
    if concurrent_valid {
        json.push_str("    \"skip_reason\": null,\n");
        json.push_str(&format!("    \"quiescent_median_us\": {quiescent_us:.1},\n"));
        json.push_str(&format!("    \"under_ingest_median_us\": {under_ingest_us:.1}\n"));
    } else {
        json.push_str(&format!(
            "    \"skip_reason\": \"host has {host_cores} cores, section needs >= \
             {MIN_CONCURRENT_CORES}\"\n"
        ));
    }
    json.push_str("  }\n");
    json.push_str("}\n");

    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_ingest.json", &json).expect("write results/BENCH_ingest.json");
    println!("wrote results/BENCH_ingest.json");

    let _ = std::fs::remove_dir_all(&base);
}
