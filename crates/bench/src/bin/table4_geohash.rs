//! Table IV — geohash encoding length example.
//!
//! Reproduces the paper's worked example: the coordinate
//! `(-23.994140625, -46.23046875)` encoded at lengths 1 through 4.

use tklus_bench::csv_row;
use tklus_geo::{encode, Cell, Point};

fn main() {
    println!("== Table IV: geohash encoding length example ==");
    let point = Point::new_unchecked(-23.994140625, -46.23046875);
    println!("coordinate: {point}");
    println!("{:<8} {:<10} {:>16} {:>16}", "length", "geohash", "cell width km", "cell height km");
    for len in 1..=4usize {
        let gh = encode(&point, len).expect("valid length");
        let cell = Cell::from_geohash(&gh);
        let west = Point::new_unchecked(cell.center().lat(), cell.lon_lo());
        let east = Point::new_unchecked(cell.center().lat(), cell.lon_hi().min(180.0));
        let south = Point::new_unchecked(cell.lat_lo(), cell.center().lon());
        let north = Point::new_unchecked(cell.lat_hi().min(90.0), cell.center().lon());
        let width = west.euclidean_km(&east);
        let height = south.euclidean_km(&north);
        println!("{:<8} {:<10} {:>16.1} {:>16.1}", len, gh.to_string(), width, height);
        csv_row(&[len.to_string(), gh.to_string(), format!("{width:.1}"), format!("{height:.1}")]);
    }
    println!("\npaper Table IV: 6, 6g, 6gx, 6gxp");
}
