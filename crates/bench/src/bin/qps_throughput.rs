//! Query throughput of one shared engine under concurrent clients.
//!
//! The tentpole measurement for the `&self` query API: N client threads
//! hammer a single `TklusEngine` with the Section VI-B1 workload and we
//! report aggregate queries/second, plus the same workload pushed through
//! [`TklusEngine::query_batch`]. Emits `results/BENCH_qps.json` so the
//! performance trajectory stays machine-readable across PRs.
//!
//! Scaling expectation: QPS grows with client threads up to the host's
//! core count (a 4-core runner should show ≥ 2× over single-client); on a
//! single-core host the curve is flat and the JSON records that honestly
//! via `host_cores`.

use std::time::Instant;
use tklus_bench::{
    banner, build_engine, csv_row, parse_flags, query_workload, standard_corpus, to_query,
};
use tklus_core::{BoundsMode, Ranking, TklusEngine};
use tklus_model::{Semantics, TklusQuery};

/// Aggregate QPS of `clients` threads each running `per_client` queries
/// round-robin over the workload against one shared engine.
fn run_clients(
    engine: &TklusEngine,
    requests: &[(TklusQuery, Ranking)],
    clients: usize,
    per_client: usize,
) -> f64 {
    let t = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            scope.spawn(move || {
                for i in 0..per_client {
                    let (q, ranking) = &requests[(c * 7 + i) % requests.len()];
                    let (top, _) = engine.query(q, *ranking);
                    std::hint::black_box(top);
                }
            });
        }
    });
    (clients * per_client) as f64 / t.elapsed().as_secs_f64()
}

/// QPS of one `query_batch` call over `total` requests (the engine's own
/// `parallelism` knob supplies the concurrency).
fn run_batch(engine: &TklusEngine, requests: &[(TklusQuery, Ranking)], total: usize) -> f64 {
    let batch: Vec<(TklusQuery, Ranking)> =
        (0..total).map(|i| requests[i % requests.len()].clone()).collect();
    let t = Instant::now();
    let out = engine.query_batch(&batch);
    let qps = total as f64 / t.elapsed().as_secs_f64();
    std::hint::black_box(out);
    qps
}

fn main() {
    let flags = parse_flags();
    banner("QPS throughput: N client threads, one shared engine", &flags);
    let corpus = standard_corpus(&flags);
    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    let specs = query_workload(&corpus);
    let requests: Vec<(TklusQuery, Ranking)> = specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let ranking = match i % 3 {
                0 => Ranking::Sum,
                1 => Ranking::Max(BoundsMode::Global),
                _ => Ranking::Max(BoundsMode::HotKeywords),
            };
            (to_query(spec, 10.0, 5, Semantics::Or), ranking)
        })
        .collect();

    let per_client = flags.queries.max(10) * 6;
    let thread_counts = [1usize, 2, 4, 8];

    // Client threads supply all the concurrency here, so the engine itself
    // runs each query sequentially (parallelism 1).
    let engine = build_engine(&corpus, 4);
    // Warm-up: fault in every partition and metadata page once.
    run_clients(&engine, &requests, 1, requests.len().min(per_client));

    println!("{:<16} {:>10} {:>12}", "mode", "threads", "qps");
    let mut client_rows = Vec::new();
    for &clients in &thread_counts {
        let qps = run_clients(&engine, &requests, clients, per_client);
        println!("{:<16} {:>10} {:>12.1}", "client-threads", clients, qps);
        csv_row(&["client-threads".into(), clients.to_string(), format!("{qps:.1}")]);
        client_rows.push((clients, qps));
    }

    let mut batch_rows = Vec::new();
    for &parallelism in &thread_counts {
        let batch_engine = {
            let config = tklus_core::EngineConfig {
                index: tklus_index::IndexBuildConfig { geohash_len: 4, ..Default::default() },
                hot_keywords: 200,
                parallelism,
                ..Default::default()
            };
            TklusEngine::build(&corpus, &config).0
        };
        let qps = run_batch(&batch_engine, &requests, per_client * parallelism);
        println!("{:<16} {:>10} {:>12.1}", "query-batch", parallelism, qps);
        csv_row(&["query-batch".into(), parallelism.to_string(), format!("{qps:.1}")]);
        batch_rows.push((parallelism, qps));
    }

    let single = client_rows[0].1;
    let best = client_rows.iter().map(|&(_, q)| q).fold(0.0f64, f64::max);
    let speedup = best / single.max(1e-9);
    println!("host cores: {host_cores}; best client-thread speedup over single: {speedup:.2}x");

    // Hand-rolled JSON (serde is a no-op stand-in in this workspace; the
    // format below is flat enough that string assembly is the simpler
    // dependency surface).
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"qps_throughput\",\n");
    json.push_str(&format!("  \"posts\": {},\n", flags.posts));
    json.push_str(&format!("  \"seed\": {},\n", flags.seed));
    json.push_str(&format!("  \"queries_per_client\": {per_client},\n"));
    json.push_str(&format!("  \"workload_queries\": {},\n", requests.len()));
    json.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    json.push_str("  \"client_threads\": [\n");
    for (i, (clients, qps)) in client_rows.iter().enumerate() {
        let comma = if i + 1 < client_rows.len() { "," } else { "" };
        json.push_str(&format!("    {{ \"threads\": {clients}, \"qps\": {qps:.1} }}{comma}\n"));
    }
    json.push_str("  ],\n");
    json.push_str("  \"query_batch\": [\n");
    for (i, (parallelism, qps)) in batch_rows.iter().enumerate() {
        let comma = if i + 1 < batch_rows.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{ \"parallelism\": {parallelism}, \"qps\": {qps:.1} }}{comma}\n"
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"best_speedup_over_single_client\": {speedup:.2}\n"));
    json.push_str("}\n");

    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_qps.json", &json).expect("write results/BENCH_qps.json");
    println!("wrote results/BENCH_qps.json");
}
