//! Query throughput of one shared engine under concurrent clients, plus
//! the flat-vs-block single-thread latency comparison.
//!
//! Two measurements, emitted together as `results/BENCH_qps.json`:
//!
//! 1. **Single-thread median latency**, flat layout vs block layout, over
//!    the Section VI-B1 workload. This is the credible number on any host:
//!    it needs no spare cores. The `--baseline` regression gate compares
//!    the *block/flat ratio* (fail when it worsens by more than 10% over
//!    the checked-in baseline): both medians come from the same run on the
//!    same host, so CPU speed and background load cancel — an absolute-µs
//!    gate would measure the CI runner, not the code.
//! 2. **Multi-client / batch QPS sweep** ([1, 2, 4, 8] threads against one
//!    shared engine). A scaling curve measured on a starved host is noise
//!    presented as signal, so the sweep only runs when the host has at
//!    least [`MIN_SWEEP_CORES`] cores; below that the JSON records
//!    `"valid": false` with a skip reason instead of fabricated numbers.

use std::time::Instant;
use tklus_bench::{
    banner, build_engine, build_engine_with_format, csv_row, json_number_field, parse_flags,
    query_workload, standard_corpus, to_query,
};
use tklus_core::{BoundsMode, Ranking, TklusEngine};
use tklus_index::PostingsFormat;
use tklus_model::{Semantics, TklusQuery};

/// Minimum host cores for the multi-client sweep to be trustworthy.
const MIN_SWEEP_CORES: usize = 4;

/// Relative regression the `--baseline` gate tolerates before failing.
const GATE_TOLERANCE: f64 = 0.10;

/// Aggregate QPS of `clients` threads each running `per_client` queries
/// round-robin over the workload against one shared engine.
fn run_clients(
    engine: &TklusEngine,
    requests: &[(TklusQuery, Ranking)],
    clients: usize,
    per_client: usize,
) -> f64 {
    let t = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            scope.spawn(move || {
                for i in 0..per_client {
                    let (q, ranking) = &requests[(c * 7 + i) % requests.len()];
                    let (top, _) = engine.query(q, *ranking);
                    std::hint::black_box(top);
                }
            });
        }
    });
    (clients * per_client) as f64 / t.elapsed().as_secs_f64()
}

/// QPS of one `query_batch` call over `total` requests (the engine's own
/// `parallelism` knob supplies the concurrency).
fn run_batch(engine: &TklusEngine, requests: &[(TklusQuery, Ranking)], total: usize) -> f64 {
    let batch: Vec<(TklusQuery, Ranking)> =
        (0..total).map(|i| requests[i % requests.len()].clone()).collect();
    let t = Instant::now();
    let out = engine.query_batch(&batch);
    let qps = total as f64 / t.elapsed().as_secs_f64();
    std::hint::black_box(out);
    qps
}

/// Median latency (µs) of the single-threaded workload, end-to-end and
/// for the fetch+combine stages the block layout targets.
struct SingleThread {
    e2e_us: f64,
    fetch_combine_us: f64,
}

fn median_us(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    if samples.is_empty() {
        return 0.0;
    }
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        (samples[mid - 1] + samples[mid]) / 2.0
    }
}

/// Runs the whole workload `rounds` times on one thread, recording each
/// query's end-to-end and fetch+combine stage time from its `QueryStats`.
fn run_single_thread(
    engine: &TklusEngine,
    requests: &[(TklusQuery, Ranking)],
    rounds: usize,
) -> SingleThread {
    // Warm-up: fault in every partition and metadata page once.
    for (q, ranking) in requests {
        let (top, _) = engine.query(q, *ranking);
        std::hint::black_box(top);
    }
    let mut e2e = Vec::with_capacity(requests.len() * rounds);
    let mut fetch_combine = Vec::with_capacity(requests.len() * rounds);
    for _ in 0..rounds {
        for (q, ranking) in requests {
            let (top, stats) = engine.query(q, *ranking);
            std::hint::black_box(top);
            e2e.push(stats.elapsed.as_secs_f64() * 1e6);
            fetch_combine.push((stats.stages.fetch + stats.stages.combine).as_secs_f64() * 1e6);
        }
    }
    SingleThread { e2e_us: median_us(e2e), fetch_combine_us: median_us(fetch_combine) }
}

fn main() {
    let flags = parse_flags();
    banner("QPS throughput: N client threads, one shared engine", &flags);
    let corpus = standard_corpus(&flags);
    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    let specs = query_workload(&corpus);
    let requests: Vec<(TklusQuery, Ranking)> = specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let ranking = match i % 3 {
                0 => Ranking::Sum,
                1 => Ranking::Max(BoundsMode::Global),
                _ => Ranking::Max(BoundsMode::HotKeywords),
            };
            (to_query(spec, 10.0, 5, Semantics::Or), ranking)
        })
        .collect();

    // -- Section 1: single-thread flat vs block median latency. ----------
    let rounds = flags.queries.clamp(2, 10);
    let flat_engine = build_engine_with_format(&corpus, 4, PostingsFormat::Flat);
    let flat = run_single_thread(&flat_engine, &requests, rounds);
    drop(flat_engine);
    let block_engine = build_engine_with_format(&corpus, 4, PostingsFormat::Block);
    let block = run_single_thread(&block_engine, &requests, rounds);
    drop(block_engine);

    println!("{:<16} {:>14} {:>18}", "layout", "median e2e us", "fetch+combine us");
    for (name, st) in [("flat", &flat), ("block", &block)] {
        println!("{:<16} {:>14.1} {:>18.1}", name, st.e2e_us, st.fetch_combine_us);
        csv_row(&[
            "single-thread".into(),
            name.to_string(),
            format!("{:.1}", st.e2e_us),
            format!("{:.1}", st.fetch_combine_us),
        ]);
    }

    // -- Section 2: multi-client / batch sweep, gated on host cores. -----
    let per_client = flags.queries.max(10) * 6;
    let thread_counts = [1usize, 2, 4, 8];
    let sweep_valid = host_cores >= MIN_SWEEP_CORES;
    let mut client_rows = Vec::new();
    let mut batch_rows = Vec::new();
    let mut speedup = 1.0f64;

    if sweep_valid {
        // Client threads supply all the concurrency here, so the engine
        // itself runs each query sequentially (parallelism 1).
        let engine = build_engine(&corpus, 4);
        run_clients(&engine, &requests, 1, requests.len().min(per_client));

        println!("{:<16} {:>10} {:>12}", "mode", "threads", "qps");
        for &clients in &thread_counts {
            let qps = run_clients(&engine, &requests, clients, per_client);
            println!("{:<16} {:>10} {:>12.1}", "client-threads", clients, qps);
            csv_row(&["client-threads".into(), clients.to_string(), format!("{qps:.1}")]);
            client_rows.push((clients, qps));
        }

        for &parallelism in &thread_counts {
            let batch_engine = {
                let config = tklus_core::EngineConfig {
                    index: tklus_index::IndexBuildConfig { geohash_len: 4, ..Default::default() },
                    hot_keywords: 200,
                    parallelism,
                    ..Default::default()
                };
                TklusEngine::build(&corpus, &config).0
            };
            let qps = run_batch(&batch_engine, &requests, per_client * parallelism);
            println!("{:<16} {:>10} {:>12.1}", "query-batch", parallelism, qps);
            csv_row(&["query-batch".into(), parallelism.to_string(), format!("{qps:.1}")]);
            batch_rows.push((parallelism, qps));
        }

        let single = client_rows[0].1;
        let best = client_rows.iter().map(|&(_, q)| q).fold(0.0f64, f64::max);
        speedup = best / single.max(1e-9);
        println!("host cores: {host_cores}; best client-thread speedup over single: {speedup:.2}x");
    } else {
        println!(
            "host cores: {host_cores} < {MIN_SWEEP_CORES}; skipping multi-client sweep \
             (a contention curve on a starved host is not a scaling measurement)"
        );
    }

    // Hand-rolled JSON (serde is a no-op stand-in in this workspace; the
    // format below is flat enough — one scalar per line — that string
    // assembly is the simpler dependency surface, and `json_number_field`
    // can read it back for the regression gate).
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"qps_throughput\",\n");
    json.push_str(&format!("  \"posts\": {},\n", flags.posts));
    json.push_str(&format!("  \"seed\": {},\n", flags.seed));
    json.push_str(&format!("  \"queries_per_client\": {per_client},\n"));
    json.push_str(&format!("  \"workload_queries\": {},\n", requests.len()));
    json.push_str(&format!("  \"single_thread_rounds\": {rounds},\n"));
    json.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    json.push_str(&format!("  \"single_thread_flat_median_latency_us\": {:.1},\n", flat.e2e_us));
    json.push_str(&format!("  \"single_thread_block_median_latency_us\": {:.1},\n", block.e2e_us));
    json.push_str(&format!(
        "  \"single_thread_flat_median_fetch_combine_us\": {:.1},\n",
        flat.fetch_combine_us
    ));
    json.push_str(&format!(
        "  \"single_thread_block_median_fetch_combine_us\": {:.1},\n",
        block.fetch_combine_us
    ));
    let ratio = block.e2e_us / flat.e2e_us.max(1e-9);
    json.push_str(&format!("  \"single_thread_block_over_flat_ratio\": {ratio:.4},\n"));
    json.push_str("  \"multi_client_sweep\": {\n");
    json.push_str(&format!("    \"valid\": {sweep_valid},\n"));
    if sweep_valid {
        json.push_str("    \"skip_reason\": null,\n");
    } else {
        json.push_str(&format!(
            "    \"skip_reason\": \"host has {host_cores} cores, sweep needs >= {MIN_SWEEP_CORES}\",\n"
        ));
    }
    json.push_str("    \"client_threads\": [\n");
    for (i, (clients, qps)) in client_rows.iter().enumerate() {
        let comma = if i + 1 < client_rows.len() { "," } else { "" };
        json.push_str(&format!("      {{ \"threads\": {clients}, \"qps\": {qps:.1} }}{comma}\n"));
    }
    json.push_str("    ],\n");
    json.push_str("    \"query_batch\": [\n");
    for (i, (parallelism, qps)) in batch_rows.iter().enumerate() {
        let comma = if i + 1 < batch_rows.len() { "," } else { "" };
        json.push_str(&format!(
            "      {{ \"parallelism\": {parallelism}, \"qps\": {qps:.1} }}{comma}\n"
        ));
    }
    json.push_str("    ],\n");
    json.push_str(&format!("    \"best_speedup_over_single_client\": {speedup:.2}\n"));
    json.push_str("  }\n");
    json.push_str("}\n");

    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_qps.json", &json).expect("write results/BENCH_qps.json");
    println!("wrote results/BENCH_qps.json");

    // -- Regression gate against a checked-in baseline. ------------------
    if let Some(path) = &flags.baseline {
        let baseline_json =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
        let key = "single_thread_block_over_flat_ratio";
        let baseline = json_number_field(&baseline_json, key)
            .unwrap_or_else(|| panic!("baseline {path} has no numeric field {key:?}"));
        let limit = baseline * (1.0 + GATE_TOLERANCE);
        let delta_pct = (ratio / baseline - 1.0) * 100.0;
        println!(
            "gate: block/flat single-thread median ratio {ratio:.4} vs baseline \
             {baseline:.4} ({delta_pct:+.1}%, limit {limit:.4})"
        );
        if ratio > limit {
            eprintln!(
                "REGRESSION: block/flat single-thread median latency ratio {ratio:.4} \
                 exceeds baseline {baseline:.4} by more than {:.0}%",
                GATE_TOLERANCE * 100.0
            );
            std::process::exit(1);
        }
        println!("gate: within tolerance");
    }
}
