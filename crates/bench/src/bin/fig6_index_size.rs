//! Figure 6 — index size vs geohash encoding length.
//!
//! Paper shape: the index occupies about the same space (≈3.5 GB for 514M
//! tweets) regardless of the geohash configuration — postings dominate and
//! their total count is invariant to how finely cells split them. The
//! reproduction reports inverted-index bytes on the DFS plus the in-memory
//! forward-index footprint per length.

use tklus_bench::{banner, csv_row, parse_flags, standard_corpus};
use tklus_index::{build_index, IndexBuildConfig};

fn main() {
    let flags = parse_flags();
    banner("Figure 6: index size vs geohash length", &flags);
    let corpus = standard_corpus(&flags);
    println!(
        "{:<8} {:>16} {:>14} {:>12} {:>18}",
        "length", "inverted bytes", "forward bytes", "keys", "bytes/posting"
    );
    for len in 1..=4usize {
        let config = IndexBuildConfig { geohash_len: len, ..IndexBuildConfig::default() };
        let (index, report) = build_index(corpus.posts(), &config);
        let per_posting = report.index_bytes as f64 / report.postings.max(1) as f64;
        println!(
            "{:<8} {:>16} {:>14} {:>12} {:>18.2}",
            len,
            report.index_bytes,
            index.forward().size_bytes(),
            report.keys,
            per_posting
        );
        csv_row(&[
            len.to_string(),
            report.index_bytes.to_string(),
            index.forward().size_bytes().to_string(),
            report.keys.to_string(),
            format!("{per_posting:.2}"),
        ]);
    }
    println!("\npaper shape: size steady (~3.5 GB) across geohash lengths; forward index stays small enough for RAM");
}
