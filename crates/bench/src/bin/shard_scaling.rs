//! Shard scaling: fanout, bound-skip rate, and latency vs shard count
//! (DESIGN.md §14).
//!
//! The scatter-gather router promises two things a plot can show: the
//! circle cover restricts dispatch to the shards it intersects (fanout
//! stays far below N for non-global queries), and Definition 11 upper
//! bounds prune dispatched shards that cannot beat the provisional k-th
//! score (Maximum-score ranking only). This bench replays the standard
//! workload at several radii against N ∈ {1, 2, 4, 8, 16} sharded
//! engines, verifies every sharded answer bitwise against the monolithic
//! engine before reporting a single number, and records per-N median
//! latency, mean fanout, and the shards-skipped rate.
//!
//! Emits `results/BENCH_shard.json`. The process exits nonzero if any
//! answer diverges from the monolithic reference, if any query degrades,
//! or if no shard was ever skipped by bound across the N > 1 runs — the
//! acceptance bar is >0% shard skipping on non-global queries.

use std::time::Instant;
use tklus_bench::{banner, csv_row, ms, parse_flags, query_workload, standard_corpus, to_query};
use tklus_core::{BoundsMode, EngineConfig, RankedUser, Ranking, TklusEngine};
use tklus_model::{Semantics, TklusQuery};
use tklus_shard::ShardedEngine;

const SHARD_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];
/// Query radii in km: tight urban circles through cross-region sweeps.
/// The small radii are the "non-global" queries the fanout claim is
/// about; the large ones force multi-shard covers so the bound-skip
/// path actually runs at every N.
const RADII_KM: [f64; 3] = [5.0, 25.0, 120.0];

fn bench_config() -> EngineConfig {
    EngineConfig { hot_keywords: 200, cache_pages: 8192, ..EngineConfig::default() }
}

struct NShardReport {
    n_shards: usize,
    p50_ms: f64,
    p90_ms: f64,
    mean_fanout: f64,
    dispatched: u64,
    skipped: u64,
    skip_rate_pct: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn assert_bitwise(got: &[RankedUser], want: &[RankedUser], label: &str) {
    assert_eq!(got.len(), want.len(), "{label}: cardinality diverged from monolithic");
    for (g, w) in got.iter().zip(want) {
        assert_eq!(g.user, w.user, "{label}: ranking diverged from monolithic");
        assert_eq!(g.score.to_bits(), w.score.to_bits(), "{label}: score bits diverged");
    }
}

fn main() {
    let flags = parse_flags();
    banner("Shard scaling: fanout, bound-skip rate, latency vs N", &flags);
    let corpus = standard_corpus(&flags);
    let config = bench_config();
    let mono = TklusEngine::build(&corpus, &config).0;

    let specs = query_workload(&corpus);
    let requests: Vec<(TklusQuery, Ranking)> = specs
        .iter()
        .enumerate()
        .flat_map(|(i, spec)| {
            let ranking = match i % 3 {
                0 => Ranking::Sum,
                1 => Ranking::Max(BoundsMode::HotKeywords),
                _ => Ranking::Max(BoundsMode::Global),
            };
            // Alternate semantics: AND queries are where Def. 11 bites
            // hardest — a shard whose dictionary lacks any conjunct has
            // an upper bound of exactly zero and is skipped outright.
            let semantics = if i % 2 == 0 { Semantics::Or } else { Semantics::And };
            RADII_KM.iter().map(move |&r| (to_query(spec, r, 5, semantics), ranking))
        })
        .collect();
    println!(
        "workload: {} queries ({} specs x {} radii)",
        requests.len(),
        specs.len(),
        RADII_KM.len()
    );

    // Monolithic reference answers: every sharded answer must match these
    // bitwise before its latency counts for anything.
    let reference: Vec<Vec<RankedUser>> =
        requests.iter().map(|(q, r)| mono.query(q, *r).0).collect();

    let mut reports = Vec::new();
    let mut skipped_beyond_one_shard = 0u64;
    for n in SHARD_COUNTS {
        let engine = ShardedEngine::try_build(&corpus, n, &config)
            .unwrap_or_else(|e| panic!("building {n}-shard engine: {e}"));
        // Warm pass: fault in partitions and metadata, verify answers.
        for ((q, r), want) in requests.iter().zip(&reference) {
            let out = engine.query(q, *r);
            assert!(out.completeness.is_complete(), "N={n}: fault-free query degraded");
            assert_bitwise(&out.users, want, &format!("N={n} warm-up"));
        }

        let mut latencies = Vec::with_capacity(requests.len());
        let mut fanout_sum = 0u64;
        let mut skipped = 0u64;
        for ((q, r), want) in requests.iter().zip(&reference) {
            let t = Instant::now();
            let out = engine.query(q, *r);
            latencies.push(ms(t.elapsed()));
            assert_bitwise(&out.users, want, &format!("N={n} timed"));
            fanout_sum += out.fanout as u64;
            skipped += out.skipped_by_bound.len() as u64;
        }
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        if n > 1 {
            skipped_beyond_one_shard += skipped;
        }
        reports.push(NShardReport {
            n_shards: n,
            p50_ms: percentile(&latencies, 0.5),
            p90_ms: percentile(&latencies, 0.9),
            mean_fanout: fanout_sum as f64 / requests.len() as f64,
            dispatched: fanout_sum,
            skipped,
            skip_rate_pct: skipped as f64 / (fanout_sum + skipped).max(1) as f64 * 100.0,
        });
    }

    println!(
        "{:<8} {:>10} {:>10} {:>12} {:>12} {:>10} {:>10}",
        "shards", "p50 ms", "p90 ms", "mean fanout", "dispatched", "skipped", "skip %"
    );
    for r in &reports {
        println!(
            "{:<8} {:>10.3} {:>10.3} {:>12.2} {:>12} {:>10} {:>10.2}",
            r.n_shards, r.p50_ms, r.p90_ms, r.mean_fanout, r.dispatched, r.skipped, r.skip_rate_pct
        );
        csv_row(&[
            r.n_shards.to_string(),
            format!("{:.3}", r.p50_ms),
            format!("{:.3}", r.p90_ms),
            format!("{:.2}", r.mean_fanout),
            r.dispatched.to_string(),
            r.skipped.to_string(),
            format!("{:.2}", r.skip_rate_pct),
        ]);
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"shard_scaling\",\n");
    json.push_str(&format!("  \"posts\": {},\n", flags.posts));
    json.push_str(&format!("  \"seed\": {},\n", flags.seed));
    json.push_str(&format!("  \"workload_queries\": {},\n", requests.len()));
    for r in &reports {
        let n = r.n_shards;
        json.push_str(&format!("  \"n{n}_p50_ms\": {:.4},\n", r.p50_ms));
        json.push_str(&format!("  \"n{n}_p90_ms\": {:.4},\n", r.p90_ms));
        json.push_str(&format!("  \"n{n}_mean_fanout\": {:.3},\n", r.mean_fanout));
        json.push_str(&format!("  \"n{n}_shards_dispatched\": {},\n", r.dispatched));
        json.push_str(&format!("  \"n{n}_shards_skipped_by_bound\": {},\n", r.skipped));
        json.push_str(&format!("  \"n{n}_skip_rate_pct\": {:.3},\n", r.skip_rate_pct));
    }
    json.push_str(&format!("  \"total_skipped_n_gt_1\": {skipped_beyond_one_shard},\n"));
    json.push_str("  \"results_verified_identical\": true\n");
    json.push_str("}\n");
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_shard.json", &json).expect("write results/BENCH_shard.json");
    println!("wrote results/BENCH_shard.json");

    // Acceptance gate: Definition 11 shard pruning must actually fire on
    // this workload — a zero here means the bound plumbing went dead.
    if skipped_beyond_one_shard == 0 {
        eprintln!("FAIL: no shard was ever skipped by its Def. 11 bound (N > 1 runs)");
        std::process::exit(1);
    }
    println!("ok: {skipped_beyond_one_shard} shard dispatches pruned by bound across N > 1 runs");
}
