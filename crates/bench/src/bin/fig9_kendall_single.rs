//! Figure 9 — Kendall tau between Sum and Maximum rankings, single
//! keyword.
//!
//! Paper shape: across radii 5–100 km and k ∈ {5, 10}, the padded Kendall
//! tau stays above ~0.86 — the two ranking functions are highly
//! consistent.

use tklus_bench::{
    banner, build_engine, csv_row, parse_flags, query_workload, standard_corpus, to_query,
};
use tklus_core::{BoundsMode, Ranking};
use tklus_metrics::{padded_kendall_tau, Summary};
use tklus_model::Semantics;

fn main() {
    let flags = parse_flags();
    banner("Figure 9: Kendall tau (Sum vs Maximum), single keyword", &flags);
    let corpus = standard_corpus(&flags);
    let engine = build_engine(&corpus, 4);
    let specs: Vec<_> = query_workload(&corpus).into_iter().take(30).collect();
    let radii = [5.0, 10.0, 20.0, 50.0, 100.0];
    println!("{:<10} {:>12} {:>12}", "radius km", "tau top-5", "tau top-10");
    for &radius in &radii {
        let mut taus5 = Vec::new();
        let mut taus10 = Vec::new();
        for spec in specs.iter().take(flags.queries) {
            for (k, taus) in [(5usize, &mut taus5), (10usize, &mut taus10)] {
                let q = to_query(spec, radius, k, Semantics::Or);
                let (sum, _) = engine.query(&q, Ranking::Sum);
                let (max, _) = engine.query(&q, Ranking::Max(BoundsMode::HotKeywords));
                if sum.is_empty() && max.is_empty() {
                    continue;
                }
                let a: Vec<_> = sum.iter().map(|r| r.user).collect();
                let b: Vec<_> = max.iter().map(|r| r.user).collect();
                taus.push(padded_kendall_tau(&a, &b));
            }
        }
        if taus5.is_empty() {
            println!("{:<10} {:>12} {:>12}", radius, "n/a", "n/a");
            continue;
        }
        let t5 = Summary::of(&taus5);
        let t10 = Summary::of(&taus10);
        println!("{:<10} {:>12.3} {:>12.3}", radius, t5.mean, t10.mean);
        csv_row(&[radius.to_string(), format!("{:.4}", t5.mean), format!("{:.4}", t10.mean)]);
    }
    println!("\npaper shape: tau > 0.86 at every radius for both k=5 and k=10");
}
