//! Extension experiment (not a paper figure): temporal TkLUS.
//!
//! Section VIII sketches two temporal extensions — period-restricted
//! queries and recency-prioritized ranking — which this reproduction
//! implements. This harness measures:
//!
//! * window selectivity: query cost as the time window narrows (the window
//!   filter runs before any metadata I/O, so cost should fall with
//!   selectivity);
//! * recency's effect on the Maximum ranking's pruning (the decay factor
//!   tightens the upper bound, so pruning should not decrease);
//! * result churn: Kendall tau between the timeless and recency-biased
//!   rankings.

use tklus_bench::{
    banner, build_engine, csv_row, ms, parse_flags, query_workload, standard_corpus, to_query,
};
use tklus_core::{BoundsMode, Ranking};
use tklus_metrics::{padded_kendall_tau, Summary};
use tklus_model::Semantics;

fn main() {
    let flags = parse_flags();
    banner("Extension: temporal TkLUS (window selectivity and recency)", &flags);
    let corpus = standard_corpus(&flags);
    let engine = build_engine(&corpus, 4);
    let specs: Vec<_> = query_workload(&corpus).into_iter().take(flags.queries.max(5)).collect();
    let max_ts = corpus.posts().last().expect("non-empty corpus").id.0;

    // --- Window selectivity sweep.
    println!("\nwindow selectivity (radius 50 km, Sum ranking):");
    println!("{:<12} {:>12} {:>12} {:>14}", "window", "mean ms", "threads", "page reads");
    for &fraction in &[1.0f64, 0.5, 0.25, 0.1, 0.01] {
        let hi = max_ts;
        let lo = max_ts - (max_ts as f64 * fraction) as u64;
        let mut times = Vec::new();
        let mut threads = 0u64;
        let mut reads = 0u64;
        for spec in &specs {
            let q = to_query(spec, 50.0, 5, Semantics::Or)
                .with_time_range(lo, hi)
                .expect("valid window");
            let (_, stats) = engine.query(&q, Ranking::Sum);
            times.push(ms(stats.elapsed));
            threads += stats.threads_built as u64;
            reads += stats.metadata_page_reads;
        }
        let t = Summary::of(&times);
        println!(
            "{:<12} {:>12.2} {:>12} {:>14}",
            format!("last {:.0}%", fraction * 100.0),
            t.mean,
            threads,
            reads
        );
        csv_row(&[
            "window".into(),
            format!("{fraction}"),
            format!("{:.4}", t.mean),
            threads.to_string(),
            reads.to_string(),
        ]);
    }

    // --- Recency: pruning and ranking churn.
    println!("\nrecency bias (radius 50 km, Maximum ranking, hot bounds):");
    println!(
        "{:<16} {:>12} {:>10} {:>10} {:>12}",
        "half-life", "mean ms", "built", "pruned", "tau vs plain"
    );
    let plain_tops: Vec<Vec<_>> = specs
        .iter()
        .map(|spec| {
            let q = to_query(spec, 50.0, 5, Semantics::Or);
            engine
                .query(&q, Ranking::Max(BoundsMode::HotKeywords))
                .0
                .iter()
                .map(|r| r.user)
                .collect()
        })
        .collect();
    for &half_life_frac in &[1.0f64, 0.25, 0.05] {
        let half_life = ((max_ts as f64 * half_life_frac) as u64).max(1);
        let mut times = Vec::new();
        let mut built = 0u64;
        let mut pruned = 0u64;
        let mut taus = Vec::new();
        for (spec, plain) in specs.iter().zip(&plain_tops) {
            let q = to_query(spec, 50.0, 5, Semantics::Or)
                .with_recency(max_ts, half_life)
                .expect("valid recency");
            let (top, stats) = engine.query(&q, Ranking::Max(BoundsMode::HotKeywords));
            times.push(ms(stats.elapsed));
            built += stats.threads_built as u64;
            pruned += stats.threads_pruned as u64;
            let users: Vec<_> = top.iter().map(|r| r.user).collect();
            if !(plain.is_empty() && users.is_empty()) {
                taus.push(padded_kendall_tau(plain, &users));
            }
        }
        let t = Summary::of(&times);
        let tau = if taus.is_empty() { f64::NAN } else { Summary::of(&taus).mean };
        println!(
            "{:<16} {:>12.2} {:>10} {:>10} {:>12.3}",
            format!("{:.0}% of span", half_life_frac * 100.0),
            t.mean,
            built,
            pruned,
            tau
        );
        csv_row(&[
            "recency".into(),
            format!("{half_life_frac}"),
            format!("{:.4}", t.mean),
            built.to_string(),
            pruned.to_string(),
            format!("{tau:.4}"),
        ]);
    }
    println!("\nexpected shape: cost falls with window selectivity; pruning never decreases under recency; short half-lives reshuffle the ranking.");
}
