//! Overhead guard for the observability layer (DESIGN.md §12).
//!
//! The instrumentation budget is ≤2% median-latency regression: a query
//! pays a handful of relaxed atomic adds, ~7 monotonic clock reads for
//! the stage spans, and the thread-local page-read tallies. This bench
//! proves the budget holds by replaying the same workload against two
//! engines that differ ONLY in `EngineConfig::metrics`, measuring the
//! passes *interleaved* with alternating order (host-load drift hits both
//! series equally), and verifying every instrumented answer bit-identical
//! to the baseline's before any number is reported.
//!
//! Emits `results/BENCH_obs.json`. With `TKLUS_OBS_ENFORCE=1` in the
//! environment (the CI metrics-smoke job), the process exits nonzero if
//! the measured overhead exceeds the budget or the instrumented engine's
//! registry fails its sanity checks — the golden *format* checks live in
//! `tklus-metrics`' unit tests.

use std::time::Instant;
use tklus_bench::{banner, csv_row, ms, parse_flags, query_workload, standard_corpus, to_query};
use tklus_core::{BoundsMode, EngineConfig, RankedUser, Ranking, TklusEngine};
use tklus_model::{Semantics, TklusQuery};

/// The instrumentation budget from the ISSUE: median latency with metrics
/// on may exceed the baseline by at most this percentage.
const BUDGET_PCT: f64 = 2.0;

fn engine_with_metrics(corpus: &tklus_model::Corpus, metrics: bool) -> TklusEngine {
    let config =
        EngineConfig { hot_keywords: 200, cache_pages: 8192, metrics, ..EngineConfig::default() };
    TklusEngine::build(corpus, &config).0
}

/// Runs one timed query and checks the answer bitwise against `want`.
fn timed(
    engine: &TklusEngine,
    q: &TklusQuery,
    ranking: Ranking,
    want: &[RankedUser],
    pass: &str,
) -> f64 {
    let t = Instant::now();
    let (top, _) = engine.query(q, ranking);
    let elapsed = ms(t.elapsed());
    assert_eq!(top.len(), want.len(), "{pass}: cardinality changed");
    for (g, w) in top.iter().zip(want) {
        assert_eq!(g.user, w.user, "{pass}: ranking changed");
        assert_eq!(g.score.to_bits(), w.score.to_bits(), "{pass}: score bits changed");
    }
    elapsed
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn summarize(mut samples: Vec<f64>) -> (f64, f64, f64) {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    (percentile(&samples, 0.5), percentile(&samples, 0.9), samples.iter().sum::<f64>())
}

fn main() {
    let flags = parse_flags();
    banner("Observability overhead: metrics off vs on, interleaved", &flags);
    let corpus = standard_corpus(&flags);
    let baseline = engine_with_metrics(&corpus, false);
    let instrumented = engine_with_metrics(&corpus, true);
    assert!(baseline.metrics_snapshot().is_none(), "metrics-off engine has no registry");

    let specs = query_workload(&corpus);
    let requests: Vec<(TklusQuery, Ranking)> = specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let ranking = match i % 3 {
                0 => Ranking::Sum,
                1 => Ranking::Max(BoundsMode::HotKeywords),
                _ => Ranking::Max(BoundsMode::Global),
            };
            (to_query(spec, 20.0, 5, Semantics::Or), ranking)
        })
        .collect();

    // Replay log: cycle the distinct requests until we have enough
    // samples for a stable median.
    let log_len = (flags.queries * 10).max(requests.len() * 4);
    let log: Vec<usize> = (0..log_len).map(|n| n % requests.len()).collect();
    println!("log: {log_len} queries over {} distinct requests", requests.len());

    // Reference answers + warm-up: both engines fault in their partitions
    // and metadata pages before any timed sample.
    let reference: Vec<Vec<RankedUser>> =
        requests.iter().map(|(q, r)| baseline.query(q, *r).0).collect();
    for (q, r) in &requests {
        std::hint::black_box(instrumented.query(q, *r));
    }

    let mut base_lat = Vec::with_capacity(log.len());
    let mut inst_lat = Vec::with_capacity(log.len());
    for (n, &i) in log.iter().enumerate() {
        let (q, r) = &requests[i];
        let want = &reference[i];
        if n % 2 == 0 {
            base_lat.push(timed(&baseline, q, *r, want, "metrics-off"));
            inst_lat.push(timed(&instrumented, q, *r, want, "metrics-on"));
        } else {
            inst_lat.push(timed(&instrumented, q, *r, want, "metrics-on"));
            base_lat.push(timed(&baseline, q, *r, want, "metrics-off"));
        }
    }

    let (base_p50, base_p90, base_total) = summarize(base_lat);
    let (inst_p50, inst_p90, inst_total) = summarize(inst_lat);
    let overhead_pct = (inst_p50 - base_p50) / base_p50.max(1e-9) * 100.0;
    let total_overhead_pct = (inst_total - base_total) / base_total.max(1e-9) * 100.0;
    let within_budget = overhead_pct <= BUDGET_PCT;

    println!("{:<12} {:>10} {:>10} {:>12}", "pass", "p50 ms", "p90 ms", "total ms");
    for (name, p50, p90, total) in [
        ("metrics-off", base_p50, base_p90, base_total),
        ("metrics-on", inst_p50, inst_p90, inst_total),
    ] {
        println!("{name:<12} {p50:>10.3} {p90:>10.3} {total:>12.1}");
        csv_row(&[name.into(), format!("{p50:.3}"), format!("{p90:.3}"), format!("{total:.1}")]);
    }
    println!(
        "median overhead: {overhead_pct:+.2}% (budget {BUDGET_PCT}%), total {total_overhead_pct:+.2}%"
    );

    // Registry sanity: the instrumented engine counted every answered
    // query (warm-up + its half of the interleave) and the exposition
    // carries the re-exported storage/cache families.
    let snap = instrumented.metrics_snapshot().expect("metrics-on engine has a registry");
    let expected_queries = (requests.len() + log.len()) as u64;
    let queries_total = snap.counter("tklus_queries_total").unwrap_or(0);
    assert_eq!(queries_total, expected_queries, "registry lost or double-counted queries");
    let text = snap.render_prometheus();
    let registry_coherent = ["tklus_query_latency_us_count", "tklus_storage_page_reads_total"]
        .iter()
        .all(|n| text.contains(n));
    assert!(registry_coherent, "exposition is missing expected families");

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"obs_overhead\",\n");
    json.push_str(&format!("  \"posts\": {},\n", flags.posts));
    json.push_str(&format!("  \"seed\": {},\n", flags.seed));
    json.push_str(&format!("  \"log_len\": {log_len},\n"));
    json.push_str(&format!("  \"distinct_requests\": {},\n", requests.len()));
    json.push_str(&format!("  \"baseline_p50_ms\": {base_p50:.4},\n"));
    json.push_str(&format!("  \"baseline_p90_ms\": {base_p90:.4},\n"));
    json.push_str(&format!("  \"instrumented_p50_ms\": {inst_p50:.4},\n"));
    json.push_str(&format!("  \"instrumented_p90_ms\": {inst_p90:.4},\n"));
    json.push_str(&format!("  \"overhead_pct\": {overhead_pct:.3},\n"));
    json.push_str(&format!("  \"total_overhead_pct\": {total_overhead_pct:.3},\n"));
    json.push_str(&format!("  \"budget_pct\": {BUDGET_PCT},\n"));
    json.push_str(&format!("  \"within_budget\": {within_budget},\n"));
    json.push_str(&format!("  \"queries_observed\": {queries_total},\n"));
    json.push_str("  \"results_verified_identical\": true\n");
    json.push_str("}\n");

    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_obs.json", &json).expect("write results/BENCH_obs.json");
    println!("wrote results/BENCH_obs.json");

    if std::env::var("TKLUS_OBS_ENFORCE").is_ok_and(|v| v == "1") && !within_budget {
        eprintln!(
            "FAIL: instrumentation overhead {overhead_pct:+.2}% exceeds the {BUDGET_PCT}% budget"
        );
        std::process::exit(1);
    }
}
