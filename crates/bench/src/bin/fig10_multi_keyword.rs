//! Figure 10 — multi-keyword query efficiency (1–3 keywords × AND/OR ×
//! radii).
//!
//! Paper shape: under OR, more keywords mean more candidates and longer
//! queries; under AND the intersection filters candidates so more keywords
//! run *faster*. The Maximum ranking beats Sum most visibly under OR at
//! large radii (the union leaves more room for pruning), while AND leaves
//! little to prune.

use tklus_bench::{
    banner, build_engine, csv_row, ms, parse_flags, query_workload, standard_corpus, to_query,
};
use tklus_core::{BoundsMode, Ranking};
use tklus_metrics::Summary;
use tklus_model::Semantics;

fn main() {
    let flags = parse_flags();
    banner("Figure 10: multi-keyword query efficiency", &flags);
    let corpus = standard_corpus(&flags);
    let engine = build_engine(&corpus, 4);
    let all_specs = query_workload(&corpus);
    let radii = [5.0, 10.0, 20.0, 50.0];
    println!(
        "{:<10} {:<5} {:<9} {:>12} {:>12} {:>12}",
        "radius km", "kw", "semantic", "sum ms", "max ms", "candidates"
    );
    for &radius in &radii {
        for nkw in 1..=3usize {
            let bucket = &all_specs[(nkw - 1) * 30..nkw * 30];
            for semantics in [Semantics::And, Semantics::Or] {
                let mut sum_times = Vec::new();
                let mut max_times = Vec::new();
                let mut cands = Vec::new();
                for spec in bucket.iter().take(flags.queries) {
                    let q = to_query(spec, radius, 5, semantics);
                    let (_, s_sum) = engine.query(&q, Ranking::Sum);
                    let (_, s_max) = engine.query(&q, Ranking::Max(BoundsMode::HotKeywords));
                    sum_times.push(ms(s_sum.elapsed));
                    max_times.push(ms(s_max.elapsed));
                    cands.push(s_sum.candidates as f64);
                }
                let s = Summary::of(&sum_times);
                let m = Summary::of(&max_times);
                let c = Summary::of(&cands);
                println!(
                    "{:<10} {:<5} {:<9} {:>12.2} {:>12.2} {:>12.0}",
                    radius,
                    nkw,
                    semantics.to_string(),
                    s.mean,
                    m.mean,
                    c.mean
                );
                csv_row(&[
                    radius.to_string(),
                    nkw.to_string(),
                    semantics.to_string(),
                    format!("{:.4}", s.mean),
                    format!("{:.4}", m.mean),
                    format!("{:.0}", c.mean),
                ]);
            }
        }
    }
    println!("\npaper shape: OR time grows with keyword count, AND time shrinks; Maximum <= Sum, clearest under OR at 20-50 km");
}
