//! Query/ingest tail latency **during compaction**, old strategy vs new,
//! emitted as `results/BENCH_compact.json`.
//!
//! The full-latch compactor holds the store's write latch for the whole
//! rebuild, so a query that arrives mid-compaction waits for the entire
//! engine build. The incremental compactor builds off the latch and only
//! takes it for the seq-fenced swap, so concurrent queries and ingests
//! should barely notice. This bench measures exactly that window: a
//! query thread and an ingest thread stream against the store while the
//! main thread runs one compaction; every latency sample overlapping the
//! compaction window counts, and the report compares p99/max per
//! strategy plus the stall ratio (full-latch p99 ÷ incremental p99).
//!
//! The concurrency needs spare cores: below [`MIN_CORES`] the JSON
//! records `"valid": false` with a skip reason instead of fabricated
//! numbers.
//!
//! CI smoke gate: with `TKLUS_STALL_GATE_MS` set, the bench exits
//! non-zero if any query overlapping the *incremental* compaction took
//! longer than that budget — the swap is supposed to be the only
//! blocking moment, and it is small.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tklus_bench::{banner, csv_row, parse_flags, query_workload, standard_corpus, to_query};
use tklus_core::{BoundsMode, EngineConfig, Ranking};
use tklus_model::{Post, Semantics, TklusQuery, TweetId};
use tklus_wal::{
    CompactionStrategy, FsyncPolicy, IngestStore, StdFs, StoreConfig, WalConfig, WalFs,
};

/// Main (compacting) thread + query thread + ingest thread.
const MIN_CORES: usize = 3;

/// A latency sample: when the operation started and how long it took.
struct Sample {
    start: Instant,
    secs: f64,
}

/// Per-strategy result over the compaction window.
struct StallStats {
    compact_ms: f64,
    query_p99_us: f64,
    query_max_us: f64,
    query_samples: usize,
    ingest_p99_us: f64,
    ingest_samples: usize,
}

/// p99 of a set of already-µs latencies.
fn p99_us(samples: &mut [f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let idx = ((samples.len() - 1) as f64 * 0.99).round() as usize;
    samples[idx]
}

/// Keeps the latencies (µs) of samples overlapping `[w0, w1]` — a query
/// parked under the full-latch compactor *starts* before the window
/// closes and *ends* inside or after it, so overlap (not containment) is
/// the honest filter.
fn overlapping_us(samples: &[Sample], w0: Instant, w1: Instant) -> Vec<f64> {
    samples
        .iter()
        .filter(|s| s.start <= w1 && s.start + Duration::from_secs_f64(s.secs) >= w0)
        .map(|s| s.secs * 1e6)
        .collect()
}

fn measure(
    strategy: CompactionStrategy,
    dir: &std::path::Path,
    posts: &[Post],
    requests: &[(TklusQuery, Ranking)],
) -> StallStats {
    let _ = std::fs::remove_dir_all(dir);
    let fs: Arc<dyn WalFs> = Arc::new(StdFs::open(dir).expect("open bench wal dir"));
    let config = StoreConfig {
        strategy,
        engine: EngineConfig { parallelism: 1, ..EngineConfig::default() },
        wal: WalConfig { fsync: FsyncPolicy::EveryN(64), ..WalConfig::default() },
        ..StoreConfig::default()
    };
    let store = IngestStore::open(fs, config).expect("open ingest store").0;

    // Seal a large base generation, then refill the memtable — the
    // measured compaction has real work on both sides of the latch.
    let preload = posts.len() * 7 / 10;
    let delta = posts.len() * 9 / 10;
    for post in &posts[..preload] {
        store.ingest(post.clone()).expect("preload ingest");
    }
    store.compact().expect("seal the preload");
    for post in &posts[preload..delta] {
        store.ingest(post.clone()).expect("delta ingest");
    }

    let done = AtomicBool::new(false);
    // Fresh ids past any corpus id, so the ingest thread never runs dry
    // mid-window however long the compaction takes.
    let next_id = AtomicU64::new(10_000_000);
    let mut stats = None;
    std::thread::scope(|scope| {
        let query_thread = scope.spawn(|| {
            let mut samples = Vec::new();
            'outer: loop {
                for (q, ranking) in requests {
                    if done.load(Ordering::Relaxed) {
                        break 'outer;
                    }
                    let start = Instant::now();
                    let top = store.try_query(q, *ranking).expect("bench query");
                    std::hint::black_box(top);
                    samples.push(Sample { start, secs: start.elapsed().as_secs_f64() });
                }
            }
            samples
        });
        let ingest_thread = scope.spawn(|| {
            let mut samples = Vec::new();
            let mut i = 0usize;
            while !done.load(Ordering::Relaxed) {
                let mut post = posts[i % delta].clone();
                post.id = TweetId(next_id.fetch_add(1, Ordering::Relaxed));
                post.in_reply_to = None;
                i += 1;
                let start = Instant::now();
                store.ingest(post).expect("stream ingest");
                samples.push(Sample { start, secs: start.elapsed().as_secs_f64() });
            }
            samples
        });

        // Let both threads reach a steady rhythm, then compact.
        std::thread::sleep(Duration::from_millis(150));
        let w0 = Instant::now();
        store.compact().expect("measured compaction");
        let w1 = Instant::now();
        // A short tail so a query parked at the very end still completes
        // and lands in the sample set.
        std::thread::sleep(Duration::from_millis(100));
        done.store(true, Ordering::Relaxed);

        let query_samples = query_thread.join().expect("query thread");
        let ingest_samples = ingest_thread.join().expect("ingest thread");
        let mut q_us = overlapping_us(&query_samples, w0, w1);
        let mut i_us = overlapping_us(&ingest_samples, w0, w1);
        let query_max_us = q_us.iter().copied().fold(0.0f64, f64::max);
        stats = Some(StallStats {
            compact_ms: (w1 - w0).as_secs_f64() * 1e3,
            query_p99_us: p99_us(&mut q_us),
            query_max_us,
            query_samples: q_us.len(),
            ingest_p99_us: p99_us(&mut i_us),
            ingest_samples: i_us.len(),
        });
    });
    stats.expect("scope sets stats")
}

fn main() {
    let flags = parse_flags();
    banner("Compaction stall: query/ingest p99 during compaction", &flags);
    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let gate_ms: Option<f64> = std::env::var("TKLUS_STALL_GATE_MS")
        .ok()
        .map(|v| v.parse().expect("TKLUS_STALL_GATE_MS must be a number (milliseconds)"));

    let corpus = standard_corpus(&flags);
    let posts = corpus.posts().to_vec();
    let requests: Vec<(TklusQuery, Ranking)> = query_workload(&corpus)
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let ranking = if i % 2 == 0 { Ranking::Sum } else { Ranking::Max(BoundsMode::Global) };
            (to_query(spec, 10.0, 5, Semantics::Or), ranking)
        })
        .collect();
    let base = std::env::temp_dir().join(format!("tklus-bench-compact-{}", std::process::id()));

    // TKLUS_STALL_FORCE=1 runs the measurement on a starved host anyway —
    // for smoke-testing the harness, not for publishing numbers.
    let valid = host_cores >= MIN_CORES || std::env::var("TKLUS_STALL_FORCE").is_ok();
    let mut rows: Vec<(&str, StallStats)> = Vec::new();
    if valid {
        println!(
            "{:<12} {:>12} {:>16} {:>16} {:>16}",
            "strategy", "compact ms", "query p99 us", "query max us", "ingest p99 us"
        );
        for (name, strategy) in [
            ("full_latch", CompactionStrategy::FullLatch),
            ("incremental", CompactionStrategy::Incremental),
        ] {
            let stats = measure(strategy, &base.join(name), &posts, &requests);
            println!(
                "{:<12} {:>12.1} {:>16.1} {:>16.1} {:>16.1}",
                name, stats.compact_ms, stats.query_p99_us, stats.query_max_us, stats.ingest_p99_us
            );
            csv_row(&[
                "stall".into(),
                name.to_string(),
                format!("{:.1}", stats.compact_ms),
                format!("{:.1}", stats.query_p99_us),
                format!("{:.1}", stats.query_max_us),
                format!("{:.1}", stats.ingest_p99_us),
            ]);
            rows.push((name, stats));
        }
    } else {
        println!(
            "host cores: {host_cores} < {MIN_CORES}; skipping (a contention curve on a starved \
             host is not a measurement)"
        );
    }

    let ratio = match rows.as_slice() {
        [(_, full), (_, incr)] if incr.query_p99_us > 0.0 => full.query_p99_us / incr.query_p99_us,
        _ => 0.0,
    };
    if valid {
        println!("stall ratio (full-latch query p99 / incremental): {ratio:.1}x");
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"compaction_stall\",\n");
    json.push_str(&format!("  \"posts\": {},\n", flags.posts));
    json.push_str(&format!("  \"seed\": {},\n", flags.seed));
    json.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    json.push_str(&format!("  \"valid\": {valid},\n"));
    if valid {
        json.push_str("  \"skip_reason\": null,\n");
        for (name, stats) in &rows {
            json.push_str(&format!("  \"{name}_compact_ms\": {:.1},\n", stats.compact_ms));
            json.push_str(&format!("  \"{name}_query_p99_us\": {:.1},\n", stats.query_p99_us));
            json.push_str(&format!("  \"{name}_query_max_us\": {:.1},\n", stats.query_max_us));
            json.push_str(&format!("  \"{name}_query_samples\": {},\n", stats.query_samples));
            json.push_str(&format!("  \"{name}_ingest_p99_us\": {:.1},\n", stats.ingest_p99_us));
            json.push_str(&format!("  \"{name}_ingest_samples\": {},\n", stats.ingest_samples));
        }
        json.push_str(&format!("  \"stall_ratio\": {ratio:.1}\n"));
    } else {
        json.push_str(&format!(
            "  \"skip_reason\": \"host has {host_cores} cores, bench needs >= {MIN_CORES}\"\n"
        ));
    }
    json.push_str("}\n");

    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_compact.json", &json).expect("write results/BENCH_compact.json");
    println!("wrote results/BENCH_compact.json");
    let _ = std::fs::remove_dir_all(&base);

    // The CI gate answers one question: did any query overlapping the
    // incremental compaction wait longer than the swap budget?
    if let (Some(gate), true) = (gate_ms, valid) {
        let incr_max_ms = rows[1].1.query_max_us / 1e3;
        if incr_max_ms > gate {
            eprintln!(
                "STALL GATE FAILED: a query overlapping the incremental compaction took \
                 {incr_max_ms:.1} ms (budget {gate:.1} ms)"
            );
            std::process::exit(1);
        }
        println!("stall gate: worst overlapping query {incr_max_ms:.1} ms <= budget {gate:.1} ms");
    }
}
