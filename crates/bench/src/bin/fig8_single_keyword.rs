//! Figure 8 — single-keyword query efficiency, Sum vs Maximum ranking.
//!
//! Paper shape: both rankings slow down as the radius grows from 5 to
//! 100 km; they are close at ≤20 km, and the Maximum ranking pulls ahead at
//! large radii because its upper-bound prune skips thread construction for
//! candidates that cannot reach the top-k — and pruning has more to prune
//! when the range holds more candidates.

use tklus_bench::{
    banner, build_engine, csv_row, ms, parse_flags, query_workload, standard_corpus, to_query,
};
use tklus_core::{BoundsMode, Ranking};
use tklus_metrics::Summary;
use tklus_model::Semantics;

fn main() {
    let flags = parse_flags();
    banner("Figure 8: single-keyword query efficiency (Sum vs Maximum)", &flags);
    let corpus = standard_corpus(&flags);
    let engine = build_engine(&corpus, 4);
    // Single-keyword bucket of the workload.
    let specs: Vec<_> = query_workload(&corpus).into_iter().take(30).collect();
    let radii = [5.0, 10.0, 20.0, 50.0, 100.0];
    println!(
        "{:<10} {:>12} {:>12} {:>10} {:>12} {:>12}",
        "radius km", "sum ms", "max ms", "speedup", "threads", "pruned"
    );
    for &radius in &radii {
        let mut sum_times = Vec::new();
        let mut max_times = Vec::new();
        let mut built = 0u64;
        let mut pruned = 0u64;
        for spec in specs.iter().take(flags.queries) {
            let q = to_query(spec, radius, 5, Semantics::Or);
            let (_, s_sum) = engine.query(&q, Ranking::Sum);
            let (_, s_max) = engine.query(&q, Ranking::Max(BoundsMode::HotKeywords));
            sum_times.push(ms(s_sum.elapsed));
            max_times.push(ms(s_max.elapsed));
            built += s_max.threads_built as u64;
            pruned += s_max.threads_pruned as u64;
        }
        let s = Summary::of(&sum_times);
        let m = Summary::of(&max_times);
        let speedup = s.mean / m.mean.max(1e-9);
        println!(
            "{:<10} {:>12.2} {:>12.2} {:>10.2} {:>12} {:>12}",
            radius, s.mean, m.mean, speedup, built, pruned
        );
        csv_row(&[
            radius.to_string(),
            format!("{:.4}", s.mean),
            format!("{:.4}", m.mean),
            format!("{speedup:.3}"),
            built.to_string(),
            pruned.to_string(),
        ]);
    }
    println!("\npaper shape: close at <=20 km; Maximum clearly faster at 50-100 km thanks to upper-bound pruning");
}
