//! Figure 11 — Kendall tau between Sum and Maximum rankings,
//! multi-keyword queries under AND/OR.
//!
//! Paper shape: AND stays above ~0.95 at every radius; OR dips lower
//! (slightly below 0.8 at worst) but the rankings remain consistent.

use tklus_bench::{
    banner, build_engine, csv_row, parse_flags, query_workload, standard_corpus, to_query,
};
use tklus_core::{BoundsMode, Ranking};
use tklus_metrics::{padded_kendall_tau, Summary};
use tklus_model::Semantics;

fn main() {
    let flags = parse_flags();
    banner("Figure 11: Kendall tau (Sum vs Maximum), multi-keyword", &flags);
    let corpus = standard_corpus(&flags);
    let engine = build_engine(&corpus, 4);
    let all_specs = query_workload(&corpus);
    let radii = [5.0, 10.0, 20.0, 50.0];
    println!(
        "{:<10} {:<5} {:<9} {:>12} {:>12}",
        "radius km", "kw", "semantic", "tau top-5", "tau top-10"
    );
    for &radius in &radii {
        for nkw in 2..=3usize {
            let bucket = &all_specs[(nkw - 1) * 30..nkw * 30];
            for semantics in [Semantics::And, Semantics::Or] {
                let mut taus5 = Vec::new();
                let mut taus10 = Vec::new();
                for spec in bucket.iter().take(flags.queries) {
                    for (k, taus) in [(5usize, &mut taus5), (10usize, &mut taus10)] {
                        let q = to_query(spec, radius, k, semantics);
                        let (sum, _) = engine.query(&q, Ranking::Sum);
                        let (max, _) = engine.query(&q, Ranking::Max(BoundsMode::HotKeywords));
                        if sum.is_empty() && max.is_empty() {
                            continue;
                        }
                        let a: Vec<_> = sum.iter().map(|r| r.user).collect();
                        let b: Vec<_> = max.iter().map(|r| r.user).collect();
                        taus.push(padded_kendall_tau(&a, &b));
                    }
                }
                let (m5, m10) = match (taus5.is_empty(), taus10.is_empty()) {
                    (false, false) => (Summary::of(&taus5).mean, Summary::of(&taus10).mean),
                    _ => {
                        println!(
                            "{:<10} {:<5} {:<9} {:>12} {:>12}",
                            radius,
                            nkw,
                            semantics.to_string(),
                            "n/a",
                            "n/a"
                        );
                        continue;
                    }
                };
                println!(
                    "{:<10} {:<5} {:<9} {:>12.3} {:>12.3}",
                    radius,
                    nkw,
                    semantics.to_string(),
                    m5,
                    m10
                );
                csv_row(&[
                    radius.to_string(),
                    nkw.to_string(),
                    semantics.to_string(),
                    format!("{m5:.4}"),
                    format!("{m10:.4}"),
                ]);
            }
        }
    }
    println!("\npaper shape: AND tau >= ~0.95 everywhere; OR tau lower (worst slightly below 0.8) but still consistent");
}
