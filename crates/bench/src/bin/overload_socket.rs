//! Socket-level overload: the DESIGN.md §16 acceptance run.
//!
//! Where `overload` measures the admission queue through direct
//! [`TklusServer::submit`] calls, this binary drives the whole stack —
//! TCP accept loop, capped parser, admission, workers — with real
//! sockets and adversarial clients:
//!
//! * an **open-loop burst** at 4× the calibrated saturation rate, with
//!   slow-writer (dribbled heads), slow-reader (delayed response reads),
//!   and mid-request-disconnect clients interleaved deterministically;
//! * a **closed-loop phase** (fixed client pool, next request only after
//!   the previous answer) measuring the sustainable response rate;
//! * a **deterministic probe suite** — malformed, oversized, unsupported,
//!   slow — whose status-code sequence is the run's *fingerprint*: it
//!   must be identical every run at every seed, and the suite runs both
//!   before and after the burst to prove the server it stressed is the
//!   server it started with;
//! * a **shutdown wave**: requests still in flight when the drain begins
//!   must each get a typed answer, and the drain report must account for
//!   every ticket.
//!
//! The headline claims, asserted and recorded in
//! `results/BENCH_overload_socket.json`:
//!
//! * every connection is answered or cleanly closed (conservation —
//!   nothing hangs, nothing leaks);
//! * the p99 latency of *successful* answers stays under `deadline +
//!   worst-case service + socket slack` — overload sheds load, it does
//!   not stretch latencies;
//! * after the burst the queue is empty and no worker is stuck.
//!
//! `--queries` scales the burst (CI smoke passes a small value); the
//! probe fingerprint does not depend on scale.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tklus_bench::{banner, build_engine, csv_row, parse_flags, query_workload, to_query};
use tklus_core::{BoundsMode, Ranking, TklusEngine};
use tklus_gen::{generate_corpus, GenConfig};
use tklus_http::{serve, HttpConfig, HttpHandle, ParserConfig};
use tklus_metrics::Summary;
use tklus_model::{Semantics, TklusQuery};
use tklus_serve::{ServeConfig, TklusServer};

/// How long the bench's server waits on an idle/dribbling read. Short so
/// the slow-writer probes resolve quickly; the bound math uses it too.
const READ_TIMEOUT_MS: u64 = 250;

/// Client-side socket budget: generous, because a client read that hits
/// this is exactly the hang the conservation check exists to catch.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(20);

/// What one client connection observed.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Observed {
    /// A complete HTTP response with this status.
    Answered(u16),
    /// EOF with no (or a partial) response — only legitimate for clients
    /// that disconnected on purpose or arrived during shutdown.
    Closed,
}

/// Sends `raw`, reads one response (or EOF), never panics on socket
/// errors — an error after the server hung up is a clean close.
fn exchange(addr: SocketAddr, raw: &[u8]) -> Observed {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return Observed::Closed;
    };
    let _ = stream.set_read_timeout(Some(CLIENT_TIMEOUT));
    if stream.write_all(raw).is_err() {
        return Observed::Closed;
    }
    read_status(&mut stream)
}

/// Reads one full response off the stream; returns its status, or
/// `Closed` on EOF/reset/timeout before a complete response.
fn read_status(stream: &mut TcpStream) -> Observed {
    let mut buf = [0u8; 4096];
    let mut raw = Vec::new();
    let head_end = loop {
        if let Some(pos) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => return Observed::Closed,
            Ok(n) => raw.extend_from_slice(&buf[..n]),
        }
    };
    let head = String::from_utf8_lossy(&raw[..head_end]);
    let Some(status) =
        head.lines().next().and_then(|l| l.split(' ').nth(1)).and_then(|s| s.parse().ok())
    else {
        return Observed::Closed;
    };
    let len: usize = head
        .lines()
        .filter_map(|l| l.split_once(':'))
        .find(|(n, _)| n.trim().eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.trim().parse().ok())
        .unwrap_or(0);
    let mut got = raw.len() - head_end;
    while got < len {
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => return Observed::Closed,
            Ok(n) => got += n,
        }
    }
    Observed::Answered(status)
}

/// Scrapes one counter row out of the server's Prometheus exposition.
fn metric(addr: SocketAddr, name: &str) -> u64 {
    let Observed::Answered(200) = exchange_keep(addr, b"GET /metrics HTTP/1.1\r\n\r\n", name)
    else {
        return u64::MAX;
    };
    LAST_METRIC.with(|v| v.get())
}

thread_local! {
    static LAST_METRIC: std::cell::Cell<u64> = const { std::cell::Cell::new(u64::MAX) };
}

/// `exchange`, but also extracts `name <value>` from the body.
fn exchange_keep(addr: SocketAddr, raw: &[u8], name: &str) -> Observed {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return Observed::Closed;
    };
    let _ = stream.set_read_timeout(Some(CLIENT_TIMEOUT));
    if stream.write_all(raw).is_err() {
        return Observed::Closed;
    }
    let mut body = Vec::new();
    let mut buf = [0u8; 65536];
    // /metrics answers keep-alive: read to content-length, not EOF.
    let mut raw_resp = Vec::new();
    let head_end = loop {
        if let Some(pos) = raw_resp.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => return Observed::Closed,
            Ok(n) => raw_resp.extend_from_slice(&buf[..n]),
        }
    };
    let head = String::from_utf8_lossy(&raw_resp[..head_end]).to_string();
    let len: usize = head
        .lines()
        .filter_map(|l| l.split_once(':'))
        .find(|(n, _)| n.trim().eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.trim().parse().ok())
        .unwrap_or(0);
    body.extend_from_slice(&raw_resp[head_end..]);
    while body.len() < len {
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => return Observed::Closed,
            Ok(n) => body.extend_from_slice(&buf[..n]),
        }
    }
    let text = String::from_utf8_lossy(&body);
    let value = text
        .lines()
        .find_map(|l| l.strip_prefix(name).and_then(|rest| rest.trim().parse().ok()))
        .unwrap_or(u64::MAX);
    LAST_METRIC.with(|v| v.set(value));
    let status = head.lines().next().and_then(|l| l.split(' ').nth(1)).and_then(|s| s.parse().ok());
    status.map_or(Observed::Closed, Observed::Answered)
}

/// The deterministic probe suite: adversarial inputs whose answers are
/// decided by the typed contract, not by load. Returns `(name, status)`
/// pairs — `0` stands for "cleanly closed without a response".
fn probe_suite(addr: SocketAddr) -> Vec<(&'static str, u16)> {
    let mut out = Vec::new();
    let mut push = |name: &'static str, obs: Observed| {
        out.push((
            name,
            match obs {
                Observed::Answered(s) => s,
                Observed::Closed => 0,
            },
        ));
    };
    push("garbage", exchange(addr, b"NONSENSE BYTES\r\n\r\n"));
    push(
        "oversized-header",
        exchange(
            addr,
            format!("GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "a".repeat(16_384)).as_bytes(),
        ),
    );
    push(
        "oversized-body",
        exchange(addr, b"POST /query HTTP/1.1\r\nContent-Length: 104857600\r\n\r\n"),
    );
    push(
        "transfer-encoding",
        exchange(addr, b"POST /query HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
    );
    push("bad-json", exchange(addr, b"POST /query HTTP/1.1\r\nContent-Length: 7\r\n\r\nnotjson"));
    push("not-found", exchange(addr, b"GET /nope HTTP/1.1\r\n\r\n"));
    push("bad-method", exchange(addr, b"DELETE /query HTTP/1.1\r\n\r\n"));
    // Slow-writer: half a head, then silence past the read deadline.
    let slow = (|| {
        let mut stream = TcpStream::connect(addr).ok()?;
        stream.set_read_timeout(Some(CLIENT_TIMEOUT)).ok()?;
        stream.write_all(b"POST /query HTTP/1.1\r\nContent-Le").ok()?;
        std::thread::sleep(Duration::from_millis(READ_TIMEOUT_MS + 150));
        Some(read_status(&mut stream))
    })()
    .unwrap_or(Observed::Closed);
    push("slow-writer", slow);
    // Mid-request disconnect: the *client* walks away; a clean close (no
    // response) is the correct observation.
    if let Ok(mut stream) = TcpStream::connect(addr) {
        let _ = stream.write_all(b"POST /query HTTP/1.1\r\nContent-Length: 999\r\n\r\nhalf");
    }
    push("mid-disconnect", Observed::Closed);
    out
}

/// FNV-1a over the probe sequence: the per-seed fingerprint CI pins.
fn fingerprint(probes: &[(&'static str, u16)]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for (name, status) in probes {
        for byte in name.bytes().chain(status.to_le_bytes()) {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x100000001b3);
        }
    }
    hash
}

/// What the open-loop burst recorded.
struct BurstOutcome {
    offered: usize,
    ok: usize,
    shed_429: usize,
    shed_503: usize,
    shed_504: usize,
    timeouts_408: usize,
    other: usize,
    closed: usize,
    disconnects: usize,
    latency: Option<Summary>,
}

/// One adversarial slot per `ADVERSARY_EVERY` requests, cycling through
/// the three client kinds; everything else is a well-behaved query.
const ADVERSARY_EVERY: usize = 23;

#[allow(clippy::too_many_arguments)]
fn run_burst(
    addr: SocketAddr,
    bodies: &[String],
    total: usize,
    interarrival: Duration,
    seed: u64,
) -> BurstOutcome {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x50C4E7);
    let start = Instant::now();
    let mut waiters = Vec::with_capacity(total);
    let mut disconnects = 0usize;
    for i in 0..total {
        let scheduled = interarrival * i as u32;
        if let Some(wait) = scheduled.checked_sub(start.elapsed()) {
            std::thread::sleep(wait);
        }
        let body = bodies[rng.gen_range(0..bodies.len())].clone();
        let kind =
            if i % ADVERSARY_EVERY == ADVERSARY_EVERY - 1 { (i / ADVERSARY_EVERY) % 3 } else { 3 };
        if kind == 2 {
            disconnects += 1;
        }
        waiters.push(std::thread::spawn(move || {
            let raw =
                format!("POST /query HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}", body.len());
            match kind {
                // Slow writer: head, pause past the server's read
                // deadline, then the rest (expects 408).
                0 => {
                    let Ok(mut stream) = TcpStream::connect(addr) else {
                        return (scheduled, start.elapsed(), Observed::Closed, true);
                    };
                    let _ = stream.set_read_timeout(Some(CLIENT_TIMEOUT));
                    let half = raw.len() / 2;
                    if stream.write_all(&raw.as_bytes()[..half]).is_err() {
                        return (scheduled, start.elapsed(), Observed::Closed, true);
                    }
                    std::thread::sleep(Duration::from_millis(READ_TIMEOUT_MS + 100));
                    let _ = stream.write_all(&raw.as_bytes()[half..]);
                    (scheduled, start.elapsed(), read_status(&mut stream), true)
                }
                // Slow reader: sends promptly, dawdles before reading.
                1 => {
                    let Ok(mut stream) = TcpStream::connect(addr) else {
                        return (scheduled, start.elapsed(), Observed::Closed, true);
                    };
                    let _ = stream.set_read_timeout(Some(CLIENT_TIMEOUT));
                    if stream.write_all(raw.as_bytes()).is_err() {
                        return (scheduled, start.elapsed(), Observed::Closed, true);
                    }
                    std::thread::sleep(Duration::from_millis(100));
                    (scheduled, start.elapsed(), read_status(&mut stream), true)
                }
                // Mid-request disconnect: partial body, hang up.
                2 => {
                    if let Ok(mut stream) = TcpStream::connect(addr) {
                        let cut = raw.len().saturating_sub(3);
                        let _ = stream.write_all(&raw.as_bytes()[..cut]);
                    }
                    (scheduled, start.elapsed(), Observed::Closed, true)
                }
                // Well-behaved.
                _ => {
                    let obs = exchange(addr, raw.as_bytes());
                    (scheduled, start.elapsed(), obs, false)
                }
            }
        }));
    }
    let mut out = BurstOutcome {
        offered: total,
        ok: 0,
        shed_429: 0,
        shed_503: 0,
        shed_504: 0,
        timeouts_408: 0,
        other: 0,
        closed: 0,
        disconnects,
        latency: None,
    };
    let mut latencies = Vec::new();
    for waiter in waiters {
        let (scheduled, end, obs, adversarial) = waiter.join().expect("client thread never panics");
        match obs {
            Observed::Answered(200) => {
                out.ok += 1;
                if !adversarial {
                    latencies.push((end.as_secs_f64() - scheduled.as_secs_f64()) * 1e3);
                }
            }
            Observed::Answered(429) => out.shed_429 += 1,
            Observed::Answered(503) => out.shed_503 += 1,
            Observed::Answered(504) => out.shed_504 += 1,
            Observed::Answered(408) => out.timeouts_408 += 1,
            Observed::Answered(_) => out.other += 1,
            Observed::Closed => out.closed += 1,
        }
    }
    out.latency = if latencies.is_empty() { None } else { Some(Summary::of(&latencies)) };
    out
}

/// Closed-loop: `clients` threads each issue `per_client` sequential
/// requests, next only after the previous answer. Returns (answers,
/// elapsed, statuses observed outside 200/429/503/504).
fn run_closed_loop(
    addr: SocketAddr,
    bodies: &[String],
    clients: usize,
    per_client: usize,
    seed: u64,
) -> (usize, Duration, usize) {
    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let bodies = bodies.to_vec();
            let mut rng = StdRng::seed_from_u64(seed ^ (0xC105ED + c as u64));
            std::thread::spawn(move || {
                let mut answered = 0usize;
                let mut unexpected = 0usize;
                for _ in 0..per_client {
                    let body = &bodies[rng.gen_range(0..bodies.len())];
                    let raw = format!(
                        "POST /query HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
                        body.len()
                    );
                    match exchange(addr, raw.as_bytes()) {
                        Observed::Answered(200 | 429 | 503 | 504) => answered += 1,
                        Observed::Answered(_) => unexpected += 1,
                        Observed::Closed => unexpected += 1,
                    }
                }
                (answered, unexpected)
            })
        })
        .collect();
    let mut answered = 0usize;
    let mut unexpected = 0usize;
    for h in handles {
        let (a, u) = h.join().expect("closed-loop client never panics");
        answered += a;
        unexpected += u;
    }
    (answered, start.elapsed(), unexpected)
}

/// Calibrates per-query service time under `workers`-way contention —
/// the production workers share memory bandwidth, so a single-threaded
/// calibration understates the service times the bound must cover.
fn calibrate_service_ms(
    engine: &Arc<TklusEngine>,
    requests: &[(TklusQuery, Ranking)],
    workers: usize,
) -> (f64, f64) {
    let handles: Vec<_> = (0..workers)
        .map(|_| {
            let engine = Arc::clone(engine);
            let requests = requests.to_vec();
            std::thread::spawn(move || {
                let mut worst = 0.0f64;
                let mut total = 0.0f64;
                for (q, ranking) in &requests {
                    let one = Instant::now();
                    let (top, _) = engine.query(q, *ranking);
                    std::hint::black_box(top);
                    let ms = one.elapsed().as_secs_f64() * 1e3;
                    worst = worst.max(ms);
                    total += ms;
                }
                (total / requests.len() as f64, worst)
            })
        })
        .collect();
    let mut mean = 0.0f64;
    let mut worst = 0.0f64;
    let n = handles.len() as f64;
    for h in handles {
        let (m, w) = h.join().expect("calibration thread never panics");
        mean += m / n;
        worst = worst.max(w);
    }
    (mean.max(0.05), worst)
}

fn probes_json(probes: &[(&'static str, u16)]) -> String {
    let rows: Vec<String> =
        probes.iter().map(|(n, s)| format!("{{ \"probe\": \"{n}\", \"status\": {s} }}")).collect();
    rows.join(", ")
}

fn main() {
    let flags = parse_flags();
    banner("Overload over sockets: 4x burst + adversarial clients", &flags);
    // `--queries` scales the burst; the default is the full acceptance
    // run, CI smoke passes a small value.
    let total = if flags.queries >= 100 { flags.queries } else { flags.queries.max(10) * 12 };
    let posts = flags.posts.min(20_000);
    let corpus = generate_corpus(&GenConfig {
        original_posts: posts,
        seed: flags.seed,
        ..GenConfig::default()
    });
    let engine = Arc::new(build_engine(&corpus, 4));

    let specs = query_workload(&corpus);
    let requests: Vec<(TklusQuery, Ranking)> = specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let ranking =
                if i % 3 == 0 { Ranking::Sum } else { Ranking::Max(BoundsMode::HotKeywords) };
            (to_query(spec, 12.0, 5, Semantics::Or), ranking)
        })
        .collect();
    // The same workload as JSON bodies for the socket clients.
    let bodies: Vec<String> = specs
        .iter()
        .map(|spec| {
            let kws: Vec<String> = spec.keywords.iter().map(|k| format!("\"{k}\"")).collect();
            format!(
                "{{\"lat\":{},\"lon\":{},\"radius_km\":12.0,\"keywords\":[{}],\"k\":5}}",
                spec.location.lat(),
                spec.location.lon(),
                kws.join(",")
            )
        })
        .collect();

    let workers = 3usize;
    let (service_ms, worst_service_ms) = calibrate_service_ms(&engine, &requests, workers);
    let overload = 4.0;
    let interarrival = Duration::from_secs_f64(service_ms / 1e3 / workers as f64 / overload);
    let queue_capacity = 2 * workers;
    let deadline_ms = (service_ms * 10.0).ceil() as u64 + 5;
    println!(
        "calibrated service {service_ms:.2} ms (worst {worst_service_ms:.2}); {workers} workers; \
         interarrival {:.0} us ({overload}x overload); {total} requests",
        interarrival.as_secs_f64() * 1e6,
    );

    let serve_cfg = ServeConfig {
        workers,
        queue_capacity,
        default_deadline_ms: deadline_ms,
        est_service_ms: (service_ms.ceil() as u64).max(1),
        degrade: None,
        breaker: Default::default(),
    };
    let http_cfg = HttpConfig {
        addr: "127.0.0.1:0".to_string(),
        max_connections: 512,
        parser: ParserConfig::default(),
        read_timeout_ms: READ_TIMEOUT_MS,
        write_timeout_ms: 1_000,
        max_batch: 64,
        drain_timeout_ms: 2_000,
    };
    let server = TklusServer::start(Arc::clone(&engine), serve_cfg).expect("serve config valid");
    let handle: HttpHandle = serve(server, http_cfg).expect("front-end binds");
    let addr = handle.addr();
    println!("front-end on {addr}");

    // Fingerprint before the burst…
    let probes_pre = probe_suite(addr);
    let fp_pre = fingerprint(&probes_pre);

    let burst = run_burst(addr, &bodies, total, interarrival, flags.seed);

    // …and after: same typed answers, same fingerprint, or the burst
    // bent the server.
    let probes_post = probe_suite(addr);
    let fp_post = fingerprint(&probes_post);
    let deterministic = fp_pre == fp_post;
    assert!(
        deterministic,
        "probe fingerprint drifted across the burst: {probes_pre:?} vs {probes_post:?}"
    );

    // Quiescence: no ticket leaked, no worker stuck.
    let settle = Instant::now();
    loop {
        let depth = metric(addr, "tklus_serve_queue_depth ");
        let busy = metric(addr, "tklus_serve_in_flight ");
        if depth == 0 && busy == 0 {
            break;
        }
        assert!(
            settle.elapsed() < Duration::from_secs(10),
            "queue never quiesced: depth {depth}, in-flight {busy}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let quiesced = true;

    // Closed-loop sustainable rate.
    let (cl_clients, cl_per) = (workers + 1, (total / 12).max(8));
    let (cl_answered, cl_elapsed, cl_unexpected) =
        run_closed_loop(addr, &bodies, cl_clients, cl_per, flags.seed);
    let cl_rps = cl_answered as f64 / cl_elapsed.as_secs_f64().max(1e-9);

    // Shutdown wave: land a volley, then drain mid-flight. Every volley
    // client must see a complete answer or a clean close — never a hang.
    let volley: Vec<_> = (0..queue_capacity + workers)
        .map(|i| {
            let body = bodies[i % bodies.len()].clone();
            std::thread::spawn(move || {
                let raw =
                    format!("POST /query HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}", body.len());
                exchange(addr, raw.as_bytes())
            })
        })
        .collect();
    // Wait until the volley is actually in flight — clients still in the
    // accept backlog when the listener drops see a clean close, which
    // proves nothing about the drain.
    let armed = Instant::now();
    while metric(addr, "tklus_serve_in_flight ") == 0 && armed.elapsed() < Duration::from_secs(5) {
        std::thread::sleep(Duration::from_millis(2));
    }
    let report = handle.shutdown();
    let mut volley_answered = 0usize;
    let mut volley_closed = 0usize;
    for v in volley {
        match v.join().expect("volley client never panics") {
            Observed::Answered(_) => volley_answered += 1,
            Observed::Closed => volley_closed += 1,
        }
    }
    assert!(
        volley_answered > 0,
        "drain answered none of the in-flight volley — requests were dropped, not drained"
    );
    assert_eq!(
        report.drain.in_flight_at_deadline, 0,
        "drain left workers running past the deadline"
    );

    // Conservation over the burst: everything is accounted for, and the
    // only silent closes are the clients that hung up on purpose (plus
    // any slow-writer whose 408 raced the close — none expected).
    let answered = burst.ok
        + burst.shed_429
        + burst.shed_503
        + burst.shed_504
        + burst.timeouts_408
        + burst.other;
    assert_eq!(answered + burst.closed, burst.offered, "burst clients unaccounted for");
    let conserved = burst.closed == burst.disconnects;
    assert!(
        conserved,
        "{} closes for {} deliberate disconnects — a client was hung up on silently",
        burst.closed, burst.disconnects
    );
    assert_eq!(burst.other, 0, "unexpected status codes in the burst");
    assert_eq!(cl_unexpected, 0, "unexpected closed-loop outcomes");

    // The latency claim, over sockets: p99 of successful answers is
    // bounded by deadline + worst service + socket slack (loopback
    // connect/write plus scheduler jitter under a thread-per-request
    // client storm).
    let socket_slack_ms = 50.0;
    let bound_ms = deadline_ms as f64 + worst_service_ms + socket_slack_ms;
    let p99 = burst.latency.as_ref().map_or(0.0, |s| s.p99);
    let bounded = p99 <= bound_ms;

    println!(
        "burst: {} offered -> {} ok, {} 429, {} 503, {} 504, {} 408, {} closed ({} deliberate)",
        burst.offered,
        burst.ok,
        burst.shed_429,
        burst.shed_503,
        burst.shed_504,
        burst.timeouts_408,
        burst.closed,
        burst.disconnects
    );
    if let Some(s) = &burst.latency {
        println!(
            "admitted latency: n={} p50={:.1} p95={:.1} p99={:.1} max={:.1} ms (bound {bound_ms:.0} ms, bounded: {bounded})",
            s.n, s.p50, s.p95, s.p99, s.max
        );
    }
    println!(
        "closed-loop: {cl_answered} answers from {cl_clients} clients in {:.2} s ({cl_rps:.0} rps)",
        cl_elapsed.as_secs_f64()
    );
    println!(
        "shutdown wave: {volley_answered} answered, {volley_closed} closed; drain completed {}, abandoned {}, in-flight-at-deadline {}",
        report.drain.completed,
        report.drain.abandoned_queued.len(),
        report.drain.in_flight_at_deadline
    );
    println!("probe fingerprint: {fp_pre:016x} (stable across burst: {deterministic})");
    for (name, status) in &probes_pre {
        println!("  probe {name:<18} -> {status}");
    }
    csv_row(&[
        "burst".into(),
        burst.offered.to_string(),
        burst.ok.to_string(),
        (burst.shed_429 + burst.shed_503 + burst.shed_504).to_string(),
        format!("{p99:.2}"),
    ]);
    csv_row(&["fingerprint".into(), format!("{fp_pre:016x}"), deterministic.to_string()]);

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"overload_socket\",\n");
    json.push_str(&format!("  \"posts\": {posts},\n"));
    json.push_str(&format!("  \"seed\": {},\n", flags.seed));
    json.push_str(&format!("  \"workers\": {workers},\n"));
    json.push_str(&format!("  \"overload_factor\": {overload},\n"));
    json.push_str(&format!("  \"requests\": {},\n", burst.offered));
    json.push_str(&format!("  \"calibrated_service_ms\": {service_ms:.3},\n"));
    json.push_str(&format!("  \"worst_service_ms\": {worst_service_ms:.3},\n"));
    json.push_str(&format!("  \"deadline_ms\": {deadline_ms},\n"));
    json.push_str(&format!("  \"read_timeout_ms\": {READ_TIMEOUT_MS},\n"));
    json.push_str(&format!("  \"p99_bound_ms\": {bound_ms:.1},\n"));
    let s = burst.latency.as_ref();
    json.push_str(&format!("  \"admitted_p50_ms\": {:.2},\n", s.map_or(0.0, |s| s.p50)));
    json.push_str(&format!("  \"admitted_p99_ms\": {p99:.2},\n"));
    json.push_str(&format!("  \"admitted_max_ms\": {:.2},\n", s.map_or(0.0, |s| s.max)));
    json.push_str(&format!("  \"ok\": {},\n", burst.ok));
    json.push_str(&format!("  \"shed_429\": {},\n", burst.shed_429));
    json.push_str(&format!("  \"shed_503\": {},\n", burst.shed_503));
    json.push_str(&format!("  \"shed_504\": {},\n", burst.shed_504));
    json.push_str(&format!("  \"timeouts_408\": {},\n", burst.timeouts_408));
    json.push_str(&format!("  \"closed\": {},\n", burst.closed));
    json.push_str(&format!("  \"deliberate_disconnects\": {},\n", burst.disconnects));
    json.push_str(&format!("  \"closed_loop_rps\": {cl_rps:.1},\n"));
    json.push_str(&format!("  \"drain_completed\": {},\n", report.drain.completed));
    json.push_str(&format!("  \"drain_abandoned\": {},\n", report.drain.abandoned_queued.len()));
    json.push_str(&format!(
        "  \"drain_in_flight_at_deadline\": {},\n",
        report.drain.in_flight_at_deadline
    ));
    json.push_str(&format!("  \"probes\": [ {} ],\n", probes_json(&probes_pre)));
    json.push_str(&format!("  \"probe_fingerprint\": \"{fp_pre:016x}\",\n"));
    json.push_str(&format!("  \"fingerprint_stable\": {deterministic},\n"));
    json.push_str(&format!("  \"every_connection_accounted\": {conserved},\n"));
    json.push_str(&format!("  \"queue_quiesced\": {quiesced},\n"));
    json.push_str(&format!("  \"p99_bounded\": {bounded}\n"));
    json.push_str("}\n");

    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_overload_socket.json", &json)
        .expect("write results/BENCH_overload_socket.json");
    println!("wrote results/BENCH_overload_socket.json");
}
