//! Saturation behaviour of the serving layer under 4× overload.
//!
//! The tentpole measurement for DESIGN.md §11: an open-loop burst offers
//! queries at four times the measured service capacity of the worker
//! pool, once through a [`TklusServer`] with the admission limiter ON
//! (bounded queue, deadlines, degrade policy) and once with it
//! effectively OFF (queue deep enough to hold the whole burst, deadline
//! far beyond the run). With the limiter on, the p99 latency of
//! *successful* responses stays bounded near `queue_capacity ×
//! mean_service / workers`; with it off, nothing is shed and the p99
//! grows with the backlog — the classic unbounded-queue failure mode.
//! Emits `results/BENCH_overload.json` so the bound is machine-checkable
//! across PRs.

use std::sync::Arc;
use std::time::{Duration, Instant};
use tklus_bench::{banner, build_engine, csv_row, parse_flags, query_workload, to_query};
use tklus_core::{BoundsMode, Ranking, TklusEngine};
use tklus_gen::{generate_corpus, GenConfig};
use tklus_metrics::Summary;
use tklus_model::{Priority, Semantics, TklusQuery};
use tklus_serve::{DegradePolicy, ServeConfig, ServeError, TklusServer};

/// One limiter configuration pushed through the same burst.
struct RunOutcome {
    label: &'static str,
    offered: usize,
    completed: usize,
    degraded: usize,
    shed: usize,
    latency: Option<Summary>,
}

/// Wall-clock service time of the workload, measured sequentially on the
/// unloaded engine: (mean, max) per query in ms. The mean calibrates the
/// burst's offered rate; the max sets the latency bound's slack (a worker
/// may pop an entry just before its deadline and then run the slowest
/// query in the mix).
fn calibrate_service_ms(engine: &TklusEngine, requests: &[(TklusQuery, Ranking)]) -> (f64, f64) {
    let mut worst = 0.0f64;
    let t = Instant::now();
    for (q, ranking) in requests {
        let one = Instant::now();
        let (top, _) = engine.query(q, *ranking);
        std::hint::black_box(top);
        worst = worst.max(one.elapsed().as_secs_f64() * 1e3);
    }
    ((t.elapsed().as_secs_f64() * 1e3 / requests.len() as f64).max(0.05), worst)
}

/// Offers `total` requests open-loop at `interarrival` spacing and waits
/// for every ticket. Latency is measured from the request's *scheduled*
/// arrival (open-loop convention: queueing delay the server causes counts
/// against it, client-side pacing jitter does not hide it).
fn run_burst(
    label: &'static str,
    engine: Arc<TklusEngine>,
    requests: &[(TklusQuery, Ranking)],
    cfg: ServeConfig,
    total: usize,
    interarrival: Duration,
    deadline: Duration,
) -> RunOutcome {
    let server = TklusServer::start(engine, cfg).expect("serve config is valid");
    let start = Instant::now();
    // One waiter thread per admitted ticket stamps the completion instant
    // the moment the response lands — waiting for tickets sequentially
    // from the submit thread would time early completions at whenever the
    // burst loop got around to them.
    let mut waiters = Vec::with_capacity(total);
    let mut shed = 0usize;
    for i in 0..total {
        let scheduled = interarrival * i as u32;
        if let Some(wait) = scheduled.checked_sub(start.elapsed()) {
            std::thread::sleep(wait);
        }
        let (q, ranking) = &requests[i % requests.len()];
        match server.submit(q.clone(), *ranking, Priority::Normal, Some(deadline)) {
            Ok(ticket) => waiters.push(std::thread::spawn(move || {
                let result = ticket.wait();
                (scheduled, start.elapsed(), result)
            })),
            Err(_) => shed += 1,
        }
    }
    let mut latencies = Vec::with_capacity(waiters.len());
    let mut completed = 0usize;
    let mut degraded = 0usize;
    for waiter in waiters {
        let (scheduled, end, result) = waiter.join().expect("waiter thread never panics");
        match result {
            Ok(outcome) => {
                completed += 1;
                if !outcome.completeness.is_complete() {
                    degraded += 1;
                }
                latencies.push((end.as_secs_f64() - scheduled.as_secs_f64()) * 1e3);
            }
            Err(ServeError::Engine(_)) => completed += 1,
            Err(_) => shed += 1, // evicted / expired after admission
        }
    }
    server.drain(Duration::from_millis(200));
    RunOutcome {
        label,
        offered: total,
        completed,
        degraded,
        shed,
        latency: if latencies.is_empty() { None } else { Some(Summary::of(&latencies)) },
    }
}

fn json_run(out: &RunOutcome) -> String {
    let (p50, p95, p99, max) =
        out.latency.as_ref().map_or((0.0, 0.0, 0.0, 0.0), |s| (s.p50, s.p95, s.p99, s.max));
    format!(
        "    {{ \"label\": \"{}\", \"offered\": {}, \"completed\": {}, \"degraded\": {}, \
         \"shed\": {}, \"p50_ms\": {:.2}, \"p95_ms\": {:.2}, \"p99_ms\": {:.2}, \
         \"max_ms\": {:.2} }}",
        out.label, out.offered, out.completed, out.degraded, out.shed, p50, p95, p99, max
    )
}

fn main() {
    let flags = parse_flags();
    banner("Overload: 4x saturation burst, limiter on vs off", &flags);
    // A mid-size corpus keeps per-query service time well above timer
    // resolution without making the unbounded run take minutes.
    let corpus = generate_corpus(&GenConfig {
        original_posts: flags.posts.min(20_000),
        seed: flags.seed,
        ..GenConfig::default()
    });
    let engine = Arc::new(build_engine(&corpus, 4));

    let specs = query_workload(&corpus);
    let requests: Vec<(TklusQuery, Ranking)> = specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let ranking =
                if i % 3 == 0 { Ranking::Sum } else { Ranking::Max(BoundsMode::HotKeywords) };
            (to_query(spec, 12.0, 5, Semantics::Or), ranking)
        })
        .collect();

    let workers = 3usize;
    let (service_ms, worst_service_ms) = calibrate_service_ms(&engine, &requests);
    // 4x overload: arrivals at 4 × (workers / service_time).
    let overload = 4.0;
    let interarrival = Duration::from_secs_f64(service_ms / 1e3 / workers as f64 / overload);
    let total = 600usize;
    println!(
        "calibrated service {:.2} ms; {} workers; interarrival {:.0} us ({}x overload); {} requests",
        service_ms,
        workers,
        interarrival.as_secs_f64() * 1e6,
        overload,
        total
    );

    // Limiter ON: bounded queue, deadline a small multiple of the service
    // time, degrade to a prefix when the backlog passes half the queue.
    let queue_capacity = 2 * workers;
    let deadline_ms = (service_ms * 10.0).ceil() as u64 + 5;
    let limiter_on = ServeConfig {
        workers,
        queue_capacity,
        default_deadline_ms: deadline_ms,
        est_service_ms: service_ms.ceil() as u64,
        degrade: Some(DegradePolicy { queue_threshold: queue_capacity / 2, max_cells: 2 }),
        breaker: Default::default(),
    };
    // Limiter OFF: the queue swallows the whole burst and the deadline
    // outlives the run, so nothing is ever shed — every request waits.
    let limiter_off = ServeConfig {
        workers,
        queue_capacity: total + 1,
        default_deadline_ms: 600_000,
        est_service_ms: service_ms.ceil() as u64,
        degrade: None,
        breaker: Default::default(),
    };

    let on = run_burst(
        "limiter-on",
        Arc::clone(&engine),
        &requests,
        limiter_on,
        total,
        interarrival,
        Duration::from_millis(deadline_ms),
    );
    let off = run_burst(
        "limiter-off",
        Arc::clone(&engine),
        &requests,
        limiter_off,
        total,
        interarrival,
        Duration::from_secs(600),
    );

    println!(
        "{:<12} {:>9} {:>10} {:>9} {:>6} {:>9} {:>9}",
        "mode", "offered", "completed", "degraded", "shed", "p99(ms)", "max(ms)"
    );
    for out in [&on, &off] {
        let (p99, max) = out.latency.as_ref().map_or((0.0, 0.0), |s| (s.p99, s.max));
        println!(
            "{:<12} {:>9} {:>10} {:>9} {:>6} {:>9.2} {:>9.2}",
            out.label, out.offered, out.completed, out.degraded, out.shed, p99, max
        );
        csv_row(&[
            out.label.into(),
            out.offered.to_string(),
            out.completed.to_string(),
            out.shed.to_string(),
            format!("{p99:.2}"),
        ]);
    }

    let on_p99 = on.latency.as_ref().map_or(0.0, |s| s.p99);
    let off_p99 = off.latency.as_ref().map_or(0.0, |s| s.p99);
    // The claim under test: with the limiter on, p99 is bounded by the
    // deadline plus one worst-case service (nothing admitted waits past
    // its deadline, and the slowest query can start right at it); with it
    // off, p99 grows with the backlog and blows through that bound.
    let bound_ms = deadline_ms as f64 + worst_service_ms;
    let bounded = on_p99 <= bound_ms;
    println!(
        "limiter-on p99 {on_p99:.2} ms (bound {bound_ms:.0} ms, bounded: {bounded}); \
         limiter-off p99 {off_p99:.2} ms"
    );

    // Hand-rolled JSON: serde is a no-op stand-in in this workspace.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"overload\",\n");
    json.push_str(&format!("  \"posts\": {},\n", flags.posts.min(20_000)));
    json.push_str(&format!("  \"seed\": {},\n", flags.seed));
    json.push_str(&format!("  \"workers\": {workers},\n"));
    json.push_str(&format!("  \"overload_factor\": {overload},\n"));
    json.push_str(&format!("  \"calibrated_service_ms\": {service_ms:.3},\n"));
    json.push_str(&format!("  \"worst_service_ms\": {worst_service_ms:.3},\n"));
    json.push_str(&format!("  \"deadline_ms\": {deadline_ms},\n"));
    json.push_str(&format!("  \"p99_bound_ms\": {bound_ms:.1},\n"));
    json.push_str(&format!("  \"requests\": {total},\n"));
    json.push_str("  \"runs\": [\n");
    json.push_str(&json_run(&on));
    json.push_str(",\n");
    json.push_str(&json_run(&off));
    json.push_str("\n  ],\n");
    json.push_str(&format!("  \"limiter_on_p99_bounded_by_deadline\": {bounded}\n"));
    json.push_str("}\n");

    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_overload.json", &json)
        .expect("write results/BENCH_overload.json");
    println!("wrote results/BENCH_overload.json");
}
