//! Table II — top-10 frequent keywords.
//!
//! Regenerates the paper's Table II from the synthetic corpus: the ten most
//! frequent dictionary terms after tokenization, stop-wording, and
//! stemming. The generator seeds the paper's exact keywords at the top
//! Zipf ranks, so the reproduced table should list their stems in order.

use tklus_bench::{banner, csv_row, parse_flags, standard_corpus};
use tklus_index::{build_index, IndexBuildConfig};

fn main() {
    let flags = parse_flags();
    banner("Table II: top-10 frequent keywords", &flags);
    let corpus = standard_corpus(&flags);
    let (index, _) = build_index(corpus.posts(), &IndexBuildConfig::default());
    println!("{:<6} {:<16} {:>12}", "rank", "keyword(stem)", "frequency");
    for (rank, (term, freq)) in index.vocab().top_terms(10).into_iter().enumerate() {
        let word = index.vocab().term(term).expect("top term interned");
        println!("{:<6} {:<16} {:>12}", rank + 1, word, freq);
        csv_row(&[(rank + 1).to_string(), word.to_string(), freq.to_string()]);
    }
    println!("\npaper Table II: restaurant game cafe shop hotel club coffee film pizza mall");
}
