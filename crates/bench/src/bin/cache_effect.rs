//! Effect of the multi-level query cache hierarchy on query latency.
//!
//! Real query logs are Zipf-shaped: a few hot (location, keywords) pairs
//! dominate. This bench replays such a log three times against equivalent
//! engines and compares per-query latency:
//!
//! 1. **off** — caches disabled (the paper's configuration);
//! 2. **cache-cold** — all three layers enabled but starting empty, so
//!    this pass pays every miss (its price shows the probe overhead);
//! 3. **cache-warm** — the same engine replaying the same log, now
//!    answering hot queries from the cover, postings, and thread caches.
//!
//! Every single answer in every pass is verified bit-identical to the
//! cache-off engine's (ids and exact `f64` score bits) before any number
//! is reported — a run that diverges panics rather than emitting JSON.
//! Emits `results/BENCH_cache.json`.
//!
//! The corpus is reply-heavier than the standard one (deep cascades) so
//! thread construction carries its realistic share of the per-candidate
//! cost; see `tklus-gen`'s cascade module for the shape parameters.

use std::time::Instant;
use tklus_bench::{banner, csv_row, ms, parse_flags, query_workload, to_query};
use tklus_core::{BoundsMode, CacheConfig, EngineConfig, RankedUser, Ranking, TklusEngine};
use tklus_gen::cascade::CascadeConfig;
use tklus_gen::{generate_corpus, GenConfig};
use tklus_model::{Corpus, Semantics, TklusQuery};

use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, Zipf};

/// Zipf exponent of the replayed query log (s=1 is the classic web-query
/// shape; the distinct set is small so the skew is visible but the tail
/// still gets replayed).
const ZIPF_S: f64 = 1.05;

fn reply_heavy_corpus(posts: usize, seed: u64) -> Corpus {
    generate_corpus(&GenConfig {
        original_posts: posts,
        // More users than the standard corpus: cascades multiply the post
        // count ~100x, and Definition 9 walks every post of a candidate
        // user, so the per-user post list must stay city-scale realistic.
        users: (posts * 10).max(50),
        seed,
        cascade: CascadeConfig {
            p_respond: 0.8,
            p_more: 0.7,
            depth_decay: 0.85,
            max_depth: 6,
            ..CascadeConfig::default()
        },
        ..GenConfig::default()
    })
}

fn engine_with_caches(corpus: &Corpus, caches: CacheConfig) -> TklusEngine {
    // A generous page budget for *both* engines: the comparison isolates
    // the query-cache layers, not buffer-pool thrash.
    let config =
        EngineConfig { hot_keywords: 200, cache_pages: 8192, caches, ..EngineConfig::default() };
    TklusEngine::build(corpus, &config).0
}

/// Replays the log, timing each query and checking its answer against the
/// reference (bitwise).
fn replay(
    engine: &TklusEngine,
    requests: &[(TklusQuery, Ranking)],
    reference: &[Vec<RankedUser>],
    log: &[usize],
    pass: &str,
) -> Vec<f64> {
    log.iter()
        .map(|&i| {
            let (q, ranking) = &requests[i];
            let t = Instant::now();
            let (top, _) = engine.query(q, *ranking);
            let elapsed = ms(t.elapsed());
            let want = &reference[i];
            assert_eq!(top.len(), want.len(), "{pass}: request {i} changed cardinality");
            for (g, w) in top.iter().zip(want) {
                assert_eq!(g.user, w.user, "{pass}: request {i} changed ranking");
                assert_eq!(
                    g.score.to_bits(),
                    w.score.to_bits(),
                    "{pass}: request {i} changed score bits"
                );
            }
            elapsed
        })
        .collect()
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn summarize(mut samples: Vec<f64>) -> (f64, f64, f64) {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    (percentile(&samples, 0.5), percentile(&samples, 0.9), samples.iter().sum::<f64>())
}

fn main() {
    let flags = parse_flags();
    banner("Cache effect: Zipf query log, off vs cold vs warm caches", &flags);
    let corpus = reply_heavy_corpus(flags.posts, flags.seed);
    println!("corpus with cascades: {} posts", corpus.len());

    let off = engine_with_caches(&corpus, CacheConfig::default());
    let caches = CacheConfig { cover: 256, postings: 4096, thread: 1 << 19 };
    let cached = engine_with_caches(&corpus, caches);

    // Distinct request set: the Section VI-B1 workload with a ranking mix.
    let specs = query_workload(&corpus);
    let requests: Vec<(TklusQuery, Ranking)> = specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let ranking = match i % 6 {
                5 => Ranking::Max(BoundsMode::HotKeywords),
                _ => Ranking::Sum,
            };
            (to_query(spec, 20.0, 5, Semantics::Or), ranking)
        })
        .collect();

    // Zipf-skewed log over the distinct requests: rank r is replayed with
    // probability ∝ r^-s.
    let log_len = (flags.queries.max(10) * 30).max(requests.len() * 2);
    let zipf = Zipf::new(requests.len() as u64, ZIPF_S).expect("valid Zipf parameters");
    let mut rng = StdRng::seed_from_u64(flags.seed ^ 0x5EED_CAFE);
    let log: Vec<usize> = (0..log_len).map(|_| zipf.sample(&mut rng) as usize - 1).collect();
    let distinct_replayed = {
        let mut seen: Vec<bool> = vec![false; requests.len()];
        log.iter().for_each(|&i| seen[i] = true);
        seen.iter().filter(|&&b| b).count()
    };
    println!("log: {log_len} queries over {distinct_replayed} distinct requests (s={ZIPF_S})");

    // Reference answers from the cache-off engine; this pass also faults
    // every partition and metadata page into both engines' buffer pools so
    // the comparison below isolates the query-cache layers.
    let reference: Vec<Vec<RankedUser>> =
        requests.iter().map(|(q, r)| off.query(q, *r).0).collect();
    for (q, r) in &requests {
        std::hint::black_box(cached.query(q, *r));
    }
    // The warm-up above also filled the query caches; drop back to a cold
    // hierarchy by rebuilding (cheap next to the replay) so the cache-cold
    // pass really starts empty.
    let cached = engine_with_caches(&corpus, caches);
    for (q, r) in &requests {
        std::hint::black_box(off.query(q, *r));
    }

    let cold_lat = replay(&cached, &requests, &reference, &log, "cache-cold");
    // Off and warm are measured *interleaved*, one query at a time with
    // alternating order, so host-load drift over the run hits both series
    // equally instead of whichever pass happened to run last.
    let mut off_lat = Vec::with_capacity(log.len());
    let mut warm_lat = Vec::with_capacity(log.len());
    for (n, &i) in log.iter().enumerate() {
        if n % 2 == 0 {
            off_lat.extend(replay(&off, &requests, &reference, &[i], "off"));
            warm_lat.extend(replay(&cached, &requests, &reference, &[i], "cache-warm"));
        } else {
            warm_lat.extend(replay(&cached, &requests, &reference, &[i], "cache-warm"));
            off_lat.extend(replay(&off, &requests, &reference, &[i], "off"));
        }
    }

    let (off_p50, off_p90, off_total) = summarize(off_lat);
    let (cold_p50, cold_p90, cold_total) = summarize(cold_lat);
    let (warm_p50, warm_p90, warm_total) = summarize(warm_lat);
    let speedup_p50 = off_p50 / warm_p50.max(1e-9);
    let speedup_total = off_total / warm_total.max(1e-9);

    println!("{:<12} {:>10} {:>10} {:>12}", "pass", "p50 ms", "p90 ms", "total ms");
    for (name, p50, p90, total) in [
        ("off", off_p50, off_p90, off_total),
        ("cache-cold", cold_p50, cold_p90, cold_total),
        ("cache-warm", warm_p50, warm_p90, warm_total),
    ] {
        println!("{name:<12} {p50:>10.3} {p90:>10.3} {total:>12.1}");
        csv_row(&[name.into(), format!("{p50:.3}"), format!("{p90:.3}"), format!("{total:.1}")]);
    }
    println!("median speedup warm vs off: {speedup_p50:.2}x (total {speedup_total:.2}x)");

    let cs = cached.cache_stats();
    println!(
        "cache hit rates: cover {:.0}%, postings {:.0}%, thread {:.0}%",
        cs.cover.hit_rate() * 100.0,
        cs.postings.hit_rate() * 100.0,
        cs.thread.hit_rate() * 100.0,
    );

    // Hand-rolled JSON, same rationale as qps_throughput.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"cache_effect\",\n");
    json.push_str(&format!("  \"posts\": {},\n", flags.posts));
    json.push_str(&format!("  \"seed\": {},\n", flags.seed));
    json.push_str(&format!("  \"corpus_posts\": {},\n", corpus.len()));
    json.push_str(&format!("  \"log_len\": {log_len},\n"));
    json.push_str(&format!("  \"distinct_requests\": {},\n", requests.len()));
    json.push_str(&format!("  \"zipf_s\": {ZIPF_S},\n"));
    json.push_str(&format!(
        "  \"cache_config\": {{ \"cover\": {}, \"postings\": {}, \"thread\": {} }},\n",
        caches.cover, caches.postings, caches.thread
    ));
    json.push_str("  \"passes\": [\n");
    for (i, (name, p50, p90, total)) in [
        ("off", off_p50, off_p90, off_total),
        ("cache_cold", cold_p50, cold_p90, cold_total),
        ("cache_warm", warm_p50, warm_p90, warm_total),
    ]
    .iter()
    .enumerate()
    {
        let comma = if i < 2 { "," } else { "" };
        json.push_str(&format!(
            "    {{ \"pass\": \"{name}\", \"p50_ms\": {p50:.4}, \"p90_ms\": {p90:.4}, \"total_ms\": {total:.2} }}{comma}\n"
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"hit_rates\": {{ \"cover\": {:.4}, \"postings\": {:.4}, \"thread\": {:.4} }},\n",
        cs.cover.hit_rate(),
        cs.postings.hit_rate(),
        cs.thread.hit_rate()
    ));
    json.push_str(&format!("  \"median_speedup_warm_vs_off\": {speedup_p50:.2},\n"));
    json.push_str(&format!("  \"total_speedup_warm_vs_off\": {speedup_total:.2},\n"));
    json.push_str("  \"results_verified_identical\": true\n");
    json.push_str("}\n");

    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_cache.json", &json).expect("write results/BENCH_cache.json");
    println!("wrote results/BENCH_cache.json");
}
