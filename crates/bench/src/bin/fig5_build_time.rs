//! Figure 5 — index construction time vs geohash encoding length.
//!
//! Paper shape: construction time is *insensitive* to the geohash length
//! ("steady around 850 minutes"), and the MapReduce build handles an order
//! of magnitude more tweets per unit time than the centralized
//! state-of-the-art (I³, quoted numbers). Here both builders run on the
//! same corpus: the distributed build (3 simulated nodes) should stay flat
//! across lengths 1–4, tracking or beating the sequential centralized
//! baseline, and both report identical logical index contents.

use tklus_bench::{banner, csv_row, ms, parse_flags, standard_corpus};
use tklus_index::{baseline::build_centralized, build_index, IndexBuildConfig};

fn main() {
    let flags = parse_flags();
    banner("Figure 5: index construction time vs geohash length", &flags);
    let corpus = standard_corpus(&flags);
    println!("total posts (originals + responses): {}", corpus.len());
    println!(
        "{:<8} {:>16} {:>16} {:>12} {:>12}",
        "length", "mapreduce ms", "centralized ms", "keys", "postings"
    );
    for len in 1..=4usize {
        let config = IndexBuildConfig { geohash_len: len, ..IndexBuildConfig::default() };
        let (_, dist) = build_index(corpus.posts(), &config);
        let (_, cent) = build_centralized(corpus.posts(), len, config.block_size);
        assert_eq!(dist.keys, cent.keys, "both builders must agree on index contents");
        println!(
            "{:<8} {:>16.1} {:>16.1} {:>12} {:>12}",
            len,
            ms(dist.total_time),
            ms(cent.total_time),
            dist.keys,
            dist.postings
        );
        csv_row(&[
            len.to_string(),
            format!("{:.3}", ms(dist.total_time)),
            format!("{:.3}", ms(cent.total_time)),
            dist.keys.to_string(),
            dist.postings.to_string(),
        ]);
    }
    println!("\npaper shape: flat (~850 min) across lengths 1-4; MapReduce build scales past centralized builders");
}
