//! Diagnostic tool (not a paper figure): prints the global and
//! per-keyword popularity bounds next to the top-k scores actual queries
//! achieve, so one can see at a glance how much headroom Algorithm 5's
//! prune has. Pruning fires when the k-th best user score exceeds
//! `α·(tf/N)·bound + (1−α)` — if the printed top-5 scores sit far below
//! the bound-implied threshold, the prune is inert on this workload.

use tklus_bench::{banner, build_engine, parse_flags, query_workload, standard_corpus, to_query};
use tklus_core::{BoundsMode, Ranking};
use tklus_model::Semantics;

fn main() {
    let flags = parse_flags();
    banner("Diagnostic: popularity bounds vs achieved top-k scores", &flags);
    let corpus = standard_corpus(&flags);
    let engine = build_engine(&corpus, 4);
    println!("global bound popularity = {:.2}", engine.bounds().global());
    let specs: Vec<_> = query_workload(&corpus).into_iter().take(flags.queries.max(10)).collect();
    for spec in &specs {
        let kw = &spec.keywords[0];
        let resolved = engine.resolve_keywords(&spec.keywords);
        let Some(Some(term)) = resolved.first().copied() else { continue };
        let hot = engine.bounds().hot_bound(term);
        let q = to_query(spec, 50.0, 5, Semantics::Or);
        let (top, stats) = engine.query(&q, Ranking::Max(BoundsMode::HotKeywords));
        let scores: Vec<String> = top.iter().map(|r| format!("{:.3}", r.score)).collect();
        println!(
            "kw={kw:<12} hot_bound={:<10} candidates={:<6} pruned={:<6} top5=[{}]",
            hot.map_or("-".to_string(), |b| format!("{b:.1}")),
            stats.candidates,
            stats.threads_pruned,
            scores.join(", ")
        );
    }
}
