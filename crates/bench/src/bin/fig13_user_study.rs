//! Figure 13 — user study (simulated judging panel).
//!
//! The paper's six human participants judge top-10 result lines
//! `(userId, tweet content)`, four votes per line, user relevant at ≥ 2
//! votes. The reproduction computes each line's latent relevance from
//! ground truth (does the exemplar tweet really carry the query keywords,
//! and how close to the query was it posted?) and passes it through a
//! noisy simulated panel with the same protocol.
//!
//! Paper shape: precision 60–80% at ranges ≤ 10 km, decreasing as the
//! range grows; top-5 precision consistently above top-10.

use std::collections::HashSet;
use tklus_bench::{
    banner, build_engine, csv_row, parse_flags, query_workload, standard_corpus, to_query,
};
use tklus_core::{BoundsMode, RankedUser, Ranking};
use tklus_gen::QuerySpec;
use tklus_metrics::{precision_at_k, JudgePanel, StudyLine, Summary};
use tklus_model::{Corpus, Semantics, UserId};
use tklus_text::TextPipeline;

/// Builds the study line for one returned user: the exemplar tweet is the
/// user's keyword-matching post closest to the query location.
fn study_line(
    corpus: &Corpus,
    pipeline: &TextPipeline,
    spec: &QuerySpec,
    user: UserId,
) -> StudyLine {
    let stems: Vec<String> =
        spec.keywords.iter().filter_map(|k| pipeline.normalize_keyword(k)).collect();
    let mut best: Option<(f64, StudyLine)> = None;
    for post in corpus.posts_of(user) {
        let terms = pipeline.terms(&post.text);
        let matched = stems.iter().filter(|s| terms.contains(s)).count();
        let keyword_match =
            if stems.is_empty() { 0.0 } else { matched as f64 / stems.len() as f64 };
        let d = spec.location.euclidean_km(&post.location);
        // Prefer keyword-matching posts, then proximity.
        let rank = (if matched > 0 { 0.0 } else { 1e6 }) + d;
        if best.as_ref().is_none_or(|(r, _)| rank < *r) {
            best = Some((rank, StudyLine { user, tweet_location: post.location, keyword_match }));
        }
    }
    best.map(|(_, l)| l).expect("returned users have posts")
}

fn main() {
    let flags = parse_flags();
    banner("Figure 13: simulated user study", &flags);
    let corpus = standard_corpus(&flags);
    let engine = build_engine(&corpus, 4);
    let pipeline = TextPipeline::new();
    // "A total of 30 queries with one to three keywords": 10 per bucket.
    let all_specs = query_workload(&corpus);
    let specs: Vec<QuerySpec> =
        (0..3).flat_map(|b| all_specs[b * 30..b * 30 + 10].to_vec()).collect();
    let radii = [5.0, 10.0, 15.0, 20.0];
    let mut panel = JudgePanel::new(0.1, 0xF16);
    println!("{:<10} {:<9} {:>14} {:>14}", "radius km", "method", "precision@5", "precision@10");
    for &radius in &radii {
        for (name, ranking) in
            [("sum", Ranking::Sum), ("max", Ranking::Max(BoundsMode::HotKeywords))]
        {
            let mut p5s = Vec::new();
            let mut p10s = Vec::new();
            for spec in &specs {
                let q = to_query(spec, radius, 10, Semantics::Or);
                let (top, _) = engine.query(&q, ranking);
                if top.is_empty() {
                    continue;
                }
                let users: Vec<UserId> = top.iter().map(|r: &RankedUser| r.user).collect();
                let mut relevant: HashSet<UserId> = HashSet::new();
                for &user in &users {
                    let line = study_line(&corpus, &pipeline, spec, user);
                    if panel.judge(&spec.location, radius, &line) {
                        relevant.insert(user);
                    }
                }
                p5s.push(precision_at_k(&users, &relevant, 5));
                p10s.push(precision_at_k(&users, &relevant, 10));
            }
            if p5s.is_empty() {
                continue;
            }
            let p5 = Summary::of(&p5s).mean;
            let p10 = Summary::of(&p10s).mean;
            println!("{:<10} {:<9} {:>14.3} {:>14.3}", radius, name, p5, p10);
            csv_row(&[
                radius.to_string(),
                name.to_string(),
                format!("{p5:.4}"),
                format!("{p10:.4}"),
            ]);
        }
    }
    println!(
        "\npaper shape: precision 60-80% at <=10 km, decreasing with radius; top-5 above top-10"
    );
}
