//! Shared harness for the per-figure experiment binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper's Section VI on the synthetic corpus (see `tklus-gen` for why and
//! how the corpus substitutes the 514M-tweet crawl). Binaries print a
//! human-readable table plus `csv,`-prefixed machine-readable rows, and
//! accept `--posts`, `--seed`, and `--queries` flags to scale the run.

use std::time::{Duration, Instant};
use tklus_core::{EngineConfig, Ranking, TklusEngine};
use tklus_gen::{generate_corpus, generate_queries, GenConfig, QueryConfig, QuerySpec};
use tklus_index::IndexBuildConfig;
use tklus_model::{Corpus, Semantics, TklusQuery};

/// Command-line flags shared by the figure binaries.
#[derive(Debug, Clone)]
pub struct Flags {
    /// Original posts in the synthetic corpus.
    pub posts: usize,
    /// Corpus seed.
    pub seed: u64,
    /// Queries sampled per configuration point.
    pub queries: usize,
    /// Baseline `BENCH_*.json` to gate regressions against (benches that
    /// support a gate exit non-zero when they regress past it).
    pub baseline: Option<String>,
}

impl Default for Flags {
    fn default() -> Self {
        Self { posts: 20_000, seed: 0x7B1D5, queries: 10, baseline: None }
    }
}

/// Parses `--posts N --seed N --queries N [--baseline PATH]` from
/// `std::env::args`. Unknown flags abort with a usage message.
pub fn parse_flags() -> Flags {
    let mut flags = Flags::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> u64 {
            args.get(i + 1)
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("flag {} needs a numeric value", args[i]))
        };
        match args[i].as_str() {
            "--posts" => flags.posts = value(i) as usize,
            "--seed" => flags.seed = value(i),
            "--queries" => flags.queries = value(i) as usize,
            "--baseline" => {
                flags.baseline = Some(
                    args.get(i + 1)
                        .unwrap_or_else(|| panic!("flag --baseline needs a path value"))
                        .clone(),
                );
            }
            other => panic!(
                "unknown flag {other}; supported: --posts N --seed N --queries N --baseline PATH"
            ),
        }
        i += 2;
    }
    flags
}

/// Pulls a numeric field out of a flat hand-rolled `BENCH_*.json` (the
/// workspace has no JSON parser dependency; benches emit one scalar per
/// line, so a line scan is exact for the files we write ourselves).
pub fn json_number_field(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    json.lines().find_map(|line| {
        let rest = line.trim().strip_prefix(&needle)?;
        rest.trim().trim_end_matches(',').parse().ok()
    })
}

/// The standard synthetic corpus for a flag set.
pub fn standard_corpus(flags: &Flags) -> Corpus {
    generate_corpus(&GenConfig {
        original_posts: flags.posts,
        users: (flags.posts / 3).max(50),
        seed: flags.seed,
        ..GenConfig::default()
    })
}

/// Builds a full engine over the corpus at the given geohash length.
///
/// Bounds are precomputed for the top-200 terms rather than the paper's
/// top-10: our multi-keyword queries pair a hot anchor with mid-frequency
/// qualifiers, and the OR-semantics bound (max over per-keyword bounds,
/// Section VI-B5) only bites when the qualifier has a specific bound too —
/// which the paper's own "Mexican restaurant" example assumes. The table
/// is still a few kilobytes.
pub fn build_engine(corpus: &Corpus, geohash_len: usize) -> TklusEngine {
    build_engine_with_format(corpus, geohash_len, tklus_index::PostingsFormat::default())
}

/// [`build_engine`] with an explicit postings layout, for flat-vs-block
/// comparisons.
pub fn build_engine_with_format(
    corpus: &Corpus,
    geohash_len: usize,
    postings_format: tklus_index::PostingsFormat,
) -> TklusEngine {
    let config = EngineConfig {
        index: IndexBuildConfig { geohash_len, postings_format, ..IndexBuildConfig::default() },
        hot_keywords: 200,
        ..EngineConfig::default()
    };
    TklusEngine::build(corpus, &config).0
}

/// The 90-query workload (30 per keyword count) of Section VI-B1.
pub fn query_workload(corpus: &Corpus) -> Vec<QuerySpec> {
    generate_queries(corpus, &QueryConfig::default())
}

/// Instantiates a spec as a TkLUS query.
pub fn to_query(spec: &QuerySpec, radius_km: f64, k: usize, semantics: Semantics) -> TklusQuery {
    TklusQuery::new(spec.location, radius_km, spec.keywords.clone(), k, semantics)
        .expect("valid query")
}

/// Runs a query and returns its wall time.
pub fn time_query(engine: &TklusEngine, q: &TklusQuery, ranking: Ranking) -> Duration {
    let t = Instant::now();
    let _ = engine.query(q, ranking);
    t.elapsed()
}

/// Milliseconds as f64.
pub fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Prints a figure header.
pub fn banner(title: &str, flags: &Flags) {
    println!("== {title} ==");
    println!(
        "corpus: {} original posts, seed {:#x}, {} queries/point",
        flags.posts, flags.seed, flags.queries
    );
}

/// Prints one machine-readable CSV row (prefixed so it is easy to grep).
pub fn csv_row(fields: &[String]) {
    println!("csv,{}", fields.join(","));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_corpus_is_sized_and_deterministic() {
        let flags = Flags { posts: 500, seed: 1, queries: 2, ..Flags::default() };
        let a = standard_corpus(&flags);
        let b = standard_corpus(&flags);
        assert!(a.len() >= 500);
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn workload_has_90_queries() {
        let flags = Flags { posts: 1000, seed: 2, queries: 2, ..Flags::default() };
        let corpus = standard_corpus(&flags);
        assert_eq!(query_workload(&corpus).len(), 90);
    }

    #[test]
    fn json_number_field_reads_flat_scalars() {
        let json = "{\n  \"bench\": \"qps\",\n  \"host_cores\": 4,\n  \
                    \"single_thread_block_median_latency_us\": 123.5,\n}\n";
        assert_eq!(json_number_field(json, "host_cores"), Some(4.0));
        assert_eq!(json_number_field(json, "single_thread_block_median_latency_us"), Some(123.5));
        assert_eq!(json_number_field(json, "bench"), None);
        assert_eq!(json_number_field(json, "missing"), None);
    }

    #[test]
    fn engine_answers_workload_queries() {
        let flags = Flags { posts: 1500, seed: 3, queries: 2, ..Flags::default() };
        let corpus = standard_corpus(&flags);
        let engine = build_engine(&corpus, 4);
        let specs = query_workload(&corpus);
        let q = to_query(&specs[0], 20.0, 5, Semantics::Or);
        let (_, stats) = engine.query(&q, Ranking::Sum);
        assert!(stats.cover_cells > 0);
    }
}
