//! Ablation: candidate retrieval via the hybrid geohash index (circle
//! cover + postings fetch + combine) versus the centralized IR-tree
//! baseline (Section VII-A's comparison family), on identical corpora and
//! queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tklus_bench::{standard_corpus, Flags};
use tklus_geo::{DistanceMetric, Point};
use tklus_index::{build_index, intersect_sum, union_sum, IndexBuildConfig, IrTree};
use tklus_model::Semantics;
use tklus_text::TextPipeline;

fn bench_retrieval(c: &mut Criterion) {
    let corpus =
        standard_corpus(&Flags { posts: 10_000, seed: 0x7B1D5, queries: 1, ..Flags::default() });
    let (hybrid, _) = build_index(corpus.posts(), &IndexBuildConfig::default());
    let irtree = IrTree::build(corpus.posts());
    let pipeline = TextPipeline::new();
    let stems: Vec<String> =
        ["hotel", "pizza"].iter().map(|k| pipeline.normalize_keyword(k).unwrap()).collect();
    let hybrid_terms: Vec<_> = stems.iter().filter_map(|s| hybrid.vocab().get(s)).collect();
    let ir_terms: Vec<_> = stems.iter().filter_map(|s| irtree.vocab().get(s)).collect();
    let center = Point::new_unchecked(43.6839128037, -79.37356590);

    let mut group = c.benchmark_group("retrieval");
    for &radius in &[10.0f64, 50.0] {
        for semantics in [Semantics::And, Semantics::Or] {
            group.bench_with_input(
                BenchmarkId::new(format!("hybrid_{semantics}"), format!("r{radius}")),
                &radius,
                |b, &radius| {
                    b.iter(|| {
                        let fetch = hybrid.fetch_for_query(
                            &center,
                            radius,
                            &hybrid_terms,
                            DistanceMetric::Euclidean,
                        );
                        match semantics {
                            Semantics::Or => {
                                let all: Vec<_> =
                                    fetch.per_keyword.iter().flatten().cloned().collect();
                                union_sum(&all)
                            }
                            Semantics::And => {
                                let groups: Vec<_> =
                                    fetch.per_keyword.iter().map(|l| union_sum(l)).collect();
                                intersect_sum(&groups)
                            }
                        }
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("irtree_{semantics}"), format!("r{radius}")),
                &radius,
                |b, &radius| {
                    b.iter(|| {
                        irtree.search_circle(
                            &center,
                            radius,
                            &ir_terms,
                            semantics,
                            DistanceMetric::Euclidean,
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_retrieval);
criterion_main!(benches);
