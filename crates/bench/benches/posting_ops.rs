//! Ablation: postings set operations (union with tf-summing vs
//! intersection) and encode/decode cost — the inner loop of lines 9–14 of
//! Algorithms 4/5.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use tklus_index::{intersect_gallop, intersect_sum, union_sum, PostingsList};

fn make_list(n: usize, stride: u64, offset: u64) -> PostingsList {
    (0..n as u64).map(|i| (offset + i * stride, 1 + (i % 3) as u32)).collect()
}

fn bench_union(c: &mut Criterion) {
    let mut group = c.benchmark_group("union_sum");
    for &n in &[100usize, 1_000, 10_000] {
        let lists = vec![make_list(n, 3, 0), make_list(n, 5, 1), make_list(n, 7, 2)];
        group.bench_with_input(BenchmarkId::from_parameter(n), &lists, |b, lists| {
            b.iter(|| union_sum(black_box(lists)))
        });
    }
    group.finish();
}

fn bench_intersect(c: &mut Criterion) {
    let mut group = c.benchmark_group("intersect_sum");
    for &n in &[100usize, 1_000, 10_000] {
        let groups = vec![
            union_sum(&[make_list(n, 2, 0)]),
            union_sum(&[make_list(n, 3, 0)]),
            union_sum(&[make_list(n / 10 + 1, 6, 0)]),
        ];
        group.bench_with_input(BenchmarkId::from_parameter(n), &groups, |b, groups| {
            b.iter(|| intersect_sum(black_box(groups)))
        });
    }
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let list = make_list(10_000, 2, 1_000_000);
    let bytes = list.encode();
    c.bench_function("postings_encode_10k", |b| b.iter(|| black_box(&list).encode()));
    c.bench_function("postings_decode_10k", |b| {
        b.iter(|| PostingsList::decode(black_box(&bytes)).unwrap())
    });
}

fn bench_gallop_vs_merge(c: &mut Criterion) {
    // Asymmetric intersection: a rare qualifier against a hot keyword —
    // where galloping should beat the linear merge.
    let mut group = c.benchmark_group("intersect_asymmetric");
    let hot = union_sum(&[make_list(100_000, 2, 0)]);
    for &small_n in &[10usize, 100, 1_000] {
        let rare = union_sum(&[make_list(small_n, 1009, 0)]);
        group.bench_with_input(BenchmarkId::new("merge", small_n), &rare, |b, rare| {
            b.iter(|| intersect_sum(&[rare.clone(), hot.clone()]))
        });
        group.bench_with_input(BenchmarkId::new("gallop", small_n), &rare, |b, rare| {
            b.iter(|| intersect_gallop(black_box(rare), black_box(&hot)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_union, bench_intersect, bench_codec, bench_gallop_vs_merge);
criterion_main!(benches);
