//! Ablation: the upper-bound prune of Algorithm 5 — Sum (no pruning) vs
//! Maximum with the global bound vs Maximum with hot-keyword bounds, on
//! the same queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tklus_bench::{build_engine, query_workload, standard_corpus, to_query, Flags};
use tklus_core::{BoundsMode, Ranking};
use tklus_model::Semantics;

fn bench_query_prune(c: &mut Criterion) {
    let flags = Flags { posts: 10_000, seed: 0x7B1D5, queries: 5, ..Flags::default() };
    let corpus = standard_corpus(&flags);
    let engine = build_engine(&corpus, 4);
    let specs: Vec<_> = query_workload(&corpus)
        .into_iter()
        .filter(|s| tklus_gen::TABLE2_KEYWORDS.contains(&s.keywords[0].as_str()))
        .take(5)
        .collect();

    let mut group = c.benchmark_group("query_prune");
    group.sample_size(10);
    for &radius in &[20.0f64, 50.0] {
        let queries: Vec<_> = specs.iter().map(|s| to_query(s, radius, 5, Semantics::Or)).collect();
        for (name, ranking) in [
            ("sum", Ranking::Sum),
            ("max_global", Ranking::Max(BoundsMode::Global)),
            ("max_hot", Ranking::Max(BoundsMode::HotKeywords)),
        ] {
            group.bench_with_input(
                BenchmarkId::new(name, format!("r{radius}")),
                &queries,
                |b, queries| {
                    b.iter(|| {
                        for q in queries {
                            let _ = engine.query(q, ranking);
                        }
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_query_prune);
criterion_main!(benches);
