//! Ablation: MapReduce index-build scaling with worker/node count, and
//! the distributed build vs the centralized baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tklus_bench::{standard_corpus, Flags};
use tklus_index::{baseline::build_centralized, build_index, IndexBuildConfig};

fn bench_build_scaling(c: &mut Criterion) {
    let corpus =
        standard_corpus(&Flags { posts: 10_000, seed: 0x7B1D5, queries: 1, ..Flags::default() });
    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);
    for &nodes in &[1usize, 2, 3, 4] {
        let config = IndexBuildConfig { geohash_len: 4, nodes, ..Default::default() };
        group.bench_with_input(BenchmarkId::new("mapreduce", nodes), &config, |b, config| {
            b.iter(|| build_index(corpus.posts(), config))
        });
    }
    group.bench_function("centralized", |b| {
        b.iter(|| build_centralized(corpus.posts(), 4, 64 * 1024))
    });
    group.finish();
}

criterion_group!(benches, bench_build_scaling);
criterion_main!(benches);
