//! Ablation: B⁺-tree bulk load vs incremental insertion, and point-get /
//! range-scan cost — the access paths behind the metadata database.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use tklus_storage::{BPlusTree, BufferPool, MemPager};

type Tree = BPlusTree<BufferPool<MemPager>, 8>;

fn entries(n: u64) -> Vec<((u64, u64), [u8; 8])> {
    (0..n).map(|k| ((k, 0), k.to_le_bytes())).collect()
}

fn pool(cache: usize) -> BufferPool<MemPager> {
    BufferPool::new(MemPager::new(), cache)
}

fn bench_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("bptree_load");
    group.sample_size(10);
    for &n in &[10_000u64, 50_000] {
        let data = entries(n);
        group.bench_with_input(BenchmarkId::new("bulk", n), &data, |b, data| {
            b.iter(|| Tree::bulk_load(pool(256), black_box(data)).expect("bulk load"))
        });
        group.bench_with_input(BenchmarkId::new("incremental", n), &data, |b, data| {
            b.iter(|| {
                let mut t = Tree::new(pool(256)).expect("new tree");
                for (k, v) in data {
                    t.insert(*k, *v).expect("insert");
                }
                t
            })
        });
    }
    group.finish();
}

fn bench_access(c: &mut Criterion) {
    let data = entries(100_000);
    let mut group = c.benchmark_group("bptree_access");
    for &cache in &[0usize, 1024] {
        let tree = Tree::bulk_load(pool(cache), &data).expect("bulk load");
        group.bench_function(BenchmarkId::new("get", cache), |b| {
            let mut k = 0u64;
            b.iter(|| {
                k = (k + 9973) % 100_000;
                black_box(tree.get((k, 0)).expect("get"))
            })
        });
        group.bench_function(BenchmarkId::new("scan100", cache), |b| {
            let mut k = 0u64;
            b.iter(|| {
                k = (k + 9973) % 99_900;
                black_box(tree.scan((k, 0), (k + 99, 0)).expect("scan"))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_load, bench_access);
criterion_main!(benches);
