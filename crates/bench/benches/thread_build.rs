//! Ablation: tweet-thread construction cost over the metadata database —
//! the per-candidate I/O bottleneck that Section V-B's pruning targets.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use tklus_bench::{standard_corpus, Flags};
use tklus_core::MetadataDb;
use tklus_graph::build_thread;
use tklus_model::TweetId;

fn bench_thread_build(c: &mut Criterion) {
    let corpus =
        standard_corpus(&Flags { posts: 10_000, seed: 0x7B1D5, queries: 1, ..Flags::default() });
    // Roots with the largest reply fan-out make the most expensive threads.
    let mut db = MetadataDb::from_posts(corpus.posts(), 0);
    let mut roots: Vec<(usize, TweetId)> = corpus
        .posts()
        .iter()
        .filter(|p| !p.is_reply())
        .map(|p| (db.replies_to_ids(p.id).len(), p.id))
        .collect();
    roots.sort_by_key(|(n, _)| std::cmp::Reverse(*n));
    let busy = roots[0].1;
    let quiet = roots.last().expect("non-empty corpus").1;

    let mut group = c.benchmark_group("thread_build");
    for &depth in &[2usize, 4, 6] {
        group.bench_with_input(BenchmarkId::new("busy_root", depth), &depth, |b, &depth| {
            b.iter(|| build_thread(&mut db, black_box(busy), depth))
        });
        group.bench_with_input(BenchmarkId::new("quiet_root", depth), &depth, |b, &depth| {
            b.iter(|| build_thread(&mut db, black_box(quiet), depth))
        });
    }
    group.finish();

    // Report I/O per thread construction (the paper's unit of cost).
    db.io().reset();
    let t = build_thread(&mut db, busy, 6);
    println!(
        "\nbusy-root thread: {} tweets over {} levels, {} metadata page reads",
        t.size(),
        t.height(),
        db.io().page_reads()
    );
}

criterion_group!(benches, bench_thread_build);
criterion_main!(benches);
