//! Ablation: circle-cover construction cost and quality at different
//! geohash lengths — the trade-off behind Figure 7.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use tklus_geo::{circle_cover, cover::circle_cover_with_stats, DistanceMetric, Point};

fn bench_cover(c: &mut Criterion) {
    let center = Point::new_unchecked(43.6839128037, -79.37356590);
    let mut group = c.benchmark_group("circle_cover");
    for &len in &[2usize, 3, 4, 5] {
        for &radius in &[10.0f64, 50.0] {
            group.bench_with_input(
                BenchmarkId::new(format!("len{len}"), format!("r{radius}")),
                &(len, radius),
                |b, &(len, radius)| {
                    b.iter(|| {
                        circle_cover(black_box(&center), radius, len, DistanceMetric::Euclidean)
                            .unwrap()
                    })
                },
            );
        }
    }
    group.finish();

    // Print the cover-quality trade-off once (cells vs overcoverage).
    println!("\ncover quality at r=10 km (cells / overcover ratio):");
    for len in 1..=5usize {
        let (_, stats) =
            circle_cover_with_stats(&center, 10.0, len, DistanceMetric::Euclidean).unwrap();
        println!("  len {len}: {} cells, {:.2}x circle area", stats.cells, stats.overcover_ratio());
    }
}

criterion_group!(benches, bench_cover);
criterion_main!(benches);
