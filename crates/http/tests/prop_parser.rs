//! Parser robustness properties (ISSUE acceptance, DESIGN.md §16).
//!
//! The parser faces the rawest input in the system: arbitrary bytes
//! from arbitrary sockets, delivered in arbitrary fragments. The
//! properties pin the full contract:
//!
//! * **no panic, ever** — any byte stream, any fragmentation, yields
//!   `Ok(None)`, a complete request, or a typed [`ParseError`];
//! * **fragmentation invisibility** — a valid byte stream parses to the
//!   same requests whether it arrives in one read or byte-by-byte, so
//!   TCP segmentation (and a slow-writer attacker) cannot change
//!   meaning;
//! * **truncation safety** — every proper prefix of a valid request is
//!   simply "not done yet", never an error and never a spurious
//!   request;
//! * **caps always fire** — oversized heads and declared bodies fail
//!   typed (431/413) no matter how they are dribbled in.

#![allow(clippy::unwrap_used)] // test code: panics are the failure report

use proptest::prelude::*;
use tklus_http::{ParseError, ParserConfig, Request, RequestParser};

/// Feeds `raw` split at the given fraction points; returns the requests
/// parsed and the first error (parsing stops there, like a real
/// connection would).
fn parse_fragmented(
    raw: &[u8],
    cfg: ParserConfig,
    cuts: &[usize],
) -> (Vec<Request>, Option<ParseError>) {
    let mut parser = RequestParser::new(cfg);
    let mut out = Vec::new();
    let mut cursor = 0;
    let mut bounds: Vec<usize> = cuts.iter().map(|&c| c % (raw.len() + 1)).collect();
    bounds.push(raw.len());
    bounds.sort_unstable();
    for end in bounds {
        let chunk = &raw[cursor..end];
        cursor = end;
        // Feed the chunk, then drain any pipelined requests it completed.
        let mut fed = false;
        loop {
            let step = if fed { parser.feed(&[]) } else { parser.feed(chunk) };
            fed = true;
            match step {
                Ok(Some(req)) => out.push(req),
                Ok(None) => break,
                Err(err) => return (out, Some(err)),
            }
        }
    }
    (out, None)
}

/// A generated, structurally valid request.
#[derive(Debug, Clone)]
struct ValidRequest {
    method: String,
    target: String,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
    crlf: bool,
}

impl ValidRequest {
    fn serialize(&self) -> Vec<u8> {
        let eol = if self.crlf { "\r\n" } else { "\n" };
        let mut out = format!("{} {} HTTP/1.1{eol}", self.method, self.target).into_bytes();
        for (name, value) in &self.headers {
            out.extend_from_slice(format!("{name}: {value}{eol}").as_bytes());
        }
        out.extend_from_slice(format!("Content-Length: {}{eol}{eol}", self.body.len()).as_bytes());
        out.extend_from_slice(&self.body);
        out
    }
}

fn arb_valid_request() -> impl Strategy<Value = ValidRequest> {
    (
        (0usize..5).prop_map(|i| ["GET", "POST", "PUT", "DELETE", "PATCH"][i]),
        "/[a-z_/]{0,20}",
        proptest::collection::vec(("[A-Za-z][A-Za-z-]{0,10}", "[ -~]{0,20}"), 0..4),
        proptest::collection::vec(any::<u8>(), 0..200),
        any::<bool>(),
    )
        .prop_map(|(method, target, headers, body, crlf)| ValidRequest {
            method: method.to_string(),
            target,
            // Keep generated headers away from the ones with parsing
            // semantics; those are covered by directed cases.
            headers: headers
                .into_iter()
                .filter(|(n, _)| {
                    !n.eq_ignore_ascii_case("content-length")
                        && !n.eq_ignore_ascii_case("transfer-encoding")
                        && !n.eq_ignore_ascii_case("connection")
                })
                .collect(),
            body,
            crlf,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any bytes, any fragmentation: the parser never panics, and a
    /// poisoning error is sticky.
    #[test]
    fn arbitrary_bytes_never_panic(
        raw in proptest::collection::vec(any::<u8>(), 0..600),
        cuts in proptest::collection::vec(any::<usize>(), 0..8),
    ) {
        let cfg = ParserConfig { max_header_bytes: 128, max_body_bytes: 256 };
        let (_, err) = parse_fragmented(&raw, cfg, &cuts);
        if let Some(err) = err {
            // Typed and mapped to a closeable status.
            prop_assert!(matches!(err.status(), 400 | 413 | 431 | 501));
        }
    }

    /// A valid request parses identically no matter how it is split —
    /// including byte-by-byte (the slow-writer client).
    #[test]
    fn fragmentation_is_invisible(
        req in arb_valid_request(),
        cuts in proptest::collection::vec(any::<usize>(), 0..8),
    ) {
        let raw = req.serialize();
        let cfg = ParserConfig::default();
        let (whole, err) = parse_fragmented(&raw, cfg, &[]);
        prop_assert!(err.is_none(), "valid request failed: {err:?}");
        prop_assert_eq!(whole.len(), 1);
        let (split, err) = parse_fragmented(&raw, cfg, &cuts);
        prop_assert!(err.is_none());
        prop_assert_eq!(&split, &whole, "fragmentation changed the parse");
        let byte_cuts: Vec<usize> = (0..raw.len()).collect();
        let (bytewise, err) = parse_fragmented(&raw, cfg, &byte_cuts);
        prop_assert!(err.is_none());
        prop_assert_eq!(&bytewise, &whole);
        prop_assert_eq!(&whole[0].method, &req.method);
        prop_assert_eq!(&whole[0].target, &req.target);
        prop_assert_eq!(&whole[0].body, &req.body);
    }

    /// Every proper prefix of a valid request is incomplete — never an
    /// error, never a request.
    #[test]
    fn truncation_at_every_offset_is_incomplete(req in arb_valid_request()) {
        let raw = req.serialize();
        for end in 0..raw.len() {
            let mut parser = RequestParser::new(ParserConfig::default());
            match parser.feed(&raw[..end]) {
                Ok(None) => {
                    // The distinguishing bit for 408-vs-clean-close must
                    // be set for any nonempty prefix.
                    prop_assert_eq!(parser.mid_request(), end > 0);
                }
                Ok(Some(r)) => return Err(TestCaseError::Fail(
                    format!("prefix {end}/{} yielded {r:?}", raw.len()),
                )),
                Err(e) => return Err(TestCaseError::Fail(
                    format!("prefix {end}/{} errored: {e}", raw.len()),
                )),
            }
        }
    }

    /// Two pipelined requests survive arbitrary re-fragmentation.
    #[test]
    fn pipelining_is_fragmentation_proof(
        a in arb_valid_request(),
        b in arb_valid_request(),
        cuts in proptest::collection::vec(any::<usize>(), 0..10),
    ) {
        let mut raw = a.serialize();
        raw.extend_from_slice(&b.serialize());
        let (got, err) = parse_fragmented(&raw, ParserConfig::default(), &cuts);
        prop_assert!(err.is_none());
        prop_assert_eq!(got.len(), 2);
        prop_assert_eq!(&got[0].body, &a.body);
        prop_assert_eq!(&got[1].method, &b.method);
        prop_assert_eq!(&got[1].body, &b.body);
    }

    /// The header cap fires typed (431) for any unterminated dribble,
    /// at any fragmentation.
    #[test]
    fn header_cap_fires_for_any_dribble(
        pad in proptest::collection::vec((0usize..6).prop_map(|i| b"aB-: /"[i]), 200..400),
        cuts in proptest::collection::vec(any::<usize>(), 0..8),
    ) {
        let cfg = ParserConfig { max_header_bytes: 128, max_body_bytes: 1024 };
        let mut raw = b"GET / HTTP/1.1\r\nX-Pad: ".to_vec();
        raw.extend_from_slice(&pad);
        // No terminator ever arrives; the cap must still fire.
        let (got, err) = parse_fragmented(&raw, cfg, &cuts);
        prop_assert!(got.is_empty());
        prop_assert_eq!(err.map(|e| e.status()), Some(431));
    }

    /// A declared oversized body fails typed (413) as soon as the head
    /// completes, regardless of how much body ever arrives.
    #[test]
    fn declared_oversized_body_is_413(
        extra in 1u64..10_000,
        sent in 0usize..32,
        cuts in proptest::collection::vec(any::<usize>(), 0..8),
    ) {
        let cfg = ParserConfig { max_header_bytes: 1024, max_body_bytes: 64 };
        let declared = 64 + extra;
        let mut raw =
            format!("POST /q HTTP/1.1\r\nContent-Length: {declared}\r\n\r\n").into_bytes();
        raw.extend_from_slice(&vec![b'x'; sent]);
        let (got, err) = parse_fragmented(&raw, cfg, &cuts);
        prop_assert!(got.is_empty());
        prop_assert_eq!(
            err,
            Some(ParseError::BodyTooLarge { declared, limit: 64 })
        );
    }
}
