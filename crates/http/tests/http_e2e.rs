//! Real-socket end-to-end suite (ISSUE acceptance, DESIGN.md §16).
//!
//! Every test drives the full stack — TCP connect, byte-level HTTP,
//! admission queue, worker pool, engine/sink — and asserts the typed
//! contract at the wire: truthful status codes, `Retry-After` on
//! retryable sheds, slow-client defenses, and a drain that answers every
//! in-flight request before the process lets go of the port.

#![allow(clippy::unwrap_used)] // test code: panics are the failure report

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;
use tklus_core::{EngineConfig, Ranking, TklusEngine};
use tklus_gen::{generate_corpus, generate_queries, GenConfig, QueryConfig};
use tklus_http::{serve, HttpConfig, HttpHandle, ParserConfig, WalSink};
use tklus_model::{Semantics, TklusQuery};
use tklus_serve::{IngestSink, ServeConfig, SinkError, TklusServer};
use tklus_wal::{IngestStore, StdFs, StoreConfig, WalFs};

// ---------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------

fn engine() -> Arc<TklusEngine> {
    let corpus = generate_corpus(&GenConfig {
        original_posts: 200,
        users: 40,
        vocab_size: 200,
        ..GenConfig::default()
    });
    let (engine, _) = TklusEngine::build(&corpus, &EngineConfig::default());
    Arc::new(engine)
}

/// A query JSON body aimed where the generated corpus actually has data.
fn query_body(engine: &TklusEngine) -> (String, TklusQuery) {
    let corpus = generate_corpus(&GenConfig {
        original_posts: 200,
        users: 40,
        vocab_size: 200,
        ..GenConfig::default()
    });
    let spec = generate_queries(&corpus, &QueryConfig { per_bucket: 1, seed: 7 })
        .into_iter()
        .next()
        .expect("at least one generated query");
    let q = TklusQuery::new(spec.location, 15.0, spec.keywords.clone(), 5, Semantics::Or)
        .expect("generated query is valid");
    let kws: Vec<String> = spec.keywords.iter().map(|k| format!("\"{k}\"")).collect();
    let body = format!(
        "{{\"lat\":{},\"lon\":{},\"radius_km\":15.0,\"keywords\":[{}],\"k\":5}}",
        spec.location.lat(),
        spec.location.lon(),
        kws.join(",")
    );
    let _ = engine;
    (body, q)
}

fn start(engine: Arc<TklusEngine>, serve_cfg: ServeConfig, http_cfg: HttpConfig) -> HttpHandle {
    let server = TklusServer::start(engine, serve_cfg).expect("server starts");
    serve(server, http_cfg).expect("front-end binds")
}

/// Reads exactly one response off the stream; `carry` holds any
/// over-read bytes (the start of the next pipelined response) between
/// calls on the same connection.
fn read_response_carry(
    stream: &mut TcpStream,
    carry: &mut Vec<u8>,
) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let mut raw = std::mem::take(carry);
    let mut buf = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        let n = stream.read(&mut buf).expect("read response head");
        assert!(n > 0, "EOF before response head; got {:?}", String::from_utf8_lossy(&raw));
        raw.extend_from_slice(&buf[..n]);
    };
    let head = String::from_utf8(raw[..head_end].to_vec()).expect("utf8 head");
    let mut lines = head.lines();
    let status: u16 = lines
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let headers: Vec<(String, String)> = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_lowercase(), v.trim().to_string()))
        .collect();
    let len: usize = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse().ok())
        .expect("content-length");
    let mut body = raw.split_off(head_end);
    while body.len() < len {
        let n = stream.read(&mut buf).expect("read response body");
        assert!(n > 0, "EOF mid-body");
        body.extend_from_slice(&buf[..n]);
    }
    *carry = body.split_off(len);
    (status, headers, body)
}

/// Reads one response where the connection carries nothing after it.
fn read_response(stream: &mut TcpStream) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let mut carry = Vec::new();
    read_response_carry(stream, &mut carry)
}

/// One-shot request over a fresh connection.
fn request(addr: SocketAddr, raw: &str) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("write request");
    read_response(&mut stream)
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, Vec<(String, String)>, Vec<u8>) {
    request(addr, &format!("POST {path} HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}", body.len()))
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
}

/// Polls `/metrics` until every wanted gauge row appears (5 s cap).
fn wait_for_gauges(addr: SocketAddr, wanted: &[&str]) {
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let (_, _, metrics) = request(addr, "GET /metrics HTTP/1.1\r\n\r\n");
        let text = String::from_utf8(metrics).expect("utf8 metrics");
        if wanted.iter().all(|w| text.contains(w)) {
            return;
        }
        assert!(std::time::Instant::now() < deadline, "gauges {wanted:?} never settled:\n{text}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

// ---------------------------------------------------------------------
// Happy paths
// ---------------------------------------------------------------------

#[test]
fn query_over_socket_matches_the_engine_bitwise() {
    let engine = engine();
    let (body, q) = query_body(&engine);
    let want = engine.try_query(&q, Ranking::Sum).expect("reference query");
    let handle = start(Arc::clone(&engine), ServeConfig::default(), HttpConfig::default());

    let (status, _, resp) = post(handle.addr(), "/query", &body);
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&resp));
    let json = serde_json::from_str(std::str::from_utf8(&resp).unwrap()).expect("json body");
    assert_eq!(json.get("completeness").and_then(|c| c.as_str()), Some("complete"));
    let users = json.get("users").and_then(|u| u.as_array()).expect("users array");
    assert_eq!(users.len(), want.users.len());
    for (got, want) in users.iter().zip(&want.users) {
        assert_eq!(got.get("user").and_then(|u| u.as_u64()), Some(want.user.0));
        // JSON round-trips f64 via shortest-representation printing.
        assert_eq!(got.get("score").and_then(|s| s.as_f64()), Some(want.score));
    }
    handle.shutdown();
}

#[test]
fn batch_answers_every_query_in_order() {
    let engine = engine();
    let (body, _) = query_body(&engine);
    let handle = start(engine, ServeConfig::default(), HttpConfig::default());
    let batch = format!("{{\"queries\":[{body},{body},{body}]}}");
    let (status, _, resp) = post(handle.addr(), "/query_batch", &batch);
    assert_eq!(status, 200);
    let json = serde_json::from_str(std::str::from_utf8(&resp).unwrap()).expect("json");
    let results = json.get("results").and_then(|r| r.as_array()).expect("results");
    assert_eq!(results.len(), 3);
    for item in results {
        assert_eq!(item.get("status").and_then(|s| s.as_u64()), Some(200));
        assert!(item.get("body").and_then(|b| b.get("users")).is_some());
    }
    handle.shutdown();
}

#[test]
fn health_and_metrics_render_over_sockets() {
    let engine = engine();
    let (body, _) = query_body(&engine);
    let handle = start(engine, ServeConfig::default(), HttpConfig::default());
    let (status, _, _) = post(handle.addr(), "/query", &body);
    assert_eq!(status, 200);

    let (status, _, health) = request(handle.addr(), "GET /health HTTP/1.1\r\n\r\n");
    assert_eq!(status, 200);
    let health = String::from_utf8(health).unwrap();
    assert!(health.contains("status: healthy (ready)"), "{health}");

    let (status, _, metrics) = request(handle.addr(), "GET /metrics HTTP/1.1\r\n\r\n");
    assert_eq!(status, 200);
    let metrics = String::from_utf8(metrics).unwrap();
    assert!(metrics.contains("tklus_serve_completed 1"), "{metrics}");
    assert!(metrics.contains("tklus_http_requests"), "{metrics}");
    handle.shutdown();
}

#[test]
fn keep_alive_pipelining_answers_in_order() {
    let engine = engine();
    let (body, _) = query_body(&engine);
    let handle = start(engine, ServeConfig::default(), HttpConfig::default());
    let one = format!("POST /query HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}", body.len());
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    // Two requests in one write; two responses on the same connection.
    stream.write_all(format!("{one}{one}").as_bytes()).expect("write");
    let mut carry = Vec::new();
    let (s1, _, _) = read_response_carry(&mut stream, &mut carry);
    let (s2, _, _) = read_response_carry(&mut stream, &mut carry);
    assert_eq!((s1, s2), (200, 200));
    handle.shutdown();
}

// ---------------------------------------------------------------------
// Typed failures at the wire
// ---------------------------------------------------------------------

#[test]
fn parse_failures_answer_their_statuses_and_close() {
    let engine = engine();
    let http_cfg = HttpConfig {
        parser: ParserConfig { max_header_bytes: 256, max_body_bytes: 512 },
        ..HttpConfig::default()
    };
    let handle = start(engine, ServeConfig::default(), http_cfg);
    let cases: Vec<(String, u16, &str)> = vec![
        ("GARBAGE STREAM\r\n\r\n".into(), 400, "Malformed"),
        (format!("GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "a".repeat(300)), 431, "HeadersTooLarge"),
        ("POST /query HTTP/1.1\r\nContent-Length: 999999\r\n\r\n".into(), 413, "BodyTooLarge"),
        (
            "POST /query HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".into(),
            501,
            "UnsupportedTransferEncoding",
        ),
        ("POST /query HTTP/1.1\r\nContent-Length: 7\r\n\r\nnotjson".into(), 400, "BadRequest"),
        ("GET /nowhere HTTP/1.1\r\n\r\n".into(), 404, "NotFound"),
        ("DELETE /query HTTP/1.1\r\n\r\n".into(), 405, "MethodNotAllowed"),
    ];
    for (raw, want_status, want_kind) in cases {
        let mut stream = TcpStream::connect(handle.addr()).expect("connect");
        stream.write_all(raw.as_bytes()).expect("write");
        let (status, headers, body) = read_response(&mut stream);
        let text = String::from_utf8_lossy(&body).to_string();
        assert_eq!(status, want_status, "{text}");
        assert!(text.contains(want_kind), "{want_kind} missing from {text}");
        if want_status == 405 {
            assert_eq!(header(&headers, "allow"), Some("POST"));
        }
        if !(200..=404).contains(&want_status) && want_status != 405 {
            // Parse-level failures close the connection.
            assert_eq!(header(&headers, "connection"), Some("close"));
        }
    }
    handle.shutdown();
}

#[test]
fn slow_writer_gets_408_and_mid_request_disconnect_is_torn() {
    let engine = engine();
    let http_cfg = HttpConfig { read_timeout_ms: 150, ..HttpConfig::default() };
    let handle = start(engine, ServeConfig::default(), http_cfg);

    // Slow-loris: send half a head, then stall past the read deadline.
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream.write_all(b"POST /query HTTP/1.1\r\nContent-Le").expect("write partial");
    let (status, headers, body) = read_response(&mut stream);
    assert_eq!(status, 408, "{}", String::from_utf8_lossy(&body));
    assert!(String::from_utf8_lossy(&body).contains("ReadTimeout"));
    assert_eq!(header(&headers, "connection"), Some("close"));

    // Mid-request disconnect: the server counts it and keeps serving.
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream.write_all(b"POST /query HTTP/1.1\r\nContent-Length: 100\r\n\r\npartial").expect("write");
    drop(stream);
    std::thread::sleep(Duration::from_millis(50));
    let (status, _, metrics) = request(handle.addr(), "GET /metrics HTTP/1.1\r\n\r\n");
    assert_eq!(status, 200);
    let metrics = String::from_utf8(metrics).unwrap();
    assert!(metrics.contains("tklus_http_read_timeouts 1"), "{metrics}");
    assert!(metrics.contains("tklus_http_torn_requests 1"), "{metrics}");
    handle.shutdown();
}

#[test]
fn connection_cap_refuses_with_503_and_recovers() {
    let engine = engine();
    let (body, _) = query_body(&engine);
    let http_cfg = HttpConfig { max_connections: 1, ..HttpConfig::default() };
    let handle = start(engine, ServeConfig::default(), http_cfg);

    // First connection completes a request and holds its slot open.
    let mut holder = TcpStream::connect(handle.addr()).expect("connect");
    holder
        .write_all(
            format!("POST /query HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}", body.len())
                .as_bytes(),
        )
        .expect("write");
    let (status, _, _) = read_response(&mut holder);
    assert_eq!(status, 200);

    // Second connection is over the cap: refused typed, not ignored.
    let mut refused = TcpStream::connect(handle.addr()).expect("connect");
    refused.write_all(b"GET /health HTTP/1.1\r\n\r\n").expect("write");
    let (status, headers, text) = read_response(&mut refused);
    assert_eq!(status, 503, "{}", String::from_utf8_lossy(&text));
    assert!(String::from_utf8_lossy(&text).contains("ConnectionLimit"));
    assert_eq!(header(&headers, "retry-after"), Some("1"));

    // Freeing the slot lets the next connection in.
    drop(holder);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let (status, _, _) = request(handle.addr(), "GET /health HTTP/1.1\r\n\r\n");
        if status == 200 {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "slot never freed");
        std::thread::sleep(Duration::from_millis(20));
    }
    handle.shutdown();
}

// ---------------------------------------------------------------------
// Backpressure: admission sheds at the wire
// ---------------------------------------------------------------------

/// A sink that parks every ingest until the test opens the gate —
/// deterministic worker occupancy for shed tests.
struct GatedSink {
    open: Mutex<bool>,
    cv: Condvar,
    seq: AtomicU64,
}

impl GatedSink {
    fn new() -> Arc<Self> {
        Arc::new(Self { open: Mutex::new(false), cv: Condvar::new(), seq: AtomicU64::new(1) })
    }

    fn open(&self) {
        *self.open.lock().unwrap_or_else(|e| e.into_inner()) = true;
        self.cv.notify_all();
    }
}

impl IngestSink for GatedSink {
    fn ingest(&self, _post: tklus_model::Post) -> Result<u64, SinkError> {
        let mut open = self.open.lock().unwrap_or_else(|e| e.into_inner());
        while !*open {
            open = self.cv.wait(open).unwrap_or_else(|e| e.into_inner());
        }
        drop(open);
        Ok(self.seq.fetch_add(1, Ordering::SeqCst))
    }
}

/// Opens the gate even when an assertion panics mid-test, so a failing
/// assertion reports instead of deadlocking the whole test binary.
struct OpenOnDrop(Arc<GatedSink>);

impl Drop for OpenOnDrop {
    fn drop(&mut self) {
        self.0.open();
    }
}

#[test]
fn queue_full_answers_429_with_retry_after_at_the_wire() {
    let engine = engine();
    let (body, _) = query_body(&engine);
    let sink = GatedSink::new();
    let serve_cfg = ServeConfig {
        workers: 1,
        queue_capacity: 1,
        est_service_ms: 40,
        default_deadline_ms: 30_000,
        ..ServeConfig::default()
    };
    let server = TklusServer::start_with_sink(
        Arc::clone(&engine),
        serve_cfg,
        Some(sink.clone() as Arc<dyn IngestSink>),
    )
    .expect("server starts");
    let handle = serve(server, HttpConfig::default()).expect("front-end binds");
    let _gate_guard = OpenOnDrop(Arc::clone(&sink));
    let ingest = "{\"id\":900,\"user\":1,\"lat\":1.0,\"lon\":1.0,\"text\":\"hi\"}";
    let ingest2 = "{\"id\":901,\"user\":1,\"lat\":1.0,\"lon\":1.0,\"text\":\"hi\"}";

    // Park the only worker on a gated ingest. Wait for the worker to
    // actually dequeue it before sending the next write: otherwise the
    // second arrival races the dequeue and is itself shed QueueFull.
    let addr = handle.addr();
    let in_flight = std::thread::spawn(move || post(addr, "/ingest", ingest).0);
    wait_for_gauges(addr, &["tklus_serve_in_flight 1", "tklus_serve_queue_depth 0"]);
    // Now fill the queue's one slot with a second (High-priority) write.
    let queued = std::thread::spawn(move || post(addr, "/ingest", ingest2).0);
    wait_for_gauges(addr, &["tklus_serve_in_flight 1", "tklus_serve_queue_depth 1"]);

    // A Normal-priority query now faces a full queue it cannot evict
    // from: 429, with the deterministic estimate as Retry-After.
    let (status, headers, text) = post(addr, "/query", &body);
    let text = String::from_utf8_lossy(&text).to_string();
    assert_eq!(status, 429, "{text}");
    assert!(text.contains("QueueFull"), "{text}");
    assert!(text.contains("retry_after_ms"), "{text}");
    // est_service_ms 40 × ⌈(1 ahead + 1 busy)/1 worker⌉ = 80 ms → 1 s.
    assert_eq!(header(&headers, "retry-after"), Some("1"));

    sink.open(); // open the gate: both writes complete
    assert_eq!(in_flight.join().expect("in-flight thread"), 200);
    assert_eq!(queued.join().expect("queued thread"), 200);
    handle.shutdown();
}

// ---------------------------------------------------------------------
// Durable ingest through the WAL (satellite 6 end-to-end)
// ---------------------------------------------------------------------

#[test]
fn ingest_lands_in_the_wal_and_duplicates_conflict() {
    let dir = std::env::temp_dir().join(format!("tklus-http-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let engine = engine();
    let fs: Arc<dyn WalFs> = Arc::new(StdFs::open(&dir).expect("open wal dir"));
    let (store, _report) = IngestStore::open(fs, StoreConfig::default()).expect("open store");
    let sink = Arc::new(WalSink::new(Arc::new(store)));
    let server = TklusServer::start_with_sink(
        engine,
        ServeConfig::default(),
        Some(sink as Arc<dyn IngestSink>),
    )
    .expect("server starts");
    let handle = serve(server, HttpConfig::default()).expect("front-end binds");

    let post_body = "{\"id\":1,\"user\":7,\"lat\":43.6,\"lon\":-79.4,\"text\":\"great hotel\"}";
    let (status, _, body) = post(handle.addr(), "/ingest", post_body);
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    let json = serde_json::from_str(std::str::from_utf8(&body).unwrap()).expect("json");
    assert_eq!(json.get("seq").and_then(|s| s.as_u64()), Some(1));

    // Same tweet id again: idempotency conflict, 409, store healthy.
    let (status, _, body) = post(handle.addr(), "/ingest", post_body);
    let text = String::from_utf8_lossy(&body).to_string();
    assert_eq!(status, 409, "{text}");
    assert!(text.contains("DuplicateTweet"), "{text}");

    // A different id still lands.
    let (status, _, _) =
        post(handle.addr(), "/ingest", "{\"id\":2,\"user\":8,\"lat\":0,\"lon\":0,\"text\":\"x\"}");
    assert_eq!(status, 200);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn background_compactor_advances_generation_under_http_ingest() {
    let dir = std::env::temp_dir().join(format!("tklus-http-compact-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let engine = engine();
    let fs: Arc<dyn WalFs> = Arc::new(StdFs::open(&dir).expect("open wal dir"));
    let store_cfg = StoreConfig {
        compact_threshold: 8,
        compact_interval: Duration::from_millis(5),
        ..StoreConfig::default()
    };
    let (store, _report) = IngestStore::open(fs, store_cfg).expect("open store");
    let store = Arc::new(store);
    let sink = Arc::new(WalSink::new(Arc::clone(&store)));
    let server = TklusServer::start_with_sink(
        engine,
        ServeConfig::default(),
        Some(sink as Arc<dyn IngestSink>),
    )
    .expect("server starts");
    let handle = serve(server, HttpConfig::default()).expect("front-end binds");
    // The serving-path wiring under test: compactor spawned alongside the
    // listener, exactly as `tklus serve-http --wal` does.
    let compactor = store.spawn_compactor();
    assert_eq!(store.generation(), 0);

    // Ingest past the threshold over the wire.
    for id in 1..=20u64 {
        let body = format!(
            "{{\"id\":{id},\"user\":{},\"lat\":43.6,\"lon\":-79.4,\"text\":\"hotel stream\"}}",
            id % 5 + 1
        );
        let (status, _, resp) = post(handle.addr(), "/ingest", &body);
        assert_eq!(status, 200, "{}", String::from_utf8_lossy(&resp));
    }

    // The compactor polls every 5 ms; the seal must land shortly.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while store.generation() == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        store.generation() >= 1,
        "compactor never sealed: {} live posts at generation {}",
        store.live_posts(),
        store.generation()
    );
    assert_eq!(store.acked_posts(), 20, "a seal must not drop acked posts");

    // Drain ordering from the serving paths: compactor stops before the
    // final shutdown seal, which folds any remaining live posts.
    compactor.stop();
    handle.shutdown();
    store.compact().expect("final seal");
    assert_eq!(store.live_posts(), 0);
    assert_eq!(store.acked_posts(), 20);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ingest_without_a_sink_is_typed_not_configured() {
    let handle = start(engine(), ServeConfig::default(), HttpConfig::default());
    let (status, _, body) =
        post(handle.addr(), "/ingest", "{\"id\":5,\"user\":1,\"lat\":0,\"lon\":0,\"text\":\"x\"}");
    let text = String::from_utf8_lossy(&body).to_string();
    assert_eq!(status, 503, "{text}");
    assert!(text.contains("NotConfigured"), "{text}");
    handle.shutdown();
}

// ---------------------------------------------------------------------
// Graceful drain
// ---------------------------------------------------------------------

#[test]
fn shutdown_answers_every_in_flight_request_then_releases_the_port() {
    let engine = engine();
    let (body, _) = query_body(&engine);
    let sink = GatedSink::new();
    let serve_cfg = ServeConfig { workers: 1, queue_capacity: 8, ..ServeConfig::default() };
    let server =
        TklusServer::start_with_sink(engine, serve_cfg, Some(sink.clone() as Arc<dyn IngestSink>))
            .expect("server starts");
    let handle = serve(server, HttpConfig::default()).expect("front-end binds");
    let _gate_guard = OpenOnDrop(Arc::clone(&sink));
    let addr = handle.addr();

    // Park the worker, queue a query behind it, then shut down with both
    // still unanswered.
    let ingest = "{\"id\":77,\"user\":1,\"lat\":0,\"lon\":0,\"text\":\"hold\"}";
    let in_flight = std::thread::spawn(move || post(addr, "/ingest", ingest));
    wait_for_gauges(addr, &["tklus_serve_in_flight 1", "tklus_serve_queue_depth 0"]);
    let body2 = body.clone();
    let queued = std::thread::spawn(move || post(addr, "/query", &body2));
    wait_for_gauges(addr, &["tklus_serve_in_flight 1", "tklus_serve_queue_depth 1"]);

    // Open the gate just after shutdown begins, as a real drain would.
    let release_sink = Arc::clone(&sink);
    let release = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(100));
        release_sink.open();
    });
    let report = handle.shutdown();
    release.join().expect("release thread");

    // Both clients got complete, truthful answers: the parked write
    // finished (200); the queued query either ran (200) or was
    // typed-shed by the drain — never hung up on silently.
    let (in_status, _, _) = in_flight.join().expect("in-flight client");
    assert_eq!(in_status, 200);
    let (q_status, _, q_body) = queued.join().expect("queued client");
    assert!(
        matches!(q_status, 200 | 503 | 504),
        "queued client got {q_status}: {}",
        String::from_utf8_lossy(&q_body)
    );

    // The drain accounted for everything it abandoned, and the port is
    // no longer accepting.
    assert_eq!(report.drain.in_flight_at_deadline, 0);
    assert!(TcpStream::connect(addr).is_err(), "listener still accepting after shutdown");
}
