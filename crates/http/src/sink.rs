//! Adapts the WAL crate's durable [`IngestStore`] to the serving layer's
//! storage-agnostic [`IngestSink`] (DESIGN.md §16).
//!
//! The adapter is where the WAL's typed failure taxonomy crosses into
//! HTTP: each [`WalError`] variant's *name* is carried verbatim as the
//! stable `kind` in the 503/409 body, so a client (or an operator's
//! alert rule) can tell a dead disk (`Io`) from a poisoned live index
//! (`Poisoned`) without parsing prose. The store's compaction outcome
//! counters cross the same seam as [`SinkHealth`], so `/health` can say
//! "the store has stopped sealing" without the serving layer knowing
//! what a compaction is.

use std::sync::Arc;
use tklus_model::Post;
use tklus_serve::{IngestSink, SinkError, SinkHealth};
use tklus_wal::{IngestStore, WalError};

/// The production sink: a crash-safe [`IngestStore`] behind the serve
/// crate's trait. The store is internally synchronized (`ingest` takes
/// `&self`), so worker threads call straight through. Shared as an
/// `Arc` so the serving path's background compactor can hold the same
/// store.
pub struct WalSink {
    store: Arc<IngestStore>,
}

impl WalSink {
    /// Wraps an opened store.
    pub fn new(store: Arc<IngestStore>) -> Self {
        Self { store }
    }

    /// The wrapped store (e.g. for a shutdown-time seal or stats read).
    pub fn store(&self) -> &Arc<IngestStore> {
        &self.store
    }
}

impl IngestSink for WalSink {
    fn ingest(&self, post: Post) -> Result<u64, SinkError> {
        self.store.ingest(post).map_err(sink_error)
    }

    fn health(&self) -> Option<SinkHealth> {
        let stats = self.store.compaction_stats();
        let detail = match (&stats.last_error, stats.consecutive_failures) {
            (_, 0) => format!("{} compactions sealed", stats.successes_total),
            (Some(err), n) => format!("compaction failing ({n} consecutive): {err}"),
            (None, n) => format!("compaction failing ({n} consecutive)"),
        };
        Some(SinkHealth {
            persistent_failure: stats.persistent_failure,
            maintenance_failures: stats.failures_total,
            detail,
        })
    }
}

/// Maps a [`WalError`] to the typed sink failure HTTP renders: the
/// variant name as the stable kind, duplicate ids flagged as conflicts
/// (409 — the store is healthy, the write is wrong), everything else a
/// store-side failure (503).
pub fn sink_error(e: WalError) -> SinkError {
    let kind = match &e {
        WalError::Io { .. } => "Io",
        WalError::Corrupt { .. } => "Corrupt",
        WalError::VersionMismatch { .. } => "VersionMismatch",
        WalError::Crashed => "Crashed",
        WalError::DuplicateTweet(_) => "DuplicateTweet",
        WalError::Poisoned => "Poisoned",
        WalError::Engine(_) => "Engine",
    };
    SinkError { kind, message: e.to_string(), conflict: matches!(e, WalError::DuplicateTweet(_)) }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // test code: panics are the failure report

    use super::*;
    use tklus_model::TweetId;

    #[test]
    fn every_wal_variant_keeps_its_name_and_only_duplicates_conflict() {
        let cases: Vec<(WalError, &str, bool)> = vec![
            (
                WalError::Io {
                    op: "append",
                    path: "wal-1.log".into(),
                    source: std::io::Error::other("disk gone"),
                },
                "Io",
                false,
            ),
            (
                WalError::Corrupt { path: "wal-1.log".into(), offset: 9, detail: "crc".into() },
                "Corrupt",
                false,
            ),
            (WalError::VersionMismatch { found: 9, expected: 1 }, "VersionMismatch", false),
            (WalError::Crashed, "Crashed", false),
            (WalError::DuplicateTweet(TweetId(7)), "DuplicateTweet", true),
            (WalError::Poisoned, "Poisoned", false),
        ];
        for (err, kind, conflict) in cases {
            let display = err.to_string();
            let sink = sink_error(err);
            assert_eq!(sink.kind, kind);
            assert_eq!(sink.conflict, conflict, "{kind}");
            assert_eq!(sink.message, display);
        }
    }

    #[test]
    fn sink_health_mirrors_compaction_stats() {
        let (fs, _) = tklus_wal::SimFs::new(31);
        let fs: Arc<dyn tklus_wal::WalFs> = fs;
        let (store, _) = IngestStore::open(fs, tklus_wal::StoreConfig::default()).unwrap();
        let sink = WalSink::new(Arc::new(store));
        let health = IngestSink::health(&sink).unwrap();
        assert!(!health.persistent_failure);
        assert_eq!(health.maintenance_failures, 0);
        assert!(health.detail.contains("0 compactions sealed"));
    }
}
