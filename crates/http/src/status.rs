//! The shed-to-status-code mapping (DESIGN.md §16).
//!
//! One function per answer kind, total over the typed taxonomies of the
//! serving layer — adding a `Rejected` variant breaks compilation here,
//! not silently at runtime. The ground rules:
//!
//! * **429** for sheds a client should retry after backing off
//!   (`QueueFull`, `Evicted`, `DeadlineHopeless`) — exactly the variants
//!   whose [`Rejected::retry_after_ms`] is `Some`, and that estimate
//!   becomes the `Retry-After` header (seconds, rounded up) plus a
//!   precise `retry_after_ms` field in the JSON body;
//! * **503** for conditions that heal on the server's own clock
//!   (`CircuitOpen`, `ShuttingDown`, drain abandonment, non-conflict
//!   sink failures) — retrying immediately is pointless, so no
//!   `Retry-After` is offered;
//! * **504** for `ExpiredInQueue`: the request was admitted but its own
//!   deadline lapsed while queued — the budget was spent, not refused;
//! * **500** for typed engine faults, **409** for idempotency conflicts
//!   (duplicate tweet id — the store is healthy, the write is wrong).

use crate::json::render_error;
use crate::parser::ParseError;
use crate::response::Response;
use tklus_serve::{IngestFailure, Rejected, ServeError};

/// Renders a parse failure as its typed status (400/413/431/501); the
/// connection always closes after one — framing is unrecoverable once
/// the byte stream stopped making sense.
pub fn parse_error_response(e: &ParseError) -> Response {
    let kind = match e {
        ParseError::HeadersTooLarge { .. } => "HeadersTooLarge",
        ParseError::BodyTooLarge { .. } => "BodyTooLarge",
        ParseError::Malformed(_) => "Malformed",
        ParseError::UnsupportedTransferEncoding => "UnsupportedTransferEncoding",
    };
    Response::json(e.status(), render_error(kind, &e.to_string(), None)).closing()
}

/// Stable error-class name for a shed, exposed in the JSON body.
pub fn rejected_kind(r: &Rejected) -> &'static str {
    match r {
        Rejected::QueueFull { .. } => "QueueFull",
        Rejected::DeadlineHopeless { .. } => "DeadlineHopeless",
        Rejected::CircuitOpen { .. } => "CircuitOpen",
        Rejected::Evicted { .. } => "Evicted",
        Rejected::ExpiredInQueue { .. } => "ExpiredInQueue",
        Rejected::ShuttingDown => "ShuttingDown",
    }
}

/// The one status code each shed answers with.
pub fn rejected_status(r: &Rejected) -> u16 {
    match r {
        Rejected::QueueFull { .. }
        | Rejected::DeadlineHopeless { .. }
        | Rejected::Evicted { .. } => 429,
        Rejected::CircuitOpen { .. } | Rejected::ShuttingDown => 503,
        Rejected::ExpiredInQueue { .. } => 504,
    }
}

/// Renders a shed as a response: typed body, plus `Retry-After` exactly
/// when the taxonomy offers an estimate.
pub fn rejected_response(r: &Rejected) -> Response {
    let body = render_error(rejected_kind(r), &r.to_string(), r.retry_after_ms());
    let mut resp = Response::json(rejected_status(r), body);
    if let Some(ms) = r.retry_after_ms() {
        // The header speaks whole seconds; round up so a client honoring
        // it never retries before the estimate has elapsed.
        resp = resp.with_header("Retry-After", ms.div_ceil(1000).max(1).to_string());
    }
    resp
}

/// Renders a query answer (success or any [`ServeError`]).
pub fn query_response(result: Result<String, ServeError>) -> Response {
    match result {
        Ok(body) => Response::json(200, body),
        Err(ServeError::Rejected(r)) => rejected_response(&r),
        Err(ServeError::Engine(e)) => {
            Response::json(500, render_error("Engine", &e.to_string(), None))
        }
        Err(ServeError::Abandoned) => {
            Response::json(503, render_error("Abandoned", "abandoned by graceful drain", None))
        }
    }
}

/// Renders a write acknowledgement (sequence number or any
/// [`IngestFailure`]).
pub fn ingest_response(result: Result<u64, IngestFailure>) -> Response {
    match result {
        Ok(seq) => Response::json(200, format!("{{\"seq\":{seq}}}")),
        Err(IngestFailure::Rejected(r)) => rejected_response(&r),
        Err(IngestFailure::Sink(e)) => {
            let status = if e.conflict { 409 } else { 503 };
            Response::json(status, render_error(e.kind, &e.message, None))
        }
        Err(IngestFailure::Abandoned) => {
            Response::json(503, render_error("Abandoned", "abandoned by graceful drain", None))
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // test code: panics are the failure report

    use super::*;
    use tklus_model::Priority;
    use tklus_serve::SinkError;

    fn header<'a>(resp: &'a Response, name: &str) -> Option<&'a str> {
        resp.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// Case-by-case over the entire `Rejected` taxonomy: status code,
    /// error-class name, and Retry-After presence all pinned.
    #[test]
    fn every_shed_maps_to_its_pinned_status() {
        let cases: Vec<(Rejected, u16, &str, Option<&str>)> = vec![
            (
                Rejected::QueueFull { depth: 9, estimated_wait_ms: 2_500 },
                429,
                "QueueFull",
                Some("3"), // 2500 ms rounds UP to 3 s
            ),
            (
                Rejected::Evicted { by: Priority::High, estimated_wait_ms: 10 },
                429,
                "Evicted",
                Some("1"), // sub-second estimates still advise waiting 1 s
            ),
            (
                Rejected::DeadlineHopeless { deadline_in_ms: 5, estimated_wait_ms: 4_000 },
                429,
                "DeadlineHopeless",
                Some("4"),
            ),
            (Rejected::CircuitOpen { breaker: "storage" }, 503, "CircuitOpen", None),
            (Rejected::ShuttingDown, 503, "ShuttingDown", None),
            (Rejected::ExpiredInQueue { waited_ms: 80 }, 504, "ExpiredInQueue", None),
        ];
        for (shed, status, kind, retry_after) in cases {
            let resp = rejected_response(&shed);
            assert_eq!(resp.status, status, "{shed:?}");
            let body = String::from_utf8(resp.body.clone()).unwrap();
            assert!(body.contains(&format!("\"error\":\"{kind}\"")), "{shed:?}: {body}");
            assert_eq!(header(&resp, "Retry-After"), retry_after, "{shed:?}");
            // The body carries the precise millisecond estimate whenever
            // the header is present.
            assert_eq!(body.contains("retry_after_ms"), retry_after.is_some(), "{shed:?}");
        }
    }

    #[test]
    fn parse_errors_map_to_their_statuses_and_close() {
        let cases: Vec<(ParseError, u16, &str)> = vec![
            (ParseError::HeadersTooLarge { limit: 64 }, 431, "HeadersTooLarge"),
            (ParseError::BodyTooLarge { declared: 99, limit: 16 }, 413, "BodyTooLarge"),
            (ParseError::Malformed("method"), 400, "Malformed"),
            (ParseError::UnsupportedTransferEncoding, 501, "UnsupportedTransferEncoding"),
        ];
        for (err, status, kind) in cases {
            let resp = parse_error_response(&err);
            assert_eq!(resp.status, status);
            assert!(resp.close, "{kind}: parse failures always close");
            assert!(String::from_utf8(resp.body).unwrap().contains(kind));
        }
    }

    #[test]
    fn serve_errors_map_to_500_and_503() {
        let resp = query_response(Ok("{\"users\":[]}".into()));
        assert_eq!(resp.status, 200);
        let resp = query_response(Err(ServeError::Abandoned));
        assert_eq!(resp.status, 503);
        assert!(String::from_utf8(resp.body).unwrap().contains("Abandoned"));
        let resp =
            query_response(Err(ServeError::Rejected(Rejected::ExpiredInQueue { waited_ms: 7 })));
        assert_eq!(resp.status, 504);
    }

    #[test]
    fn ingest_conflicts_are_409_other_sink_failures_503() {
        let resp = ingest_response(Ok(42));
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"{\"seq\":42}");
        let dup = SinkError {
            kind: "DuplicateTweet",
            message: "tweet 7 already ingested".into(),
            conflict: true,
        };
        let resp = ingest_response(Err(IngestFailure::Sink(dup)));
        assert_eq!(resp.status, 409);
        assert!(String::from_utf8(resp.body).unwrap().contains("DuplicateTweet"));
        let io = SinkError { kind: "Io", message: "disk gone".into(), conflict: false };
        let resp = ingest_response(Err(IngestFailure::Sink(io)));
        assert_eq!(resp.status, 503);
        assert!(String::from_utf8(resp.body).unwrap().contains("\"error\":\"Io\""));
        let resp = ingest_response(Err(IngestFailure::Abandoned));
        assert_eq!(resp.status, 503);
    }
}
