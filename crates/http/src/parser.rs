//! Incremental HTTP/1.1 request parsing with hard caps (DESIGN.md §16).
//!
//! The parser is a push-fed state machine: the connection loop hands it
//! whatever bytes the socket produced and asks for the next complete
//! request. Nothing about socket timing lives here, which is what makes
//! the truncation/garbage property suite possible — any byte stream,
//! split at any offsets, must produce the same typed outcome.
//!
//! Defenses are caps, not heuristics:
//!
//! * the head (request line + headers) may not exceed
//!   [`ParserConfig::max_header_bytes`] — a slow-loris client dribbling
//!   an endless header section is cut off typed (431);
//! * a declared `Content-Length` above
//!   [`ParserConfig::max_body_bytes`] is rejected the moment the head
//!   parses (413), *before* the body is read — a runaway body never
//!   occupies memory;
//! * `Transfer-Encoding` is not implemented and is refused typed (501)
//!   rather than misparsed — request smuggling via chunked/identity
//!   disagreement is structurally impossible when only `Content-Length`
//!   framing exists.
//!
//! Bytes past a complete request stay buffered for pipelining; the
//! connection loop drains them with [`RequestParser::feed`] (empty
//! slice) before reading the socket again.

/// Caps applied while parsing one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParserConfig {
    /// Maximum bytes of request line + headers + terminator.
    pub max_header_bytes: usize,
    /// Maximum declared/observed body size in bytes.
    pub max_body_bytes: usize,
}

impl Default for ParserConfig {
    fn default() -> Self {
        Self { max_header_bytes: 8 * 1024, max_body_bytes: 1024 * 1024 }
    }
}

/// Why a byte stream failed to parse as a request. Every variant maps to
/// exactly one status code ([`ParseError::status`]); the connection
/// writes it and closes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The head exceeded [`ParserConfig::max_header_bytes`] (431).
    HeadersTooLarge {
        /// The configured cap that was exceeded.
        limit: usize,
    },
    /// Declared `Content-Length` exceeds [`ParserConfig::max_body_bytes`]
    /// (413). Detected at head-parse time, before any body byte is read.
    BodyTooLarge {
        /// The declared `Content-Length`.
        declared: u64,
        /// The configured cap it exceeded.
        limit: usize,
    },
    /// Structurally invalid request (400); the detail names the first
    /// broken element.
    Malformed(&'static str),
    /// `Transfer-Encoding` framing is not implemented (501); only
    /// `Content-Length` bodies are accepted.
    UnsupportedTransferEncoding,
}

impl ParseError {
    /// The one status code this error answers with.
    pub fn status(&self) -> u16 {
        match self {
            ParseError::HeadersTooLarge { .. } => 431,
            ParseError::BodyTooLarge { .. } => 413,
            ParseError::Malformed(_) => 400,
            ParseError::UnsupportedTransferEncoding => 501,
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::HeadersTooLarge { limit } => {
                write!(f, "request head exceeds {limit} bytes")
            }
            ParseError::BodyTooLarge { declared, limit } => {
                write!(f, "declared body of {declared} bytes exceeds {limit}-byte cap")
            }
            ParseError::Malformed(what) => write!(f, "malformed request ({what})"),
            ParseError::UnsupportedTransferEncoding => {
                f.write_str("transfer-encoding is not supported; use content-length")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method token (e.g. `GET`, `POST`).
    pub method: String,
    /// Request target as sent (e.g. `/query`).
    pub target: String,
    /// Whether the client spoke HTTP/1.1 (vs 1.0).
    pub http11: bool,
    /// Whether the connection should stay open after the response
    /// (`Connection` header, defaulted per version).
    pub keep_alive: bool,
    /// The request body (`Content-Length` bytes; empty without one).
    pub body: Vec<u8>,
}

/// A parsed head waiting for its body bytes.
#[derive(Debug)]
struct Head {
    method: String,
    target: String,
    http11: bool,
    keep_alive: bool,
    content_length: usize,
}

/// The incremental parser. Feed it socket bytes; it yields complete
/// requests and keeps pipelined leftovers buffered.
#[derive(Debug)]
pub struct RequestParser {
    cfg: ParserConfig,
    buf: Vec<u8>,
    /// How far the head-terminator scan has looked (restart overlap of 3
    /// bytes keeps the scan O(total bytes), not O(n²) under dribble).
    scanned: usize,
    head: Option<Head>,
    /// Set once the stream is poisoned; further feeds re-report it.
    dead: Option<ParseError>,
}

impl RequestParser {
    /// A fresh parser with the given caps.
    pub fn new(cfg: ParserConfig) -> Self {
        Self { cfg, buf: Vec::new(), scanned: 0, head: None, dead: None }
    }

    /// Appends socket bytes and returns the next complete request, if the
    /// buffer now holds one. Call with an empty slice to drain a
    /// pipelined request already buffered. After an `Err`, the parser is
    /// poisoned and every later call returns the same error — the
    /// connection must answer it and close.
    pub fn feed(&mut self, bytes: &[u8]) -> Result<Option<Request>, ParseError> {
        if let Some(err) = &self.dead {
            return Err(err.clone());
        }
        self.buf.extend_from_slice(bytes);
        match self.advance() {
            Ok(out) => Ok(out),
            Err(err) => {
                self.dead = Some(err.clone());
                Err(err)
            }
        }
    }

    /// Whether bytes of an incomplete request are buffered — the
    /// distinction between "clean close" and "client died mid-request"
    /// (and between idle keep-alive and a 408 at the read deadline).
    pub fn mid_request(&self) -> bool {
        self.head.is_some() || !self.buf.is_empty()
    }

    fn advance(&mut self) -> Result<Option<Request>, ParseError> {
        if self.head.is_none() {
            let Some(head_end) = self.find_head_end()? else {
                return Ok(None);
            };
            let head = parse_head(&self.buf[..head_end], &self.cfg)?;
            self.buf.drain(..head_end);
            self.scanned = 0;
            self.head = Some(head);
        }
        // Safe: just set above when it was None.
        let need = self.head.as_ref().map_or(0, |h| h.content_length);
        if self.buf.len() < need {
            return Ok(None);
        }
        let Some(head) = self.head.take() else { return Ok(None) };
        let body: Vec<u8> = self.buf.drain(..need).collect();
        Ok(Some(Request {
            method: head.method,
            target: head.target,
            http11: head.http11,
            keep_alive: head.keep_alive,
            body,
        }))
    }

    /// Finds the end of the head (index one past the blank line), honoring
    /// the header cap. Accepts CRLF or bare-LF line endings.
    fn find_head_end(&mut self) -> Result<Option<usize>, ParseError> {
        let start = self.scanned.saturating_sub(3);
        for i in start..self.buf.len() {
            if self.buf[i] != b'\n' {
                continue;
            }
            // "\n\n" or "\n\r\n" ends the head at i.
            let prev = &self.buf[..i];
            let blank = prev.ends_with(b"\n") || prev.ends_with(b"\n\r");
            if blank {
                let end = i + 1;
                if end > self.cfg.max_header_bytes {
                    return Err(ParseError::HeadersTooLarge { limit: self.cfg.max_header_bytes });
                }
                return Ok(Some(end));
            }
        }
        self.scanned = self.buf.len();
        if self.buf.len() > self.cfg.max_header_bytes {
            return Err(ParseError::HeadersTooLarge { limit: self.cfg.max_header_bytes });
        }
        Ok(None)
    }
}

/// Parses the head bytes (everything up to and including the blank line).
fn parse_head(bytes: &[u8], cfg: &ParserConfig) -> Result<Head, ParseError> {
    let text = std::str::from_utf8(bytes).map_err(|_| ParseError::Malformed("non-utf8 head"))?;
    let mut lines = text.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (Some(method), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(ParseError::Malformed("request line"));
    };
    if method.is_empty()
        || method.len() > 16
        || !method.bytes().all(|b| b.is_ascii_uppercase() || b == b'-')
    {
        return Err(ParseError::Malformed("method"));
    }
    if !(target.starts_with('/') || target == "*") || target.len() > 1024 {
        return Err(ParseError::Malformed("target"));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(ParseError::Malformed("version")),
    };

    let mut content_length: Option<u64> = None;
    let mut keep_alive = http11; // 1.1 defaults on, 1.0 defaults off
    for line in lines {
        if line.is_empty() {
            continue; // the terminating blank line
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ParseError::Malformed("header line"));
        };
        if name.is_empty() || name.contains(' ') || name.contains('\t') {
            return Err(ParseError::Malformed("header name"));
        }
        let value = value.trim();
        if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(ParseError::UnsupportedTransferEncoding);
        } else if name.eq_ignore_ascii_case("content-length") {
            let parsed: u64 = value
                .parse()
                .ok()
                .filter(|_| value.bytes().all(|b| b.is_ascii_digit()))
                .ok_or(ParseError::Malformed("content-length"))?;
            if content_length.is_some_and(|prev| prev != parsed) {
                return Err(ParseError::Malformed("conflicting content-length"));
            }
            content_length = Some(parsed);
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        }
    }
    let declared = content_length.unwrap_or(0);
    if declared > cfg.max_body_bytes as u64 {
        return Err(ParseError::BodyTooLarge { declared, limit: cfg.max_body_bytes });
    }
    Ok(Head {
        method: method.to_string(),
        target: target.to_string(),
        http11,
        keep_alive,
        content_length: declared as usize,
    })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // test code: panics are the failure report

    use super::*;

    fn parse_all(raw: &[u8]) -> Result<Option<Request>, ParseError> {
        RequestParser::new(ParserConfig::default()).feed(raw)
    }

    #[test]
    fn parses_a_simple_get() {
        let req = parse_all(b"GET /health HTTP/1.1\r\nHost: x\r\n\r\n").unwrap().unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/health");
        assert!(req.http11 && req.keep_alive);
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_a_post_with_body_fed_byte_by_byte() {
        let raw = b"POST /query HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd";
        let mut p = RequestParser::new(ParserConfig::default());
        for (i, b) in raw.iter().enumerate() {
            let got = p.feed(std::slice::from_ref(b)).unwrap();
            if i + 1 < raw.len() {
                assert!(got.is_none(), "complete too early at byte {i}");
                assert!(p.mid_request());
            } else {
                let req = got.unwrap();
                assert_eq!(req.body, b"abcd");
                assert!(!p.mid_request());
            }
        }
    }

    #[test]
    fn pipelined_requests_drain_one_at_a_time() {
        let raw = b"GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhiGET /c HTTP/1.1\r\n\r\n";
        let mut p = RequestParser::new(ParserConfig::default());
        let a = p.feed(raw).unwrap().unwrap();
        assert_eq!(a.target, "/a");
        let b = p.feed(&[]).unwrap().unwrap();
        assert_eq!((b.target.as_str(), b.body.as_slice()), ("/b", b"hi".as_slice()));
        let c = p.feed(&[]).unwrap().unwrap();
        assert_eq!(c.target, "/c");
        assert!(p.feed(&[]).unwrap().is_none());
        assert!(!p.mid_request());
    }

    #[test]
    fn bare_lf_line_endings_are_accepted() {
        let req = parse_all(b"GET / HTTP/1.1\nHost: x\n\n").unwrap().unwrap();
        assert_eq!(req.target, "/");
    }

    #[test]
    fn connection_close_and_http10_defaults() {
        let req = parse_all(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap().unwrap();
        assert!(!req.keep_alive);
        let req = parse_all(b"GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!req.http11 && !req.keep_alive);
        let req = parse_all(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap().unwrap();
        assert!(req.keep_alive);
    }

    #[test]
    fn oversized_head_is_431_even_when_dribbled() {
        let cfg = ParserConfig { max_header_bytes: 64, max_body_bytes: 1024 };
        let mut p = RequestParser::new(cfg);
        let mut seen_err = None;
        for chunk in b"GET / HTTP/1.1\r\nX-Pad: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n\r\n".chunks(7) {
            match p.feed(chunk) {
                Ok(_) => {}
                Err(e) => {
                    seen_err = Some(e);
                    break;
                }
            }
        }
        let err = seen_err.expect("cap must fire");
        assert_eq!(err.status(), 431);
        // Poisoned: the error persists.
        assert_eq!(p.feed(b"x").unwrap_err().status(), 431);
    }

    #[test]
    fn oversized_declared_body_is_413_before_body_bytes_arrive() {
        let cfg = ParserConfig { max_header_bytes: 1024, max_body_bytes: 16 };
        let mut p = RequestParser::new(cfg);
        let err = p.feed(b"POST / HTTP/1.1\r\nContent-Length: 17\r\n\r\n").unwrap_err();
        assert_eq!(err, ParseError::BodyTooLarge { declared: 17, limit: 16 });
        assert_eq!(err.status(), 413);
    }

    #[test]
    fn transfer_encoding_is_501() {
        let err = parse_all(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").unwrap_err();
        assert_eq!(err, ParseError::UnsupportedTransferEncoding);
        assert_eq!(err.status(), 501);
    }

    #[test]
    fn malformed_heads_are_400() {
        for raw in [
            b"GARBAGE\r\n\r\n".as_slice(),
            b"GET /x HTTP/2.0\r\n\r\n",
            b"get /x HTTP/1.1\r\n\r\n",
            b"GET x HTTP/1.1\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
            b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n",
            b"GET /x HTTP/1.1\r\nBad Name: v\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: -1\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\n",
            b"\xff\xfe GET / HTTP/1.1\r\n\r\n",
        ] {
            let err = parse_all(raw).unwrap_err();
            assert_eq!(err.status(), 400, "{raw:?} → {err}");
        }
    }

    #[test]
    fn duplicate_identical_content_length_is_tolerated() {
        let req = parse_all(b"POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nhi")
            .unwrap()
            .unwrap();
        assert_eq!(req.body, b"hi");
    }
}
