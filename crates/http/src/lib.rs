//! # tklus-http — the real-socket front-end
//!
//! A hand-rolled, std-only HTTP/1.1 server (DESIGN.md §16) that exposes
//! the overload-resilient serving layer ([`tklus_serve::TklusServer`])
//! over TCP with **end-to-end backpressure**: bounded connections,
//! capped and deadline-guarded request parsing, a bounded admission
//! queue, and truthful status codes for every shed the queue can
//! produce. No request ever gets a vague 500: every failure path maps a
//! typed error onto exactly one status code.
//!
//! | Route | Method | Purpose |
//! |---|---|---|
//! | `/query` | POST | One TkLUS query through admission |
//! | `/query_batch` | POST | Up to `max_batch` queries, one admission each |
//! | `/ingest` | POST | One durable write (WAL sink, priority lane) |
//! | `/metrics` | GET | Prometheus exposition (`tklus_*`) |
//! | `/health` | GET | Readiness/health report (503 when unhealthy) |
//!
//! Module map: [`parser`] (incremental, capped request parsing),
//! [`response`] (serialization), [`json`] (body codecs), [`status`] (the
//! shed→status taxonomy), [`metrics`] (socket-layer counters), [`sink`]
//! (the WAL adapter), [`server`] (accept loop, connection lifecycle,
//! graceful drain).

#![warn(missing_docs)]

pub mod json;
pub mod metrics;
pub mod parser;
pub mod response;
pub mod server;
pub mod sink;
pub mod status;

pub use json::{parse_batch_body, parse_ingest_body, parse_query_body, BadRequest, QuerySpec};
pub use metrics::HttpMetrics;
pub use parser::{ParseError, ParserConfig, Request, RequestParser};
pub use response::Response;
pub use server::{serve, HttpConfig, HttpHandle, HttpServer, ShutdownReport};
pub use sink::{sink_error, WalSink};
pub use status::{
    ingest_response, parse_error_response, query_response, rejected_kind, rejected_response,
    rejected_status,
};
