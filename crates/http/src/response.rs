//! HTTP/1.1 response serialization.
//!
//! Responses are built fully in memory (every body this service produces
//! is small and bounded), always carry `Content-Length`, and state their
//! connection intent explicitly — the connection loop closes exactly
//! when the response says it will, so a client never waits on a
//! half-open socket.

/// A response ready to serialize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers beyond the always-present `Content-Length`,
    /// `Content-Type`, and `Connection`.
    pub headers: Vec<(String, String)>,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// Whether the connection closes after this response (rendered as
    /// `Connection: close` / `keep-alive`).
    pub close: bool,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Self {
            status,
            headers: Vec::new(),
            content_type: "application/json",
            body: body.into_bytes(),
            close: false,
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: String) -> Self {
        Self {
            status,
            headers: Vec::new(),
            content_type: "text/plain; charset=utf-8",
            body: body.into_bytes(),
            close: false,
        }
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: String) -> Self {
        self.headers.push((name.to_string(), value));
        self
    }

    /// Marks the connection to close after this response.
    pub fn closing(mut self) -> Self {
        self.close = true;
        self
    }

    /// Serializes status line, headers, and body.
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len(),
            if self.close { "close" } else { "keep-alive" },
        )
        .into_bytes();
        for (name, value) in &self.headers {
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(b": ");
            out.extend_from_slice(value.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }
}

/// Canonical reason phrases for every status this service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // test code: panics are the failure report

    use super::*;

    #[test]
    fn serializes_with_framing_headers() {
        let raw = Response::json(200, "{\"ok\":true}".into()).serialize();
        let text = String::from_utf8(raw).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }

    #[test]
    fn extra_headers_and_close_render() {
        let raw = Response::json(429, "{}".into())
            .with_header("Retry-After", "2".into())
            .closing()
            .serialize();
        let text = String::from_utf8(raw).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
    }
}
