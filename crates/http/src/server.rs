//! The socket front-end (DESIGN.md §16).
//!
//! A deliberately boring thread-per-connection HTTP/1.1 server over
//! `std::net` — no event loop, no unsafe, no dependencies — whose entire
//! job is to move untrusted bytes into the serving layer's admission
//! path and truthful status codes back out. Backpressure is end-to-end
//! and bounded at every stage:
//!
//! * the **connection cap** bounds threads: an accept beyond
//!   [`HttpConfig::max_connections`] is answered `503` and closed
//!   immediately, costing no thread and no queue slot;
//! * the **read deadline** bounds how long a request may take to arrive
//!   (slow-loris / stalled-upload defense → `408`), the parser caps
//!   bound how big it may be (`431`/`413`), and the **write deadline**
//!   bounds how long a response may dribble out to a slow reader;
//! * the **admission queue** (in `tklus-serve`) bounds queued work; its
//!   typed sheds map one-to-one onto status codes ([`crate::status`]).
//!
//! Shutdown is a drain, not a detonation: [`HttpHandle::shutdown`] stops
//! accepting, closes admission (`begin_drain` → every new submission
//! answers 503 `ShuttingDown`), lets connection threads finish answering
//! — every ticket already admitted is answered by the worker pool or
//! typed-abandoned — then drains the serving layer for the final
//! accounting and returns a [`ShutdownReport`].

use crate::json::{
    parse_batch_body, parse_ingest_body, parse_query_body, render_error, render_outcome,
};
use crate::metrics::HttpMetrics;
use crate::parser::{ParserConfig, Request, RequestParser};
use crate::response::Response;
use crate::status::{ingest_response, parse_error_response, query_response};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tklus_metrics::Health;
use tklus_serve::{DrainReport, Rejected, ServeError, Ticket, TklusServer};

/// Socket-layer knobs. The admission/queue/breaker knobs live in
/// [`tklus_serve::ServeConfig`]; these only shape connections and bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpConfig {
    /// Bind address, e.g. `"127.0.0.1:8080"` (port 0 picks a free port;
    /// [`HttpHandle::addr`] reports the real one).
    pub addr: String,
    /// Maximum concurrent connections; accepts beyond it are answered
    /// `503` and closed without occupying a thread slot.
    pub max_connections: usize,
    /// Parser caps (header bytes, body bytes).
    pub parser: ParserConfig,
    /// A complete request (head + body) must arrive within this many
    /// milliseconds of the previous request's end, or the connection is
    /// answered `408` (mid-request) or closed (idle keep-alive).
    pub read_timeout_ms: u64,
    /// A response must be fully written within this many milliseconds or
    /// the connection is dropped (slow-reader defense).
    pub write_timeout_ms: u64,
    /// Maximum queries in one `/query_batch` body.
    pub max_batch: usize,
    /// How long [`HttpHandle::shutdown`] lets already-admitted work
    /// finish before the serving layer abandons the remainder typed.
    pub drain_timeout_ms: u64,
}

impl Default for HttpConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            max_connections: 64,
            parser: ParserConfig::default(),
            read_timeout_ms: 5_000,
            write_timeout_ms: 5_000,
            max_batch: 64,
            drain_timeout_ms: 5_000,
        }
    }
}

impl HttpConfig {
    /// Validates the knobs that must be non-zero.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_connections == 0 {
            return Err("max_connections must be at least 1".into());
        }
        if self.read_timeout_ms == 0 || self.write_timeout_ms == 0 {
            return Err("read/write timeouts must be at least 1 ms".into());
        }
        if self.max_batch == 0 {
            return Err("max_batch must be at least 1".into());
        }
        if self.parser.max_header_bytes == 0 {
            return Err("max_header_bytes must be at least 1".into());
        }
        Ok(())
    }
}

/// What a graceful shutdown observed.
#[derive(Debug, Clone, Default)]
pub struct ShutdownReport {
    /// Connection threads still alive when shutdown began (all joined
    /// before this report existed).
    pub connections_at_shutdown: usize,
    /// The serving layer's drain accounting.
    pub drain: DrainReport,
}

/// A running front-end. Dropping the handle without calling
/// [`HttpHandle::shutdown`] also shuts down (and joins) cleanly.
pub struct HttpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    metrics: Arc<HttpMetrics>,
    accept: Option<std::thread::JoinHandle<ShutdownReport>>,
}

/// Alias kept descriptive at call sites: what [`serve`] returns.
pub type HttpHandle = HttpServer;

/// Everything a connection thread needs, shared once.
struct App {
    server: TklusServer,
    metrics: Arc<HttpMetrics>,
    cfg: HttpConfig,
    shutdown: Arc<AtomicBool>,
}

/// Binds `cfg.addr` and starts the accept loop over `server`.
pub fn serve(server: TklusServer, cfg: HttpConfig) -> std::io::Result<HttpHandle> {
    cfg.validate().map_err(std::io::Error::other)?;
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let metrics = Arc::new(HttpMetrics::default());
    let app = Arc::new(App {
        server,
        metrics: Arc::clone(&metrics),
        cfg,
        shutdown: Arc::clone(&shutdown),
    });
    let accept = std::thread::spawn(move || accept_loop(listener, app));
    Ok(HttpServer { addr, shutdown, metrics, accept: Some(accept) })
}

impl HttpServer {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The socket-layer counters (shared with the `/metrics` endpoint).
    pub fn metrics(&self) -> &HttpMetrics {
        &self.metrics
    }

    /// Requests shutdown without blocking (safe to call from a signal
    /// watcher); follow with [`HttpHandle::shutdown`] to join.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    /// Stops accepting, drains, joins every thread, and reports. Every
    /// in-flight request is answered (by the worker pool, or typed
    /// `Abandoned`/`ShuttingDown`) before this returns.
    pub fn shutdown(mut self) -> ShutdownReport {
        self.shutdown.store(true, Ordering::Release);
        match self.accept.take() {
            Some(handle) => handle.join().unwrap_or_default(),
            None => ShutdownReport::default(),
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

/// Accept-poll interval; also bounds how stale the shutdown check in a
/// blocked read can be.
const POLL: Duration = Duration::from_millis(25);

fn accept_loop(listener: TcpListener, app: Arc<App>) -> ShutdownReport {
    let active = Arc::new(AtomicUsize::new(0));
    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !app.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                conns.retain(|h| !h.is_finished());
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_nodelay(true);
                if active.load(Ordering::Acquire) >= app.cfg.max_connections {
                    // Over the cap: answer 503 and close without a slot.
                    HttpMetrics::hit(&app.metrics.connections_refused);
                    refuse(stream, &app);
                    continue;
                }
                active.fetch_add(1, Ordering::AcqRel);
                HttpMetrics::hit(&app.metrics.connections_accepted);
                let app = Arc::clone(&app);
                let active = Arc::clone(&active);
                conns.push(std::thread::spawn(move || {
                    handle_connection(stream, &app);
                    active.fetch_sub(1, Ordering::AcqRel);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL),
        }
    }
    // Stop accepting *before* draining, so no connection slips in after
    // admission closes.
    drop(listener);
    let connections_at_shutdown = active.load(Ordering::Acquire);
    // Close admission: from here every submit answers `ShuttingDown`,
    // while workers keep answering what was already admitted.
    app.server.begin_drain();
    // Connection threads block on their tickets, so every ticket must be
    // answered within the drain budget — completed by a worker, or
    // typed-abandoned — before the joins below can be expected to
    // return. Without this bounded phase a slow queue would stall
    // shutdown indefinitely.
    let abandoned = app.server.drain_queued(Duration::from_millis(app.cfg.drain_timeout_ms));
    for handle in conns.drain(..) {
        let _ = handle.join();
    }
    // All connection threads are gone; this is the only `App` reference
    // left, so the serving layer can be consumed for the final
    // accounting (the queue is already empty; workers are joined here).
    let mut drain = match Arc::try_unwrap(app) {
        Ok(app) => app.server.drain(Duration::from_millis(app.cfg.drain_timeout_ms)),
        Err(_) => DrainReport::default(), // unreachable: conns were joined
    };
    drain.abandoned_queued.extend(abandoned);
    drain.abandoned_queued.sort_unstable();
    ShutdownReport { connections_at_shutdown, drain }
}

/// Answers an over-cap accept with `503` + `Retry-After` and closes.
fn refuse(mut stream: TcpStream, app: &App) {
    let resp = Response::json(
        503,
        render_error("ConnectionLimit", "connection limit reached; retry shortly", None),
    )
    .with_header("Retry-After", "1".to_string())
    .closing();
    let _ = write_with_deadline(
        &mut stream,
        &resp.serialize(),
        Duration::from_millis(app.cfg.write_timeout_ms),
    );
    app.metrics.record_response(resp.status);
}

/// One connection's lifetime: parse → route → respond, keep-alive until
/// close/deadline/shutdown. Every exit path either wrote a typed
/// response or observed the client gone.
fn handle_connection(mut stream: TcpStream, app: &App) {
    let mut parser = RequestParser::new(app.cfg.parser);
    let mut buf = [0u8; 16 * 1024];
    loop {
        let request = match read_request(&mut stream, &mut parser, &mut buf, app) {
            ReadOutcome::Request(req) => req,
            ReadOutcome::Respond(resp) => {
                send(&mut stream, resp, app);
                return;
            }
            ReadOutcome::Closed => return,
        };
        HttpMetrics::hit(&app.metrics.requests);
        let mut resp = route(&request, app);
        // Shutdown closes keep-alives after the in-flight answer.
        resp.close = resp.close || !request.keep_alive || app.shutdown.load(Ordering::Acquire);
        let close = resp.close;
        if !send(&mut stream, resp, app) || close {
            return;
        }
    }
}

/// How one read attempt ends.
enum ReadOutcome {
    /// A complete request arrived.
    Request(Request),
    /// Answer this (typed parse failure or 408) and close.
    Respond(Response),
    /// Nothing to answer: clean close, torn client, or idle shutdown.
    Closed,
}

/// Reads until the parser yields one request, the read deadline lapses,
/// or the peer disappears.
fn read_request(
    stream: &mut TcpStream,
    parser: &mut RequestParser,
    buf: &mut [u8],
    app: &App,
) -> ReadOutcome {
    let deadline = Instant::now() + Duration::from_millis(app.cfg.read_timeout_ms);
    loop {
        // Drain pipelined bytes before touching the socket.
        match parser.feed(&[]) {
            Ok(Some(req)) => return ReadOutcome::Request(req),
            Ok(None) => {}
            Err(err) => return ReadOutcome::Respond(parse_error_response(&err)),
        }
        // A draining server closes idle keep-alives; mid-request reads
        // continue so the request can be answered 503 typed.
        if app.shutdown.load(Ordering::Acquire) && !parser.mid_request() {
            return ReadOutcome::Closed;
        }
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            if parser.mid_request() {
                HttpMetrics::hit(&app.metrics.read_timeouts);
                return ReadOutcome::Respond(
                    Response::json(
                        408,
                        render_error(
                            "ReadTimeout",
                            "request did not arrive before the read deadline",
                            None,
                        ),
                    )
                    .closing(),
                );
            }
            return ReadOutcome::Closed; // idle keep-alive: close quietly
        }
        let _ = stream.set_read_timeout(Some(remaining.min(POLL).max(Duration::from_millis(1))));
        match stream.read(buf) {
            Ok(0) => {
                if parser.mid_request() {
                    HttpMetrics::hit(&app.metrics.torn_requests);
                }
                return ReadOutcome::Closed;
            }
            Ok(n) => {
                app.metrics.bytes_read.fetch_add(n as u64, Ordering::Relaxed);
                match parser.feed(&buf[..n]) {
                    Ok(Some(req)) => return ReadOutcome::Request(req),
                    Ok(None) => {}
                    Err(err) => return ReadOutcome::Respond(parse_error_response(&err)),
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                if parser.mid_request() {
                    HttpMetrics::hit(&app.metrics.torn_requests);
                }
                return ReadOutcome::Closed;
            }
        }
    }
}

/// Serializes and writes a response under the write deadline; records
/// counters. Returns false when the connection must close (explicit
/// close, write failure, or slow reader).
fn send(stream: &mut TcpStream, resp: Response, app: &App) -> bool {
    let close = resp.close;
    let raw = resp.serialize();
    let (done, written) =
        write_with_deadline(stream, &raw, Duration::from_millis(app.cfg.write_timeout_ms));
    app.metrics.bytes_written.fetch_add(written as u64, Ordering::Relaxed);
    if !done {
        HttpMetrics::hit(&app.metrics.write_timeouts);
        return false;
    }
    app.metrics.record_response(resp.status);
    !close
}

/// Writes all of `bytes` or gives up at the deadline. Returns
/// `(completed, bytes_written)`.
fn write_with_deadline(stream: &mut TcpStream, bytes: &[u8], timeout: Duration) -> (bool, usize) {
    let deadline = Instant::now() + timeout;
    let mut written = 0;
    while written < bytes.len() {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return (false, written);
        }
        if stream.set_write_timeout(Some(remaining.max(Duration::from_millis(1)))).is_err() {
            return (false, written);
        }
        match stream.write(&bytes[written..]) {
            Ok(0) => return (false, written),
            Ok(n) => written += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return (false, written),
        }
    }
    let _ = stream.flush();
    (true, written)
}

/// Routes one parsed request. Pure with respect to the socket: returns
/// the response, never writes.
fn route(req: &Request, app: &App) -> Response {
    let path = req.target.split('?').next().unwrap_or("");
    match (req.method.as_str(), path) {
        ("GET", "/health") => {
            let report = app.server.health();
            let healthy = report.ready && report.overall() != Health::Unhealthy;
            Response::text(if healthy { 200 } else { 503 }, report.render())
        }
        ("GET", "/metrics") => Response::text(
            200,
            app.metrics.inject(app.server.metrics_snapshot()).render_prometheus(),
        ),
        ("POST", "/query") => match parse_query_body(&req.body) {
            Err(bad) => Response::json(400, render_error("BadRequest", &bad.message, None)),
            Ok(spec) => {
                let result = app
                    .server
                    .submit(spec.query, spec.ranking, spec.priority, spec.deadline)
                    .map_err(ServeError::Rejected)
                    .and_then(Ticket::wait);
                query_response(result.map(|o| render_outcome(&o)))
            }
        },
        ("POST", "/query_batch") => match parse_batch_body(&req.body, app.cfg.max_batch) {
            Err(bad) => Response::json(400, render_error("BadRequest", &bad.message, None)),
            Ok(specs) => {
                // Submit everything first — the whole batch contends for
                // admission at once, exactly like concurrent clients —
                // then collect the answers in order.
                let tickets: Vec<Result<Ticket, Rejected>> = specs
                    .into_iter()
                    .map(|s| app.server.submit(s.query, s.ranking, s.priority, s.deadline))
                    .collect();
                let mut body = String::from("{\"results\":[");
                for (i, ticket) in tickets.into_iter().enumerate() {
                    if i > 0 {
                        body.push(',');
                    }
                    let result = ticket.map_err(ServeError::Rejected).and_then(Ticket::wait);
                    let item = query_response(result.map(|o| render_outcome(&o)));
                    body.push_str(&format!("{{\"status\":{},\"body\":", item.status));
                    body.push_str(&String::from_utf8_lossy(&item.body));
                    body.push('}');
                }
                body.push_str("]}");
                Response::json(200, body)
            }
        },
        ("POST", "/ingest") => match parse_ingest_body(&req.body) {
            Err(bad) => Response::json(400, render_error("BadRequest", &bad.message, None)),
            Ok(post) => {
                let result = app
                    .server
                    .submit_ingest(post, None)
                    .map_err(tklus_serve::IngestFailure::Rejected)
                    .and_then(tklus_serve::IngestTicket::wait);
                ingest_response(result)
            }
        },
        (_, "/health" | "/metrics" | "/query" | "/query_batch" | "/ingest") => {
            let allow = if path == "/health" || path == "/metrics" { "GET" } else { "POST" };
            Response::json(
                405,
                render_error("MethodNotAllowed", &format!("{path} allows only {allow}"), None),
            )
            .with_header("Allow", allow.to_string())
        }
        _ => Response::json(404, render_error("NotFound", &format!("no route {path}"), None)),
    }
}
