//! Connection- and request-level counters (DESIGN.md §16).
//!
//! The serving layer already counts admissions, sheds, and breaker trips
//! under `tklus_serve_*`; this module counts what only the socket layer
//! can see — connections, parse failures, slow-client timeouts, torn
//! uploads — under `tklus_http_*`. One row list drives the exposition,
//! mirroring the serve crate's pattern, and the rendered format is
//! golden-pinned.

use std::sync::atomic::{AtomicU64, Ordering};
use tklus_metrics::RegistrySnapshot;

/// Shared atomic counters, incremented by connection threads with no
/// lock. Relaxed ordering everywhere: rows are independent monotone
/// counts, and the exposition is a sample, not a barrier.
#[derive(Debug, Default)]
pub struct HttpMetrics {
    /// Connections accepted into a thread slot.
    pub connections_accepted: AtomicU64,
    /// Connections refused at the cap (answered 503 and closed).
    pub connections_refused: AtomicU64,
    /// Complete requests parsed off sockets.
    pub requests: AtomicU64,
    /// Responses written, by status class.
    pub responses_2xx: AtomicU64,
    /// 4xx responses written.
    pub responses_4xx: AtomicU64,
    /// 5xx responses written.
    pub responses_5xx: AtomicU64,
    /// Requests cut off by the read deadline mid-head or mid-body
    /// (slow-loris / stalled uploads; answered 408).
    pub read_timeouts: AtomicU64,
    /// Connections that vanished mid-request (EOF or reset with a
    /// partial request buffered) — closed with nothing to answer.
    pub torn_requests: AtomicU64,
    /// Responses abandoned because the client stopped reading past the
    /// write deadline (slow-reader defense).
    pub write_timeouts: AtomicU64,
    /// Bytes read off sockets.
    pub bytes_read: AtomicU64,
    /// Bytes written to sockets.
    pub bytes_written: AtomicU64,
}

impl HttpMetrics {
    /// Bumps a counter by one.
    pub fn hit(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one written response in its status class.
    pub fn record_response(&self, status: u16) {
        let class = match status {
            200..=299 => &self.responses_2xx,
            400..=499 => &self.responses_4xx,
            _ => &self.responses_5xx,
        };
        class.fetch_add(1, Ordering::Relaxed);
    }

    /// The exposition rows, in pinned order.
    pub fn rows(&self) -> Vec<(&'static str, u64)> {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        vec![
            ("connections_accepted", get(&self.connections_accepted)),
            ("connections_refused", get(&self.connections_refused)),
            ("requests", get(&self.requests)),
            ("responses_2xx", get(&self.responses_2xx)),
            ("responses_4xx", get(&self.responses_4xx)),
            ("responses_5xx", get(&self.responses_5xx)),
            ("read_timeouts", get(&self.read_timeouts)),
            ("torn_requests", get(&self.torn_requests)),
            ("write_timeouts", get(&self.write_timeouts)),
            ("bytes_read", get(&self.bytes_read)),
            ("bytes_written", get(&self.bytes_written)),
        ]
    }

    /// Injects the rows into `base` (typically the serve layer's registry
    /// snapshot) as `tklus_http_<row>` counters.
    pub fn inject(&self, mut base: RegistrySnapshot) -> RegistrySnapshot {
        for (name, value) in self.rows() {
            base.set_counter(&format!("tklus_http_{name}"), value);
        }
        base
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // test code: panics are the failure report

    use super::*;

    #[test]
    fn golden_prometheus_exposition() {
        let m = HttpMetrics::default();
        m.connections_accepted.store(3, Ordering::Relaxed);
        m.requests.store(7, Ordering::Relaxed);
        m.record_response(200);
        m.record_response(200);
        m.record_response(429);
        m.record_response(503);
        m.bytes_read.store(1024, Ordering::Relaxed);
        let out = m.inject(RegistrySnapshot::default()).render_prometheus();
        // Names render sorted; the whole section is pinned.
        let want = "\
# TYPE tklus_http_bytes_read counter
tklus_http_bytes_read 1024
# TYPE tklus_http_bytes_written counter
tklus_http_bytes_written 0
# TYPE tklus_http_connections_accepted counter
tklus_http_connections_accepted 3
# TYPE tklus_http_connections_refused counter
tklus_http_connections_refused 0
# TYPE tklus_http_read_timeouts counter
tklus_http_read_timeouts 0
# TYPE tklus_http_requests counter
tklus_http_requests 7
# TYPE tklus_http_responses_2xx counter
tklus_http_responses_2xx 2
# TYPE tklus_http_responses_4xx counter
tklus_http_responses_4xx 1
# TYPE tklus_http_responses_5xx counter
tklus_http_responses_5xx 1
# TYPE tklus_http_torn_requests counter
tklus_http_torn_requests 0
# TYPE tklus_http_write_timeouts counter
tklus_http_write_timeouts 0
";
        assert_eq!(out, want);
    }
}
