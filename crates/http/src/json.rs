//! JSON request decoding and response encoding.
//!
//! Decoding uses the vendored `serde_json` value parser; every missing or
//! mistyped field becomes a [`BadRequest`] whose message names the field,
//! so a client debugging a 400 never has to guess. Encoding is
//! hand-rolled string building: response shapes are small, fixed, and
//! golden-pinned, and the vendored parser is read-only.

use std::time::Duration;
use tklus_core::{BoundsMode, Completeness, QueryOutcome, Ranking};
use tklus_geo::Point;
use tklus_model::{Post, Priority, Semantics, TklusQuery, TweetId, UserId};

/// A request body that failed to decode (400); the message names the
/// offending field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadRequest {
    /// What was wrong, e.g. `"keywords must be a non-empty string array"`.
    pub message: String,
}

impl BadRequest {
    fn new(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl std::fmt::Display for BadRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for BadRequest {}

/// One decoded `/query` request: the engine query plus the serving-layer
/// envelope (ranking, priority, deadline).
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// The validated engine query.
    pub query: TklusQuery,
    /// Requested ranking function (default `sum`).
    pub ranking: Ranking,
    /// Admission priority (default `normal`).
    pub priority: Priority,
    /// Arrival deadline; `None` uses the server default.
    pub deadline: Option<Duration>,
}

fn parse_value(body: &[u8]) -> Result<serde_json::Value, BadRequest> {
    let text = std::str::from_utf8(body).map_err(|_| BadRequest::new("body must be UTF-8 JSON"))?;
    serde_json::from_str(text).map_err(|e| BadRequest::new(format!("invalid JSON: {e}")))
}

fn req_f64(v: &serde_json::Value, key: &str) -> Result<f64, BadRequest> {
    v.get(key)
        .and_then(|x| x.as_f64())
        .ok_or_else(|| BadRequest::new(format!("{key} must be a number")))
}

fn req_u64(v: &serde_json::Value, key: &str) -> Result<u64, BadRequest> {
    v.get(key)
        .and_then(|x| x.as_u64())
        .ok_or_else(|| BadRequest::new(format!("{key} must be a non-negative integer")))
}

fn opt_u64(v: &serde_json::Value, key: &str) -> Result<Option<u64>, BadRequest> {
    match v.get(key) {
        None => Ok(None),
        Some(x) if x.is_null() => Ok(None),
        Some(x) => x
            .as_u64()
            .map(Some)
            .ok_or_else(|| BadRequest::new(format!("{key} must be a non-negative integer"))),
    }
}

fn parse_point(v: &serde_json::Value) -> Result<Point, BadRequest> {
    let lat = req_f64(v, "lat")?;
    let lon = req_f64(v, "lon")?;
    Point::new(lat, lon).map_err(|e| BadRequest::new(e.to_string()))
}

/// Decodes one query object (used by `/query` and each `/query_batch`
/// element).
pub fn parse_query_spec(v: &serde_json::Value) -> Result<QuerySpec, BadRequest> {
    if v.as_object().is_none() {
        return Err(BadRequest::new("query must be a JSON object"));
    }
    let location = parse_point(v)?;
    let radius_km = req_f64(v, "radius_km")?;
    let keywords: Vec<String> = v
        .get("keywords")
        .and_then(|x| x.as_array())
        .and_then(|a| a.iter().map(|w| w.as_str().map(str::to_string)).collect::<Option<Vec<_>>>())
        .ok_or_else(|| BadRequest::new("keywords must be a string array"))?;
    let k = req_u64(v, "k")? as usize;
    let semantics = match v.get("semantics").map(|s| s.as_str()) {
        None => Semantics::Or,
        Some(Some("or")) | Some(Some("OR")) => Semantics::Or,
        Some(Some("and")) | Some(Some("AND")) => Semantics::And,
        _ => return Err(BadRequest::new("semantics must be \"or\" or \"and\"")),
    };
    let mut query = TklusQuery::new(location, radius_km, keywords, k, semantics)
        .map_err(|e| BadRequest::new(e.to_string()))?;
    if let Some(timeout_ms) = opt_u64(v, "timeout_ms")? {
        query = query.with_timeout_ms(timeout_ms);
    }
    if let Some(max_cells) = opt_u64(v, "max_cells")? {
        query = query.with_max_cells(max_cells as usize);
    }
    if let Some(range) = v.get("time_range") {
        let pair = range.as_array().filter(|a| a.len() == 2);
        let start = pair.and_then(|a| a[0].as_u64());
        let end = pair.and_then(|a| a[1].as_u64());
        let (Some(start), Some(end)) = (start, end) else {
            return Err(BadRequest::new("time_range must be [start, end] integers"));
        };
        query = query.with_time_range(start, end).map_err(|e| BadRequest::new(e.to_string()))?;
    }
    if let Some(rec) = v.get("recency") {
        let now = req_u64(rec, "now")?;
        let half_life = req_u64(rec, "half_life")?;
        query = query.with_recency(now, half_life).map_err(|e| BadRequest::new(e.to_string()))?;
    }
    let ranking = match v.get("ranking").map(|s| s.as_str()) {
        None | Some(Some("sum")) => Ranking::Sum,
        Some(Some("max")) | Some(Some("max_global")) => Ranking::Max(BoundsMode::Global),
        Some(Some("max_hot")) => Ranking::Max(BoundsMode::HotKeywords),
        _ => {
            return Err(BadRequest::new(
                "ranking must be \"sum\", \"max\", \"max_global\", or \"max_hot\"",
            ))
        }
    };
    let priority = match v.get("priority").map(|s| s.as_str()) {
        None | Some(Some("normal")) => Priority::Normal,
        Some(Some("low")) => Priority::Low,
        Some(Some("high")) => Priority::High,
        _ => return Err(BadRequest::new("priority must be \"low\", \"normal\", or \"high\"")),
    };
    let deadline = opt_u64(v, "deadline_ms")?.map(Duration::from_millis);
    Ok(QuerySpec { query, ranking, priority, deadline })
}

/// Decodes a `/query` body.
pub fn parse_query_body(body: &[u8]) -> Result<QuerySpec, BadRequest> {
    parse_query_spec(&parse_value(body)?)
}

/// Decodes a `/query_batch` body: `{"queries": [...]}`, at most
/// `max_batch` entries.
pub fn parse_batch_body(body: &[u8], max_batch: usize) -> Result<Vec<QuerySpec>, BadRequest> {
    let v = parse_value(body)?;
    let arr = v
        .get("queries")
        .and_then(|x| x.as_array())
        .ok_or_else(|| BadRequest::new("queries must be an array"))?;
    if arr.is_empty() {
        return Err(BadRequest::new("queries must not be empty"));
    }
    if arr.len() > max_batch {
        return Err(BadRequest::new(format!(
            "batch of {} exceeds the {max_batch}-query cap",
            arr.len()
        )));
    }
    arr.iter()
        .enumerate()
        .map(|(i, q)| {
            parse_query_spec(q).map_err(|e| BadRequest::new(format!("queries[{i}]: {e}")))
        })
        .collect()
}

/// Decodes an `/ingest` body into a [`Post`].
pub fn parse_ingest_body(body: &[u8]) -> Result<Post, BadRequest> {
    let v = parse_value(body)?;
    if v.as_object().is_none() {
        return Err(BadRequest::new("post must be a JSON object"));
    }
    let id = TweetId(req_u64(&v, "id")?);
    let user = UserId(req_u64(&v, "user")?);
    let location = parse_point(&v)?;
    let text = v
        .get("text")
        .and_then(|x| x.as_str())
        .ok_or_else(|| BadRequest::new("text must be a string"))?
        .to_string();
    match v.get("reply_to") {
        None => Ok(Post::original(id, user, location, text)),
        Some(r) if r.is_null() => Ok(Post::original(id, user, location, text)),
        Some(r) => {
            let target = TweetId(req_u64(r, "id")?);
            let target_user = UserId(req_u64(r, "user")?);
            match r.get("kind").map(|s| s.as_str()) {
                None | Some(Some("reply")) => {
                    Ok(Post::reply(id, user, location, text, target, target_user))
                }
                Some(Some("forward")) => {
                    Ok(Post::forward(id, user, location, text, target, target_user))
                }
                _ => Err(BadRequest::new("reply_to.kind must be \"reply\" or \"forward\"")),
            }
        }
    }
}

/// Escapes a string for inclusion in a JSON document.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Encodes a successful query outcome. Scores render with Rust's
/// shortest-roundtrip float formatting (engine scores are always finite).
pub fn render_outcome(outcome: &QueryOutcome) -> String {
    let mut out = String::from("{\"users\":[");
    for (i, ranked) in outcome.users.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"user\":{},\"score\":{}}}", ranked.user.0, ranked.score));
    }
    out.push_str("],");
    match &outcome.completeness {
        Completeness::Complete => out.push_str("\"completeness\":\"complete\"}"),
        Completeness::Degraded { cells_processed, cells_total } => out.push_str(&format!(
            "\"completeness\":\"degraded\",\"cells_processed\":{cells_processed},\"cells_total\":{cells_total}}}",
        )),
    }
    out
}

/// Encodes a typed error body: the stable error-class name, the
/// human-readable detail, and (for retryable sheds) the millisecond
/// retry estimate that also feeds the `Retry-After` header.
pub fn render_error(kind: &str, message: &str, retry_after_ms: Option<u64>) -> String {
    let mut out = format!("{{\"error\":\"{}\",\"message\":\"{}\"", escape(kind), escape(message));
    if let Some(ms) = retry_after_ms {
        out.push_str(&format!(",\"retry_after_ms\":{ms}"));
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // test code: panics are the failure report

    use super::*;

    #[test]
    fn full_query_round_trips_every_field() {
        let spec = parse_query_body(
            br#"{"lat": 43.68, "lon": -79.37, "radius_km": 10.0,
                 "keywords": ["hotel", "cafe"], "k": 3, "semantics": "and",
                 "ranking": "max_hot", "priority": "high", "deadline_ms": 250,
                 "timeout_ms": 100, "max_cells": 7, "time_range": [5, 9],
                 "recency": {"now": 9, "half_life": 4}}"#,
        )
        .unwrap();
        assert_eq!(spec.query.keywords, vec!["hotel", "cafe"]);
        assert_eq!(spec.query.k, 3);
        assert_eq!(spec.query.semantics, Semantics::And);
        assert_eq!(spec.ranking, Ranking::Max(BoundsMode::HotKeywords));
        assert_eq!(spec.priority, Priority::High);
        assert_eq!(spec.deadline, Some(Duration::from_millis(250)));
        assert_eq!(spec.query.budget.unwrap().max_cells, Some(7));
        assert_eq!(spec.query.time_range, Some((5, 9)));
        assert!(spec.query.recency.is_some());
    }

    #[test]
    fn minimal_query_applies_defaults() {
        let spec =
            parse_query_body(br#"{"lat": 0, "lon": 0, "radius_km": 1, "keywords": ["x"], "k": 1}"#)
                .unwrap();
        assert_eq!(spec.ranking, Ranking::Sum);
        assert_eq!(spec.priority, Priority::Normal);
        assert_eq!(spec.deadline, None);
        assert_eq!(spec.query.semantics, Semantics::Or);
    }

    #[test]
    fn bad_queries_name_the_field() {
        for (body, needle) in [
            (br#"not json"#.as_slice(), "invalid JSON"),
            (br#"[1]"#, "object"),
            (br#"{"lat": "x", "lon": 0, "radius_km": 1, "keywords": ["a"], "k": 1}"#, "lat"),
            (br#"{"lat": 99, "lon": 0, "radius_km": 1, "keywords": ["a"], "k": 1}"#, "lat"),
            (br#"{"lat": 0, "lon": 0, "keywords": ["a"], "k": 1}"#, "radius_km"),
            (br#"{"lat": 0, "lon": 0, "radius_km": 1, "keywords": [], "k": 1}"#, "keyword"),
            (br#"{"lat": 0, "lon": 0, "radius_km": 1, "keywords": [3], "k": 1}"#, "keywords"),
            (br#"{"lat": 0, "lon": 0, "radius_km": 1, "keywords": ["a"], "k": 0}"#, "k"),
            (
                br#"{"lat": 0, "lon": 0, "radius_km": 1, "keywords": ["a"], "k": 1, "ranking": "med"}"#,
                "ranking",
            ),
            (
                br#"{"lat": 0, "lon": 0, "radius_km": 1, "keywords": ["a"], "k": 1, "priority": 9}"#,
                "priority",
            ),
            (
                br#"{"lat": 0, "lon": 0, "radius_km": 1, "keywords": ["a"], "k": 1, "time_range": [9]}"#,
                "time_range",
            ),
        ] {
            let err = parse_query_body(body).unwrap_err();
            assert!(
                err.message.contains(needle),
                "expected {needle:?} in {:?} for {}",
                err.message,
                String::from_utf8_lossy(body)
            );
        }
    }

    #[test]
    fn batch_caps_and_indexes_errors() {
        let two = parse_batch_body(
            br#"{"queries": [
                 {"lat": 0, "lon": 0, "radius_km": 1, "keywords": ["a"], "k": 1},
                 {"lat": 1, "lon": 1, "radius_km": 2, "keywords": ["b"], "k": 2}]}"#,
            8,
        )
        .unwrap();
        assert_eq!(two.len(), 2);
        assert!(parse_batch_body(br#"{"queries": []}"#, 8).is_err());
        assert!(parse_batch_body(br#"{"queries": 3}"#, 8).is_err());
        let over = parse_batch_body(
            br#"{"queries": [
                 {"lat": 0, "lon": 0, "radius_km": 1, "keywords": ["a"], "k": 1},
                 {"lat": 1, "lon": 1, "radius_km": 2, "keywords": ["b"], "k": 2}]}"#,
            1,
        )
        .unwrap_err();
        assert!(over.message.contains("cap"));
        let indexed = parse_batch_body(
            br#"{"queries": [
                 {"lat": 0, "lon": 0, "radius_km": 1, "keywords": ["a"], "k": 1},
                 {"lat": 1, "lon": 1, "radius_km": 0, "keywords": ["b"], "k": 2}]}"#,
            8,
        )
        .unwrap_err();
        assert!(indexed.message.contains("queries[1]"), "{}", indexed.message);
    }

    #[test]
    fn ingest_decodes_original_reply_and_forward() {
        let post = parse_ingest_body(
            br#"{"id": 7, "user": 3, "lat": 43.6, "lon": -79.4, "text": "nice hotel"}"#,
        )
        .unwrap();
        assert_eq!((post.id.0, post.user.0), (7, 3));
        assert!(post.in_reply_to.is_none());
        let reply = parse_ingest_body(
            br#"{"id": 8, "user": 4, "lat": 0, "lon": 0, "text": "agree",
                 "reply_to": {"id": 7, "user": 3}}"#,
        )
        .unwrap();
        assert_eq!(reply.in_reply_to.unwrap().target.0, 7);
        let fwd = parse_ingest_body(
            br#"{"id": 9, "user": 5, "lat": 0, "lon": 0, "text": "rt",
                 "reply_to": {"id": 7, "user": 3, "kind": "forward"}}"#,
        )
        .unwrap();
        assert_eq!(fwd.in_reply_to.unwrap().kind, tklus_model::InteractionKind::Forward);
        assert!(parse_ingest_body(br#"{"id": 1, "user": 2, "lat": 0, "lon": 0}"#).is_err());
    }

    #[test]
    fn outcome_and_error_bodies_are_pinned() {
        use tklus_core::RankedUser;
        let outcome = QueryOutcome {
            users: vec![
                RankedUser { user: UserId(5), score: 2.5 },
                RankedUser { user: UserId(1), score: 0.125 },
            ],
            stats: Default::default(),
            completeness: Completeness::Complete,
        };
        assert_eq!(
            render_outcome(&outcome),
            r#"{"users":[{"user":5,"score":2.5},{"user":1,"score":0.125}],"completeness":"complete"}"#
        );
        let degraded = QueryOutcome {
            users: vec![],
            stats: Default::default(),
            completeness: Completeness::Degraded { cells_processed: 2, cells_total: 9 },
        };
        assert_eq!(
            render_outcome(&degraded),
            r#"{"users":[],"completeness":"degraded","cells_processed":2,"cells_total":9}"#
        );
        assert_eq!(
            render_error("QueueFull", "queue is \"full\"", Some(40)),
            r#"{"error":"QueueFull","message":"queue is \"full\"","retry_after_ms":40}"#
        );
        assert_eq!(
            render_error("ShuttingDown", "bye\n", None),
            "{\"error\":\"ShuttingDown\",\"message\":\"bye\\n\"}"
        );
    }
}
