//! Property tests for the serving layer's clock arithmetic (ISSUE
//! satellite: the u64-overflow class the PR 4 review caught in
//! `submit()`). Extreme `now_ms`/deadline/backoff values must flow
//! through admission, queue expiry, breaker backoff, and plan generation
//! without panicking — and, the subtler failure, without *misclassifying*
//! a viable request as an instant shed because an addition wrapped.

use proptest::prelude::*;
use tklus_model::Priority;
use tklus_serve::sim::{generate_plan, LoadConfig};
use tklus_serve::{
    AdmissionQueue, AdmitResult, BreakerConfig, BreakerState, CircuitBreaker, Popped,
};

/// Values dense near the overflow boundary, plus the ordinary range.
fn extreme_u64() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(0u64),
        Just(1u64),
        Just(u64::MAX),
        Just(u64::MAX - 1),
        Just(u64::MAX / 2),
        any::<u64>(),
        0u64..1_000_000,
    ]
}

/// Like [`extreme_u64`], but valid as a service estimate (the queue
/// asserts `est_service_ms > 0`, normally enforced by `ServeConfig`).
fn extreme_service_ms() -> impl Strategy<Value = u64> {
    extreme_u64().prop_map(|v| v.max(1))
}

fn priority() -> impl Strategy<Value = Priority> {
    prop_oneof![Just(Priority::Low), Just(Priority::Normal), Just(Priority::High)]
}

proptest! {
    /// Admission at any clock/deadline/estimate combination: no panic,
    /// and — the misclassification guard — an arrival into an empty,
    /// idle queue whose deadline has not already passed is ALWAYS
    /// admitted, even at `deadline_ms == u64::MAX` where the naive
    /// `now + wait > deadline` comparison would wrap.
    #[test]
    fn empty_idle_queue_admits_any_live_deadline(
        now_ms in extreme_u64(),
        deadline_ms in extreme_u64(),
        est_service_ms in extreme_service_ms(),
        p in priority(),
    ) {
        let mut q: AdmissionQueue<u32> = AdmissionQueue::new(4, 2, est_service_ms);
        let result = q.try_admit(now_ms, p, deadline_ms, 7, 0);
        if deadline_ms >= now_ms {
            prop_assert!(
                matches!(result, AdmitResult::Admitted { .. }),
                "live deadline shed at now={now_ms} deadline={deadline_ms}: {result:?}"
            );
        } else {
            // An already-passed deadline is a legitimate instant shed.
            prop_assert!(matches!(result, AdmitResult::Shed { .. }));
        }
    }

    /// With workers busy the wait estimate engages; whatever the
    /// decision, the counters must classify it consistently and the
    /// queue must stay within capacity. No arithmetic panics anywhere.
    #[test]
    fn loaded_admission_classifies_consistently(
        now_ms in extreme_u64(),
        deadlines in proptest::collection::vec(extreme_u64(), 1..24),
        est_service_ms in extreme_service_ms(),
        busy in 0usize..8,
        p in priority(),
    ) {
        let mut q: AdmissionQueue<u32> = AdmissionQueue::new(4, 2, est_service_ms);
        for (i, &deadline) in deadlines.iter().enumerate() {
            let _ = q.try_admit(now_ms, p, deadline, i as u32, busy);
            prop_assert!(q.depth() <= q.capacity());
        }
        // Every arrival lands in exactly one admission-time class
        // (evictions strike entries that were already counted admitted).
        let c = q.counters();
        prop_assert_eq!(c.admitted + c.shed_queue_full + c.shed_deadline, deadlines.len() as u64);
        // The published wait estimate itself must not overflow-panic.
        let _ = q.estimated_wait_ms(p, busy);
    }

    /// Queue expiry at dispatch is exact under extreme clocks: an entry
    /// pops `Expired` iff its deadline lies strictly before the dispatch
    /// instant.
    #[test]
    fn expiry_classification_is_exact(
        admit_ms in extreme_u64(),
        deadline_ms in extreme_u64(),
        pop_ms in extreme_u64(),
    ) {
        prop_assume!(deadline_ms >= admit_ms); // otherwise shed at admit
        let mut q: AdmissionQueue<u32> = AdmissionQueue::new(4, 2, 1);
        let admitted = q.try_admit(admit_ms, Priority::Normal, deadline_ms, 1, 0);
        prop_assert!(matches!(admitted, AdmitResult::Admitted { .. }));
        match q.pop_next(pop_ms) {
            Some(Popped::Expired(e)) => prop_assert!(e.deadline_ms < pop_ms),
            Some(Popped::Ready(e)) => prop_assert!(e.deadline_ms >= pop_ms),
            None => prop_assert!(false, "admitted entry vanished"),
        }
    }

    /// Breaker life cycle under an adversarial clock: arbitrary
    /// failure/success/grant events at arbitrary (extreme) instants
    /// never panic, backoff stays within `[base, max]`, and an open
    /// breaker's `retry_in_ms`/`would_allow` answers agree with each
    /// other instead of wrapping into "retry immediately".
    #[test]
    fn breaker_backoff_survives_extreme_clocks(
        base_backoff_ms in extreme_u64(),
        events in proptest::collection::vec((0u8..4, extreme_u64()), 1..40),
    ) {
        prop_assume!(base_backoff_ms > 0);
        let cfg = BreakerConfig {
            window: 4,
            failure_threshold: 2,
            base_backoff_ms,
            max_backoff_ms: base_backoff_ms.saturating_mul(8),
            half_open_probes: 1,
        };
        prop_assume!(cfg.validate().is_ok());
        let mut b = CircuitBreaker::new("storage", cfg);
        for (op, now_ms) in events {
            match op {
                0 => b.record_failure(now_ms),
                1 => b.record_success(now_ms),
                2 => { let _ = b.allow(now_ms); }
                _ => {
                    if b.try_grant(now_ms) == Some(true) {
                        b.return_probe();
                    }
                }
            }
            if b.state() == BreakerState::Open {
                // Coherence: "not allowed yet" must come with a nonzero
                // retry hint, or the caller spins on an instant retry
                // that admission then sheds.
                if !b.would_allow(now_ms) {
                    prop_assert!(b.retry_in_ms(now_ms) > 0);
                } else {
                    prop_assert_eq!(b.retry_in_ms(now_ms), 0);
                }
            } else {
                prop_assert_eq!(b.retry_in_ms(now_ms), 0);
            }
        }
    }

    /// Load-plan generation with extreme means/deadlines: timelines
    /// saturate instead of wrapping, so arrivals stay monotone and every
    /// deadline is at or after its arrival.
    #[test]
    fn generate_plan_saturates_extreme_configs(
        seed in any::<u64>(),
        mean_interarrival_ms in extreme_u64(),
        mean_service_ms in extreme_u64(),
        deadline_ms in extreme_u64(),
    ) {
        prop_assume!(mean_interarrival_ms > 0 && mean_service_ms > 0);
        let cfg = LoadConfig {
            seed,
            requests: 32,
            mean_interarrival_ms,
            deadline_ms,
            mean_service_ms,
            priority_weights: [1, 2, 1],
        };
        let plan = generate_plan(&cfg, 5);
        prop_assert!(plan.requests.windows(2).all(|w| w[0].arrival_ms <= w[1].arrival_ms));
        for r in &plan.requests {
            prop_assert!(r.service_ms >= 1);
            prop_assert!(r.deadline_ms >= r.arrival_ms);
            prop_assert_eq!(r.deadline_ms, r.arrival_ms.saturating_add(cfg.deadline_ms));
        }
    }
}
